//! `uvpu` — a unified vector processing unit for fully homomorphic
//! encryption.
//!
//! This is the umbrella crate of the workspace reproducing *"A Unified
//! Vector Processing Unit for Fully Homomorphic Encryption"* (DATE 2025).
//! It re-exports every sub-crate under one roof and hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`).
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`par`] | `uvpu-par` | scoped host worker pool and plan-cache memo (`UVPU_THREADS`) |
//! | [`math`] | `uvpu-math` | modular arithmetic, NTTs, RNS, automorphism index algebra |
//! | [`vpu`] | `uvpu-core` | **the paper's contribution**: lanes, inter-lane network, control solver, NTT/automorphism mapping |
//! | [`hw_model`] | `uvpu-hw-model` | calibrated area/power models of Ours / F1 / BTS / ARK / SHARP |
//! | [`metrics`] | `uvpu-metrics` | utilization & energy attribution profiler with deterministic JSON snapshots |
//! | [`compare`] | `uvpu-compare` | cross-accelerator attribution sink and deterministic comparison reports |
//! | [`ckks`] | `uvpu-ckks` | a full RNS-CKKS scheme as the workload generator |
//! | [`bfv`] | `uvpu-bfv` | an exact-arithmetic BFV scheme (the paper's "similarly supported" claim) |
//! | [`accel`] | `uvpu-accel` | the multi-VPU accelerator simulator (NoC + SRAM + scheduler) |
//!
//! # Quick start
//!
//! ```
//! use uvpu::vpu::auto_map::AutomorphismMapping;
//! use uvpu::vpu::ntt_map::NttPlan;
//! use uvpu::vpu::vpu::Vpu;
//! use uvpu::math::{modular::Modulus, primes::ntt_prime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (n, m) = (1 << 10, 64);
//! let q = Modulus::new(ntt_prime(50, n)?)?;
//! let mut vpu = Vpu::new(m, q, 64)?;
//!
//! let plan = NttPlan::new(q, n, m)?;
//! let spectrum = plan.execute_forward_negacyclic(&mut vpu, &vec![1; n])?;
//! let rot = AutomorphismMapping::new(n, m, 5, 0)?.execute(&mut vpu, &spectrum.output)?;
//! assert_eq!(rot.utilization(), 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use uvpu_accel as accel;
pub use uvpu_bfv as bfv;
pub use uvpu_ckks as ckks;
pub use uvpu_compare as compare;
pub use uvpu_core as vpu;
pub use uvpu_fault as fault;
pub use uvpu_hw_model as hw_model;
pub use uvpu_math as math;
pub use uvpu_metrics as metrics;
pub use uvpu_par as par;
