//! A minimal, dependency-free, API-compatible subset of `criterion`.
//!
//! The offline build environment cannot fetch the real crate, so this
//! stand-in implements the benchmark-harness surface the workspace's
//! `benches/` use: [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`black_box`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain wall-clock median over a
//! fixed sample count — good enough for relative comparisons, with none
//! of the real crate's statistics.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark's closure and measures it.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            measured: Vec::new(),
        }
    }

    /// Times `routine`, recording `samples` wall-clock samples after one
    /// warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.measured.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.measured.is_empty() {
            return Duration::ZERO;
        }
        self.measured.sort_unstable();
        self.measured[self.measured.len() / 2]
    }
}

fn report(name: &str, median: Duration) {
    println!("bench  {name:<48} median {median:>12.3?}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Benches a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.median());
    }

    /// Benches a closure that receives `input` under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.median());
    }

    /// Ends the group (no-op; symmetry with the real API).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Benches a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, b.median());
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_without_panicking() {
        let mut c = Criterion::default();
        let mut acc = 0u64;
        c.bench_function("smoke", |b| b.iter(|| acc = acc.wrapping_add(1)));
        assert!(acc > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1)));
        group.finish();
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("cg", 8).to_string(), "cg/8");
    }
}
