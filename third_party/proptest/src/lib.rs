//! A minimal, dependency-free, API-compatible subset of `proptest`.
//!
//! The offline build environment cannot fetch the real crate, so this
//! vendored stand-in implements the surface the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`,
//! [`any`], integer-range strategies, and [`collection::vec`].
//!
//! Semantics: each generated `#[test]` runs `ProptestConfig::cases`
//! deterministic cases (seeded from the test name, so failures
//! reproduce). There is no shrinking — a failing case reports its inputs
//! via `Debug` instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A failed property assertion (returned by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds from a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic source driving strategies in a test run.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the test name so each property replays identically.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(seed))
    }

    /// The next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from a range.
    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }
}

/// A value generator (subset of the real `Strategy`: sampling only, no
/// shrink tree).
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The "any value of `T`" strategy.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A constant strategy (always yields a clone of its value).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for a fixed-length `Vec` of draws from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// A `Vec` of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::` namespace alias, as re-exported by the real prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! The usual star import surface.
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body (returns a
/// [`TestCaseError`] instead of panicking so inputs can be reported).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    { ($cfg:expr) } => {};
    { ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}  ")),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case + 1, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(x in 3u32..=9, y in 10u64..20) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((10..20).contains(&y));
        }

        #[test]
        fn vec_strategy_yields_exact_len(v in prop::collection::vec(any::<u64>(), 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<bool>(), s in any::<u64>()) {
            prop_assert_ne!(u64::from(x).wrapping_add(s), s.wrapping_add(2));
        }
    }

    #[test]
    fn deterministic_rng_replays() {
        let mut a = TestRng::deterministic("abc");
        let mut b = TestRng::deterministic("abc");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    // The macro expands an inner #[test] fn here; it is invoked by hand.
    #[allow(unnameable_test_items)]
    fn failure_reports_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in any::<u64>()) {
                prop_assert!(x != x, "x was {}", x);
            }
        }
        always_fails();
    }
}
