//! A minimal, dependency-free, API-compatible subset of the `rand` crate.
//!
//! The uvpu build environment is fully offline, so the workspace vendors
//! the handful of `rand 0.8` APIs it actually uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`], uniform range
//! sampling and Bernoulli draws. The generator is xoshiro256**, seeded
//! through SplitMix64 exactly like `rand`'s `seed_from_u64`, so streams
//! are deterministic per seed (though not bit-identical to upstream
//! `rand`'s ChaCha-based `StdRng` — no caller relies on the exact
//! stream, only on determinism).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range (the subset of
/// `rand::distributions::uniform` the workspace uses).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sample range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Unbiased widening-multiply mapping (Lemire 2019): accept
                // when the low product word clears the bias threshold.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let m = rng.next_u64() as u128 * span as u128;
                    if m as u64 >= threshold {
                        return ((low as $wide).wrapping_add((m >> 64) as u64 as $wide)) as $t;
                    }
                }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sample range");
                if low == Self::MIN && high == Self::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_range(rng, low, high.wrapping_add(1))
            }
        }
    )+};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sample range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                Self::sample_range(rng, low, high)
            }
        }
    )+};
}

impl_sample_uniform_float!(f32, f64);

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Builds from a fixed entropy-free seed (deterministic environment).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x005e_ed0f_f1ce)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (Blackman–Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[8 * i..8 * i + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// A fresh generator with a fixed seed (there is no OS entropy in the
/// offline environment; determinism is a feature for a simulator).
#[must_use]
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x7472_6561_645f_726e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(0..97);
            assert!(x < 97);
            let y = rng.gen_range(-1i8..=1);
            assert!((-1..=1).contains(&y));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let z = rng.gen_range(2..8u64);
            assert!((2..8).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn full_range_inclusive_works() {
        let mut rng = StdRng::seed_from_u64(3);
        // Must not overflow on the full u64 domain.
        let _ = rng.gen_range(0..=u64::MAX);
    }
}
