# Shared helpers for the bench_*.sh gate scripts. POSIX sh; source it
# after `cd`-ing to the repo root:
#
#     . scripts/bench_lib.sh
#
# Provides:
#   bench_build BIN
#       Release-build one uvpu-bench binary, offline.
#   bench_tmpdir
#       Create a temp directory in $tmpdir, removed on exit.
#   bench_sweep NAME "OUTFLAG..." "THREAD..." CMD...
#       Determinism sweep: run CMD once per thread count with
#       `--threads T` plus one fresh temp file per OUTFLAG (e.g.
#       "--out", or "--out --flame" for binaries with two artifacts),
#       then require every produced file to be byte-identical across
#       the sweep (`cmp`). Prints the diff and exits 1 on divergence.
#       Requires bench_tmpdir to have run first.
#   bench_gate NAME OUT BASELINE CMD...
#       Regression gate: run CMD with `--out OUT --check BASELINE`
#       (advisory included) and report. OUT may be "-" to skip the
#       snapshot write. The binary itself prints the drift hunks and
#       exits 1 on mismatch.
#
# Conventions the helpers assume (all bench binaries follow them):
# `--threads N` pins the worker pool, `--out PATH` writes the snapshot
# ("-" skips), `--check PATH` diffs the deterministic core against a
# committed baseline and exits 1 with ±3-line context hunks on drift.
#
# Note for check_baselines.sh: every gate script must keep naming its
# BENCH_*baseline*.json files literally (the orphan check greps
# scripts/*.sh for the literal filename) — so baseline selection stays
# in each script, not here.

bench_build() {
    cargo build --release --offline -p uvpu-bench --bin "$1"
}

bench_tmpdir() {
    tmpdir=$(mktemp -d)
    trap 'rm -rf "$tmpdir"' EXIT
}

bench_sweep() {
    _name=$1
    _outflags=$2
    _threads=$3
    shift 3
    _first=""
    for _t in $_threads; do
        [ -z "$_first" ] && _first=$_t
        _outargs=""
        _i=0
        for _flag in $_outflags; do
            _i=$((_i + 1))
            _outargs="$_outargs $_flag $tmpdir/sweep_${_i}_t$_t"
        done
        # shellcheck disable=SC2086 # _outargs is intentionally word-split
        "$@" --threads "$_t" $_outargs >/dev/null
    done
    _i=0
    for _flag in $_outflags; do
        _i=$((_i + 1))
        for _t in $_threads; do
            [ "$_t" = "$_first" ] && continue
            if ! cmp -s "$tmpdir/sweep_${_i}_t$_first" "$tmpdir/sweep_${_i}_t$_t"; then
                echo "$_name: FAIL — $_flag output differs between $_first and $_t threads:" >&2
                diff "$tmpdir/sweep_${_i}_t$_first" "$tmpdir/sweep_${_i}_t$_t" >&2 || true
                exit 1
            fi
        done
    done
    echo "$_name: outputs byte-identical at threads $_threads"
}

bench_gate() {
    _name=$1
    _out=$2
    _baseline=$3
    shift 3
    "$@" --out "$_out" --check "$_baseline"
    if [ "$_out" = "-" ]; then
        echo "$_name: gate vs $_baseline passed"
    else
        echo "$_name: wrote $_out (advisory included); gate vs $_baseline passed"
    fi
}
