#!/usr/bin/env sh
# Host-parallelism benchmark: times the data-parallel CKKS hot path
# (N = 2^13, 5 RNS limbs, multiply + relinearize + rescale) at 1 and 4
# worker threads, checks that the result digests and traced cycle totals
# are bit-identical, and writes BENCH_par.json.
#
# The speedup is whatever the host actually delivers: on a single-core
# container it is ~1.0x by physics (the pool still runs, interleaved on
# one core); on a >= 4-core host the RNS/limb fan-out is expected to
# reach >= 2x. host_cores is recorded so the number can be judged.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline -p uvpu-bench --bin trace_report

run() {
    ./target/release/trace_report --threads "$1" --bench
}

line1=$(run 1)
line4=$(run 4)
echo "$line1"
echo "$line4"

field() {
    printf '%s\n' "$1" | tr ' ' '\n' | sed -n "s/^$2=//p"
}

d1=$(field "$line1" digest)
d4=$(field "$line4" digest)
c1=$(field "$line1" cycles)
c4=$(field "$line4" cycles)
w1=$(field "$line1" wall_ms)
w4=$(field "$line4" wall_ms)
n=$(field "$line1" n)
limbs=$(field "$line1" limbs)

if [ "$d1" != "$d4" ]; then
    echo "bench_par: FAIL — digests differ across thread counts ($d1 vs $d4)" >&2
    exit 1
fi
if [ "$c1" != "$c4" ]; then
    echo "bench_par: FAIL — cycle totals differ across thread counts ($c1 vs $c4)" >&2
    exit 1
fi

cores=$(nproc 2>/dev/null || echo 1)
speedup=$(awk "BEGIN { printf \"%.2f\", $w1 / $w4 }")

cat > BENCH_par.json <<EOF
{
  "workload": "ckks_mul_rescale",
  "n": $n,
  "limbs": $limbs,
  "host_cores": $cores,
  "digest": "$d1",
  "cycles": $c1,
  "runs": [
    { "threads": 1, "wall_ms": $w1 },
    { "threads": 4, "wall_ms": $w4 }
  ],
  "speedup_4_over_1": $speedup,
  "bit_identical": true,
  "cycles_thread_invariant": true
}
EOF

echo "bench_par: digests and cycle totals bit-identical across thread counts"
echo "bench_par: ${w1} ms @ 1 thread, ${w4} ms @ 4 threads (${speedup}x on ${cores} core(s))"
echo "bench_par: wrote BENCH_par.json"
