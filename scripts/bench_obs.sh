#!/usr/bin/env sh
# Observability (call-tree profiling) report + regression gate.
#
# 1. Determinism sweep: the reference workload is profiled through the
#    hierarchical TreeProfilerSink at 1, 2, 4, and 7 worker threads with
#    `--no-advisory`; both the uvpu-obs/v1 snapshot AND the
#    collapsed-stack flamegraph text must be byte-identical (`cmp`) —
#    the call tree, latency percentiles, and per-path energy may not
#    depend on UVPU_THREADS.
# 2. Artifacts: writes BENCH_obs.json (with the advisory wall-clock /
#    event-count section) plus the flamegraph text and the
#    Perfetto-compatible tree summary for humans and dashboards.
# 3. Gate: diffs the deterministic core against the committed baseline
#    (BENCH_obs_baseline.json / BENCH_obs_baseline_smoke.json). Tree
#    shape, self/inclusive cycles, per-path pJ, latency percentiles,
#    and the flamegraph digest gate exactly; wall-clock and raw sink
#    event counts are advisory only and never gate. The obs_report
#    binary additionally asserts — before rendering — that summing the
#    tree's self cycles and per-component counts reproduces the flat
#    ProfilerSink bins bit-exactly.
#
# Usage: scripts/bench_obs.sh [--smoke]
#   --smoke runs the reduced-size variant (the CI fast path).
#
# To regenerate a baseline after an intentional instrumentation change
# (bump the uvpu-obs schema first if the core format changed):
#   cargo run --release -p uvpu-bench --bin obs_report -- \
#       [--smoke] --no-advisory --out BENCH_obs_baseline[_smoke].json
set -eu
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

variant_flag=""
baseline=BENCH_obs_baseline.json
out=BENCH_obs.json
flame=BENCH_obs_flame.txt
perfetto=BENCH_obs_perfetto.json
for arg in "$@"; do
    case "$arg" in
    --smoke)
        variant_flag="--smoke"
        baseline=BENCH_obs_baseline_smoke.json
        out=BENCH_obs_smoke.json
        flame=BENCH_obs_flame_smoke.txt
        perfetto=BENCH_obs_perfetto_smoke.json
        ;;
    *)
        echo "bench_obs: unknown argument $arg" >&2
        exit 2
        ;;
    esac
done

bench_build obs_report
bench_tmpdir

# shellcheck disable=SC2086 # variant_flag is intentionally word-split
bench_sweep bench_obs "--out --flame" "1 2 4 7" \
    ./target/release/obs_report $variant_flag --no-advisory
# shellcheck disable=SC2086
bench_gate bench_obs "$out" "$baseline" \
    ./target/release/obs_report $variant_flag --flame "$flame" --perfetto "$perfetto"
echo "bench_obs: wrote $flame and $perfetto"
