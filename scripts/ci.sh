#!/usr/bin/env sh
# The full local CI gate, exactly as a checkout with no network runs it:
# release build, the whole test suite, formatting, and zero-warning lints.
# The test suite runs twice — single-threaded and with a 4-worker host
# pool — because every result is required to be bit-identical regardless
# of the UVPU_THREADS setting.
set -eu
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
UVPU_THREADS=1 cargo test --workspace -q --offline
UVPU_THREADS=4 cargo test --workspace -q --offline
cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
# Metrics determinism sweep + snapshot regression gate (smoke variant):
# fails on any drift in cycle totals, utilization, or energy attribution
# against the committed baseline.
sh scripts/bench_metrics.sh --smoke
# Fault-campaign determinism sweep + coverage regression gate (smoke
# variant): fails if injection, detection, or recovery behavior drifts
# from the committed baseline, or differs across UVPU_THREADS.
sh scripts/bench_fault.sh --smoke
# Kernel digest + allocations-per-op regression gate (smoke variant):
# fails if any fused lazy-reduction kernel's output drifts or a
# steady-state heap allocation sneaks back into a pooled hot path.
# Includes one large-ring case (N=2^14) where the four-step transform
# must produce a digest byte-identical to the direct stage loop.
sh scripts/bench_kernels.sh --smoke
# Cross-accelerator comparison determinism sweep + report regression
# gate (smoke variant): fails if any backend's attributed cycles,
# component energy, model area/power, or ratio vs Ours drifts from the
# committed baseline, or differs across UVPU_THREADS.
sh scripts/bench_compare.sh --smoke
# Observability determinism sweep + call-tree snapshot regression gate
# (smoke variant): fails if the hierarchical profile — tree shape,
# self/inclusive cycles, per-path energy, latency percentiles, or the
# flamegraph digest — drifts from the committed baseline, or differs
# across UVPU_THREADS (swept at 1/2/4/7). The binary also asserts the
# tree sums reproduce the flat profiler bins bit-exactly.
sh scripts/bench_obs.sh --smoke
# Every committed BENCH_*baseline*.json must be read by some gate above.
sh scripts/check_baselines.sh
echo "ci: all green"
