#!/usr/bin/env sh
# The full local CI gate, exactly as a checkout with no network runs it:
# release build, the whole test suite, formatting, and zero-warning lints.
set -eu
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test --workspace -q --offline
cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
echo "ci: all green"
