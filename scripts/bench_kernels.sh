#!/usr/bin/env sh
# Kernel benchmark + regression gate.
#
# Runs `bench_kernels`, which measures the fused lazy-reduction kernels
# in steady state (output digests + heap allocations per op) and writes
# the versioned BENCH_kernels.json snapshot. The deterministic core
# (digests and allocs/op, schema uvpu-kernels/v1) is gated exactly
# against the committed baseline (BENCH_kernels_baseline.json /
# BENCH_kernels_baseline_smoke.json); ns/op timing and the pool
# hit/miss counters are advisory only and never gate.
#
# Large rings (N = 2^14 in smoke; 2^14/2^16/2^17 in full) are measured
# through both the four-step dispatch path and the direct stage loop;
# the binary asserts the two digests are byte-identical at every size
# before the gate even runs.
#
# Usage: scripts/bench_kernels.sh [--smoke]
#   --smoke runs the reduced-size variant (the CI fast path).
#
# To regenerate a baseline after an intentional kernel change:
#   cargo run --release -p uvpu-bench --bin bench_kernels -- \
#       [--smoke] --no-advisory --out BENCH_kernels_baseline[_smoke].json
set -eu
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

variant_flag=""
baseline=BENCH_kernels_baseline.json
out=BENCH_kernels.json
for arg in "$@"; do
    case "$arg" in
    --smoke)
        variant_flag="--smoke"
        baseline=BENCH_kernels_baseline_smoke.json
        out=BENCH_kernels_smoke.json
        ;;
    *)
        echo "bench_kernels: unknown argument $arg" >&2
        exit 2
        ;;
    esac
done

bench_build bench_kernels
# shellcheck disable=SC2086 # variant_flag is intentionally word-split
bench_gate bench_kernels "$out" "$baseline" \
    ./target/release/bench_kernels $variant_flag
