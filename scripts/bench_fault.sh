#!/usr/bin/env sh
# Fault-injection campaign + regression gate.
#
# 1. Determinism sweep: the fixed-seed smoke campaign runs at 1, 2, and
#    4 worker threads; the JSON coverage reports must be byte-identical
#    (`cmp`) — fault decisions, detection counts, and recovery behavior
#    may not depend on UVPU_THREADS.
# 2. Gate: the report is diffed against the committed baseline
#    (BENCH_fault_baseline_smoke.json). Any drift in injected/detected/
#    recovered/silent counts per campaign cell gates exactly.
#
# Usage: scripts/bench_fault.sh [--smoke]
#   --smoke runs the reduced grid (the CI fast path and the only gated
#   variant); without it the full grid also runs, ungated, and writes
#   BENCH_fault.json for inspection.
#
# To regenerate the baseline after an intentional change to the fault
# model, detectors, or recovery policy:
#   cargo run --release -p uvpu-bench --bin fault_campaign -- \
#       --smoke --out BENCH_fault_baseline_smoke.json
set -eu
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

smoke_only=0
for arg in "$@"; do
    case "$arg" in
    --smoke) smoke_only=1 ;;
    *)
        echo "bench_fault: unknown argument $arg" >&2
        exit 2
        ;;
    esac
done

bench_build fault_campaign
bench_tmpdir

bench_sweep bench_fault "--out" "1 2 4" \
    ./target/release/fault_campaign --smoke
bench_gate bench_fault - BENCH_fault_baseline_smoke.json \
    ./target/release/fault_campaign --smoke

if [ "$smoke_only" -eq 0 ]; then
    ./target/release/fault_campaign --out BENCH_fault.json
    echo "bench_fault: wrote BENCH_fault.json (full grid, ungated)"
fi
