#!/usr/bin/env sh
# Cross-accelerator comparison report + regression gate.
#
# 1. Determinism sweep: the reference workload is attributed to all seven
#    backend cost models at 1, 2, and 4 worker threads with
#    `--no-advisory`; the report files must be byte-identical (`cmp`) —
#    per-backend cycles, energy bins, and ratios may not depend on
#    UVPU_THREADS.
# 2. Report: writes BENCH_compare.json (with the advisory wall-clock /
#    thread-count section) for humans and dashboards.
# 3. Gate: diffs the deterministic core against the committed baseline
#    (BENCH_compare_baseline.json / BENCH_compare_baseline_smoke.json).
#    Per-backend cycles, component energy, model area/power, and the
#    ratios-vs-Ours table gate exactly; wall-clock is advisory only and
#    never gates.
#
# Usage: scripts/bench_compare.sh [--smoke]
#   --smoke runs the reduced-size variant (the CI fast path).
#
# To regenerate a baseline after an intentional cost-model change (bump
# the uvpu-compare schema first if the core format changed):
#   cargo run --release -p uvpu-bench --bin compare_report -- \
#       [--smoke] --no-advisory --out BENCH_compare_baseline[_smoke].json
set -eu
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

variant_flag=""
baseline=BENCH_compare_baseline.json
out=BENCH_compare.json
for arg in "$@"; do
    case "$arg" in
    --smoke)
        variant_flag="--smoke"
        baseline=BENCH_compare_baseline_smoke.json
        out=BENCH_compare_smoke.json
        ;;
    *)
        echo "bench_compare: unknown argument $arg" >&2
        exit 2
        ;;
    esac
done

bench_build compare_report
bench_tmpdir

# shellcheck disable=SC2086 # variant_flag is intentionally word-split
bench_sweep bench_compare "--out" "1 2 4" \
    ./target/release/compare_report $variant_flag --no-advisory
# shellcheck disable=SC2086
bench_gate bench_compare "$out" "$baseline" \
    ./target/release/compare_report $variant_flag
