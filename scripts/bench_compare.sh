#!/usr/bin/env sh
# Cross-accelerator comparison report + regression gate.
#
# 1. Determinism sweep: the reference workload is attributed to all seven
#    backend cost models at 1, 2, and 4 worker threads with
#    `--no-advisory`; the report files must be byte-identical (`cmp`) —
#    per-backend cycles, energy bins, and ratios may not depend on
#    UVPU_THREADS.
# 2. Report: writes BENCH_compare.json (with the advisory wall-clock /
#    thread-count section) for humans and dashboards.
# 3. Gate: diffs the deterministic core against the committed baseline
#    (BENCH_compare_baseline.json / BENCH_compare_baseline_smoke.json).
#    Per-backend cycles, component energy, model area/power, and the
#    ratios-vs-Ours table gate exactly; wall-clock is advisory only and
#    never gates.
#
# Usage: scripts/bench_compare.sh [--smoke]
#   --smoke runs the reduced-size variant (the CI fast path).
#
# To regenerate a baseline after an intentional cost-model change (bump
# the uvpu-compare schema first if the core format changed):
#   cargo run --release -p uvpu-bench --bin compare_report -- \
#       [--smoke] --no-advisory --out BENCH_compare_baseline[_smoke].json
set -eu
cd "$(dirname "$0")/.."

variant=full
variant_flag=""
baseline=BENCH_compare_baseline.json
out=BENCH_compare.json
for arg in "$@"; do
    case "$arg" in
    --smoke)
        variant=smoke
        variant_flag="--smoke"
        baseline=BENCH_compare_baseline_smoke.json
        out=BENCH_compare_smoke.json
        ;;
    *)
        echo "bench_compare: unknown argument $arg" >&2
        exit 2
        ;;
    esac
done

cargo build --release --offline -p uvpu-bench --bin compare_report

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

for t in 1 2 4; do
    # shellcheck disable=SC2086 # variant_flag is intentionally word-split
    ./target/release/compare_report --threads "$t" $variant_flag \
        --no-advisory --out "$tmpdir/report_t$t.json" >/dev/null
done
for t in 2 4; do
    if ! cmp -s "$tmpdir/report_t1.json" "$tmpdir/report_t$t.json"; then
        echo "bench_compare: FAIL — report differs between 1 and $t threads:" >&2
        diff "$tmpdir/report_t1.json" "$tmpdir/report_t$t.json" >&2 || true
        exit 1
    fi
done
echo "bench_compare: reports byte-identical at 1/2/4 threads ($variant)"

# shellcheck disable=SC2086
./target/release/compare_report $variant_flag --out "$out" --check "$baseline"
echo "bench_compare: wrote $out (advisory included); gate vs $baseline passed"
