#!/usr/bin/env sh
# Orphan-baseline check: every committed BENCH_*baseline*.json in the
# repository root must be named literally by at least one gate script in
# scripts/ — a baseline no gate reads is dead weight that silently stops
# pinning anything. Run from anywhere; exits 1 listing any orphans.
set -eu
cd "$(dirname "$0")/.."

status=0
found=0
for baseline in BENCH_*baseline*.json; do
    # No baselines at all: the glob stays unexpanded.
    [ -e "$baseline" ] || continue
    found=$((found + 1))
    referenced=0
    for script in scripts/*.sh; do
        [ "$script" = "scripts/check_baselines.sh" ] && continue
        # The shared helper library is not a gate; a baseline named only
        # there would not actually be read by anything.
        [ "$script" = "scripts/bench_lib.sh" ] && continue
        if grep -q "$baseline" "$script"; then
            referenced=1
            break
        fi
    done
    if [ "$referenced" -eq 0 ]; then
        echo "check_baselines: ORPHAN — $baseline is not referenced by any gate in scripts/" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_baselines: all $found committed baselines are wired into a gate"
fi
exit "$status"
