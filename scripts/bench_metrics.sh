#!/usr/bin/env sh
# Metrics snapshot benchmark + regression gate.
#
# 1. Determinism sweep: the reference workload is profiled at 1, 2, and 4
#    worker threads with `--no-advisory`; the snapshot files must be
#    byte-identical (`cmp`) — utilization and energy attribution may not
#    depend on UVPU_THREADS.
# 2. Snapshot: writes BENCH_metrics.json (with the advisory wall-clock /
#    thread-count section) for humans and dashboards.
# 3. Gate: diffs the deterministic core against the committed baseline
#    (BENCH_metrics_baseline.json / BENCH_metrics_baseline_smoke.json).
#    Cycle totals, per-phase utilization, and the energy breakdown gate
#    exactly; wall-clock is advisory only and never gates.
#
# Usage: scripts/bench_metrics.sh [--smoke]
#   --smoke runs the reduced-size variant (the CI fast path).
#
# To regenerate a baseline after an intentional cost-model change:
#   cargo run --release -p uvpu-bench --bin metrics_report -- \
#       [--smoke] --no-advisory --out BENCH_metrics_baseline[_smoke].json
set -eu
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

variant_flag=""
baseline=BENCH_metrics_baseline.json
out=BENCH_metrics.json
for arg in "$@"; do
    case "$arg" in
    --smoke)
        variant_flag="--smoke"
        baseline=BENCH_metrics_baseline_smoke.json
        out=BENCH_metrics_smoke.json
        ;;
    *)
        echo "bench_metrics: unknown argument $arg" >&2
        exit 2
        ;;
    esac
done

bench_build metrics_report
bench_tmpdir

# shellcheck disable=SC2086 # variant_flag is intentionally word-split
bench_sweep bench_metrics "--out" "1 2 4" \
    ./target/release/metrics_report $variant_flag --no-advisory
# shellcheck disable=SC2086
bench_gate bench_metrics "$out" "$baseline" \
    ./target/release/metrics_report $variant_flag
