#!/usr/bin/env sh
# Metrics snapshot benchmark + regression gate.
#
# 1. Determinism sweep: the reference workload is profiled at 1, 2, and 4
#    worker threads with `--no-advisory`; the snapshot files must be
#    byte-identical (`cmp`) — utilization and energy attribution may not
#    depend on UVPU_THREADS.
# 2. Snapshot: writes BENCH_metrics.json (with the advisory wall-clock /
#    thread-count section) for humans and dashboards.
# 3. Gate: diffs the deterministic core against the committed baseline
#    (BENCH_metrics_baseline.json / BENCH_metrics_baseline_smoke.json).
#    Cycle totals, per-phase utilization, and the energy breakdown gate
#    exactly; wall-clock is advisory only and never gates.
#
# Usage: scripts/bench_metrics.sh [--smoke]
#   --smoke runs the reduced-size variant (the CI fast path).
#
# To regenerate a baseline after an intentional cost-model change:
#   cargo run --release -p uvpu-bench --bin metrics_report -- \
#       [--smoke] --no-advisory --out BENCH_metrics_baseline[_smoke].json
set -eu
cd "$(dirname "$0")/.."

variant=full
variant_flag=""
baseline=BENCH_metrics_baseline.json
out=BENCH_metrics.json
for arg in "$@"; do
    case "$arg" in
    --smoke)
        variant=smoke
        variant_flag="--smoke"
        baseline=BENCH_metrics_baseline_smoke.json
        out=BENCH_metrics_smoke.json
        ;;
    *)
        echo "bench_metrics: unknown argument $arg" >&2
        exit 2
        ;;
    esac
done

cargo build --release --offline -p uvpu-bench --bin metrics_report

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

for t in 1 2 4; do
    # shellcheck disable=SC2086 # variant_flag is intentionally word-split
    ./target/release/metrics_report --threads "$t" $variant_flag \
        --no-advisory --out "$tmpdir/snap_t$t.json" >/dev/null
done
for t in 2 4; do
    if ! cmp -s "$tmpdir/snap_t1.json" "$tmpdir/snap_t$t.json"; then
        echo "bench_metrics: FAIL — snapshot differs between 1 and $t threads:" >&2
        diff "$tmpdir/snap_t1.json" "$tmpdir/snap_t$t.json" >&2 || true
        exit 1
    fi
done
echo "bench_metrics: snapshots byte-identical at 1/2/4 threads ($variant)"

# shellcheck disable=SC2086
./target/release/metrics_report $variant_flag --out "$out" --check "$baseline"
echo "bench_metrics: wrote $out (advisory included); gate vs $baseline passed"
