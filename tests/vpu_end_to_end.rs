//! End-to-end integration: the VPU pipelines against the golden models,
//! across crate boundaries.

use uvpu::math::modular::Modulus;
use uvpu::math::ntt::{naive_cyclic_dft, naive_negacyclic_mul, NttTable};
use uvpu::math::primes::ntt_prime;
use uvpu::vpu::auto_map::AutomorphismMapping;
use uvpu::vpu::ntt_map::NttPlan;
use uvpu::vpu::vpu::Vpu;

fn modulus(n: usize) -> Modulus {
    Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus")
}

#[test]
fn vpu_cyclic_ntt_equals_naive_dft_across_sizes() {
    for (n, m) in [(256usize, 16usize), (512, 64), (1024, 64), (4096, 64)] {
        let q = modulus(n);
        let plan = NttPlan::new(q, n, m).expect("plan");
        let mut vpu = Vpu::new(m, q, 8).expect("vpu");
        let data: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 17 + 3)).collect();
        let got = plan.execute_forward(&mut vpu, &data).expect("forward");
        let expect = naive_cyclic_dft(&data, plan.omega(), &q);
        assert_eq!(got.output, expect, "n={n} m={m}");
    }
}

#[test]
fn vpu_polynomial_multiplication_pipeline() {
    // Complete FHE-style polynomial product, entirely on the VPU:
    // forward NTTs -> pointwise product in lanes -> inverse NTT.
    let (n, m) = (512usize, 64usize);
    let q = modulus(n);
    let plan = NttPlan::new(q, n, m).expect("plan");
    let mut vpu = Vpu::new(m, q, 8).expect("vpu");

    let a: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i + 1)).collect();
    let b: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(2 * i + 5)).collect();
    let fa = plan
        .execute_forward_negacyclic(&mut vpu, &a)
        .expect("fa")
        .output;
    let fb = plan
        .execute_forward_negacyclic(&mut vpu, &b)
        .expect("fb")
        .output;

    // Pointwise product through the lanes, column by column.
    let mut prod = vec![0u64; n];
    for c in 0..n / m {
        vpu.load(0, &fa[c * m..(c + 1) * m]).expect("load");
        vpu.load(1, &fb[c * m..(c + 1) * m]).expect("load");
        vpu.ewise_mul(2, 0, 1).expect("mul");
        prod[c * m..(c + 1) * m].copy_from_slice(&vpu.store(2).expect("store"));
    }
    let got = plan
        .execute_inverse_negacyclic(&mut vpu, &prod)
        .expect("inv")
        .output;
    assert_eq!(got, naive_negacyclic_mul(&a, &b, &q));
}

#[test]
fn vpu_forward_matches_golden_table_as_multiset() {
    // The golden-model NttTable and the VPU pipeline evaluate at the same
    // points in different orders.
    let (n, m) = (1024usize, 64usize);
    let q = modulus(n);
    let table = NttTable::new(q, n).expect("table");
    let plan = NttPlan::new(q, n, m).expect("plan");
    let mut vpu = Vpu::new(m, q, 8).expect("vpu");
    let data: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 7 + 11)).collect();

    let vpu_out = plan
        .execute_forward_negacyclic(&mut vpu, &data)
        .expect("vpu ntt")
        .output;
    let mut table_out = data;
    table.forward_inplace(&mut table_out);

    let mut x = vpu_out;
    let mut y = table_out;
    x.sort_unstable();
    y.sort_unstable();
    assert_eq!(x, y);
}

#[test]
fn automorphism_then_inverse_is_identity_on_vpu() {
    let (n, m) = (4096usize, 64usize);
    let q = modulus(n);
    let mut vpu = Vpu::new(m, q, 8).expect("vpu");
    let data: Vec<u64> = (0..n as u64).collect();
    for g in [5u64, 25, 4095] {
        let fwd = AutomorphismMapping::new(n, m, g, 0).expect("plan");
        let g_inv = uvpu::math::util::mod_inverse(g, n as u64).expect("odd g");
        let bwd = AutomorphismMapping::new(n, m, g_inv, 0).expect("plan");
        let mid = fwd.execute(&mut vpu, &data).expect("fwd").output;
        let back = bwd.execute(&mut vpu, &mid).expect("bwd").output;
        assert_eq!(back, data, "g={g}");
    }
}

#[test]
fn every_operation_reports_consistent_cycle_stats() {
    let (n, m) = (1024usize, 64usize);
    let q = modulus(n);
    let plan = NttPlan::new(q, n, m).expect("plan");
    let mut vpu = Vpu::new(m, q, 8).expect("vpu");
    let data: Vec<u64> = (0..n as u64).collect();

    vpu.reset_stats();
    let ntt = plan
        .execute_forward_negacyclic(&mut vpu, &data)
        .expect("run");
    // The per-execution delta must equal the VPU's global accumulation.
    assert_eq!(*vpu.stats(), ntt.stats);
    // Ideal beats are a lower bound on compute beats.
    assert!(ntt.stats.compute() >= plan.ideal_compute_beats(true) - 1);
}
