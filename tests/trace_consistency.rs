//! Property tests for the trace layer: the event stream is a complete,
//! exact account of the cycle counters, and attaching (or not attaching)
//! a sink never changes what the machine computes.

use proptest::prelude::*;
use uvpu::math::modular::Modulus;
use uvpu::math::primes::ntt_prime;
use uvpu::vpu::trace::{CounterSink, NopSink, RingBufferSink, TraceEvent, TraceSink};
use uvpu::vpu::vpu::Vpu;

const M: usize = 8;
const DEPTH: usize = 8;
const OPS: usize = 48;

/// Replays the same random op sequence on any sink-carrying VPU.
fn run_ops<S: TraceSink>(vpu: &mut Vpu<S>, codes: &[u8], seed: u64) {
    let q = vpu.modulus();
    let mut s = seed;
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s
    };
    // Seed every register so ops always have data to chew on.
    for addr in 0..DEPTH {
        let data: Vec<u64> = (0..M).map(|_| q.reduce_u64(next())).collect();
        vpu.load(addr, &data).unwrap();
    }
    for &code in codes {
        let dst = next() as usize % DEPTH;
        let a = next() as usize % DEPTH;
        let b = next() as usize % DEPTH;
        match code % 9 {
            0 => vpu.ewise_add(dst, a, b).unwrap(),
            1 => vpu.ewise_sub(dst, a, b).unwrap(),
            2 => vpu.ewise_mul(dst, a, b).unwrap(),
            3 => vpu.ewise_mac(dst, a, b).unwrap(),
            4 => {
                let c: Vec<u64> = (0..M).map(|_| q.reduce_u64(next())).collect();
                vpu.ewise_mul_const(dst, a, &c).unwrap();
            }
            5 => vpu.rotate(dst, a, next() % M as u64).unwrap(),
            6 => {
                // Odd automorphism index, merged with a random shift.
                let g = (next() % M as u64) | 1;
                vpu.automorphism_pass(dst, a, g, next() % M as u64).unwrap();
            }
            7 => {
                let scratch = (a + 1) % DEPTH;
                if dst != scratch {
                    vpu.reduce_sum(dst, a, scratch).unwrap();
                }
            }
            _ => vpu.charge_network_moves(next() % 5),
        }
    }
}

fn modulus() -> Modulus {
    Modulus::new(ntt_prime(30, 1 << 10).unwrap()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The sum of cycles carried by traced beat events is exactly
    /// `CycleStats::total()` — every charged cycle appears in the event
    /// stream once, and nothing else does.
    #[test]
    fn traced_event_cycles_sum_to_cycle_stats(
        codes in prop::collection::vec(any::<u8>(), OPS),
        len in 1usize..OPS,
        seed in any::<u64>(),
    ) {
        let q = modulus();
        let mut vpu = Vpu::with_sink(
            M,
            q,
            DEPTH,
            (CounterSink::new(), RingBufferSink::new(1 << 14)),
        )
        .unwrap();
        run_ops(&mut vpu, &codes[..len], seed);

        let stats = *vpu.stats();
        let (counter, ring) = vpu.into_sink();

        // Counter registry: per-field bit-exact reconstruction.
        prop_assert_eq!(*counter.running(), stats);

        // Raw event stream: beat counts sum to the total.
        prop_assert_eq!(ring.dropped(), 0);
        let mut summed = 0u64;
        let mut expected_next = 0u64;
        for event in ring.events() {
            if let TraceEvent::Beat { cycle, count, .. } = event {
                // Beats are contiguous: each batch starts where the
                // previous one ended.
                prop_assert_eq!(*cycle, expected_next);
                expected_next = cycle + count;
                summed += count;
            }
        }
        prop_assert_eq!(summed, stats.total());
    }

    /// Tracing is purely observational: the same op sequence on a
    /// `NopSink` VPU and on a fully-instrumented VPU leaves bit-identical
    /// register contents and cycle counters.
    #[test]
    fn nop_sink_runs_bit_identical_to_traced(
        codes in prop::collection::vec(any::<u8>(), OPS),
        len in 1usize..OPS,
        seed in any::<u64>(),
    ) {
        let q = modulus();
        let mut plain = Vpu::with_sink(M, q, DEPTH, NopSink).unwrap();
        let mut traced = Vpu::with_sink(
            M,
            q,
            DEPTH,
            (CounterSink::new(), RingBufferSink::new(1 << 14)),
        )
        .unwrap();
        run_ops(&mut plain, &codes[..len], seed);
        run_ops(&mut traced, &codes[..len], seed);

        prop_assert_eq!(plain.stats(), traced.stats());
        for addr in 0..DEPTH {
            prop_assert_eq!(plain.peek(addr).unwrap(), traced.peek(addr).unwrap());
        }
    }
}
