//! Determinism contract of the metrics layer: the `BENCH_metrics.json`
//! snapshot core is a pure function of the workload — byte-identical
//! across repeated runs and across every `UVPU_THREADS` setting. This is
//! what lets CI gate on the snapshot with a literal byte comparison.
//!
//! The workload under test is the library function behind the
//! `metrics_report` binary, so these tests exercise exactly what the CI
//! gate measures.

use uvpu_bench::metrics_workload;
use uvpu_metrics::snapshot;

/// Runs the smoke workload under a pinned worker count.
/// `with_threads` serializes the runs internally, which also keeps the
/// process-global trace sink installs from interleaving.
fn snapshot_at(threads: usize) -> String {
    uvpu::par::with_threads(threads, || metrics_workload::run(true).core_json)
}

#[test]
fn snapshot_is_bit_identical_across_thread_counts() {
    let reference = snapshot_at(1);
    for threads in [2usize, 4, 7] {
        let other = snapshot_at(threads);
        assert_eq!(
            reference, other,
            "snapshot core must not depend on the worker count (threads = {threads})"
        );
    }
}

#[test]
fn snapshot_is_bit_identical_across_repeated_runs() {
    let a = snapshot_at(4);
    let b = snapshot_at(4);
    assert_eq!(a, b, "repeated runs must render identical snapshots");
}

#[test]
fn snapshot_has_the_expected_shape_and_content() {
    let core = snapshot_at(2);
    assert!(core.starts_with("{\n  \"schema\": \"uvpu-metrics/v1\""));
    assert!(core.contains("\"workload\": \"ckks_mul_rescale\""));
    assert!(core.contains("\"variant\": \"smoke\""));
    // Every layer contributed: cycle-level NTT phases, scheduler task
    // spans, and CKKS/BFV scheme spans.
    assert!(core.contains("\"ntt.forward_negacyclic\""));
    assert!(core.contains("\"task.ntt"));
    assert!(core.contains("\"ckks.rescale\""));
    assert!(core.contains("\"bfv.mul\""));
    // Energy attribution is present and the advisory section is not.
    assert!(core.contains("\"lanes.butterfly\""));
    assert!(!core.contains("\"advisory\""));
    // Balanced span instrumentation: no unmatched ends were counted.
    assert!(!core.contains("span.unmatched_end"));
}

#[test]
fn advisory_section_never_affects_the_gate() {
    let core = snapshot_at(1);
    let a = snapshot::with_advisory(&core, &[("wall_ms", "1.5".into())]);
    let b = snapshot::with_advisory(&core, &[("wall_ms", "9000.0".into())]);
    assert_ne!(a, b, "advisory fields do differ as bytes");
    assert!(
        snapshot::diff(&a, &b, 10).is_empty(),
        "but the gate's diff must not see them"
    );
    assert_eq!(snapshot::strip_advisory(&a), core);
}

#[test]
fn energy_shares_are_sane_and_lane_dominated() {
    let run = uvpu::par::with_threads(2, || metrics_workload::run(true));
    assert!(run.energy_pj > 0.0);
    assert!(run.cycles > 0);
    assert!(run.utilization > 0.0 && run.utilization <= 1.0);
    // Paper Table II's observation holds for live workloads too: the
    // lanes dominate the network by a wide margin.
    let shares_line = run
        .core_json
        .lines()
        .find(|l| l.contains("\"shares\""))
        .expect("snapshot has a shares line");
    let lanes: f64 = shares_line
        .split("\"lanes\": ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .expect("lanes share")
        .parse()
        .expect("lanes share parses");
    assert!(lanes > 0.9, "lane share {lanes} should dominate");
}
