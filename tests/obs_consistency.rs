//! Determinism and structural-identity contract of the observability
//! layer: the `BENCH_obs.json` call-tree snapshot core AND the
//! collapsed-stack flamegraph are pure functions of the workload —
//! byte-identical across repeated runs and across every `UVPU_THREADS`
//! setting — and the tree is a lossless refinement of the flat
//! profiler: summing self cycles over every path reproduces the flat
//! running totals bit-exactly.
//!
//! The workload under test is the library function behind the
//! `obs_report` binary, so these tests exercise exactly what the CI
//! gate measures. (`obs_workload::run` itself asserts the tree-vs-flat
//! identities at runtime via `TreeProfilerSink::assert_matches_flat`;
//! the tests here additionally re-derive the headline identity from
//! the rendered artifact text, so a rendering bug cannot hide it.)

use uvpu_bench::{metrics_workload, obs_workload};
use uvpu_metrics::{report, snapshot};

/// Runs the smoke workload under a pinned worker count.
/// `with_threads` serializes the runs internally, which also keeps the
/// process-global trace sink installs from interleaving.
fn run_at(threads: usize) -> obs_workload::ObsRun {
    uvpu::par::with_threads(threads, || obs_workload::run(true))
}

/// Extracts the integer after the first `"total": ` inside the
/// `"self": {…}` object of one rendered tree-node line.
fn self_total(line: &str) -> u64 {
    let start = line
        .find("\"self\": {")
        .expect("node line has a self object")
        + 9;
    let end = start + line[start..].find('}').expect("self object closes");
    let obj = &line[start..end];
    let digits = obj
        .split("\"total\": ")
        .nth(1)
        .expect("self object has a total");
    digits
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("self total parses")
}

/// Extracts the top-level flat `"cycles"` line of a snapshot core.
fn cycles_line(core: &str) -> &str {
    core.lines()
        .find(|l| l.trim_start().starts_with("\"cycles\""))
        .expect("snapshot has a flat cycles line")
}

/// Extracts the flat running total from the top-level cycles line.
fn flat_total(core: &str) -> u64 {
    cycles_line(core)
        .split("\"total\": ")
        .nth(1)
        .expect("cycles line has a total")
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("cycles total parses")
}

#[test]
fn snapshot_and_flamegraph_are_bit_identical_across_thread_counts() {
    let reference = run_at(1);
    for threads in [2usize, 4, 7] {
        let other = run_at(threads);
        assert_eq!(
            reference.core_json, other.core_json,
            "snapshot core must not depend on the worker count (threads = {threads})"
        );
        assert_eq!(
            reference.flamegraph, other.flamegraph,
            "flamegraph must not depend on the worker count (threads = {threads})"
        );
        assert_eq!(
            reference.perfetto_json, other.perfetto_json,
            "perfetto summary must not depend on the worker count (threads = {threads})"
        );
    }
}

#[test]
fn snapshot_is_bit_identical_across_repeated_runs() {
    let a = run_at(4);
    let b = run_at(4);
    assert_eq!(a.core_json, b.core_json);
    assert_eq!(a.flamegraph, b.flamegraph);
}

#[test]
fn snapshot_has_the_expected_shape_and_content() {
    let run = run_at(2);
    let core = &run.core_json;
    assert!(core.starts_with("{\n  \"schema\": \"uvpu-obs/v1\""));
    assert!(core.contains("\"workload\": \"ckks_mul_rescale\""));
    assert!(core.contains("\"variant\": \"smoke\""));
    // Hierarchical paths: scheduler batches parent their tasks, and the
    // four-step NTT decomposition parents its stages.
    assert!(core.contains("\"accel.batch/task.ntt n=1024\""));
    assert!(core.contains("\"ntt.forward_negacyclic/ntt.dim0\""));
    // Latency percentiles and per-path energy are rendered.
    assert!(core.contains("\"p50\":"));
    assert!(core.contains("\"p99\":"));
    assert!(core.contains("\"self_pj\":"));
    // Flamegraph digest and sink self-measurement sections exist.
    assert!(core.contains("\"flamegraph\":"));
    assert!(core.contains("\"overhead\":"));
    assert!(core.contains("\"unmatched_ends\": 0"));
    // The advisory section is not part of the core.
    assert!(!core.contains("\"advisory\""));
}

#[test]
fn tree_self_totals_reproduce_flat_running_totals_bit_exactly() {
    let run = run_at(1);
    let core = &run.core_json;
    let flat = flat_total(core);
    let tree_sum: u64 = core
        .lines()
        .filter(|l| l.contains("\"count\": ") && l.contains("\"self\": {"))
        .map(self_total)
        .sum();
    assert_eq!(
        tree_sum, flat,
        "summing self cycles over every tree path must equal the flat running total"
    );
    assert_eq!(run.cycles, flat, "ObsRun.cycles reports the same total");
}

#[test]
fn flamegraph_is_pinned_by_digest_and_sums_to_the_flat_total() {
    let run = run_at(1);
    let digest_field = run
        .core_json
        .split("\"digest\": \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("snapshot has a flamegraph digest")
        .to_string();
    assert_eq!(
        digest_field,
        format!("0x{:016x}", report::fnv1a(run.flamegraph.as_bytes())),
        "the snapshot digest must pin the exact flamegraph bytes"
    );
    let flame_sum: u64 = run
        .flamegraph
        .lines()
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|n| n.parse::<u64>().ok())
                .expect("flamegraph line ends in a cycle count")
        })
        .sum();
    assert_eq!(
        flame_sum,
        flat_total(&run.core_json),
        "collapsed-stack leaf cycles must sum to the flat running total"
    );
}

#[test]
fn obs_and_metrics_snapshots_agree_on_the_flat_cycle_totals() {
    let obs = run_at(2);
    let metrics = uvpu::par::with_threads(2, || metrics_workload::run(true));
    assert_eq!(
        cycles_line(&obs.core_json),
        cycles_line(&metrics.core_json),
        "the obs snapshot embeds the same flat totals the metrics snapshot gates on"
    );
}

#[test]
fn advisory_section_never_affects_the_gate() {
    let core = run_at(1).core_json;
    let a = snapshot::with_advisory(&core, &[("events", "640".into())]);
    let b = snapshot::with_advisory(&core, &[("events", "512".into())]);
    assert_ne!(a, b, "advisory fields do differ as bytes");
    assert!(
        snapshot::diff(&a, &b, 10).is_empty(),
        "but the gate's diff must not see them"
    );
    assert_eq!(snapshot::strip_advisory(&a), core);
}
