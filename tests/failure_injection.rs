//! Failure injection: deliberately corrupt one control bit, twiddle
//! factor, or routed word and assert the checks catch it — guarding the
//! test suite against vacuous assertions (DESIGN.md §6).

use uvpu::math::automorphism::AffineMap;
use uvpu::math::modular::Modulus;
use uvpu::math::primes::ntt_prime;
use uvpu::vpu::control::ShiftControls;
use uvpu::vpu::lane::{ButterflyKind, LaneArray};
use uvpu::vpu::network::InterLaneNetwork;
use uvpu::vpu::ntt_map::SmallNtt;
use uvpu::vpu::vpu::Vpu;

#[test]
fn single_flipped_control_bit_breaks_the_automorphism() {
    let m = 64;
    let net = InterLaneNetwork::new(m).expect("network");
    let map = AffineMap::new(m, 5, 3).expect("map");
    let good = ShiftControls::from_affine(&map);
    let data: Vec<u64> = (0..m as u64).collect();
    let expect = map.permute(&data);
    assert_eq!(net.shift_pass(&data, &good), expect, "baseline must hold");

    // Flip every single control bit in turn; each flip must be detected.
    for level in 0..good.levels() {
        for class in 0..(1usize << level) {
            let mut bits: Vec<Vec<bool>> = (0..good.levels())
                .map(|l| good.level_bits(l).to_vec())
                .collect();
            bits[level][class] ^= true;
            let bad = ShiftControls::from_bits(m, bits).expect("valid shape");
            assert_ne!(
                net.shift_pass(&data, &bad),
                expect,
                "flipping (level {level}, class {class}) must corrupt the permutation"
            );
        }
    }
}

#[test]
fn single_corrupted_twiddle_breaks_the_ntt() {
    let m = 16;
    let q = Modulus::new(ntt_prime(30, m).expect("prime")).expect("modulus");
    let ntt = SmallNtt::new(q, m).expect("plan");
    let mut vpu = Vpu::new(m, q, 4).expect("vpu");
    let data: Vec<u64> = (1..=m as u64).collect();

    vpu.load(0, &data).expect("load");
    ntt.run_forward(&mut vpu, 0).expect("forward");
    let good = vpu.store(0).expect("store");

    // Re-run by hand with one twiddle replaced by ω^{e+1}: the result
    // must differ (ω ≠ 1 for m ≥ 2).
    let mut vpu = Vpu::new(m, q, 4).expect("vpu");
    vpu.load(0, &data).expect("load");
    for s in 0..ntt.stages() as usize {
        let mut tw: Vec<u64> = (0..m / 2)
            .map(|j| q.pow(ntt.omega(), ((j >> s) << s) as u64))
            .collect();
        if s == 1 {
            tw[0] = q.mul(tw[0], ntt.omega()); // inject the fault
        }
        vpu.pease_stage(0, &uvpu::vpu::vpu::PeaseStage::Forward { twiddles: &tw }, m)
            .expect("stage");
    }
    assert_ne!(vpu.store(0).expect("store"), good, "fault must propagate");
}

#[test]
fn swapped_butterfly_kind_is_not_equivalent() {
    let m = 8;
    let q = Modulus::new(97).expect("modulus");
    let mut a = LaneArray::new(m, q, 2).expect("lanes");
    let mut b = LaneArray::new(m, q, 2).expect("lanes");
    let data: Vec<u64> = (1..=m as u64).collect();
    a.write(0, &data).expect("write");
    b.write(0, &data).expect("write");
    let tw = [3u64, 5, 7, 11];
    a.butterfly_adjacent(0, ButterflyKind::Dif, &tw)
        .expect("bf");
    b.butterfly_adjacent(0, ButterflyKind::Dit, &tw)
        .expect("bf");
    assert_ne!(a.read(0).expect("read"), b.read(0).expect("read"));
}

#[test]
fn wrong_cg_direction_breaks_the_round() {
    let m = 16;
    let net = InterLaneNetwork::new(m).expect("network");
    let data: Vec<u64> = (0..m as u64).collect();
    use uvpu::vpu::network::CgDirection;
    let forth = net.cg_pass(&data, CgDirection::Dif);
    // Using DIF again instead of DIT does NOT invert (m > 4).
    assert_ne!(net.cg_pass(&forth, CgDirection::Dif), data);
    assert_eq!(net.cg_pass(&forth, CgDirection::Dit), data);
}

#[test]
fn corrupted_column_is_detected_by_bit_exact_comparison() {
    // End-to-end: run the NTT, flip one output word, and confirm the
    // inverse transform no longer returns the input (i.e. our round-trip
    // assertions have teeth).
    let (n, m) = (256usize, 16usize);
    let q = Modulus::new(ntt_prime(30, n).expect("prime")).expect("modulus");
    let plan = uvpu::vpu::ntt_map::NttPlan::new(q, n, m).expect("plan");
    let mut vpu = Vpu::new(m, q, 8).expect("vpu");
    let data: Vec<u64> = (0..n as u64).collect();
    let mut spectrum = plan
        .execute_forward(&mut vpu, &data)
        .expect("forward")
        .output;
    spectrum[37] = q.add(spectrum[37], 1);
    let back = plan
        .execute_inverse(&mut vpu, &spectrum)
        .expect("inverse")
        .output;
    assert_ne!(back, data);
}
