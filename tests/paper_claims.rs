//! Integration tests pinning the paper's headline claims, end to end.

use uvpu::hw_model::designs::{DesignKind, DesignModel};
use uvpu::hw_model::tech::TechParams;
use uvpu::math::automorphism::AffineMap;
use uvpu::math::modular::Modulus;
use uvpu::math::primes::ntt_prime;
use uvpu::vpu::auto_map::AutomorphismMapping;
use uvpu::vpu::control::ShiftControls;
use uvpu::vpu::network::InterLaneNetwork;
use uvpu::vpu::ntt_map::NttPlan;
use uvpu::vpu::vpu::Vpu;
use uvpu_bench::{measure_table3, PAPER_TABLE3};

#[test]
fn claim_single_traversal_for_every_automorphism_at_64_lanes() {
    // §IV-B: "for any automorphism, data only go through the inter-lane
    // network once" — exhaustively over all m/2 = 32 automorphisms and a
    // sample of merged shifts, on the real network.
    let m = 64;
    let net = InterLaneNetwork::new(m).expect("network");
    let data: Vec<u64> = (0..m as u64).collect();
    for g in (1..m as u64).step_by(2) {
        for t in 0..m as u64 {
            let map = AffineMap::new(m, g, t).expect("map");
            let controls = ShiftControls::from_affine(&map);
            assert_eq!(controls.bit_count(), m - 1, "m − 1 control bits");
            assert_eq!(
                net.shift_pass(&data, &controls),
                map.permute(&data),
                "g={g} t={t}: one traversal realizes the merged permutation"
            );
        }
    }
}

#[test]
fn claim_network_area_and_power_savings() {
    // Abstract/§V-B: 1.6×–9.4× network area, 2.8×–6.0× network power;
    // 1.01×–1.20× VPU area, up to 1.10× VPU power.
    let tech = TechParams::asap7();
    let ours = DesignModel::new(DesignKind::Ours, 64);
    let mut area_ratios = Vec::new();
    let mut power_ratios = Vec::new();
    for kind in [
        DesignKind::F1,
        DesignKind::Bts,
        DesignKind::Ark,
        DesignKind::Sharp,
    ] {
        let d = DesignModel::new(kind, 64);
        area_ratios.push(d.network_area(&tech) / ours.network_area(&tech));
        power_ratios.push(d.network_power(&tech) / ours.network_power(&tech));
    }
    let max_area = area_ratios.iter().fold(0.0f64, |a, &b| a.max(b));
    let min_area = area_ratios.iter().fold(f64::MAX, |a, &b| a.min(b));
    let max_power = power_ratios.iter().fold(0.0f64, |a, &b| a.max(b));
    assert!((max_area - 9.4).abs() < 0.5, "max area ratio {max_area}");
    assert!(
        min_area > 1.4 && min_area < 2.0,
        "min area ratio {min_area}"
    );
    assert!((max_power - 6.0).abs() < 0.5, "max power ratio {max_power}");

    let f1 = DesignModel::new(DesignKind::F1, 64);
    let vpu_area_ratio = f1.vpu_area(&tech) / ours.vpu_area(&tech);
    let vpu_power_ratio = f1.vpu_power(&tech) / ours.vpu_power(&tech);
    assert!((vpu_area_ratio - 1.20).abs() < 0.03, "{vpu_area_ratio}");
    assert!((vpu_power_ratio - 1.10).abs() < 0.03, "{vpu_power_ratio}");
}

#[test]
fn claim_table3_utilization_envelope() {
    // §V-C: NTT utilization 75%–85%-ish with dips after 2^12 and 2^18;
    // automorphism always 100%.
    let log_sizes: Vec<u32> = PAPER_TABLE3.iter().map(|&(l, _, _)| l).collect();
    let rows = measure_table3(64, &log_sizes);
    for (row, paper) in rows.iter().zip(PAPER_TABLE3) {
        assert_eq!(row.automorphism_utilization, 1.0, "2^{}", row.log_n);
        let delta = (100.0 * row.ntt_utilization - paper.1).abs();
        assert!(
            delta < 13.0,
            "2^{}: measured {:.1}% vs paper {:.1}%",
            row.log_n,
            100.0 * row.ntt_utilization,
            paper.1
        );
    }
    // The characteristic dips at the dimension boundaries.
    assert!(rows[1].ntt_utilization > rows[0].ntt_utilization);
    assert!(rows[2].ntt_utilization < rows[1].ntt_utilization);
    assert!(rows[4].ntt_utilization > rows[3].ntt_utilization);
    assert!(rows[5].ntt_utilization < rows[4].ntt_utilization);
}

#[test]
fn claim_table3_utilization_via_profiler() {
    // The metrics layer's per-phase utilization must agree with the
    // simulator's own CycleStats *exactly* (both are derived from the
    // same beat stream), and with the paper's Table III within the same
    // envelope as the direct measurement.
    use uvpu::metrics::profiler::ProfilerSink;

    for &(log_n, paper_ntt, _) in &PAPER_TABLE3[..3] {
        let (n, m) = (1usize << log_n, 64usize);
        let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
        let plan = NttPlan::new(q, n, m).expect("plan");
        let mut vpu = Vpu::with_sink(m, q, 8, ProfilerSink::new(m)).expect("vpu");
        let data: Vec<u64> = (0..n as u64).collect();
        let run = plan
            .execute_forward_negacyclic(&mut vpu, &data)
            .expect("ntt run");
        let profiler = vpu.into_sink();

        let phase = profiler.phases()["ntt.forward_negacyclic"];
        assert_eq!(
            phase, run.stats,
            "2^{log_n}: profiler phase attribution must be bit-identical to CycleStats"
        );
        assert_eq!(
            phase.utilization_checked(),
            Some(run.stats.utilization()),
            "2^{log_n}: derived utilization must match exactly"
        );
        let delta = (100.0 * phase.utilization() - paper_ntt).abs();
        assert!(
            delta < 13.0,
            "2^{log_n}: profiler-measured {:.1}% vs paper {paper_ntt:.1}%",
            100.0 * phase.utilization()
        );
        // Energy attribution is live and lane-dominated (Table II).
        assert!(profiler.energy_total_pj() > 0.0);
        assert!(profiler.group_share("lanes") > profiler.group_share("network"));
    }
}

#[test]
fn claim_critical_path_stage_count() {
    // §III-B: "with typical numbers of lanes like m = 32, 64, there are
    // only 7 to 8 stages".
    assert_eq!(InterLaneNetwork::new(32).expect("net").total_stages(), 7);
    assert_eq!(InterLaneNetwork::new(64).expect("net").total_stages(), 8);
}

#[test]
fn claim_control_sram_is_small() {
    // §IV-B: m = 64 needs about 2 kbit of control SRAM.
    let q = Modulus::new(ntt_prime(50, 1 << 10).expect("prime")).expect("modulus");
    let vpu = Vpu::new(64, q, 4).expect("vpu");
    let bits = vpu.control_table().sram_bits();
    assert_eq!(bits, 2016);
    assert!(bits < 2048 + 256, "about 2 kbits");
}

#[test]
fn claim_decomposition_dimension_counts() {
    // §II-B: ⌈log N / log m⌉ dimensions.
    let q = Modulus::new(ntt_prime(50, 1 << 20).expect("prime")).expect("modulus");
    for log_n in [10usize, 12, 14, 16, 18, 20] {
        let plan = NttPlan::new(q, 1 << log_n, 64).expect("plan");
        assert_eq!(plan.dims().len(), log_n.div_ceil(6), "N = 2^{log_n}");
        assert_eq!(plan.dims().iter().product::<usize>(), 1 << log_n);
    }
}

#[test]
fn claim_automorphism_ideal_throughput_at_large_n() {
    let (n, m) = (1usize << 14, 64usize);
    let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
    let mut vpu = Vpu::new(m, q, 8).expect("vpu");
    let data: Vec<u64> = (0..n as u64).collect();
    let run = AutomorphismMapping::new(n, m, 5, 0)
        .expect("plan")
        .execute(&mut vpu, &data)
        .expect("run");
    assert_eq!(run.stats.network_move as usize, n / m);
    assert_eq!(run.utilization(), 1.0);
}

#[test]
fn claim_table2_area_power_for_every_design() {
    // Table II, all five designs at m = 64: the calibrated model must
    // land on the published network and full-VPU area/power. The model
    // was calibrated against "Ours" and the F1 SRAM row only, so the
    // other designs are genuine predictions: power tracks within 0.5%
    // everywhere, area within 8% on the network (ARK's Beneš and
    // SHARP's banked SRAM have layout overheads the affine model folds
    // into the fit) and within 1.5% on the full VPU.
    let tech = TechParams::asap7();
    let kind_of = |name: &str| match name {
        "F1" => DesignKind::F1,
        "BTS" => DesignKind::Bts,
        "ARK" => DesignKind::Ark,
        "SHARP" => DesignKind::Sharp,
        "Ours" => DesignKind::Ours,
        other => panic!("unknown design {other}"),
    };
    for (name, net_area, vpu_area, net_power, vpu_power) in uvpu_bench::PAPER_TABLE2 {
        let d = DesignModel::new(kind_of(name), 64);
        let rel = |measured: f64, paper: f64| (measured - paper).abs() / paper;
        assert!(
            rel(d.network_area(&tech), net_area) < 0.08,
            "{name}: network area {} vs paper {net_area}",
            d.network_area(&tech)
        );
        assert!(
            rel(d.vpu_area(&tech), vpu_area) < 0.015,
            "{name}: VPU area {} vs paper {vpu_area}",
            d.vpu_area(&tech)
        );
        assert!(
            rel(d.network_power(&tech), net_power) < 0.005,
            "{name}: network power {} vs paper {net_power}",
            d.network_power(&tech)
        );
        assert!(
            rel(d.vpu_power(&tech), vpu_power) < 0.001,
            "{name}: VPU power {} vs paper {vpu_power}",
            d.vpu_power(&tech)
        );
    }
}

#[test]
fn claim_table4_scaling_at_every_published_lane_count() {
    // Table IV: the "Ours" network across every published m. Area
    // within 0.5% and power within 5% (the paper rounds to 2 decimals,
    // which at m = 4 is a 1-cent-in-59 granularity).
    let tech = TechParams::asap7();
    for (m, area, power) in uvpu_bench::PAPER_TABLE4 {
        let d = DesignModel::new(DesignKind::Ours, m);
        assert!(
            (d.network_area(&tech) - area).abs() / area < 0.005,
            "m={m}: area {} vs paper {area}",
            d.network_area(&tech)
        );
        assert!(
            (d.network_power(&tech) - power).abs() / power < 0.05,
            "m={m}: power {} vs paper {power}",
            d.network_power(&tech)
        );
    }
}

#[test]
fn claim_cost_models_agree_with_the_static_tables() {
    // The uvpu-compare seam: every design's dynamic cost model must
    // carry exactly the static model's area/power (bit-identical — the
    // trait extraction is a refactor, not a re-derivation), and a
    // fully-active network traversal must cost exactly the Table II
    // power read in pJ/cycle.
    use uvpu::compare::sink::CompareSink;
    use uvpu::hw_model::cost::CostModel;

    let tech = TechParams::asap7();
    let sink = CompareSink::suite(64);
    assert_eq!(sink.backends().len(), 7, "five designs + RPU + BASALISC");
    for lane in sink.backends() {
        let model = lane.model();
        assert!(
            (model.network_active_pj() - model.network_power_mw()).abs() < 1e-9,
            "{}: active traversal {} pJ vs {} mW",
            model.name(),
            model.network_active_pj(),
            model.network_power_mw()
        );
    }
    for kind in DesignKind::ALL {
        let d = DesignModel::new(kind, 64);
        let lane = sink.backend(kind.name()).expect("design modeled");
        assert_eq!(lane.model().network_area_um2(), d.network_area(&tech));
        assert_eq!(lane.model().network_power_mw(), d.network_power(&tech));
        assert_eq!(lane.model().vpu_area_um2(), d.vpu_area(&tech));
        assert_eq!(lane.model().vpu_power_mw(), d.vpu_power(&tech));
    }
}
