//! Property-based fault-recovery tests: for *any* seeded single-bit
//! fault plan, online detection fires before corruption is accepted
//! (no silent corruption), and the retry/quarantine machinery converges
//! bit-exactly to the fault-free result.

use proptest::prelude::*;
use uvpu::accel::config::AcceleratorConfig;
use uvpu::accel::machine::Accelerator;
use uvpu::accel::recovery::RetryPolicy;
use uvpu::accel::workload::{Task, TaskKind};
use uvpu::accel::AccelError;
use uvpu::fault::detect::standard_detectors;
use uvpu::fault::exec::FaultyExecutor;
use uvpu::fault::plan::{FaultKind, FaultPlan};
use uvpu::vpu::trace::FaultSite;

const LANES: usize = 16;

fn tasks() -> Vec<Task> {
    let n = 128;
    vec![
        Task {
            kind: TaskKind::Automorphism,
            n,
            noc_bytes: 2 * n * 8,
        },
        Task {
            kind: TaskKind::Ntt,
            n,
            noc_bytes: 2 * n * 8,
        },
        Task {
            kind: TaskKind::Elementwise { passes: 2 },
            n,
            noc_bytes: 3 * n * 8,
        },
    ]
}

/// Runs the task list through a recovery-scheduled [`FaultyExecutor`]
/// (fault on slot 0 of a 2-VPU machine). Returns the result plus the
/// executor's injected-word and detection counts.
///
/// The executor pins every kernel to one host thread internally, so
/// this must NOT be wrapped in `uvpu_par::with_threads` (non-reentrant).
fn run(plan: FaultPlan, policy: &RetryPolicy) -> (Result<Vec<u64>, AccelError>, u64, u64) {
    let mut exec = FaultyExecutor::new(plan, 0, LANES, standard_detectors(plan.seed ^ 0x5eed));
    let mut accel = Accelerator::new(AcceleratorConfig {
        vpu_count: 2,
        lanes: LANES,
        ..AcceleratorConfig::default()
    })
    .expect("accelerator config");
    let result = accel
        .run_tasks_with_recovery(&tasks(), &mut exec, policy)
        .map(|r| r.task_digests);
    let detected: u64 = exec
        .registry()
        .family("fault.detected")
        .values()
        .copied()
        .sum();
    (result, exec.injected_words(), detected)
}

fn golden_digests() -> Vec<u64> {
    let clean = FaultPlan::new(
        0,
        FaultSite::LaneButterfly,
        FaultKind::BitFlip { bit: 0 },
        0,
    );
    let (digests, injected, _) = run(clean, &RetryPolicy::default());
    assert_eq!(injected, 0, "zero-rate plan must not inject");
    digests.expect("fault-free run succeeds")
}

fn site(idx: usize) -> FaultSite {
    FaultSite::ALL[idx % FaultSite::ALL.len()]
}

fn kind(sel: u8, bit: u8) -> FaultKind {
    match sel % 3 {
        0 => FaultKind::BitFlip { bit },
        1 => FaultKind::StuckAtOne { bit },
        _ => FaultKind::StuckAtZero { bit },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seeded single-bit fault plan: either the run converges to
    /// the bit-exact fault-free digests (so every corruption was either
    /// detected-and-retried or architecturally masked), or it surfaces
    /// a typed `FaultUnrecoverable` backed by detections — never
    /// silently corrupted output.
    #[test]
    fn no_silent_corruption_under_any_single_bit_plan(
        seed in any::<u64>(),
        site_idx in 0usize..4,
        kind_sel in any::<u8>(),
        bit in 0u8..64,
        rate_ppm in 50u32..40_000,
    ) {
        let golden = golden_digests();
        let plan = FaultPlan::new(seed, site(site_idx), kind(kind_sel, bit), rate_ppm);
        let policy = RetryPolicy {
            max_retries: 3,
            backoff_cycles: 16,
            quarantine_threshold: 2,
        };
        let (result, _injected, detected) = run(plan, &policy);
        match result {
            Ok(digests) => {
                prop_assert_eq!(digests, golden);
            }
            Err(AccelError::FaultUnrecoverable { .. }) => {
                // Surrender is only legal if detection kept firing.
                prop_assert!(detected > 0, "unrecoverable without any detection");
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// With quarantine at threshold 1, a single retry is always enough:
    /// the first detection benches the faulty slot and the retry runs
    /// clean on the healthy one, converging bit-exactly — even at
    /// injection rates where the faulty slot can essentially never
    /// complete an attempt without corruption.
    #[test]
    fn retry_converges_bit_exactly_with_one_retry(
        seed in any::<u64>(),
        site_idx in 0usize..4,
        bit in 0u8..64,
        rate_ppm in 10_000u32..1_000_000,
    ) {
        let golden = golden_digests();
        let plan = FaultPlan::new(seed, site(site_idx), FaultKind::BitFlip { bit }, rate_ppm);
        let policy = RetryPolicy {
            max_retries: 1,
            backoff_cycles: 16,
            quarantine_threshold: 1,
        };
        let (result, _, _) = run(plan, &policy);
        match result {
            Ok(digests) => prop_assert_eq!(digests, golden),
            Err(e) => prop_assert!(false, "max_retries=1 with quarantine must converge: {e}"),
        }
    }

    /// The whole pipeline is deterministic: the same plan twice gives
    /// identical digests, injection counts, and detection counts.
    #[test]
    fn recovery_is_bit_reproducible(
        seed in any::<u64>(),
        site_idx in 0usize..4,
        rate_ppm in 100u32..20_000,
    ) {
        let plan = FaultPlan::new(seed, site(site_idx), FaultKind::BitFlip { bit: 11 }, rate_ppm);
        let policy = RetryPolicy::default();
        let a = run(plan, &policy);
        let b = run(plan, &policy);
        prop_assert_eq!(format!("{:?}", a.0), format!("{:?}", b.0));
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }
}
