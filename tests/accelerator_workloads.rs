//! Integration tests of the accelerator-level simulator with realistic
//! FHE traces.

use uvpu::accel::config::AcceleratorConfig;
use uvpu::accel::machine::Accelerator;
use uvpu::accel::workload::FheOp;

fn config(vpus: usize) -> AcceleratorConfig {
    AcceleratorConfig {
        vpu_count: vpus,
        ..AcceleratorConfig::default()
    }
}

#[test]
fn inference_trace_scales_with_vpus() {
    let n = 1usize << 12;
    let limbs = 3;
    let trace = vec![
        FheOp::HMult { n, limbs },
        FheOp::HRot { n, limbs },
        FheOp::HRot { n, limbs },
        FheOp::HAdd { n, limbs },
    ];
    let mut prev = u64::MAX;
    for vpus in [1usize, 2, 4, 8] {
        let r = Accelerator::new(config(vpus))
            .expect("config")
            .run(&trace)
            .expect("run");
        assert!(r.makespan < prev, "{vpus} VPUs must not be slower");
        prev = r.makespan;
    }
}

#[test]
fn speedup_is_near_linear_for_wide_traces() {
    let n = 1usize << 10;
    let trace: Vec<FheOp> = (0..8).map(|_| FheOp::HMult { n, limbs: 4 }).collect();
    let r1 = Accelerator::new(config(1))
        .expect("c")
        .run(&trace)
        .expect("r");
    let r8 = Accelerator::new(config(8))
        .expect("c")
        .run(&trace)
        .expect("r");
    let speedup = r1.makespan as f64 / r8.makespan as f64;
    assert!(
        speedup > 6.0,
        "8 VPUs should give >6x on a wide trace: {speedup:.2}"
    );
}

#[test]
fn work_is_conserved_across_machine_shapes() {
    let trace = vec![
        FheOp::HRot {
            n: 1 << 12,
            limbs: 2,
        },
        FheOp::HAdd {
            n: 1 << 12,
            limbs: 2,
        },
        FheOp::HMult {
            n: 1 << 12,
            limbs: 2,
        },
    ];
    let r2 = Accelerator::new(config(2))
        .expect("c")
        .run(&trace)
        .expect("r");
    let r6 = Accelerator::new(config(6))
        .expect("c")
        .run(&trace)
        .expect("r");
    assert_eq!(
        r2.vpu_stats, r6.vpu_stats,
        "pipeline beats are machine-independent"
    );
    assert_eq!(r2.sram_traffic_bytes, r6.sram_traffic_bytes);
    assert_eq!(r2.task_count, r6.task_count);
}

#[test]
fn rotation_heavy_traces_exercise_the_network() {
    // A bootstrapping-shaped trace: many rotations. The VPU time must be
    // dominated by network-move beats, matching the paper's motivation.
    let trace: Vec<FheOp> = (0..4).map(|_| FheOp::Automorphism { n: 1 << 14 }).collect();
    let r = Accelerator::new(config(2))
        .expect("c")
        .run(&trace)
        .expect("r");
    assert_eq!(r.vpu_stats.compute(), 0);
    assert_eq!(r.vpu_stats.network_move, 4 * (1 << 14) / 64);
}
