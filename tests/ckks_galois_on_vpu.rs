//! The central cross-crate integration: the VPU's single-pass merged
//! automorphism implements the **exact CKKS Galois action** in the
//! evaluation domain.
//!
//! For the ring `Z_q[X]/(X^N+1)` with natural-order evaluations
//! `eval[i] = a(ψ^{2i+1})`, the Galois map `τ_g: a(X) ↦ a(X^g)` moves
//! values by the affine index map `i ↦ i·g + (g−1)/2 (mod N)` — precisely
//! the automorphism-merged-with-shift form `ρ_t ∘ σ_g` that the paper's
//! inter-lane network routes in one traversal (§IV-B). This test performs
//! the Galois action both ways and demands bit-exact agreement.

use uvpu::math::automorphism::{galois_exponent, AffineMap};
use uvpu::math::modular::Modulus;
use uvpu::math::poly::Poly;
use uvpu::math::primes::ntt_prime;
use uvpu::vpu::auto_map::AutomorphismMapping;
use uvpu::vpu::ntt_map::NttPlan;
use uvpu::vpu::vpu::Vpu;

/// The evaluation-domain index map of `τ_g` under natural ψ-power order.
fn galois_eval_map(n: usize, g: u64) -> AffineMap {
    AffineMap::new(n, g, (g - 1) / 2).expect("odd g")
}

#[test]
fn vpu_automorphism_is_the_galois_action_in_eval_domain() {
    let (n, m) = (512usize, 64usize);
    let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
    let plan = NttPlan::new(q, n, m).expect("plan");
    let mut vpu = Vpu::new(m, q, 8).expect("vpu");

    let coeffs: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 23 + 9)).collect();
    let poly = Poly::from_coeffs(coeffs.clone(), q).expect("poly");

    for step in [1i64, 2, 3, -1] {
        let g = galois_exponent(step, n);

        // Path 1 — golden model: Galois in the coefficient domain, then
        // the VPU's NTT into the evaluation domain.
        let rotated_coeff = poly.galois(g).expect("galois");
        let eval_of_galois = plan
            .execute_forward_negacyclic(&mut vpu, rotated_coeff.coeffs())
            .expect("ntt")
            .output;

        // Path 2 — the paper's way: NTT first, then ONE network traversal
        // per column with the merged automorphism+shift control word.
        let eval = plan
            .execute_forward_negacyclic(&mut vpu, &coeffs)
            .expect("ntt")
            .output;
        let map = galois_eval_map(n, g);
        // τ_g satisfies eval_b[i] = eval_a[σ(i)]; our executor computes
        // out[map(i)] = in[i], so route with the inverse map.
        let inv = map.inverse();
        let auto = AutomorphismMapping::new(n, m, inv.multiplier(), inv.offset())
            .expect("plan")
            .execute(&mut vpu, &eval)
            .expect("run");

        assert_eq!(
            auto.output, eval_of_galois,
            "step {step} (g = {g}): the single-pass network automorphism must equal the ring Galois action"
        );
        assert_eq!(auto.utilization(), 1.0);
    }
}

#[test]
fn conjugation_is_also_a_single_pass() {
    let (n, m) = (256usize, 64usize);
    let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
    let plan = NttPlan::new(q, n, m).expect("plan");
    let mut vpu = Vpu::new(m, q, 8).expect("vpu");
    let coeffs: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(3 * i + 1)).collect();
    let poly = Poly::from_coeffs(coeffs.clone(), q).expect("poly");

    let g = 2 * n as u64 - 1; // complex conjugation
    let rotated_coeff = poly.galois(g).expect("galois");
    let expect = plan
        .execute_forward_negacyclic(&mut vpu, rotated_coeff.coeffs())
        .expect("ntt")
        .output;

    let eval = plan
        .execute_forward_negacyclic(&mut vpu, &coeffs)
        .expect("ntt")
        .output;
    let inv = galois_eval_map(n, g % (2 * n as u64)).inverse();
    let got = AutomorphismMapping::new(n, m, inv.multiplier(), inv.offset())
        .expect("plan")
        .execute(&mut vpu, &eval)
        .expect("run")
        .output;
    assert_eq!(got, expect);
}

#[test]
fn eval_map_composition_mirrors_rotation_composition() {
    // rot(a) then rot(b) in slot space = rot(a+b): the affine eval maps
    // must compose the same way.
    let n = 1024usize;
    for (a, b) in [(1i64, 2i64), (3, 5), (-1, 4)] {
        let ga = galois_exponent(a, n);
        let gb = galois_exponent(b, n);
        let gab = galois_exponent(a + b, n);
        let composed = galois_eval_map(n, ga).then(&galois_eval_map(n, gb));
        let direct = galois_eval_map(n, gab);
        for i in [0usize, 1, 17, n - 1] {
            assert_eq!(
                composed.apply_index(i),
                direct.apply_index(i),
                "a={a} b={b}"
            );
        }
    }
}
