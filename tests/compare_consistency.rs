//! Determinism gates for the uvpu-compare report: the deterministic core
//! of `BENCH_compare.json` must be byte-identical regardless of the
//! worker-pool size and across repeated runs — the property the
//! `scripts/bench_compare.sh` gate relies on.

use uvpu_bench::compare_workload;

/// Render the smoke-variant report core with the pool pinned to `threads`.
fn report_at(threads: usize) -> String {
    uvpu::par::with_threads(threads, || compare_workload::run(true).core_json)
}

#[test]
fn report_core_is_byte_identical_across_thread_counts() {
    let reference = report_at(1);
    for threads in [2, 4, 7] {
        assert_eq!(
            report_at(threads),
            reference,
            "thread count {threads} changed the deterministic report core"
        );
    }
}

#[test]
fn report_core_is_stable_across_repeated_runs() {
    let first = report_at(2);
    let second = report_at(2);
    assert_eq!(first, second, "same pool size, different report");
}

#[test]
fn report_has_the_expected_shape() {
    let core = report_at(2);

    assert!(
        core.starts_with("{\n  \"schema\": \"uvpu-compare/v1\""),
        "schema header missing:\n{}",
        &core[..core.len().min(200)]
    );

    // All seven backends present, and in sorted key order.
    let names = ["ARK", "BASALISC", "BTS", "F1", "Ours", "RPU", "SHARP"];
    let mut last = 0;
    for name in names {
        let key = format!("\"{name}\": {{\n");
        let at = core
            .find(&key)
            .unwrap_or_else(|| panic!("backend {name} missing"));
        assert!(at > last, "backend {name} out of sorted order");
        last = at;
    }

    // The Ours ratio row is exactly 1 in every column.
    assert!(
        core.contains("\"Ours\": {\"cycles\": 1.000000, \"energy_pj\": 1.000000"),
        "Ours ratio row must be the identity"
    );

    // Phases from every layer of the stack are attributed. (Wall-clock
    // `task.*` spans are advisory-only in the profiler and carry no
    // cycle deltas, so they never appear here.)
    for phase in [
        "ntt.forward_negacyclic",
        "noc.transfer",
        "ckks.rescale",
        "bfv.mul",
    ] {
        assert!(
            core.contains(&format!("\"{phase}\"")),
            "phase {phase} missing"
        );
    }

    // Every cost component appears in the per-backend energy bins.
    for component in [
        "lanes.butterfly",
        "lanes.ewise",
        "net.cg_stages",
        "net.shift_stages",
        "net.ports",
        "net.base",
        "regfile",
    ] {
        assert!(
            core.contains(&format!("\"{component}\"")),
            "component {component} missing"
        );
    }

    // The deterministic core never carries the advisory section.
    assert!(
        !core.contains("\"advisory\""),
        "advisory leaked into the core"
    );
}

#[test]
fn advisory_wrapper_never_gates() {
    let core = report_at(2);
    let with = uvpu::metrics::snapshot::with_advisory(&core, &[("wall_ms", "1.0".into())]);
    assert_ne!(with, core);
    assert!(uvpu::metrics::snapshot::diff_context(&core, &with, 3, 60).is_empty());
}
