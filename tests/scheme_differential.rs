//! Differential testing of the FHE schemes: random homomorphic programs
//! executed twice — on ciphertexts and on a plaintext reference — must
//! agree (approximately for CKKS, exactly for BFV).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uvpu::bfv;
use uvpu::ckks;
use uvpu::ckks::encoder::C64;

#[test]
fn ckks_random_program_tracks_reference() {
    let ctx = ckks::params::CkksContext::new(ckks::params::CkksParams::new(1 << 6, 5, 40).unwrap())
        .unwrap();
    let encoder = ckks::encoder::Encoder::new(&ctx);
    let slots = encoder.slot_count();
    let mut kg = ckks::keys::KeyGenerator::new(&ctx, StdRng::seed_from_u64(101));
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk).unwrap();
    let rlk = kg.relin_key(&sk).unwrap();
    let gks = kg.galois_keys(&sk, &[1, 2, 4, 8]).unwrap();
    let eval = ckks::ops::Evaluator::new(&ctx);

    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let mut reference: Vec<f64> = (0..slots).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let values: Vec<C64> = reference.iter().map(|&x| C64::from(x)).collect();
        let mut ct = eval
            .encrypt(
                &pk,
                &encoder
                    .encode(&ctx, ctx.params().levels(), &values)
                    .unwrap(),
                &mut rng,
            )
            .unwrap();

        // A random program bounded by the level budget AND the precision
        // budget: masks stay near magnitude 1 and only one squaring is
        // allowed, so values never sink below CKKS's noise floor.
        let mut levels_left = ctx.params().levels();
        let mut squares_left = 1u32;
        for _ in 0..6 {
            match rng.gen_range(0..4u8) {
                0 => {
                    // ct + ct (double).
                    ct = eval.add(&ct, &ct).unwrap();
                    for x in &mut reference {
                        *x *= 2.0;
                    }
                }
                1 if levels_left >= 1 => {
                    // Multiply by a mask of magnitude ≈ 1 (precision-neutral).
                    let mask: Vec<f64> = (0..slots)
                        .map(|_| {
                            rng.gen_range(0.5..1.5) * if rng.gen_bool(0.5) { -1.0 } else { 1.0 }
                        })
                        .collect();
                    let pt = encoder
                        .encode(
                            &ctx,
                            ct.level(),
                            &mask.iter().map(|&x| C64::from(x)).collect::<Vec<_>>(),
                        )
                        .unwrap();
                    ct = eval.rescale(&eval.mul_plain(&ct, &pt).unwrap()).unwrap();
                    for (x, m) in reference.iter_mut().zip(&mask) {
                        *x *= m;
                    }
                    levels_left -= 1;
                }
                2 if levels_left >= 1 && squares_left > 0 => {
                    // Square (once: repeated squaring of sub-unit values
                    // underflows any fixed-point representation).
                    ct = eval.rescale(&eval.mul(&ct, &ct, &rlk).unwrap()).unwrap();
                    for x in &mut reference {
                        *x = *x * *x;
                    }
                    levels_left -= 1;
                    squares_left -= 1;
                }
                _ => {
                    // Rotate by a keyed power of two.
                    let step = 1usize << rng.gen_range(0..4u32);
                    ct = eval.rotate(&ct, step as i64, &gks).unwrap();
                    reference.rotate_left(step);
                }
            }
        }

        let got = encoder.decode(&ctx, &eval.decrypt(&sk, &ct).unwrap());
        for j in 0..slots {
            assert!(
                (got[j].re - reference[j]).abs() < 5e-3,
                "seed {seed} slot {j}: {} vs {}",
                got[j].re,
                reference[j]
            );
        }
    }
}

#[test]
fn bfv_random_program_is_exact() {
    let params = bfv::params::BfvParams::new(1 << 6, 50).unwrap();
    let encoder = bfv::encoder::BatchEncoder::new(&params).unwrap();
    let t = params.plain_modulus().value();
    let rows = encoder.row_size();
    let mut kg = bfv::keys::KeyGenerator::new(&params, StdRng::seed_from_u64(202));
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk).unwrap();
    let gks = kg.galois_keys(&sk, &[1, 2, 4]).unwrap();
    let eval = bfv::cipher::Evaluator::new(&params);

    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let mut reference: Vec<u64> = (0..encoder.slot_count())
            .map(|_| rng.gen_range(0..t))
            .collect();
        let mut ct = eval
            .encrypt(&pk, &encoder.encode(&reference).unwrap(), &mut rng)
            .unwrap();

        // The program must respect the noise budget: each plaintext
        // multiplication scales the noise by ‖mask‖ and each rotation
        // adds keyswitch noise (~2^25 for these parameters), so cap the
        // multiplications at two with small masks.
        let mut muls_left = 2u32;
        for _ in 0..5 {
            match rng.gen_range(0..3u8) {
                0 => {
                    let mask: Vec<u64> = (0..reference.len())
                        .map(|_| rng.gen_range(0..100))
                        .collect();
                    ct = eval
                        .add_plain(&ct, &encoder.encode(&mask).unwrap())
                        .unwrap();
                    for (x, m) in reference.iter_mut().zip(&mask) {
                        *x = (*x + m) % t;
                    }
                }
                1 if muls_left > 0 => {
                    // Broadcast scalar: a per-slot batched mask encodes to
                    // a polynomial with coefficients up to t, whose ring
                    // norm would amplify the rotation noise past Δ/2; a
                    // constant mask encodes to a constant polynomial and
                    // only scales noise by the scalar.
                    let c = rng.gen_range(2..8u64);
                    let mask = vec![c; reference.len()];
                    ct = eval
                        .mul_plain(&ct, &encoder.encode(&mask).unwrap())
                        .unwrap();
                    for x in reference.iter_mut() {
                        *x = *x * c % t;
                    }
                    muls_left -= 1;
                }
                _ => {
                    let step = 1usize << rng.gen_range(0..3u32);
                    ct = eval.rotate_rows(&ct, step as i64, &gks).unwrap();
                    // Rows rotate independently.
                    let (r0, r1) = reference.split_at_mut(rows);
                    r0.rotate_left(step);
                    r1.rotate_left(step);
                }
            }
        }

        let got = encoder.decode(&eval.decrypt(&sk, &ct).unwrap());
        assert_eq!(got, reference, "seed {seed}: BFV must be exact");
        assert!(eval.noise_budget(&sk, &ct).unwrap() > 0.0);
    }
}
