//! Cross-crate property-based tests (proptest): the big invariants over
//! randomly drawn shapes and parameters.

use proptest::prelude::*;
use uvpu::math::automorphism::AffineMap;
use uvpu::math::modular::Modulus;
use uvpu::math::ntt::naive_cyclic_dft;
use uvpu::math::primes::ntt_prime;
use uvpu::math::rns::RnsBasis;
use uvpu::vpu::auto_map::AutomorphismMapping;
use uvpu::vpu::ntt_map::NttPlan;
use uvpu::vpu::vpu::Vpu;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any (n, m) shape: the mapped forward transform equals the naive DFT.
    #[test]
    fn vpu_ntt_equals_naive_dft(
        log_n in 4u32..=9,
        log_m in 2u32..=6,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let m = (1usize << log_m).min(n);
        let q = Modulus::new(ntt_prime(30, n).unwrap()).unwrap();
        let plan = NttPlan::new(q, n, m).unwrap();
        let mut vpu = Vpu::new(m, q, 8).unwrap();
        let mut s = seed;
        let data: Vec<u64> = (0..n).map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            q.reduce_u64(s)
        }).collect();
        let got = plan.execute_forward(&mut vpu, &data).unwrap();
        prop_assert_eq!(got.output, naive_cyclic_dft(&data, plan.omega(), &q));
    }

    /// Forward then inverse is the identity for any shape, negacyclic too.
    #[test]
    fn vpu_ntt_round_trip(
        log_n in 4u32..=10,
        log_m in 2u32..=6,
        negacyclic in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let m = (1usize << log_m).min(n);
        let q = Modulus::new(ntt_prime(30, n).unwrap()).unwrap();
        let plan = NttPlan::new(q, n, m).unwrap();
        let mut vpu = Vpu::new(m, q, 8).unwrap();
        let mut s = seed;
        let data: Vec<u64> = (0..n).map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            q.reduce_u64(s)
        }).collect();
        let (fwd, back) = if negacyclic {
            let f = plan.execute_forward_negacyclic(&mut vpu, &data).unwrap();
            let b = plan.execute_inverse_negacyclic(&mut vpu, &f.output).unwrap();
            (f, b)
        } else {
            let f = plan.execute_forward(&mut vpu, &data).unwrap();
            let b = plan.execute_inverse(&mut vpu, &f.output).unwrap();
            (f, b)
        };
        prop_assert_eq!(back.output, data);
        // Inverse costs mirror forward costs (same pass structure).
        prop_assert_eq!(fwd.stats.butterfly, back.stats.butterfly);
        prop_assert_eq!(fwd.stats.network_move, back.stats.network_move);
    }

    /// Any automorphism at any decomposable size is a single pass per
    /// column and matches the index map.
    #[test]
    fn vpu_automorphism_any_shape(
        log_n in 6u32..=12,
        log_m in 2u32..=6,
        g_seed in any::<u64>(),
        t_seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let m = 1usize << log_m.min(log_n);
        let g = (g_seed % n as u64) | 1;
        let t = t_seed % n as u64;
        let q = Modulus::new(ntt_prime(30, n).unwrap()).unwrap();
        let mut vpu = Vpu::new(m, q, 8).unwrap();
        let data: Vec<u64> = (0..n as u64).collect();
        let plan = AutomorphismMapping::new(n, m, g, t).unwrap();
        let run = plan.execute(&mut vpu, &data).unwrap();
        prop_assert_eq!(run.stats.network_move as usize, n / m);
        prop_assert!((run.utilization() - 1.0).abs() < 1e-12);
        prop_assert_eq!(run.output, AffineMap::new(n, g, t).unwrap().permute(&data));
    }

    /// CRT reconstruction round-trips arbitrary residue vectors.
    #[test]
    fn rns_reconstruction_round_trip(seeds in prop::collection::vec(any::<u64>(), 4)) {
        let basis = RnsBasis::new(vec![0x0fff_ffff_fffc_0001, 65537, 97, 193]).unwrap();
        let residues: Vec<u64> = basis
            .moduli()
            .iter()
            .zip(&seeds)
            .map(|(m, &s)| s % m.value())
            .collect();
        let x = basis.reconstruct(&residues);
        for (m, &r) in basis.moduli().iter().zip(&residues) {
            prop_assert_eq!(x.rem_u64(m.value()), r);
        }
    }

    /// The affine group law holds under composition and inversion.
    #[test]
    fn affine_group_law(
        log_n in 1u32..=12,
        a_g in any::<u64>(), a_t in any::<u64>(),
        b_g in any::<u64>(), b_t in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let a = AffineMap::new(n, (a_g % n as u64) | 1, a_t % n as u64).unwrap();
        let b = AffineMap::new(n, (b_g % n as u64) | 1, b_t % n as u64).unwrap();
        let ab = a.then(&b);
        let i = (a_t as usize) % n;
        prop_assert_eq!(ab.apply_index(i), b.apply_index(a.apply_index(i)));
        prop_assert!(ab.then(&ab.inverse()).is_identity());
    }
}
