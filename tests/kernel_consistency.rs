//! The contract of the lazy-reduction kernel layer (`uvpu_math::kernel`)
//! and the polynomial pool (`uvpu_math::pool`):
//!
//! - the Harvey lazy-reduction transforms are **bit-exact** against the
//!   fully-reduced reference transforms for random polynomials, across
//!   the cached modulus/size combinations, at 1, 2, and 4 worker
//!   threads;
//! - the fused pipelines equal their unfused three-pass compositions;
//! - pooled buffers never alias while concurrently borrowed, from any
//!   mix of pool workers.

use proptest::prelude::*;
use uvpu::math::kernel::fourstep;
use uvpu::math::modular::Modulus;
use uvpu::math::ntt::NttTable;
use uvpu::math::primes::ntt_prime;
use uvpu::math::{cache, kernel, pool};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Deterministic pseudo-random canonical polynomial.
fn random_poly(mut seed: u64, n: usize, q: &Modulus) -> Vec<u64> {
    (0..n)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.reduce_u64(seed)
        })
        .collect()
}

/// The reference negacyclic product via the fully-reduced transforms.
fn reference_mul(table: &NttTable, a: &[u64], b: &[u64]) -> Vec<u64> {
    let q = table.modulus();
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    table.forward_inplace_reference(&mut fa);
    table.forward_inplace_reference(&mut fb);
    for (x, &y) in fa.iter_mut().zip(&fb) {
        *x = q.mul(*x, y);
    }
    table.inverse_inplace_reference(&mut fa);
    fa
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Lazy forward/inverse transforms are bit-exact against the
    /// reference for every cached modulus tried and any thread count
    /// (the kernels also run *on* pool workers via `par_map_indexed`,
    /// exercising the worker-local pool hooks).
    #[test]
    fn lazy_transforms_match_reference(
        log_n in 3u32..=10,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        for bits in [30u32, 50] {
            let q = Modulus::new(ntt_prime(bits, n).unwrap()).unwrap();
            let table = cache::ntt_table(q, n).unwrap();
            let data = random_poly(seed ^ u64::from(bits), n, &q);

            let mut fwd_ref = data.clone();
            table.forward_inplace_reference(&mut fwd_ref);
            let mut inv_ref = data.clone();
            table.inverse_inplace_reference(&mut inv_ref);

            for t in THREAD_COUNTS {
                let (fwd, inv) = uvpu::par::with_threads(t, || {
                    let outs = uvpu::par::par_map_indexed(2, |dir| {
                        let mut a = pool::take_copy(&data);
                        if dir == 0 {
                            kernel::forward_inplace(&table, &mut a);
                        } else {
                            kernel::inverse_inplace(&table, &mut a);
                        }
                        a
                    });
                    let mut it = outs.into_iter();
                    (it.next().unwrap(), it.next().unwrap())
                });
                prop_assert_eq!(&fwd, &fwd_ref);
                prop_assert_eq!(&inv, &inv_ref);
            }
        }
    }

    /// The fused forward→pointwise→inverse pipeline equals the reference
    /// three-pass product, at any thread count.
    #[test]
    fn fused_pointwise_matches_three_pass(
        log_n in 3u32..=10,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let q = Modulus::new(ntt_prime(50, n).unwrap()).unwrap();
        let table = cache::ntt_table(q, n).unwrap();
        let a = random_poly(seed, n, &q);
        let b = random_poly(seed.rotate_left(17) ^ 0x9e37, n, &q);
        let expect = reference_mul(&table, &a, &b);
        for t in THREAD_COUNTS {
            let got = uvpu::par::with_threads(t, || {
                let mut out = pool::take_scratch(n);
                kernel::ntt_pointwise_intt(&table, &a, &b, &mut out);
                out
            });
            prop_assert_eq!(&got, &expect);
        }
    }

    /// Every power-of-two (n1, n2) factorization of the four-step
    /// decomposition produces output bitwise equal to the direct kernel,
    /// in both directions, across the cached modulus widths.
    #[test]
    fn fourstep_every_split_matches_direct(seed in any::<u64>()) {
        let n = 1usize << 12;
        for bits in [30u32, 50] {
            let q = Modulus::new(ntt_prime(bits, n).unwrap()).unwrap();
            let table = cache::ntt_table(q, n).unwrap();
            let data = random_poly(seed ^ u64::from(bits), n, &q);

            let mut fwd_direct = data.clone();
            kernel::forward_inplace_direct(&table, &mut fwd_direct);
            let mut inv_direct = data.clone();
            kernel::inverse_inplace_direct(&table, &mut inv_direct);

            let mut n1 = 2usize;
            while n1 <= n / 2 {
                let fs = cache::fourstep_tables(&table, n1);
                let mut fwd = data.clone();
                fourstep::forward_inplace(&table, &fs, &mut fwd);
                prop_assert_eq!(&fwd, &fwd_direct);
                let mut inv = data.clone();
                fourstep::inverse_inplace(&table, &fs, &mut inv);
                prop_assert_eq!(&inv, &inv_direct);
                n1 *= 2;
            }
        }
    }

    /// Eval-domain accumulation (the keyswitch inner loop) equals the
    /// coefficient-domain sum of reference products: for digits d_i and
    /// keys k_i, `INTT(Σ NTT(d_i)⊙NTT(k_i)) == Σ INTT(NTT(d_i)⊙NTT(k_i))`.
    #[test]
    fn eval_domain_accumulation_is_linear(
        log_n in 3u32..=9,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let q = Modulus::new(ntt_prime(50, n).unwrap()).unwrap();
        let table = cache::ntt_table(q, n).unwrap();
        let digits: Vec<Vec<u64>> = (0..3)
            .map(|i| random_poly(seed.wrapping_add(i), n, &q))
            .collect();
        let keys: Vec<Vec<u64>> = (0..3)
            .map(|i| {
                let mut k = random_poly(seed.rotate_left(7).wrapping_add(i), n, &q);
                table.forward_inplace_reference(&mut k);
                k
            })
            .collect();

        // Reference: coefficient-domain sum of per-digit products.
        let mut expect = vec![0u64; n];
        for (d, k) in digits.iter().zip(&keys) {
            let mut fd = d.clone();
            table.forward_inplace_reference(&mut fd);
            for (x, &y) in fd.iter_mut().zip(k) {
                *x = q.mul(*x, y);
            }
            table.inverse_inplace_reference(&mut fd);
            for (e, &p) in expect.iter_mut().zip(&fd) {
                *e = q.add(*e, p);
            }
        }

        // Kernel path: accumulate in the evaluation domain, one inverse.
        let mut acc = pool::take_zeroed(n);
        for (d, k) in digits.iter().zip(&keys) {
            kernel::ntt_accumulate(&table, d, k, &mut acc);
        }
        kernel::inverse_inplace(&table, &mut acc);
        prop_assert_eq!(&acc, &expect);
    }
}

/// Concurrently borrowed pool buffers are disjoint allocations: every
/// worker holds four buffers at once, fills each with its own pattern,
/// and observes no cross-talk; the buffers' pointers are pairwise
/// distinct while held.
#[test]
fn pooled_borrows_never_alias() {
    for t in [1usize, 2, 4, 7] {
        let oks = uvpu::par::with_threads(t, || {
            uvpu::par::par_map_indexed(32, |i| {
                let mut bufs: Vec<Vec<u64>> = (0..4).map(|_| pool::take_scratch(353)).collect();
                let ptrs: Vec<*const u64> = bufs.iter().map(|b| b.as_ptr()).collect();
                for w in 0..ptrs.len() {
                    for v in w + 1..ptrs.len() {
                        assert_ne!(ptrs[w], ptrs[v], "aliased concurrent borrows");
                    }
                }
                for (j, b) in bufs.iter_mut().enumerate() {
                    for (k, x) in b.iter_mut().enumerate() {
                        *x = ((i as u64) << 32) | ((j as u64) << 16) | k as u64;
                    }
                }
                let ok = bufs.iter().enumerate().all(|(j, b)| {
                    b.iter()
                        .enumerate()
                        .all(|(k, &x)| x == ((i as u64) << 32) | ((j as u64) << 16) | k as u64)
                });
                for b in bufs {
                    pool::recycle(b);
                }
                ok
            })
        });
        assert!(
            oks.iter().all(|&ok| ok),
            "pool cross-talk detected at {t} threads"
        );
    }
}

/// 64-bit FNV-1a over a residue vector, for compact digest comparison.
fn fnv_digest(a: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in a {
        for byte in x.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// At the sizes the public entry points hand to the four-step path
/// (N = 2^16 and 2^17), the dispatched transform is bitwise equal to
/// the direct kernel — for the default split and for explicit
/// non-default ones — and the forward/inverse pair round-trips.
#[test]
fn fourstep_dispatch_matches_direct_at_large_sizes() {
    for log_n in [16u32, 17] {
        let n = 1usize << log_n;
        let q = Modulus::new(ntt_prime(50, n).unwrap()).unwrap();
        let table = cache::ntt_table(q, n).unwrap();
        let data = random_poly(0xF0CA_CC1A ^ n as u64, n, &q);

        let mut via_direct = data.clone();
        kernel::forward_inplace_direct(&table, &mut via_direct);

        assert!(n >= kernel::FOURSTEP_MIN_N, "sizes here must dispatch");
        let mut via_dispatch = data.clone();
        kernel::forward_inplace(&table, &mut via_dispatch);
        assert_eq!(via_dispatch, via_direct, "dispatched forward at n={n}");

        for n1 in [4usize, 256] {
            let fs = cache::fourstep_tables(&table, n1);
            let mut a = data.clone();
            fourstep::forward_inplace(&table, &fs, &mut a);
            assert_eq!(a, via_direct, "explicit split n1={n1} at n={n}");
        }

        kernel::inverse_inplace(&table, &mut via_dispatch);
        assert_eq!(via_dispatch, data, "round trip at n={n}");
    }
}

/// Output digests of the dispatched four-step transforms are identical
/// at 1, 2, and 4 worker threads: the parallel column/row passes
/// permute only the butterfly schedule, never the arithmetic.
#[test]
fn fourstep_digests_invariant_across_thread_counts() {
    let n = 1usize << 14;
    let q = Modulus::new(ntt_prime(50, n).unwrap()).unwrap();
    let table = cache::ntt_table(q, n).unwrap();
    let data = random_poly(0xD16E_5715, n, &q);

    let digests_at = |t: usize| {
        uvpu::par::with_threads(t, || {
            let mut a = data.clone();
            kernel::forward_inplace(&table, &mut a);
            let fwd = fnv_digest(&a);
            kernel::inverse_inplace(&table, &mut a);
            assert_eq!(a, data, "round trip at {t} threads");
            (fwd, fnv_digest(&a))
        })
    };

    let base = digests_at(1);
    for t in [2usize, 4] {
        assert_eq!(digests_at(t), base, "digest drift at {t} threads");
    }
}

/// Recycled buffers keep the pool's live-byte accounting consistent and
/// get reused (hit counter climbs) instead of reallocated.
#[test]
fn pool_reuses_recycled_buffers() {
    let len = 769usize; // unique length so other tests don't interfere
    let before = pool::stats();
    let first = pool::take_scratch(len);
    let first_ptr = first.as_ptr() as usize;
    pool::recycle(first);
    let second = pool::take_scratch(len);
    let second_ptr = second.as_ptr() as usize;
    pool::recycle(second);
    let after = pool::stats();
    assert_eq!(
        first_ptr, second_ptr,
        "second borrow must reuse the recycled slab"
    );
    assert!(after.hits > before.hits, "reuse must count as a pool hit");
}
