//! The contract of the `uvpu-par` host-parallel layer: every result —
//! scheme-level RNS math, lane-level functional simulation, accelerator
//! schedules, and traced cycle totals — is bit-identical for any worker
//! count. These tests run each workload under 1, 2, 4, and 7 threads
//! (an odd count deliberately not dividing the work evenly) and demand
//! equality, plus check that trace events emitted *from pool workers*
//! reach a globally installed sync sink.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uvpu::accel::config::AcceleratorConfig;
use uvpu::accel::graph::bootstrap_graph;
use uvpu::accel::machine::Accelerator;
use uvpu::accel::workload::FheOp;
use uvpu::ckks::ciphertext::Ciphertext;
use uvpu::ckks::encoder::{Encoder, C64};
use uvpu::ckks::keys::KeyGenerator;
use uvpu::ckks::ops::Evaluator;
use uvpu::ckks::params::{CkksContext, CkksParams};
use uvpu::ckks::rns_poly::RnsPoly;
use uvpu::math::{modular::Modulus, primes::ntt_prime};
use uvpu::vpu::auto_map::AutomorphismMapping;
use uvpu::vpu::ntt_map::NttPlan;
use uvpu::vpu::trace::{self, CounterSink, RingBufferSink, SyncSink, TraceEvent};
use uvpu::vpu::vpu::Vpu;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Runs `f` once per thread count and asserts all results are equal.
fn assert_thread_invariant<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) {
    let baseline = uvpu::par::with_threads(1, &f);
    for t in &THREAD_COUNTS[1..] {
        let r = uvpu::par::with_threads(*t, &f);
        assert_eq!(baseline, r, "result diverged at {t} threads");
    }
}

fn ckks_ctx() -> CkksContext {
    CkksContext::new(CkksParams::new(1 << 7, 3, 40).expect("params")).expect("context")
}

fn coeffs(ct: &Ciphertext) -> Vec<Vec<u64>> {
    ct.parts
        .iter()
        .flat_map(|p| (0..=p.level()).map(|i| p.residue(i).coeffs().to_vec()))
        .collect()
}

#[test]
fn rns_ops_are_bit_identical_across_thread_counts() {
    let ctx = ckks_ctx();
    let n = ctx.params().n();
    let a_coeffs: Vec<i64> = (0..n as i64).map(|i| i * 37 - 1000).collect();
    let b_coeffs: Vec<i64> = (0..n as i64).map(|i| 5000 - i * 11).collect();
    assert_thread_invariant(|| {
        let a = RnsPoly::from_signed(&ctx, 3, &a_coeffs).expect("a");
        let b = RnsPoly::from_signed(&ctx, 3, &b_coeffs).expect("b");
        let ae = a.to_evaluation(&ctx);
        let be = b.to_evaluation(&ctx);
        let prod = ae.mul(&be).expect("mul").to_coefficient(&ctx);
        let rot = prod.galois(5).expect("galois");
        let dropped = prod.rescale(&ctx).expect("rescale");
        (prod, rot, dropped)
    });
}

#[test]
fn ckks_mul_rescale_is_bit_identical_across_thread_counts() {
    let ctx = ckks_ctx();
    let enc = Encoder::new(&ctx);
    let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(11));
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk).expect("pk");
    let rlk = kg.relin_key(&sk).expect("rlk");
    let eval = Evaluator::new(&ctx);
    let x: Vec<C64> = (0..ctx.params().slot_count())
        .map(|j| C64::from(0.5 + j as f64 * 0.01))
        .collect();
    let mut rng = StdRng::seed_from_u64(12);
    let ct = eval
        .encrypt(&pk, &enc.encode(&ctx, 3, &x).expect("encode"), &mut rng)
        .expect("encrypt");
    assert_thread_invariant(|| {
        let out = eval
            .rescale(&eval.mul(&ct, &ct, &rlk).expect("mul"))
            .expect("rescale");
        coeffs(&out)
    });
}

#[test]
fn lane_simulation_is_bit_identical_across_thread_counts() {
    let (n, m) = (1 << 10, 64);
    let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
    let data: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x9e37) % 1000)
        .collect();
    assert_thread_invariant(|| {
        let plan = NttPlan::new(q, n, m).expect("plan");
        let mut vpu = Vpu::new(m, q, 8).expect("vpu");
        let fwd = plan
            .execute_forward_negacyclic(&mut vpu, &data)
            .expect("forward");
        let auto = AutomorphismMapping::new(n, m, 5, 0)
            .expect("auto plan")
            .execute(&mut vpu, &fwd.output)
            .expect("auto");
        let back = plan
            .execute_inverse_negacyclic(&mut vpu, &fwd.output)
            .expect("inverse");
        assert_eq!(back.output, data, "NTT round trip");
        (fwd.output, fwd.stats, auto.output, auto.stats, *vpu.stats())
    });
}

#[test]
fn accel_reports_are_bit_identical_across_thread_counts() {
    let ops = [
        FheOp::HMult {
            n: 1 << 10,
            limbs: 3,
        },
        FheOp::HRot {
            n: 1 << 10,
            limbs: 2,
        },
        FheOp::Ntt { n: 1 << 11 },
    ];
    let graph = bootstrap_graph(1 << 10, 2, 3, 4);
    assert_thread_invariant(|| {
        let flat = Accelerator::new(AcceleratorConfig::default())
            .expect("accel")
            .run(&ops)
            .expect("run");
        let dag = graph
            .schedule(&AcceleratorConfig::default())
            .expect("schedule");
        let cp = graph.critical_path_beats(64).expect("critical path");
        let latency = ops[0].latency_beats(64).expect("latency");
        (flat, dag, cp, latency)
    });
}

#[test]
fn counter_sink_totals_match_cycle_stats_under_parallel_run() {
    let (n, m) = (1 << 11, 64);
    let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
    let data: Vec<u64> = (0..n as u64).collect();
    for t in THREAD_COUNTS {
        uvpu::par::with_threads(t, || {
            let counter = SyncSink::new(CounterSink::new());
            let plan = NttPlan::new(q, n, m).expect("plan");
            let mut vpu = Vpu::with_sink(m, q, 8, counter.clone()).expect("vpu");
            let run = plan
                .execute_forward_negacyclic(&mut vpu, &data)
                .expect("ntt");
            AutomorphismMapping::new(n, m, 5, 0)
                .expect("auto plan")
                .execute(&mut vpu, &data)
                .expect("auto");
            let traced = counter.with(|c| *c.running());
            assert_eq!(
                traced,
                *vpu.stats(),
                "trace-derived totals diverged from CycleStats at {t} threads"
            );
            assert!(run.stats.total() > 0);
        });
    }
}

#[test]
fn worker_emitted_spans_reach_the_sync_global_sink() {
    uvpu::par::with_threads(4, || {
        let sink = SyncSink::new(RingBufferSink::new(1024));
        trace::install_global_sync(sink.clone());
        let spans = 16usize;
        uvpu::par::par_map_indexed(spans, |i| {
            // Emitted from whichever pool worker picks up index `i`:
            // without install-on-spawn propagation these would vanish
            // into the worker's unset thread-local slot.
            trace::global_span_at(7, &format!("worker.{i}"), i as u64, i as u64 + 1);
        });
        trace::take_global_sync();
        let (begins, ends) = sink.with(|rb| {
            let begins = rb
                .events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::SpanBegin { track: 7, .. }))
                .count();
            let ends = rb
                .events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::SpanEnd { track: 7, .. }))
                .count();
            (begins, ends)
        });
        assert_eq!(begins, spans, "every worker-side span begin captured");
        assert_eq!(ends, spans, "every worker-side span end captured");
    });
}

#[test]
fn plan_caches_share_one_table_per_key() {
    let n = 1 << 9;
    let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
    let a = uvpu::math::cache::ntt_table(q, n).expect("table");
    let b = uvpu::math::cache::ntt_table(q, n).expect("table");
    assert!(std::sync::Arc::ptr_eq(&a, &b), "NTT table memoized");
    let p1 = NttPlan::cached(q, n, 64).expect("plan");
    let p2 = NttPlan::cached(q, n, 64).expect("plan");
    assert!(std::sync::Arc::ptr_eq(&p1, &p2), "NTT plan memoized");
    let m1 = AutomorphismMapping::cached(n, 64, 5, 0).expect("map");
    let m2 = AutomorphismMapping::cached(n, 64, 5, 0).expect("map");
    assert!(
        std::sync::Arc::ptr_eq(&m1, &m2),
        "automorphism plan memoized"
    );
}
