//! The homomorphic evaluator: encryption, decryption, and every operation
//! the paper's VPU accelerates — HAdd, HMult + relinearization + rescale,
//! and HRot via automorphism + keyswitch (paper §II-A).

use crate::ciphertext::Ciphertext;
use crate::encoder::Plaintext;
use crate::keys::{GaloisKeys, KeySwitchKey, PublicKey, SecretKey};
use crate::params::CkksContext;
use crate::rns_poly::RnsPoly;
use crate::CkksError;
use rand::Rng;
use uvpu_core::trace::{scheme_span, scheme_span_lazy};

/// Relative scale tolerance for additions; the prime chain is sampled
/// just below `2^scale_bits`, so rescaled operand scales agree to ~1e−5.
const SCALE_TOLERANCE: f64 = 1e-3;

/// The homomorphic evaluator over one context.
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use uvpu_ckks::encoder::{C64, Encoder};
/// use uvpu_ckks::keys::KeyGenerator;
/// use uvpu_ckks::ops::Evaluator;
/// use uvpu_ckks::params::{CkksContext, CkksParams};
///
/// # fn main() -> Result<(), uvpu_ckks::CkksError> {
/// let ctx = CkksContext::new(CkksParams::new(1 << 6, 2, 40)?)?;
/// let encoder = Encoder::new(&ctx);
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(8));
/// let sk = kg.secret_key();
/// let pk = kg.public_key(&sk)?;
/// let eval = Evaluator::new(&ctx);
///
/// let pt = encoder.encode(&ctx, ctx.params().levels(), &[C64::from(2.5)])?;
/// let ct = eval.encrypt(&pk, &pt, &mut rng)?;
/// let dec = eval.decrypt(&sk, &ct)?;
/// let out = encoder.decode(&ctx, &dec);
/// assert!((out[0].re - 2.5).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'a> {
    ctx: &'a CkksContext,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over the context.
    #[must_use]
    pub const fn new(ctx: &'a CkksContext) -> Self {
        Self { ctx }
    }

    /// Public-key encryption at the plaintext's level.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn encrypt<R: Rng>(
        &self,
        pk: &PublicKey,
        pt: &Plaintext,
        rng: &mut R,
    ) -> Result<Ciphertext, CkksError> {
        let _span = scheme_span("ckks.encrypt");
        let ctx = self.ctx;
        let level = pt.poly.level();
        let v = RnsPoly::sample_ternary(ctx, level, rng)?.to_evaluation(ctx);
        let e0 = RnsPoly::sample_error(ctx, level, rng)?;
        let e1 = RnsPoly::sample_error(ctx, level, rng)?;
        let b = pk.b.truncate_level(level)?.to_evaluation(ctx);
        let a = pk.a.truncate_level(level)?.to_evaluation(ctx);
        let mut c0 = v.mul(&b)?.to_coefficient(ctx);
        c0.add_assign(&e0)?;
        c0.add_assign(&pt.poly)?;
        let mut c1 = v.mul(&a)?.to_coefficient(ctx);
        c1.add_assign(&e1)?;
        Ok(Ciphertext {
            parts: vec![c0, c1],
            scale: pt.scale,
        })
    }

    /// Secret-key encryption (fresh uniform mask; lower noise than
    /// public-key encryption).
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn encrypt_symmetric<R: Rng>(
        &self,
        sk: &SecretKey,
        pt: &Plaintext,
        rng: &mut R,
    ) -> Result<Ciphertext, CkksError> {
        let ctx = self.ctx;
        let level = pt.poly.level();
        let a = RnsPoly::sample_uniform(ctx, level, rng)?;
        let e = RnsPoly::sample_error(ctx, level, rng)?;
        let s = sk.at_level(ctx, level)?.to_evaluation(ctx);
        let mut c0 = e;
        c0.sub_assign(&a.clone().to_evaluation(ctx).mul(&s)?.to_coefficient(ctx))?;
        c0.add_assign(&pt.poly)?;
        Ok(Ciphertext {
            parts: vec![c0, a],
            scale: pt.scale,
        })
    }

    /// Decryption: `Σ_k parts[k]·s^k`, returned as a plaintext carrying
    /// the ciphertext's scale.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn decrypt(&self, sk: &SecretKey, ct: &Ciphertext) -> Result<Plaintext, CkksError> {
        let ctx = self.ctx;
        let level = ct.level();
        let s = sk.at_level(ctx, level)?.to_evaluation(ctx);
        let mut acc = ct.parts[0].clone().to_evaluation(ctx);
        let mut s_pow = s.clone();
        for part in &ct.parts[1..] {
            acc.add_assign(&part.clone().to_evaluation(ctx).mul(&s_pow)?)?;
            s_pow = s_pow.mul(&s)?;
        }
        Ok(Plaintext {
            poly: acc.to_coefficient(ctx),
            scale: ct.scale,
        })
    }

    fn align(&self, a: &Ciphertext, b: &Ciphertext) -> Result<(Ciphertext, Ciphertext), CkksError> {
        let level = a.level().min(b.level());
        let shrink = |ct: &Ciphertext| -> Result<Ciphertext, CkksError> {
            Ok(Ciphertext {
                parts: ct
                    .parts
                    .iter()
                    .map(|p| p.truncate_level(level))
                    .collect::<Result<_, _>>()?,
                scale: ct.scale,
            })
        };
        let (a, b) = (shrink(a)?, shrink(b)?);
        let rel = (a.scale - b.scale).abs() / a.scale.max(b.scale);
        if rel > SCALE_TOLERANCE {
            return Err(CkksError::ScaleMismatch {
                left: a.scale,
                right: b.scale,
            });
        }
        Ok((a, b))
    }

    /// Homomorphic addition (HAdd). Operands are aligned to the lower
    /// level; scales must agree to the chain tolerance.
    ///
    /// # Errors
    ///
    /// [`CkksError::ScaleMismatch`] or substrate errors.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        let _span = scheme_span("ckks.add");
        let (a, b) = self.align(a, b)?;
        let size = a.size().max(b.size());
        let level = a.level();
        let zero = RnsPoly::zero(self.ctx, level)?;
        let mut parts = Vec::with_capacity(size);
        for k in 0..size {
            let x = a.parts.get(k).unwrap_or(&zero);
            let y = b.parts.get(k).unwrap_or(&zero);
            parts.push(x.add(y)?);
        }
        Ok(Ciphertext {
            parts,
            scale: a.scale.max(b.scale),
        })
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    ///
    /// [`CkksError::ScaleMismatch`] or substrate errors.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        let (a, b) = self.align(a, b)?;
        let size = a.size().max(b.size());
        let level = a.level();
        let zero = RnsPoly::zero(self.ctx, level)?;
        let mut parts = Vec::with_capacity(size);
        for k in 0..size {
            let x = a.parts.get(k).unwrap_or(&zero);
            let y = b.parts.get(k).unwrap_or(&zero);
            parts.push(x.sub(y)?);
        }
        Ok(Ciphertext {
            parts,
            scale: a.scale.max(b.scale),
        })
    }

    /// Adds a plaintext to a ciphertext.
    ///
    /// # Errors
    ///
    /// [`CkksError::ScaleMismatch`] or substrate errors.
    pub fn add_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        let level = ct.level().min(pt.poly.level());
        let rel = (ct.scale - pt.scale).abs() / ct.scale.max(pt.scale);
        if rel > SCALE_TOLERANCE {
            return Err(CkksError::ScaleMismatch {
                left: ct.scale,
                right: pt.scale,
            });
        }
        let mut parts: Vec<RnsPoly> = ct
            .parts
            .iter()
            .map(|p| p.truncate_level(level))
            .collect::<Result<_, _>>()?;
        parts[0].add_assign(&pt.poly.truncate_level(level)?)?;
        Ok(Ciphertext {
            parts,
            scale: ct.scale,
        })
    }

    /// Multiplies a ciphertext by a plaintext; the scales multiply.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn mul_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        let ctx = self.ctx;
        let level = ct.level().min(pt.poly.level());
        let p_eval = pt.poly.truncate_level(level)?.to_evaluation(ctx);
        let parts = ct
            .parts
            .iter()
            .map(|c| {
                Ok(c.truncate_level(level)?
                    .to_evaluation(ctx)
                    .mul(&p_eval)?
                    .to_coefficient(ctx))
            })
            .collect::<Result<_, CkksError>>()?;
        Ok(Ciphertext {
            parts,
            scale: ct.scale * pt.scale,
        })
    }

    /// Homomorphic multiplication (HMult) with immediate relinearization:
    /// the tensor product runs in the NTT domain, and the quadratic part
    /// is keyswitched back to a 2-part ciphertext with `rlk`.
    ///
    /// The caller usually follows with [`Self::rescale`].
    ///
    /// # Errors
    ///
    /// [`CkksError::ScaleMismatch`] or substrate errors.
    pub fn mul(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        rlk: &KeySwitchKey,
    ) -> Result<Ciphertext, CkksError> {
        if a.size() != 2 || b.size() != 2 {
            return Err(CkksError::InvalidParameters(
                "multiplication expects relinearized (2-part) ciphertexts".into(),
            ));
        }
        let _span = scheme_span("ckks.mul");
        let ctx = self.ctx;
        let level = a.level().min(b.level());
        let a0 = a.parts[0].truncate_level(level)?.to_evaluation(ctx);
        let a1 = a.parts[1].truncate_level(level)?.to_evaluation(ctx);
        let b0 = b.parts[0].truncate_level(level)?.to_evaluation(ctx);
        let b1 = b.parts[1].truncate_level(level)?.to_evaluation(ctx);
        let d0 = a0.mul(&b0)?;
        let mut d1 = a0.mul(&b1)?;
        d1.add_assign(&a1.mul(&b0)?)?;
        let d2 = a1.mul(&b1)?.to_coefficient(ctx);
        // Relinearize d2·s² into (ks0, ks1).
        let (ks0, ks1) = self.keyswitch(&d2, rlk)?;
        let mut c0 = d0.to_coefficient(ctx);
        c0.add_assign(&ks0)?;
        let mut c1 = d1.to_coefficient(ctx);
        c1.add_assign(&ks1)?;
        Ok(Ciphertext {
            parts: vec![c0, c1],
            scale: a.scale * b.scale,
        })
    }

    /// Hybrid keyswitch: `d` is decomposed into per-prime centered
    /// digits, each digit multiplies the extended-basis key pair, and the
    /// accumulated result is divided by the special prime `P` (mod-down)
    /// — shrinking the digit noise by `P`.
    fn keyswitch(&self, d: &RnsPoly, key: &KeySwitchKey) -> Result<(RnsPoly, RnsPoly), CkksError> {
        let level = d.level();
        let digits: Vec<Vec<i64>> = (0..=level).map(|j| d.residue_centered(j)).collect();
        self.keyswitch_digits(&digits, key, level)
    }

    /// The digit-product half of the hybrid keyswitch, taking
    /// already-decomposed centered digits — shared by the plain path and
    /// the hoisted-rotation path (where digits are reused across keys).
    fn keyswitch_digits(
        &self,
        digits: &[Vec<i64>],
        key: &KeySwitchKey,
        level: usize,
    ) -> Result<(RnsPoly, RnsPoly), CkksError> {
        let _span = scheme_span("ckks.keyswitch");
        let ctx = self.ctx;
        let n = ctx.params().n();
        // Working basis: chain primes 0..=level plus the special prime;
        // `key_idx` maps into the key's extended-basis residue order.
        let special_key_idx = ctx.params().levels() + 1;
        let mut basis: Vec<(
            uvpu_math::modular::Modulus,
            &uvpu_math::ntt::NttTable,
            usize,
        )> = (0..=level)
            .map(|i| (ctx.modulus(i), ctx.ntt(i), i))
            .collect();
        basis.push((ctx.special_modulus(), ctx.special_ntt(), special_key_idx));

        // Each basis prime accumulates independently; the digit loop `j`
        // stays sequential *inside* each prime, so the per-prime
        // accumulation order (and thus every rounding-free modular sum)
        // is identical to the sequential path for any thread count.
        //
        // The digit product is the fused kernel pipeline: one pooled
        // scratch buffer holds the reduced digit, one lazy forward NTT is
        // shared by both key halves, and the products accumulate directly
        // into the output buffers — no per-digit Poly materializations.
        let acc_pairs = uvpu_par::par_map_indexed(basis.len(), |idx| {
            let (m, table, key_idx) = basis[idx];
            let mut a0 = uvpu_math::pool::take_zeroed(n);
            let mut a1 = uvpu_math::pool::take_zeroed(n);
            let mut digit_scratch = uvpu_math::pool::take_scratch(n);
            for (j, digit) in digits.iter().enumerate() {
                for (o, &c) in digit_scratch.iter_mut().zip(digit.iter()) {
                    *o = m.from_i64(c);
                }
                uvpu_math::kernel::ntt_accumulate_pair(
                    table,
                    &digit_scratch,
                    key.parts[j].0[key_idx].coeffs(),
                    key.parts[j].1[key_idx].coeffs(),
                    &mut a0,
                    &mut a1,
                );
            }
            uvpu_math::pool::recycle(digit_scratch);
            let a0 =
                uvpu_math::poly::Poly::from_reduced_evaluations(a0, m).map_err(CkksError::Math)?;
            let a1 =
                uvpu_math::poly::Poly::from_reduced_evaluations(a1, m).map_err(CkksError::Math)?;
            Ok::<_, CkksError>((a0, a1))
        });
        let mut acc0 = Vec::with_capacity(basis.len());
        let mut acc1 = Vec::with_capacity(basis.len());
        for pair in acc_pairs {
            let (a0, a1) = pair?;
            acc0.push(a0);
            acc1.push(a1);
        }
        let down = |acc: Vec<uvpu_math::poly::Poly>| -> Result<RnsPoly, CkksError> {
            let coeff: Vec<uvpu_math::poly::Poly> =
                uvpu_par::par_map_vec(acc, |idx, p| p.to_coefficient(basis[idx].1));
            self.mod_down(coeff, level)
        };
        Ok((down(acc0)?, down(acc1)?))
    }

    /// Divides a `[q_0 … q_ℓ, P]` residue stack by `P` with rounding,
    /// returning the level-`ℓ` result.
    fn mod_down(
        &self,
        mut polys: Vec<uvpu_math::poly::Poly>,
        level: usize,
    ) -> Result<RnsPoly, CkksError> {
        let ctx = self.ctx;
        let special = polys.pop().expect("special residue present");
        let p_mod = ctx.special_modulus();
        let out: Vec<uvpu_math::poly::Poly> = uvpu_par::par_map_vec(polys, |i, poly| {
            let m = ctx.modulus(i);
            // (P mod q_i)⁻¹ is precomputed (with its Shoup quotient) in
            // the context instead of being re-derived per limb per call.
            let p_inv = ctx.mod_down_inv(i);
            let mut coeffs = uvpu_math::pool::take_scratch(poly.n());
            for (o, (&c_i, &c_p)) in coeffs
                .iter_mut()
                .zip(poly.coeffs().iter().zip(special.coeffs()))
            {
                let centered = p_mod.to_centered(c_p);
                *o = p_inv.mul(m.sub(c_i, m.from_i64(centered)), &m);
            }
            poly.recycle();
            uvpu_math::poly::Poly::from_reduced_coeffs(coeffs, m).expect("power-of-two degree")
        });
        let _ = level;
        RnsPoly::from_parts(out, ctx)
    }

    /// Rescale: divides the payload by the last prime of the chain and
    /// drops one level; the scale shrinks by that prime.
    ///
    /// # Errors
    ///
    /// [`CkksError::OutOfLevels`] at level 0.
    pub fn rescale(&self, ct: &Ciphertext) -> Result<Ciphertext, CkksError> {
        let _span = scheme_span("ckks.rescale");
        let q_last = self.ctx.params().primes()[ct.level()] as f64;
        let parts = ct
            .parts
            .iter()
            .map(|p| p.rescale(self.ctx))
            .collect::<Result<_, _>>()?;
        Ok(Ciphertext {
            parts,
            scale: ct.scale / q_last,
        })
    }

    /// Homomorphic slot rotation (HRot): the Galois automorphism
    /// `X ↦ X^{5^step}` applied to both polynomials — the irregular
    /// permutation the paper's inter-lane network executes — followed by
    /// a keyswitch back under `s`.
    ///
    /// # Errors
    ///
    /// [`CkksError::MissingGaloisKey`] or substrate errors.
    pub fn rotate(
        &self,
        ct: &Ciphertext,
        step: i64,
        gks: &GaloisKeys,
    ) -> Result<Ciphertext, CkksError> {
        let _span = scheme_span_lazy(|| format!("ckks.rotate step={step}"));
        let (g, key) = gks.for_step(self.ctx, step)?;
        self.apply_galois(ct, g, key)
    }

    /// Homomorphic complex conjugation of all slots.
    ///
    /// # Errors
    ///
    /// [`CkksError::MissingGaloisKey`] or substrate errors.
    pub fn conjugate(&self, ct: &Ciphertext, gks: &GaloisKeys) -> Result<Ciphertext, CkksError> {
        let _span = scheme_span("ckks.conjugate");
        let (g, key) = gks.for_conjugation(self.ctx)?;
        self.apply_galois(ct, g, key)
    }

    fn apply_galois(
        &self,
        ct: &Ciphertext,
        g: u64,
        key: &KeySwitchKey,
    ) -> Result<Ciphertext, CkksError> {
        if ct.size() != 2 {
            return Err(CkksError::InvalidParameters(
                "rotation expects a relinearized (2-part) ciphertext".into(),
            ));
        }
        let mut t0 = ct.parts[0].galois(g)?;
        let t1 = ct.parts[1].galois(g)?;
        let (ks0, ks1) = self.keyswitch(&t1, key)?;
        t0.add_assign(&ks0)?;
        Ok(Ciphertext {
            parts: vec![t0, ks1],
            scale: ct.scale,
        })
    }

    /// **Hoisted rotations**: rotates one ciphertext by many steps,
    /// decomposing `c₁` into keyswitch digits *once* and reusing them for
    /// every Galois key (digit decomposition is coefficient-wise, so it
    /// commutes with the automorphism). On hardware this removes the
    /// per-rotation digit NTTs — the dominant cost of BSGS baby steps.
    ///
    /// # Errors
    ///
    /// [`CkksError::MissingGaloisKey`] for an ungenerated step, or
    /// substrate errors.
    pub fn rotate_hoisted(
        &self,
        ct: &Ciphertext,
        steps: &[i64],
        gks: &GaloisKeys,
    ) -> Result<Vec<Ciphertext>, CkksError> {
        if ct.size() != 2 {
            return Err(CkksError::InvalidParameters(
                "rotation expects a relinearized (2-part) ciphertext".into(),
            ));
        }
        let _span = scheme_span_lazy(|| format!("ckks.rotate_hoisted steps={}", steps.len()));
        let level = ct.level();
        // Hoist: one digit decomposition for all rotations.
        let digits: Vec<Vec<i64>> = (0..=level)
            .map(|j| ct.parts[1].residue_centered(j))
            .collect();
        steps
            .iter()
            .map(|&step| {
                let (g, key) = gks.for_step(self.ctx, step)?;
                let mut t0 = ct.parts[0].galois(g)?;
                let rotated: Vec<Vec<i64>> = digits
                    .iter()
                    .map(|d| crate::keys::galois_signed(d, g))
                    .collect();
                let (ks0, ks1) = self.keyswitch_digits(&rotated, key, level)?;
                t0.add_assign(&ks0)?;
                Ok(Ciphertext {
                    parts: vec![t0, ks1],
                    scale: ct.scale,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, C64};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        ctx: CkksContext,
    }

    fn fixture(n_log: u32, levels: usize) -> Fixture {
        let ctx = CkksContext::new(CkksParams::new(1 << n_log, levels, 40).unwrap()).unwrap();
        Fixture { ctx }
    }

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x.re - y.re).abs().max((x.im - y.im).abs()))
            .fold(0.0, f64::max)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let f = fixture(7, 2);
        let enc = Encoder::new(&f.ctx);
        let mut kg = KeyGenerator::new(&f.ctx, StdRng::seed_from_u64(1));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let eval = Evaluator::new(&f.ctx);
        let mut rng = StdRng::seed_from_u64(2);

        let values: Vec<C64> = (0..enc.slot_count())
            .map(|j| C64::new(j as f64 * 0.1, -(j as f64) * 0.05))
            .collect();
        let pt = enc.encode(&f.ctx, 2, &values).unwrap();
        let ct = eval.encrypt(&pk, &pt, &mut rng).unwrap();
        let back = enc.decode(&f.ctx, &eval.decrypt(&sk, &ct).unwrap());
        assert!(
            max_err(&values, &back) < 1e-4,
            "err {}",
            max_err(&values, &back)
        );

        // Symmetric encryption round-trips too.
        let ct2 = eval.encrypt_symmetric(&sk, &pt, &mut rng).unwrap();
        let back2 = enc.decode(&f.ctx, &eval.decrypt(&sk, &ct2).unwrap());
        assert!(max_err(&values, &back2) < 1e-4);
    }

    #[test]
    fn homomorphic_addition() {
        let f = fixture(6, 2);
        let enc = Encoder::new(&f.ctx);
        let mut kg = KeyGenerator::new(&f.ctx, StdRng::seed_from_u64(3));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let eval = Evaluator::new(&f.ctx);
        let mut rng = StdRng::seed_from_u64(4);

        let a: Vec<C64> = (0..32).map(|j| C64::from(j as f64)).collect();
        let b: Vec<C64> = (0..32).map(|j| C64::from(100.0 - j as f64)).collect();
        let ca = eval
            .encrypt(&pk, &enc.encode(&f.ctx, 2, &a).unwrap(), &mut rng)
            .unwrap();
        let cb = eval
            .encrypt(&pk, &enc.encode(&f.ctx, 2, &b).unwrap(), &mut rng)
            .unwrap();
        let sum = eval.add(&ca, &cb).unwrap();
        let back = enc.decode(&f.ctx, &eval.decrypt(&sk, &sum).unwrap());
        for w in back.iter().take(32) {
            assert!((w.re - 100.0).abs() < 1e-3);
        }
        let diff = eval.sub(&ca, &cb).unwrap();
        let back = enc.decode(&f.ctx, &eval.decrypt(&sk, &diff).unwrap());
        for (j, w) in back.iter().take(32).enumerate() {
            assert!((w.re - (2.0 * j as f64 - 100.0)).abs() < 1e-3);
        }
    }

    #[test]
    fn homomorphic_multiplication_with_rescale() {
        let f = fixture(6, 3);
        let enc = Encoder::new(&f.ctx);
        let mut kg = KeyGenerator::new(&f.ctx, StdRng::seed_from_u64(5));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let rlk = kg.relin_key(&sk).unwrap();
        let eval = Evaluator::new(&f.ctx);
        let mut rng = StdRng::seed_from_u64(6);

        let a: Vec<C64> = (0..32)
            .map(|j| C64::new(0.5 + j as f64 * 0.1, 0.2))
            .collect();
        let b: Vec<C64> = (0..32)
            .map(|j| C64::new(1.5 - j as f64 * 0.05, -0.1))
            .collect();
        let ca = eval
            .encrypt(&pk, &enc.encode(&f.ctx, 3, &a).unwrap(), &mut rng)
            .unwrap();
        let cb = eval
            .encrypt(&pk, &enc.encode(&f.ctx, 3, &b).unwrap(), &mut rng)
            .unwrap();
        let prod = eval.rescale(&eval.mul(&ca, &cb, &rlk).unwrap()).unwrap();
        assert_eq!(prod.level(), 2);
        let back = enc.decode(&f.ctx, &eval.decrypt(&sk, &prod).unwrap());
        for j in 0..32 {
            let expect = a[j].mul(b[j]);
            assert!(
                (back[j].re - expect.re).abs() < 1e-3 && (back[j].im - expect.im).abs() < 1e-3,
                "slot {j}: {:?} vs {expect:?}",
                back[j]
            );
        }
    }

    #[test]
    fn multiplication_depth_two() {
        let f = fixture(6, 3);
        let enc = Encoder::new(&f.ctx);
        let mut kg = KeyGenerator::new(&f.ctx, StdRng::seed_from_u64(7));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let rlk = kg.relin_key(&sk).unwrap();
        let eval = Evaluator::new(&f.ctx);
        let mut rng = StdRng::seed_from_u64(8);

        let x: Vec<C64> = (0..32).map(|j| C64::from(1.0 + j as f64 * 0.01)).collect();
        let ct = eval
            .encrypt(&pk, &enc.encode(&f.ctx, 3, &x).unwrap(), &mut rng)
            .unwrap();
        let sq = eval.rescale(&eval.mul(&ct, &ct, &rlk).unwrap()).unwrap();
        let quad = eval.rescale(&eval.mul(&sq, &sq, &rlk).unwrap()).unwrap();
        assert_eq!(quad.level(), 1);
        let back = enc.decode(&f.ctx, &eval.decrypt(&sk, &quad).unwrap());
        for (j, w) in back.iter().take(32).enumerate() {
            let expect = (1.0 + j as f64 * 0.01).powi(4);
            assert!(
                (w.re - expect).abs() < 1e-2,
                "slot {j}: {} vs {expect}",
                w.re
            );
        }
    }

    #[test]
    fn plaintext_operations() {
        let f = fixture(6, 2);
        let enc = Encoder::new(&f.ctx);
        let mut kg = KeyGenerator::new(&f.ctx, StdRng::seed_from_u64(9));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let eval = Evaluator::new(&f.ctx);
        let mut rng = StdRng::seed_from_u64(10);

        let x: Vec<C64> = (0..32).map(|j| C64::from(j as f64)).collect();
        let w: Vec<C64> = (0..32).map(|j| C64::from(2.0 + (j % 3) as f64)).collect();
        let ct = eval
            .encrypt(&pk, &enc.encode(&f.ctx, 2, &x).unwrap(), &mut rng)
            .unwrap();
        let pw = enc.encode(&f.ctx, 2, &w).unwrap();
        let prod = eval.rescale(&eval.mul_plain(&ct, &pw).unwrap()).unwrap();
        let back = enc.decode(&f.ctx, &eval.decrypt(&sk, &prod).unwrap());
        for j in 0..32 {
            assert!((back[j].re - x[j].re * w[j].re).abs() < 1e-3);
        }

        let padd = enc.encode(&f.ctx, 2, &w).unwrap();
        let sum = eval.add_plain(&ct, &padd).unwrap();
        let back = enc.decode(&f.ctx, &eval.decrypt(&sk, &sum).unwrap());
        for j in 0..32 {
            assert!((back[j].re - (x[j].re + w[j].re)).abs() < 1e-3);
        }
    }

    #[test]
    fn rotation_and_conjugation() {
        let f = fixture(6, 2);
        let enc = Encoder::new(&f.ctx);
        let mut kg = KeyGenerator::new(&f.ctx, StdRng::seed_from_u64(11));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let gks = kg.galois_keys(&sk, &[1, 5, -1]).unwrap();
        let eval = Evaluator::new(&f.ctx);
        let mut rng = StdRng::seed_from_u64(12);

        let slots = enc.slot_count();
        let x: Vec<C64> = (0..slots).map(|j| C64::new(j as f64, 0.5)).collect();
        let ct = eval
            .encrypt(&pk, &enc.encode(&f.ctx, 2, &x).unwrap(), &mut rng)
            .unwrap();

        for step in [1i64, 5, -1] {
            let rot = eval.rotate(&ct, step, &gks).unwrap();
            let back = enc.decode(&f.ctx, &eval.decrypt(&sk, &rot).unwrap());
            for (j, w) in back.iter().take(slots).enumerate() {
                let src = (j as i64 + step).rem_euclid(slots as i64) as usize;
                assert!(
                    (w.re - x[src].re).abs() < 1e-3,
                    "step {step} slot {j}: {} vs {}",
                    w.re,
                    x[src].re
                );
            }
        }

        let conj = eval.conjugate(&ct, &gks).unwrap();
        let back = enc.decode(&f.ctx, &eval.decrypt(&sk, &conj).unwrap());
        for w in back.iter().take(slots) {
            assert!((w.im + 0.5).abs() < 1e-3);
        }
        assert!(matches!(
            eval.rotate(&ct, 3, &gks),
            Err(CkksError::MissingGaloisKey { step: 3 })
        ));
    }

    #[test]
    fn hoisted_rotations_equal_individual_rotations() {
        let f = fixture(6, 2);
        let enc = Encoder::new(&f.ctx);
        let mut kg = KeyGenerator::new(&f.ctx, StdRng::seed_from_u64(41));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let gks = kg.galois_keys(&sk, &[1, 2, 5]).unwrap();
        let eval = Evaluator::new(&f.ctx);
        let mut rng = StdRng::seed_from_u64(42);
        let x: Vec<C64> = (0..enc.slot_count()).map(|j| C64::from(j as f64)).collect();
        let ct = eval
            .encrypt(&pk, &enc.encode(&f.ctx, 2, &x).unwrap(), &mut rng)
            .unwrap();
        let hoisted = eval.rotate_hoisted(&ct, &[1, 2, 5], &gks).unwrap();
        for (i, &step) in [1i64, 2, 5].iter().enumerate() {
            let single = eval.rotate(&ct, step, &gks).unwrap();
            assert_eq!(hoisted[i], single, "step {step}: hoisting must be exact");
        }
    }

    #[test]
    fn scale_mismatch_is_rejected() {
        let f = fixture(6, 2);
        let enc = Encoder::new(&f.ctx);
        let mut kg = KeyGenerator::new(&f.ctx, StdRng::seed_from_u64(13));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let eval = Evaluator::new(&f.ctx);
        let mut rng = StdRng::seed_from_u64(14);
        let x = vec![C64::from(1.0)];
        let p1 = enc.encode(&f.ctx, 2, &x).unwrap();
        let p2 = enc
            .encode_at_scale(&f.ctx, 2, &x, f.ctx.params().scale() * 2.0)
            .unwrap();
        let c1 = eval.encrypt(&pk, &p1, &mut rng).unwrap();
        let c2 = eval.encrypt(&pk, &p2, &mut rng).unwrap();
        assert!(matches!(
            eval.add(&c1, &c2),
            Err(CkksError::ScaleMismatch { .. })
        ));
        let _ = sk;
    }

    #[test]
    fn mul_and_rescale_emit_scheme_spans() {
        use uvpu_core::trace::{self, RingBufferSink, SharedSink, TraceEvent};

        let f = fixture(6, 3);
        let enc = Encoder::new(&f.ctx);
        let mut kg = KeyGenerator::new(&f.ctx, StdRng::seed_from_u64(21));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let rlk = kg.relin_key(&sk).unwrap();
        let eval = Evaluator::new(&f.ctx);
        let mut rng = StdRng::seed_from_u64(22);

        let x: Vec<C64> = (0..32).map(|j| C64::from(0.25 + j as f64 * 0.01)).collect();
        let ct = eval
            .encrypt(&pk, &enc.encode(&f.ctx, 3, &x).unwrap(), &mut rng)
            .unwrap();

        let shared = SharedSink::new(RingBufferSink::new(256));
        trace::install_global(Box::new(shared.clone()));
        let _ = eval.rescale(&eval.mul(&ct, &ct, &rlk).unwrap()).unwrap();
        trace::take_global();

        let names: Vec<String> = shared.with(|s| {
            s.events()
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::SpanBegin { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .collect()
        });
        for expect in ["ckks.mul", "ckks.keyswitch", "ckks.rescale"] {
            assert!(
                names.iter().any(|n| n == expect),
                "missing {expect}: {names:?}"
            );
        }
        // Each begin is paired with an end.
        let (begins, ends) = shared.with(|s| {
            let b = s
                .events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::SpanBegin { .. }))
                .count();
            let e = s
                .events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::SpanEnd { .. }))
                .count();
            (b, e)
        });
        assert_eq!(begins, ends);
        let _ = sk;
    }
}
