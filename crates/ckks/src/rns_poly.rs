//! RNS polynomials: one residue polynomial per prime of the chain.
//!
//! This is the `N × L` slice of the paper's `2 × N × L` ciphertext
//! tensor — the unit of data every vector kernel operates on.

use std::cell::RefCell;

use crate::params::CkksContext;
use crate::CkksError;
use rand::Rng;
use uvpu_math::poly::{Poly, Representation};
use uvpu_math::pool;

thread_local! {
    /// Recycled `Vec<Poly>` residue containers. The residue *buffers*
    /// already round-trip through `uvpu_math::pool`; this free-list does
    /// the same for the outer `Vec` so the steady-state `mul` → `recycle`
    /// cycle performs zero heap allocations (the last alloc/op the
    /// `ckks_rns_mul` bench gate used to report).
    static POLY_CONTAINERS: RefCell<Vec<Vec<Poly>>> = const { RefCell::new(Vec::new()) };
}

/// Backstop against hoarding: matches the spirit of the slab pool's
/// per-length cap. Containers are tiny (a few pointers per residue), so
/// a small cap loses nothing.
const MAX_FREE_CONTAINERS: usize = 32;

/// Takes an empty residue container with capacity for at least `cap`
/// polynomials, reusing a recycled one when available.
fn take_poly_container(cap: usize) -> Vec<Poly> {
    let reused = POLY_CONTAINERS.with(|c| c.borrow_mut().pop());
    match reused {
        Some(mut v) => {
            v.reserve(cap);
            v
        }
        None => Vec::with_capacity(cap),
    }
}

/// Returns a residue container to the thread-local free-list. The
/// caller must have drained the `Poly`s already (so their coefficient
/// buffers went back to the slab pool, not the allocator).
fn recycle_poly_container(mut v: Vec<Poly>) {
    v.clear();
    POLY_CONTAINERS.with(|c| {
        let mut free = c.borrow_mut();
        if free.len() < MAX_FREE_CONTAINERS {
            free.push(v);
        }
    });
}

/// A polynomial under an RNS basis (`level + 1` residue polynomials).
///
/// All residue polynomials share a representation (coefficient or
/// evaluation); mixing levels or representations is rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct RnsPoly {
    polys: Vec<Poly>,
    level: usize,
}

impl RnsPoly {
    /// The zero polynomial at `level` (coefficient form).
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] on bad degree (cannot happen through a context).
    pub fn zero(ctx: &CkksContext, level: usize) -> Result<Self, CkksError> {
        let polys = (0..=level)
            .map(|i| Poly::zero(ctx.params().n(), ctx.modulus(i)))
            .collect::<Result<_, _>>()
            .map_err(CkksError::Math)?;
        Ok(Self { polys, level })
    }

    /// Builds from centered signed coefficients, reducing per prime.
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] on bad degree.
    pub fn from_signed(ctx: &CkksContext, level: usize, coeffs: &[i64]) -> Result<Self, CkksError> {
        let polys = (0..=level)
            .map(|i| {
                let m = ctx.modulus(i);
                Poly::from_coeffs(coeffs.iter().map(|&c| m.from_i64(c)).collect(), m)
            })
            .collect::<Result<_, _>>()
            .map_err(CkksError::Math)?;
        Ok(Self { polys, level })
    }

    /// Samples a uniformly random polynomial at `level`.
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] on bad degree.
    pub fn sample_uniform<R: Rng>(
        ctx: &CkksContext,
        level: usize,
        rng: &mut R,
    ) -> Result<Self, CkksError> {
        let polys = (0..=level)
            .map(|i| {
                let m = ctx.modulus(i);
                let coeffs = uvpu_math::sampling::uniform(rng, ctx.params().n(), m.value());
                Poly::from_coeffs(coeffs, m)
            })
            .collect::<Result<_, _>>()
            .map_err(CkksError::Math)?;
        Ok(Self { polys, level })
    }

    /// Samples a ternary polynomial (coefficients in {−1, 0, 1}).
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] on bad degree.
    pub fn sample_ternary<R: Rng>(
        ctx: &CkksContext,
        level: usize,
        rng: &mut R,
    ) -> Result<Self, CkksError> {
        let coeffs = uvpu_math::sampling::ternary(rng, ctx.params().n());
        Self::from_signed(ctx, level, &coeffs)
    }

    /// Samples a discrete-Gaussian-like error polynomial (rounded
    /// Box–Muller with the context's σ).
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] on bad degree.
    pub fn sample_error<R: Rng>(
        ctx: &CkksContext,
        level: usize,
        rng: &mut R,
    ) -> Result<Self, CkksError> {
        let sampler = uvpu_math::sampling::GaussianSampler::new(ctx.params().error_std());
        let coeffs = sampler.sample_vec(rng, ctx.params().n());
        Self::from_signed(ctx, level, &coeffs)
    }

    /// Assembles an RNS polynomial from per-prime residue polynomials
    /// (must match the context's prime order and share a representation).
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] when the residues disagree with the context's
    /// moduli or with each other.
    pub fn from_parts(polys: Vec<Poly>, ctx: &CkksContext) -> Result<Self, CkksError> {
        if polys.is_empty() {
            return Err(CkksError::Math(uvpu_math::MathError::InvalidBasis(
                "an RNS polynomial needs at least one residue",
            )));
        }
        for (i, p) in polys.iter().enumerate() {
            if p.modulus() != ctx.modulus(i) || p.representation() != polys[0].representation() {
                return Err(CkksError::Math(uvpu_math::MathError::ModulusMismatch));
            }
        }
        let level = polys.len() - 1;
        Ok(Self { polys, level })
    }

    /// Current level (`polys.len() − 1`).
    #[must_use]
    pub const fn level(&self) -> usize {
        self.level
    }

    /// Ring degree.
    #[must_use]
    pub fn n(&self) -> usize {
        self.polys[0].n()
    }

    /// Current representation (shared by all residues).
    #[must_use]
    pub fn representation(&self) -> Representation {
        self.polys[0].representation()
    }

    /// The residue polynomial for prime index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > level`.
    #[must_use]
    pub fn residue(&self, i: usize) -> &Poly {
        &self.polys[i]
    }

    fn check(&self, other: &Self) -> Result<(), CkksError> {
        if self.level != other.level {
            return Err(CkksError::LevelMismatch {
                left: self.level,
                right: other.level,
            });
        }
        Ok(())
    }

    /// Residue-wise addition.
    ///
    /// # Errors
    ///
    /// Level or representation mismatch.
    pub fn add(&self, other: &Self) -> Result<Self, CkksError> {
        let mut out = self.clone();
        out.add_assign(other)?;
        Ok(out)
    }

    /// In-place residue-wise addition: `self += other`.
    ///
    /// # Errors
    ///
    /// Level or representation mismatch.
    pub fn add_assign(&mut self, other: &Self) -> Result<(), CkksError> {
        self.check(other)?;
        for (a, b) in self.polys.iter_mut().zip(&other.polys) {
            a.add_assign(b).map_err(CkksError::Math)?;
        }
        Ok(())
    }

    /// Residue-wise subtraction.
    ///
    /// # Errors
    ///
    /// Level or representation mismatch.
    pub fn sub(&self, other: &Self) -> Result<Self, CkksError> {
        let mut out = self.clone();
        out.sub_assign(other)?;
        Ok(out)
    }

    /// In-place residue-wise subtraction: `self -= other`.
    ///
    /// # Errors
    ///
    /// Level or representation mismatch.
    pub fn sub_assign(&mut self, other: &Self) -> Result<(), CkksError> {
        self.check(other)?;
        for (a, b) in self.polys.iter_mut().zip(&other.polys) {
            a.sub_assign(b).map_err(CkksError::Math)?;
        }
        Ok(())
    }

    /// Negation.
    #[must_use]
    pub fn neg(&self) -> Self {
        let mut out = self.clone();
        out.negate_assign();
        out
    }

    /// In-place negation.
    pub fn negate_assign(&mut self) {
        for p in &mut self.polys {
            p.negate_assign();
        }
    }

    /// Returns every residue's coefficient buffer to the polynomial pool.
    ///
    /// Purely an optimization: hot loops that produce and discard
    /// intermediate polynomials can recycle them so the next borrow is a
    /// pool hit instead of a fresh heap allocation.
    pub fn recycle(self) {
        let mut polys = self.polys;
        for p in polys.drain(..) {
            p.recycle();
        }
        recycle_poly_container(polys);
    }

    /// Residue-wise ring multiplication (both operands in evaluation form).
    ///
    /// # Errors
    ///
    /// Level mismatch or coefficient-form operands.
    pub fn mul(&self, other: &Self) -> Result<Self, CkksError> {
        self.check(other)?;
        // Validate every residue pair up front so the per-limb map below
        // is infallible and can stream straight into a recycled
        // container — together with the pooled coefficient buffers this
        // makes the steady-state multiply allocation-free.
        for (a, b) in self.polys.iter().zip(&other.polys) {
            if a.n() != b.n() {
                return Err(CkksError::Math(uvpu_math::MathError::LengthMismatch {
                    left: a.n(),
                    right: b.n(),
                }));
            }
            if a.modulus() != b.modulus()
                || a.representation() != Representation::Evaluation
                || b.representation() != Representation::Evaluation
            {
                return Err(CkksError::Math(uvpu_math::MathError::ModulusMismatch));
            }
        }
        // RNS residues are independent; the per-limb products run on the
        // worker pool (collected in limb order, so bit-exact at any
        // thread count).
        let mut polys = take_poly_container(self.polys.len());
        uvpu_par::par_map_indexed_into(
            self.polys.len(),
            |i| {
                self.polys[i]
                    .mul(&other.polys[i])
                    .expect("residues prechecked compatible")
            },
            &mut polys,
        );
        Ok(Self {
            polys,
            level: self.level,
        })
    }

    /// Converts all residues to evaluation form (per-limb NTTs on the
    /// worker pool).
    #[must_use]
    pub fn to_evaluation(self, ctx: &CkksContext) -> Self {
        let polys = uvpu_par::par_map_vec(self.polys, |i, p| p.to_evaluation(ctx.ntt(i)));
        Self {
            polys,
            level: self.level,
        }
    }

    /// Converts all residues to coefficient form (per-limb inverse NTTs
    /// on the worker pool).
    #[must_use]
    pub fn to_coefficient(self, ctx: &CkksContext) -> Self {
        let polys = uvpu_par::par_map_vec(self.polys, |i, p| p.to_coefficient(ctx.ntt(i)));
        Self {
            polys,
            level: self.level,
        }
    }

    /// Applies the Galois automorphism `X ↦ X^g` (coefficient form).
    ///
    /// # Errors
    ///
    /// Even `g` or evaluation-form input.
    pub fn galois(&self, g: u64) -> Result<Self, CkksError> {
        let polys = uvpu_par::par_map_indexed(self.polys.len(), |i| self.polys[i].galois(g))
            .into_iter()
            .collect::<Result<_, _>>()
            .map_err(CkksError::Math)?;
        Ok(Self {
            polys,
            level: self.level,
        })
    }

    /// Centered signed coefficients of the residue at prime `j`
    /// (coefficient form) — the keyswitch digit in integer form.
    ///
    /// # Panics
    ///
    /// Panics in evaluation form or for `j > level`.
    #[must_use]
    pub fn residue_centered(&self, j: usize) -> Vec<i64> {
        assert_eq!(
            self.representation(),
            Representation::Coefficient,
            "digits require coefficient form"
        );
        let p = &self.polys[j];
        let m = p.modulus();
        p.coeffs().iter().map(|&c| m.to_centered(c)).collect()
    }

    /// Lifts the residue at prime `j` to every prime of the basis: the
    /// output's residue `i` is `[self mod q_j]` reduced mod `q_i` — the
    /// RNS-gadget decomposition digit used by keyswitching. Requires
    /// coefficient form.
    ///
    /// # Panics
    ///
    /// Panics if called in evaluation form (residues are not aligned
    /// across primes there) or `j > level`.
    #[must_use]
    pub fn lift_residue(&self, ctx: &CkksContext, j: usize) -> Self {
        assert_eq!(
            self.representation(),
            Representation::Coefficient,
            "lifting requires coefficient form"
        );
        let src = &self.polys[j];
        let q_j = ctx.modulus(j).value();
        let polys = uvpu_par::par_map_indexed(self.level + 1, |i| {
            let m = ctx.modulus(i);
            let mut coeffs = pool::take_scratch(src.n());
            for (o, &c) in coeffs.iter_mut().zip(src.coeffs()) {
                // Centered lift: values in (−q_j/2, q_j/2] keep the
                // gadget noise small.
                let centered = if c > q_j / 2 {
                    c as i64 - q_j as i64
                } else {
                    c as i64
                };
                *o = m.from_i64(centered);
            }
            Poly::from_reduced_coeffs(coeffs, m).expect("power-of-two degree")
        });
        Self {
            polys,
            level: self.level,
        }
    }

    /// Drops to `level − 1` by removing the last residue (no scaling) —
    /// used for modulus alignment of unscaled operands.
    ///
    /// # Errors
    ///
    /// [`CkksError::OutOfLevels`] at level 0.
    pub fn drop_last(&self) -> Result<Self, CkksError> {
        if self.level == 0 {
            return Err(CkksError::OutOfLevels);
        }
        Ok(Self {
            polys: self.polys[..self.level].to_vec(),
            level: self.level - 1,
        })
    }

    /// Restricts to the first `level + 1` residues (modulus reduction to
    /// a lower level; values are unchanged modulo the smaller product).
    ///
    /// # Errors
    ///
    /// [`CkksError::LevelMismatch`] if `level` exceeds the current one.
    pub fn truncate_level(&self, level: usize) -> Result<Self, CkksError> {
        if level > self.level {
            return Err(CkksError::LevelMismatch {
                left: self.level,
                right: level,
            });
        }
        Ok(Self {
            polys: self.polys[..=level].to_vec(),
            level,
        })
    }

    /// RNS rescale: divides by the last prime `q_ℓ` (rounded) and drops a
    /// level. Requires coefficient form.
    ///
    /// # Errors
    ///
    /// [`CkksError::OutOfLevels`] at level 0.
    ///
    /// # Panics
    ///
    /// Panics in evaluation form.
    pub fn rescale(&self, ctx: &CkksContext) -> Result<Self, CkksError> {
        if self.level == 0 {
            return Err(CkksError::OutOfLevels);
        }
        assert_eq!(
            self.representation(),
            Representation::Coefficient,
            "rescale requires coefficient form"
        );
        let last = &self.polys[self.level];
        let q_last = ctx.modulus(self.level).value();
        let polys = uvpu_par::par_map_indexed(self.level, |i| {
            let m = ctx.modulus(i);
            // (q_ℓ mod q_i)⁻¹ is precomputed (with its Shoup quotient) in
            // the context instead of being re-derived per limb per call.
            let q_last_inv = ctx.rescale_inv(self.level, i);
            let mut coeffs = pool::take_scratch(self.polys[i].n());
            for (o, (&c_i, &c_last)) in coeffs
                .iter_mut()
                .zip(self.polys[i].coeffs().iter().zip(last.coeffs()))
            {
                // Centered representative of c mod q_last keeps the
                // rounding error at ±1/2.
                let centered = if c_last > q_last / 2 {
                    c_last as i64 - q_last as i64
                } else {
                    c_last as i64
                };
                let diff = m.sub(c_i, m.from_i64(centered));
                *o = q_last_inv.mul(diff, &m);
            }
            Poly::from_reduced_coeffs(coeffs, m).expect("power-of-two degree")
        });
        Ok(Self {
            polys,
            level: self.level - 1,
        })
    }

    /// Reconstructs coefficient `k` as a centered `f64` via CRT — the
    /// decoder's path out of RNS. Requires coefficient form.
    ///
    /// # Panics
    ///
    /// Panics in evaluation form or for out-of-range `k`.
    #[must_use]
    pub fn coefficient_centered_f64(&self, ctx: &CkksContext, k: usize) -> f64 {
        assert_eq!(self.representation(), Representation::Coefficient);
        let residues: Vec<u64> = (0..=self.level)
            .map(|i| self.polys[i].coeffs()[k])
            .collect();
        ctx.basis(self.level).reconstruct_centered_f64(&residues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        CkksContext::new(CkksParams::new(1 << 6, 2, 40).unwrap()).unwrap()
    }

    #[test]
    fn from_signed_round_trips_centered() {
        let ctx = ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| i - 32).collect();
        let p = RnsPoly::from_signed(&ctx, 2, &coeffs).unwrap();
        for (k, &c) in coeffs.iter().enumerate() {
            assert_eq!(p.coefficient_centered_f64(&ctx, k), c as f64);
        }
    }

    #[test]
    fn add_sub_level_checks() {
        let ctx = ctx();
        let a = RnsPoly::from_signed(&ctx, 2, &[1; 64]).unwrap();
        let b = RnsPoly::from_signed(&ctx, 1, &[1; 64]).unwrap();
        assert!(a.add(&b).is_err());
        let c = RnsPoly::from_signed(&ctx, 2, &[2; 64]).unwrap();
        assert_eq!(a.add(&c).unwrap().coefficient_centered_f64(&ctx, 0), 3.0);
        assert_eq!(a.sub(&c).unwrap().coefficient_centered_f64(&ctx, 0), -1.0);
        assert_eq!(a.neg().coefficient_centered_f64(&ctx, 0), -1.0);
    }

    #[test]
    fn eval_mul_matches_schoolbook_on_monomials() {
        let ctx = ctx();
        let mut x = vec![0i64; 64];
        x[1] = 1;
        let a = RnsPoly::from_signed(&ctx, 1, &x)
            .unwrap()
            .to_evaluation(&ctx);
        let b = a.clone();
        let prod = a.mul(&b).unwrap().to_coefficient(&ctx);
        assert_eq!(prod.coefficient_centered_f64(&ctx, 2), 1.0);
        assert_eq!(prod.coefficient_centered_f64(&ctx, 0), 0.0);
    }

    #[test]
    fn rescale_divides_by_last_prime() {
        let ctx = ctx();
        let q2 = ctx.params().primes()[2] as i64;
        // A multiple of q_2 rescales exactly.
        let coeffs: Vec<i64> = (0..64).map(|i| (i % 5) * q2).collect();
        let p = RnsPoly::from_signed(&ctx, 2, &coeffs).unwrap();
        let r = p.rescale(&ctx).unwrap();
        assert_eq!(r.level(), 1);
        for k in 0..64 {
            assert_eq!(r.coefficient_centered_f64(&ctx, k), (k as i64 % 5) as f64);
        }
        // Non-multiples round to within 1.
        let p = RnsPoly::from_signed(&ctx, 2, &[q2 + 7; 64]).unwrap();
        let r = p.rescale(&ctx).unwrap();
        assert!((r.coefficient_centered_f64(&ctx, 0) - 1.0).abs() <= 1.0);
    }

    #[test]
    fn lift_residue_is_consistent_mod_qj() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(7);
        let p = RnsPoly::sample_uniform(&ctx, 2, &mut rng).unwrap();
        for j in 0..=2 {
            let lifted = p.lift_residue(&ctx, j);
            // Residue j of the lift equals residue j of the original.
            assert_eq!(lifted.residue(j), p.residue(j));
        }
    }

    #[test]
    fn sample_error_is_small() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(42);
        let e = RnsPoly::sample_error(&ctx, 2, &mut rng).unwrap();
        for k in 0..64 {
            assert!(e.coefficient_centered_f64(&ctx, k).abs() < 30.0);
        }
    }

    #[test]
    fn galois_round_trip() {
        let ctx = ctx();
        let coeffs: Vec<i64> = (0..64).collect();
        let p = RnsPoly::from_signed(&ctx, 1, &coeffs).unwrap();
        let g = 5u64;
        let g_inv = uvpu_math::util::mod_inverse(g, 128).unwrap();
        assert_eq!(p.galois(g).unwrap().galois(g_inv).unwrap(), p);
    }
}
