//! CKKS parameter sets and the precomputed context.
//!
//! A parameter set fixes the ring degree `N`, the RNS modulus chain
//! `q_0 … q_L` (paper §II-A: each ciphertext is a `2 × N × L` tensor of
//! 64-bit residues), and the encoding scale Δ. The [`CkksContext`] holds
//! every level's [`RnsBasis`] and the per-prime NTT tables.
//!
//! These parameter sets are sized for *functional* reproduction (the
//! noise analysis holds and all homomorphic identities are exact); they
//! are not security-reviewed for production use.

use std::sync::Arc;

use crate::CkksError;
use uvpu_math::modular::{Modulus, ShoupMul};
use uvpu_math::ntt::NttTable;
use uvpu_math::primes::{ntt_prime, ntt_prime_chain};
use uvpu_math::rns::RnsBasis;

/// Builder-style CKKS parameters.
///
/// # Example
///
/// ```
/// use uvpu_ckks::params::CkksParams;
///
/// # fn main() -> Result<(), uvpu_ckks::CkksError> {
/// let params = CkksParams::new(1 << 10, 4, 40)?;
/// assert_eq!(params.n(), 1024);
/// assert_eq!(params.levels(), 4);
/// assert_eq!(params.slot_count(), 512);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CkksParams {
    n: usize,
    /// Prime chain, q_0 first.
    primes: Vec<u64>,
    /// Special prime P for hybrid keyswitching (divides keyswitch noise).
    special_prime: u64,
    scale: f64,
    /// Standard deviation of the encryption noise.
    error_std: f64,
}

impl CkksParams {
    /// Creates parameters with ring degree `n`, `levels + 1` primes of
    /// `scale_bits` bits, and scale `Δ = 2^scale_bits`.
    ///
    /// # Errors
    ///
    /// [`CkksError::InvalidParameters`] for a non-power-of-two `n`, a
    /// scale outside `[20, 60]` bits, or an unsatisfiable prime request.
    pub fn new(n: usize, levels: usize, scale_bits: u32) -> Result<Self, CkksError> {
        if !n.is_power_of_two() || n < 8 {
            return Err(CkksError::InvalidParameters(format!(
                "ring degree {n} must be a power of two >= 8"
            )));
        }
        if !(20..=60).contains(&scale_bits) {
            return Err(CkksError::InvalidParameters(format!(
                "scale of {scale_bits} bits outside [20, 60]"
            )));
        }
        let primes = ntt_prime_chain(scale_bits, n, levels + 1).map_err(CkksError::Math)?;
        // The special prime must exceed every chain prime (so the hybrid
        // keyswitch noise shrinks by at least q_max/P per digit) and be
        // distinct from all of them — a wider bit width guarantees both.
        let special_bits = if scale_bits <= 55 { 58 } else { 61 };
        let special_prime = ntt_prime(special_bits, n).map_err(CkksError::Math)?;
        Ok(Self {
            n,
            primes,
            special_prime,
            scale: (scale_bits as f64).exp2(),
            error_std: 3.2,
        })
    }

    /// Ring degree `N`.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Number of multiplicative levels (`primes − 1`).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.primes.len() - 1
    }

    /// The RNS prime chain, `q_0` first.
    #[must_use]
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// The special prime `P` used by hybrid keyswitching.
    #[must_use]
    pub const fn special_prime(&self) -> u64 {
        self.special_prime
    }

    /// The encoding scale Δ.
    #[must_use]
    pub const fn scale(&self) -> f64 {
        self.scale
    }

    /// Gaussian noise standard deviation.
    #[must_use]
    pub const fn error_std(&self) -> f64 {
        self.error_std
    }

    /// Number of complex slots per ciphertext (`N/2`).
    #[must_use]
    pub const fn slot_count(&self) -> usize {
        self.n / 2
    }
}

/// Precomputed per-level bases and per-prime NTT tables.
///
/// NTT tables come from the process-wide plan cache
/// ([`uvpu_math::cache::ntt_table`]): two contexts over the same prime
/// chain (bench sweeps, key regeneration) share one set of twiddles.
#[derive(Debug, Clone)]
pub struct CkksContext {
    params: CkksParams,
    /// `bases[ℓ]` covers primes `0..=ℓ`.
    bases: Vec<RnsBasis>,
    /// `ntt[i]` is the (shared) table for prime `i`.
    ntt: Vec<Arc<NttTable>>,
    moduli: Vec<Modulus>,
    special_modulus: Modulus,
    special_ntt: Arc<NttTable>,
    /// `rescale_inv[ℓ][i] = (q_ℓ mod q_i)⁻¹ mod q_i` as a Shoup pair, for
    /// `i < ℓ` — the per-limb constant of `RnsPoly::rescale`, hoisted out
    /// of the hot loop.
    rescale_inv: Vec<Vec<ShoupMul>>,
    /// `mod_down_inv[i] = (P mod q_i)⁻¹ mod q_i` as a Shoup pair — the
    /// per-limb constant of the keyswitch mod-down.
    mod_down_inv: Vec<ShoupMul>,
}

impl CkksContext {
    /// Builds all level bases and NTT tables.
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] if a prime unexpectedly lacks the required
    /// roots of unity (cannot happen for [`CkksParams::new`] outputs).
    pub fn new(params: CkksParams) -> Result<Self, CkksError> {
        let mut bases = Vec::with_capacity(params.primes().len());
        for l in 0..params.primes().len() {
            bases.push(RnsBasis::new(params.primes()[..=l].to_vec()).map_err(CkksError::Math)?);
        }
        let moduli: Vec<Modulus> = params
            .primes()
            .iter()
            .map(|&q| Modulus::new(q))
            .collect::<Result<_, _>>()
            .map_err(CkksError::Math)?;
        let ntt = moduli
            .iter()
            .map(|&m| uvpu_math::cache::ntt_table(m, params.n()))
            .collect::<Result<_, _>>()
            .map_err(CkksError::Math)?;
        let special_modulus = Modulus::new(params.special_prime()).map_err(CkksError::Math)?;
        let special_ntt =
            uvpu_math::cache::ntt_table(special_modulus, params.n()).map_err(CkksError::Math)?;
        let mut rescale_inv = Vec::with_capacity(moduli.len());
        for (l, &q_l) in moduli.iter().enumerate() {
            let mut row = Vec::with_capacity(l);
            for &m in &moduli[..l] {
                let inv = m.inv(m.reduce_u64(q_l.value())).map_err(CkksError::Math)?;
                row.push(ShoupMul::new(inv, &m));
            }
            rescale_inv.push(row);
        }
        let mod_down_inv = moduli
            .iter()
            .map(|&m| {
                let inv = m.inv(m.reduce_u64(special_modulus.value()))?;
                Ok(ShoupMul::new(inv, &m))
            })
            .collect::<Result<_, uvpu_math::MathError>>()
            .map_err(CkksError::Math)?;
        Ok(Self {
            params,
            bases,
            ntt,
            moduli,
            special_modulus,
            special_ntt,
            rescale_inv,
            mod_down_inv,
        })
    }

    /// The precomputed Shoup pair `(q_level mod q_i)⁻¹ mod q_i`, `i <
    /// level` — the rescale constant for limb `i` when dropping prime
    /// `q_level`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= level` or `level` is out of range.
    #[must_use]
    pub fn rescale_inv(&self, level: usize, i: usize) -> ShoupMul {
        self.rescale_inv[level][i]
    }

    /// The precomputed Shoup pair `(P mod q_i)⁻¹ mod q_i` — the mod-down
    /// constant for limb `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn mod_down_inv(&self, i: usize) -> ShoupMul {
        self.mod_down_inv[i]
    }

    /// The special modulus `P` for hybrid keyswitching.
    #[must_use]
    pub const fn special_modulus(&self) -> Modulus {
        self.special_modulus
    }

    /// The NTT table under the special modulus.
    #[must_use]
    pub fn special_ntt(&self) -> &NttTable {
        &self.special_ntt
    }

    /// The parameter set.
    #[must_use]
    pub const fn params(&self) -> &CkksParams {
        &self.params
    }

    /// The basis covering primes `0..=level`, as a typed error on an
    /// out-of-range level.
    ///
    /// # Errors
    ///
    /// [`CkksError::IndexOutOfRange`] if `level > self.params().levels()`.
    pub fn try_basis(&self, level: usize) -> Result<&RnsBasis, CkksError> {
        self.bases.get(level).ok_or(CkksError::IndexOutOfRange {
            index: level,
            len: self.bases.len(),
        })
    }

    /// The basis covering primes `0..=level`.
    ///
    /// # Panics
    ///
    /// Panics if `level > self.params().levels()`; use
    /// [`try_basis`](Self::try_basis) for a typed error instead.
    #[must_use]
    pub fn basis(&self, level: usize) -> &RnsBasis {
        &self.bases[level]
    }

    /// The NTT table for prime index `i`, as a typed error on an
    /// out-of-range index.
    ///
    /// # Errors
    ///
    /// [`CkksError::IndexOutOfRange`] if `i` is out of range.
    pub fn try_ntt(&self, i: usize) -> Result<&NttTable, CkksError> {
        self.ntt
            .get(i)
            .map(AsRef::as_ref)
            .ok_or(CkksError::IndexOutOfRange {
                index: i,
                len: self.ntt.len(),
            })
    }

    /// The NTT table for prime index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range; use [`try_ntt`](Self::try_ntt) for
    /// a typed error instead.
    #[must_use]
    pub fn ntt(&self, i: usize) -> &NttTable {
        &self.ntt[i]
    }

    /// The modulus for prime index `i`, as a typed error on an
    /// out-of-range index.
    ///
    /// # Errors
    ///
    /// [`CkksError::IndexOutOfRange`] if `i` is out of range.
    pub fn try_modulus(&self, i: usize) -> Result<Modulus, CkksError> {
        self.moduli
            .get(i)
            .copied()
            .ok_or(CkksError::IndexOutOfRange {
                index: i,
                len: self.moduli.len(),
            })
    }

    /// The modulus for prime index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range; use
    /// [`try_modulus`](Self::try_modulus) for a typed error instead.
    #[must_use]
    pub fn modulus(&self, i: usize) -> Modulus {
        self.moduli[i]
    }

    /// All moduli of the chain.
    #[must_use]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        assert!(CkksParams::new(1000, 2, 40).is_err());
        assert!(CkksParams::new(4, 2, 40).is_err());
        assert!(CkksParams::new(1 << 10, 2, 10).is_err());
        assert!(CkksParams::new(1 << 10, 2, 40).is_ok());
    }

    #[test]
    fn primes_are_distinct_ntt_friendly() {
        let p = CkksParams::new(1 << 10, 3, 40).unwrap();
        assert_eq!(p.primes().len(), 4);
        for &q in p.primes() {
            assert!(uvpu_math::primes::is_prime(q));
            assert_eq!(q % (2 << 10), 1);
        }
    }

    #[test]
    fn context_builds_all_levels() {
        let ctx = CkksContext::new(CkksParams::new(1 << 8, 3, 40).unwrap()).unwrap();
        for l in 0..=3 {
            assert_eq!(ctx.basis(l).len(), l + 1);
        }
        assert_eq!(ctx.ntt(0).n(), 1 << 8);
        assert_eq!(ctx.modulus(2).value(), ctx.params().primes()[2]);
    }

    #[test]
    fn out_of_range_indices_are_typed_errors() {
        let ctx = CkksContext::new(CkksParams::new(1 << 8, 2, 40).unwrap()).unwrap();
        assert!(ctx.try_basis(2).is_ok());
        assert!(matches!(
            ctx.try_basis(7),
            Err(crate::CkksError::IndexOutOfRange { index: 7, len: 3 })
        ));
        assert!(matches!(
            ctx.try_ntt(9),
            Err(crate::CkksError::IndexOutOfRange { .. })
        ));
        assert_eq!(
            ctx.try_modulus(1).map(|m| m.value()),
            Ok(ctx.params().primes()[1])
        );
        assert!(ctx.try_modulus(3).is_err());
    }
}
