//! The linear stages of CKKS bootstrapping: the homomorphic DFT.
//!
//! Bootstrapping's CoeffToSlot / SlotToCoeff steps evaluate the encoding
//! DFT matrix *homomorphically* — the single most rotation-hungry kernel
//! in all of FHE, and the workload that motivates the paper's automorphism
//! hardware. A dense `s × s` DFT needs `s` diagonals (rotations); the
//! radix-2 factorization used by practical bootstrapping
//! ([`dft_stages`]) replaces it with `log₂ s` sparse stages of **three**
//! diagonals each, trading one multiplicative level per stage for an
//! exponential drop in rotations.
//!
//! This module implements both forms and the factorization identity, so
//! the repository exercises the same automorphism traffic pattern as a
//! bootstrapping implementation without the (out-of-scope) EvalMod step.

use crate::ciphertext::Ciphertext;
use crate::encoder::{Encoder, C64};
use crate::keys::GaloisKeys;
use crate::linear::LinearTransform;
use crate::ops::Evaluator;
use crate::params::CkksContext;
use crate::CkksError;
use uvpu_math::util::{bit_reverse, log2_exact};

/// The dense slot-space DFT matrix `W[j][k] = e^{−2πi·jk/s}`.
///
/// # Panics
///
/// Panics if `slots` is not a power of two.
#[must_use]
pub fn dft_matrix(slots: usize) -> Vec<Vec<C64>> {
    assert!(slots.is_power_of_two());
    (0..slots)
        .map(|j| {
            (0..slots)
                .map(|k| {
                    let theta = -2.0 * std::f64::consts::PI * (j * k % slots) as f64 / slots as f64;
                    C64::new(theta.cos(), theta.sin())
                })
                .collect()
        })
        .collect()
}

/// The dense DFT matrix with **bit-reversed row order** — the natural
/// output ordering of the radix-2 factorization.
#[must_use]
pub fn dft_matrix_bitrev(slots: usize) -> Vec<Vec<C64>> {
    let w = dft_matrix(slots);
    let bits = log2_exact(slots);
    (0..slots)
        .map(|j| w[bit_reverse(j, bits)].clone())
        .collect()
}

/// The radix-2 (decimation-in-frequency) factorization of the slot-space
/// DFT: `log₂ s` stages, each a [`LinearTransform`] with exactly three
/// generalized diagonals (`0`, `half`, `s − half`). Applying the stages
/// in order equals [`dft_matrix_bitrev`].
///
/// # Panics
///
/// Panics if `slots < 2` or not a power of two.
#[must_use]
pub fn dft_stages(slots: usize) -> Vec<LinearTransform> {
    assert!(slots.is_power_of_two() && slots >= 2);
    let log_s = log2_exact(slots) as usize;
    let mut stages = Vec::with_capacity(log_s);
    for t in 0..log_s {
        let block = slots >> t;
        let half = block / 2;
        // Stage matrix M: for position pos = j mod block,
        //   pos <  half: y[j] = x[j] + x[j + half]
        //   pos >= half: y[j] = w^{pos−half}·(x[j − half] − x[j]),
        // with w = e^{−2πi/block}. As generalized diagonals
        // (diag_d[j] = M[j][(j+d) mod s]):
        let mut m = vec![vec![C64::default(); slots]; slots];
        for j in 0..slots {
            let pos = j % block;
            if pos < half {
                m[j][j] = C64::from(1.0);
                m[j][j + half] = C64::from(1.0);
            } else {
                let k = pos - half;
                let theta = -2.0 * std::f64::consts::PI * k as f64 / block as f64;
                let w = C64::new(theta.cos(), theta.sin());
                m[j][j - half] = w;
                m[j][j] = C64::new(-w.re, -w.im);
            }
        }
        stages.push(LinearTransform::from_matrix(&m));
    }
    stages
}

/// Plain reference: applies the factorized stages to a slot vector.
#[must_use]
pub fn apply_stages_plain(stages: &[LinearTransform], x: &[C64]) -> Vec<C64> {
    let mut cur = x.to_vec();
    for s in stages {
        cur = s.apply_plain(&cur);
    }
    cur
}

/// The homomorphic factorized DFT: CoeffToSlot's computational core.
#[derive(Debug, Clone)]
pub struct HomomorphicDft {
    stages: Vec<LinearTransform>,
    baby: usize,
}

impl HomomorphicDft {
    /// Builds the factorized transform for the context's slot count with
    /// a BSGS baby-step size.
    ///
    /// # Panics
    ///
    /// Panics for fewer than 2 slots.
    #[must_use]
    pub fn new(ctx: &CkksContext, baby: usize) -> Self {
        Self {
            stages: dft_stages(ctx.params().slot_count()),
            baby,
        }
    }

    /// Number of stages (`log₂ s`), each consuming one level.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// All rotation steps the evaluation needs (for Galois-key setup).
    #[must_use]
    pub fn required_steps(&self) -> Vec<i64> {
        let mut steps: Vec<i64> = self
            .stages
            .iter()
            .flat_map(|s| s.required_steps(self.baby))
            .collect();
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Total diagonal count across stages (the rotation traffic measure:
    /// `3·log₂ s` versus `s` for the dense matrix).
    #[must_use]
    pub fn diagonal_count(&self) -> usize {
        self.stages
            .iter()
            .map(LinearTransform::diagonal_count)
            .sum()
    }

    /// Applies all stages homomorphically, rescaling after each.
    ///
    /// # Errors
    ///
    /// Missing Galois keys, insufficient levels, or substrate errors.
    pub fn apply(
        &self,
        ctx: &CkksContext,
        eval: &Evaluator<'_>,
        encoder: &Encoder,
        ct: &Ciphertext,
        gks: &GaloisKeys,
    ) -> Result<Ciphertext, CkksError> {
        let mut cur = ct.clone();
        for stage in &self.stages {
            let applied = stage.apply(ctx, eval, encoder, &cur, gks, self.baby)?;
            cur = eval.rescale(&applied)?;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense_apply(m: &[Vec<C64>], x: &[C64]) -> Vec<C64> {
        (0..m.len())
            .map(|j| {
                let mut acc = C64::default();
                for (k, &v) in x.iter().enumerate() {
                    acc = acc.add(m[j][k].mul(v));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn factorization_equals_bitrev_dft() {
        for slots in [2usize, 4, 8, 16, 32] {
            let stages = dft_stages(slots);
            let x: Vec<C64> = (0..slots)
                .map(|j| C64::new(j as f64 * 0.3 - 1.0, (j as f64).cos()))
                .collect();
            let via_stages = apply_stages_plain(&stages, &x);
            let direct = dense_apply(&dft_matrix_bitrev(slots), &x);
            for (a, b) in via_stages.iter().zip(&direct) {
                assert!((a.re - b.re).abs() < 1e-9, "slots={slots}");
                assert!((a.im - b.im).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn stage_sparsity_is_three_diagonals() {
        for slots in [8usize, 16, 64] {
            let stages = dft_stages(slots);
            assert_eq!(stages.len(), log2_exact(slots) as usize);
            for (t, s) in stages.iter().enumerate() {
                assert!(
                    s.diagonal_count() <= 3,
                    "stage {t} of {slots}: {} diagonals",
                    s.diagonal_count()
                );
            }
            // The whole point: 3·log s ≪ s rotations.
            let total: usize = stages.iter().map(LinearTransform::diagonal_count).sum();
            assert!(total <= 3 * log2_exact(slots) as usize);
        }
    }

    #[test]
    fn homomorphic_factorized_dft_matches_plain() {
        // slots = 8 ⇒ 3 stages ⇒ needs 3 levels + margin.
        let ctx = CkksContext::new(CkksParams::new(1 << 4, 4, 40).unwrap()).unwrap();
        let encoder = Encoder::new(&ctx);
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(31));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let eval = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(32);

        let hdft = HomomorphicDft::new(&ctx, 2);
        assert_eq!(hdft.depth(), 3);
        let gks = kg.galois_keys(&sk, &hdft.required_steps()).unwrap();

        let x: Vec<C64> = (0..8).map(|j| C64::new(0.1 * j as f64, 0.05)).collect();
        let ct = eval
            .encrypt(&pk, &encoder.encode(&ctx, 4, &x).unwrap(), &mut rng)
            .unwrap();
        let out_ct = hdft.apply(&ctx, &eval, &encoder, &ct, &gks).unwrap();
        let got = encoder.decode(&ctx, &eval.decrypt(&sk, &out_ct).unwrap());
        let expect = apply_stages_plain(&dft_stages(8), &x);
        for j in 0..8 {
            assert!(
                (got[j].re - expect[j].re).abs() < 2e-2 && (got[j].im - expect[j].im).abs() < 2e-2,
                "slot {j}: {:?} vs {:?}",
                got[j],
                expect[j]
            );
        }
    }
}
