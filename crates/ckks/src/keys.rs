//! Key material: secret, public, relinearization, and Galois keys.
//!
//! Keyswitching uses the RNS-gadget decomposition: one key pair per prime
//! `q_j`, built around the CRT idempotent `ĝ_j` (`≡ 1 mod q_j`, `≡ 0`
//! elsewhere). This is the keyswitch structure whose base conversions
//! motivate the paper's choice of Barrett over Montgomery lanes (§III-A).

use crate::params::CkksContext;
use crate::rns_poly::RnsPoly;
use crate::CkksError;
use rand::Rng;
use std::collections::HashMap;
use uvpu_math::automorphism::{conjugation_exponent, galois_exponent};
use uvpu_math::poly::Poly;

/// The ternary secret key.
#[derive(Debug, Clone, PartialEq)]
pub struct SecretKey {
    /// Signed coefficients in {−1, 0, 1}; re-lifted per level on demand.
    signed: Vec<i64>,
}

impl SecretKey {
    /// Samples a fresh ternary secret.
    pub fn generate<R: Rng>(ctx: &CkksContext, rng: &mut R) -> Self {
        Self {
            signed: uvpu_math::sampling::ternary(rng, ctx.params().n()),
        }
    }

    /// The secret lifted to RNS at `level`, in coefficient form.
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] on a bad level (cannot happen via a context).
    pub fn at_level(&self, ctx: &CkksContext, level: usize) -> Result<RnsPoly, CkksError> {
        RnsPoly::from_signed(ctx, level, &self.signed)
    }

    /// The raw signed coefficients (for Galois-key generation).
    #[must_use]
    pub fn signed(&self) -> &[i64] {
        &self.signed
    }
}

/// An encryption of zero under the secret key: the public key.
#[derive(Debug, Clone, PartialEq)]
pub struct PublicKey {
    /// `b = −a·s + e` (coefficient form, top level).
    pub b: RnsPoly,
    /// Uniform `a` (coefficient form, top level).
    pub a: RnsPoly,
}

/// One hybrid keyswitching key.
///
/// For each chain prime `j` it holds an encryption of `P·ĝ_j·target`
/// over the **extended basis** `(q_0, …, q_L, P)`, where `P` is the
/// special prime and `ĝ_j` the CRT idempotent. Keyswitching accumulates
/// digit products over the extended basis and divides by `P`, shrinking
/// the digit noise by `P` — the standard hybrid/GHS construction.
///
/// Residue polynomials are stored in evaluation form, extended-basis
/// order `[q_0 … q_L, P]`.
#[derive(Debug, Clone, PartialEq)]
pub struct KeySwitchKey {
    /// `parts[j] = (b_j residues, a_j residues)`.
    pub parts: Vec<(Vec<Poly>, Vec<Poly>)>,
}

/// Galois keys for a set of rotation steps (plus conjugation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GaloisKeys {
    /// Keyswitch keys indexed by the Galois element `g`.
    pub keys: HashMap<u64, KeySwitchKey>,
}

impl GaloisKeys {
    /// Looks up the key for a rotation step.
    ///
    /// # Errors
    ///
    /// [`CkksError::MissingGaloisKey`] when the step was not generated.
    pub fn for_step(
        &self,
        ctx: &CkksContext,
        step: i64,
    ) -> Result<(u64, &KeySwitchKey), CkksError> {
        let g = galois_exponent(step, ctx.params().n());
        self.keys
            .get(&g)
            .map(|k| (g, k))
            .ok_or(CkksError::MissingGaloisKey { step })
    }

    /// Looks up the conjugation key.
    ///
    /// # Errors
    ///
    /// [`CkksError::MissingGaloisKey`] when it was not generated.
    pub fn for_conjugation(&self, ctx: &CkksContext) -> Result<(u64, &KeySwitchKey), CkksError> {
        let g = conjugation_exponent(ctx.params().n());
        self.keys
            .get(&g)
            .map(|k| (g, k))
            .ok_or(CkksError::MissingGaloisKey { step: 0 })
    }
}

/// Generates all key material for a context.
#[derive(Debug)]
pub struct KeyGenerator<'a, R: Rng> {
    ctx: &'a CkksContext,
    rng: R,
}

impl<'a, R: Rng> KeyGenerator<'a, R> {
    /// Creates a generator over the given randomness source.
    pub fn new(ctx: &'a CkksContext, rng: R) -> Self {
        Self { ctx, rng }
    }

    /// Samples the secret key.
    pub fn secret_key(&mut self) -> SecretKey {
        SecretKey::generate(self.ctx, &mut self.rng)
    }

    /// Builds the public key `(−a·s + e, a)` at the top level.
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] on substrate errors.
    pub fn public_key(&mut self, sk: &SecretKey) -> Result<PublicKey, CkksError> {
        let level = self.ctx.params().levels();
        let s = sk.at_level(self.ctx, level)?.to_evaluation(self.ctx);
        let a = RnsPoly::sample_uniform(self.ctx, level, &mut self.rng)?;
        let e = RnsPoly::sample_error(self.ctx, level, &mut self.rng)?;
        let a_eval = a.clone().to_evaluation(self.ctx);
        let b = e
            .to_evaluation(self.ctx)
            .sub(&a_eval.mul(&s)?)?
            .to_coefficient(self.ctx);
        Ok(PublicKey { b, a })
    }

    /// Builds a keyswitch key for an arbitrary target, supplied as one
    /// evaluation-form residue polynomial per extended-basis modulus.
    fn keyswitch_key(
        &mut self,
        sk: &SecretKey,
        target_ext: &[Poly],
    ) -> Result<KeySwitchKey, CkksError> {
        let ctx = self.ctx;
        let level = ctx.params().levels();
        let ext = extended_basis(ctx);
        let p_special = ctx.special_modulus().value();
        // Secret in evaluation form per extended-basis modulus.
        let s_ext = lift_signed_eval(ctx, sk.signed());
        let mut parts = Vec::with_capacity(level + 1);
        for j in 0..=level {
            let mut b_res = Vec::with_capacity(ext.len());
            let mut a_res = Vec::with_capacity(ext.len());
            // Shared small error, lifted per modulus.
            let e_signed = sample_error_signed(ctx, &mut self.rng);
            for (i, &(m, table)) in ext.iter().enumerate() {
                let a_coeffs =
                    uvpu_math::sampling::uniform(&mut self.rng, ctx.params().n(), m.value());
                let a = Poly::from_coeffs(a_coeffs, m)
                    .map_err(CkksError::Math)?
                    .to_evaluation(table);
                let e = Poly::from_coeffs(e_signed.iter().map(|&c| m.from_i64(c)).collect(), m)
                    .map_err(CkksError::Math)?
                    .to_evaluation(table);
                // b = e − a·s + (i == j)·(P mod q_j)·target.
                let mut b = e
                    .sub(&a.mul(&s_ext[i]).map_err(CkksError::Math)?)
                    .map_err(CkksError::Math)?;
                if i == j {
                    let p_mod = m.reduce_u64(p_special);
                    b = b
                        .add(&target_ext[i].scalar_mul(p_mod))
                        .map_err(CkksError::Math)?;
                }
                b_res.push(b);
                a_res.push(a);
            }
            parts.push((b_res, a_res));
        }
        Ok(KeySwitchKey { parts })
    }

    /// The relinearization key (target `s²`).
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] on substrate errors.
    pub fn relin_key(&mut self, sk: &SecretKey) -> Result<KeySwitchKey, CkksError> {
        let s_ext = lift_signed_eval(self.ctx, sk.signed());
        let s2_ext: Vec<Poly> = s_ext
            .iter()
            .map(|s| s.mul(s))
            .collect::<Result<_, _>>()
            .map_err(CkksError::Math)?;
        self.keyswitch_key(sk, &s2_ext)
    }

    /// Galois keys for the given rotation steps plus conjugation.
    ///
    /// # Errors
    ///
    /// [`CkksError::Math`] on substrate errors.
    pub fn galois_keys(&mut self, sk: &SecretKey, steps: &[i64]) -> Result<GaloisKeys, CkksError> {
        let ctx = self.ctx;
        let n = ctx.params().n();
        let mut elements: Vec<u64> = steps.iter().map(|&s| galois_exponent(s, n)).collect();
        elements.push(conjugation_exponent(n));
        elements.sort_unstable();
        elements.dedup();
        let mut keys = HashMap::new();
        for g in elements {
            // τ_g of a ternary secret is ternary up to signs — apply the
            // automorphism on the signed coefficients directly.
            let tau_signed = galois_signed(sk.signed(), g);
            let tau_ext = lift_signed_eval(ctx, &tau_signed);
            keys.insert(g, self.keyswitch_key(sk, &tau_ext)?);
        }
        Ok(GaloisKeys { keys })
    }
}

/// The extended keyswitch basis `[q_0 … q_L, P]` as (modulus, table) pairs.
pub(crate) fn extended_basis(
    ctx: &CkksContext,
) -> Vec<(uvpu_math::modular::Modulus, &uvpu_math::ntt::NttTable)> {
    let mut out: Vec<_> = (0..=ctx.params().levels())
        .map(|i| (ctx.modulus(i), ctx.ntt(i)))
        .collect();
    out.push((ctx.special_modulus(), ctx.special_ntt()));
    out
}

/// Lifts signed coefficients to an evaluation-form residue per extended
/// modulus.
pub(crate) fn lift_signed_eval(ctx: &CkksContext, signed: &[i64]) -> Vec<Poly> {
    extended_basis(ctx)
        .into_iter()
        .map(|(m, table)| {
            Poly::from_coeffs(signed.iter().map(|&c| m.from_i64(c)).collect(), m)
                .expect("power-of-two degree")
                .to_evaluation(table)
        })
        .collect()
}

/// Applies `X ↦ X^g` to signed coefficients (negacyclic sign flips).
pub(crate) fn galois_signed(signed: &[i64], g: u64) -> Vec<i64> {
    let n = signed.len();
    let two_n = 2 * n as u64;
    let mut out = vec![0i64; n];
    for (i, &c) in signed.iter().enumerate() {
        let e = (i as u64 * g) % two_n;
        if e < n as u64 {
            out[e as usize] += c;
        } else {
            out[(e - n as u64) as usize] -= c;
        }
    }
    out
}

fn sample_error_signed<R: Rng>(ctx: &CkksContext, rng: &mut R) -> Vec<i64> {
    uvpu_math::sampling::GaussianSampler::new(ctx.params().error_std())
        .sample_vec(rng, ctx.params().n())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        CkksContext::new(CkksParams::new(1 << 6, 2, 40).unwrap()).unwrap()
    }

    #[test]
    fn secret_key_is_ternary() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let sk = SecretKey::generate(&ctx, &mut rng);
        assert!(sk.signed().iter().all(|&c| (-1..=1).contains(&c)));
        assert_eq!(sk.signed().len(), 64);
    }

    #[test]
    fn public_key_is_noisy_zero_encryption() {
        let ctx = ctx();
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(2));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        // b + a·s should be the small error e.
        let s = sk.at_level(&ctx, 2).unwrap().to_evaluation(&ctx);
        let a_eval = pk.a.clone().to_evaluation(&ctx);
        let check =
            pk.b.clone()
                .to_evaluation(&ctx)
                .add(&a_eval.mul(&s).unwrap())
                .unwrap()
                .to_coefficient(&ctx);
        for k in 0..64 {
            assert!(check.coefficient_centered_f64(&ctx, k).abs() < 40.0);
        }
    }

    #[test]
    fn galois_keys_cover_requested_steps() {
        let ctx = ctx();
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(3));
        let sk = kg.secret_key();
        let gk = kg.galois_keys(&sk, &[1, 2, -1]).unwrap();
        assert!(gk.for_step(&ctx, 1).is_ok());
        assert!(gk.for_step(&ctx, 2).is_ok());
        assert!(gk.for_step(&ctx, -1).is_ok());
        assert!(gk.for_conjugation(&ctx).is_ok());
        assert!(matches!(
            gk.for_step(&ctx, 7),
            Err(CkksError::MissingGaloisKey { step: 7 })
        ));
    }
}
