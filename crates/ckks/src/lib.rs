//! A self-contained RNS-CKKS homomorphic encryption scheme — the workload
//! generator for the `uvpu` vector-unit reproduction.
//!
//! The paper's accelerator (like F1, BTS, ARK, SHARP before it) targets
//! the operation mix of CKKS \[Cheon–Kim–Kim–Song\]: element-wise
//! polynomial arithmetic, NTTs, and automorphisms. This crate implements
//! that scheme from scratch on the [`uvpu_math`] substrate:
//!
//! - [`params`]: ring degree, RNS modulus chain, scale (each ciphertext is
//!   the paper's `2 × N × L` residue tensor);
//! - [`encoder`]: canonical-embedding SIMD packing of `N/2` complex slots;
//! - [`keys`]: ternary secrets, public keys, and RNS-gadget keyswitching
//!   keys for relinearization and rotation;
//! - [`ops`]: HAdd, HMult + relinearize, rescale, and HRot (automorphism +
//!   keyswitch — the operation the paper's inter-lane network exists for);
//! - [`linear`]: baby-step/giant-step homomorphic linear transforms, the
//!   rotation-heavy kernel at the heart of CKKS bootstrapping;
//! - [`bootstrap`]: bootstrapping's linear stages — the factorized
//!   homomorphic DFT (CoeffToSlot's computational core) — plus hoisted
//!   rotations in [`ops`].
//!
//! Parameters are sized for functional reproduction, not production
//! security.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use uvpu_ckks::encoder::{C64, Encoder};
//! use uvpu_ckks::keys::KeyGenerator;
//! use uvpu_ckks::ops::Evaluator;
//! use uvpu_ckks::params::{CkksContext, CkksParams};
//!
//! # fn main() -> Result<(), uvpu_ckks::CkksError> {
//! let ctx = CkksContext::new(CkksParams::new(1 << 7, 3, 40)?)?;
//! let encoder = Encoder::new(&ctx);
//! let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(1));
//! let sk = kg.secret_key();
//! let pk = kg.public_key(&sk)?;
//! let rlk = kg.relin_key(&sk)?;
//! let eval = Evaluator::new(&ctx);
//! let mut rng = StdRng::seed_from_u64(2);
//!
//! let x = vec![C64::from(3.0); 4];
//! let ct = eval.encrypt(&pk, &encoder.encode(&ctx, 3, &x)?, &mut rng)?;
//! let sq = eval.rescale(&eval.mul(&ct, &ct, &rlk)?)?;
//! let out = encoder.decode(&ctx, &eval.decrypt(&sk, &sq)?);
//! assert!((out[0].re - 9.0).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod ciphertext;
pub mod encoder;
pub mod keys;
pub mod linear;
pub mod ops;
pub mod params;
pub mod rns_poly;

mod error;

pub use error::CkksError;
