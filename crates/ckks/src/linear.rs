//! Homomorphic linear transforms via rotations (the HRot-heavy kernel).
//!
//! A slot-wise matrix–vector product `y = A·x` evaluates as
//! `Σ_d diag_d(A) ⊙ rot(x, d)` over the matrix diagonals — the structure
//! of CKKS bootstrapping's CoeffToSlot/SlotToCoeff stages and the reason
//! FHE workloads are dominated by automorphisms. The baby-step/giant-step
//! (BSGS) evaluation reduces `D` rotations to `O(√D)`.

use crate::ciphertext::Ciphertext;
use crate::encoder::{Encoder, C64};
use crate::keys::GaloisKeys;
use crate::ops::Evaluator;
use crate::params::CkksContext;
use crate::CkksError;

/// A slot-space linear transform given by its non-zero diagonals.
///
/// `diagonals[d]` holds the generalized diagonal
/// `diag_d(A)[j] = A[j][(j + d) mod slots]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTransform {
    slots: usize,
    diagonals: Vec<(usize, Vec<C64>)>,
}

impl LinearTransform {
    /// Builds a transform from a dense `slots × slots` matrix, extracting
    /// its non-zero diagonals.
    ///
    /// # Panics
    ///
    /// Panics unless `matrix` is square with `slots` rows.
    #[must_use]
    pub fn from_matrix(matrix: &[Vec<C64>]) -> Self {
        let slots = matrix.len();
        assert!(matrix.iter().all(|row| row.len() == slots));
        let mut diagonals = Vec::new();
        for d in 0..slots {
            let diag: Vec<C64> = (0..slots).map(|j| matrix[j][(j + d) % slots]).collect();
            if diag.iter().any(|z| z.abs() > 1e-12) {
                diagonals.push((d, diag));
            }
        }
        Self { slots, diagonals }
    }

    /// Slot count.
    #[must_use]
    pub const fn slots(&self) -> usize {
        self.slots
    }

    /// Number of non-zero diagonals (rotation count before BSGS).
    #[must_use]
    pub fn diagonal_count(&self) -> usize {
        self.diagonals.len()
    }

    /// The rotation steps required to evaluate this transform with the
    /// BSGS split `(baby, giant)`: baby steps `1..baby` and giant steps
    /// `baby, 2·baby, …`.
    #[must_use]
    pub fn required_steps(&self, baby: usize) -> Vec<i64> {
        let mut steps = Vec::new();
        for b in 1..baby {
            steps.push(b as i64);
        }
        let mut giants: Vec<i64> = self
            .diagonals
            .iter()
            .map(|(d, _)| (d / baby * baby) as i64)
            .filter(|&g| g != 0)
            .collect();
        giants.sort_unstable();
        giants.dedup();
        steps.extend(giants);
        steps
    }

    /// Plain (unencrypted) reference evaluation.
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == slots`.
    #[must_use]
    pub fn apply_plain(&self, x: &[C64]) -> Vec<C64> {
        assert_eq!(x.len(), self.slots);
        let mut y = vec![C64::default(); self.slots];
        for (d, diag) in &self.diagonals {
            for j in 0..self.slots {
                y[j] = y[j].add(diag[j].mul(x[(j + d) % self.slots]));
            }
        }
        y
    }

    /// Homomorphic BSGS evaluation: `y = Σ_g rot( Σ_b P_{g,b} ⊙ rot(x, b), g )`
    /// with diagonals pre-rotated into the giant-step frame.
    ///
    /// Consumes one multiplicative level (the diagonal products); call
    /// sites typically rescale the result.
    ///
    /// # Errors
    ///
    /// Missing Galois keys for the required steps, or substrate errors.
    pub fn apply(
        &self,
        ctx: &CkksContext,
        eval: &Evaluator<'_>,
        encoder: &Encoder,
        ct: &Ciphertext,
        gks: &GaloisKeys,
        baby: usize,
    ) -> Result<Ciphertext, CkksError> {
        assert!(baby >= 1 && baby <= self.slots);
        // Baby-step rotations of the input, computed once — hoisted: one
        // keyswitch digit decomposition shared across all baby steps.
        let steps: Vec<i64> = (1..baby as i64).collect();
        let mut rotated: Vec<Option<Ciphertext>> = vec![None; baby];
        rotated[0] = Some(ct.clone());
        if !steps.is_empty() {
            for (b, rot) in eval
                .rotate_hoisted(ct, &steps, gks)?
                .into_iter()
                .enumerate()
            {
                rotated[b + 1] = Some(rot);
            }
        }
        // Group diagonals by giant step g = ⌊d / baby⌋ · baby.
        let mut result: Option<Ciphertext> = None;
        let mut giants: Vec<usize> = self
            .diagonals
            .iter()
            .map(|(d, _)| d / baby * baby)
            .collect();
        giants.sort_unstable();
        giants.dedup();
        for g in giants {
            let mut inner: Option<Ciphertext> = None;
            for (d, diag) in self.diagonals.iter().filter(|(d, _)| d / baby * baby == g) {
                let b = d - g;
                let x_b = rotated[b].as_ref().expect("baby rotation precomputed");
                // Pre-rotate the diagonal by −g so the giant-step rotation
                // lands it in the right frame: P[j] = diag[(j + g) mod s]
                // … equivalently diag rotated left by g must be applied
                // *after* rotating by g; pre-compose by rotating the
                // plaintext right by g.
                let pre: Vec<C64> = (0..self.slots)
                    .map(|j| diag[(j + self.slots - g % self.slots) % self.slots])
                    .collect();
                let pt = encoder.encode_at_scale(ctx, x_b.level(), &pre, ctx.params().scale())?;
                let term = eval.mul_plain(x_b, &pt)?;
                inner = Some(match inner {
                    None => term,
                    Some(acc) => eval.add(&acc, &term)?,
                });
            }
            let inner = inner.expect("group has at least one diagonal");
            let shifted = if g == 0 {
                inner
            } else {
                eval.rotate(&inner, g as i64, gks)?
            };
            result = Some(match result {
                None => shifted,
                Some(acc) => eval.add(&acc, &shifted)?,
            });
        }
        result.ok_or_else(|| CkksError::InvalidParameters("transform has no diagonals".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity_matrix(s: usize) -> Vec<Vec<C64>> {
        (0..s)
            .map(|i| {
                (0..s)
                    .map(|j| {
                        if i == j {
                            C64::from(1.0)
                        } else {
                            C64::default()
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn from_matrix_extracts_diagonals() {
        let m = identity_matrix(8);
        let t = LinearTransform::from_matrix(&m);
        assert_eq!(t.diagonal_count(), 1);
        let x: Vec<C64> = (0..8).map(|j| C64::from(j as f64)).collect();
        assert_eq!(t.apply_plain(&x), x);
    }

    #[test]
    fn plain_matvec_matches_direct() {
        let s = 8;
        let m: Vec<Vec<C64>> = (0..s)
            .map(|i| {
                (0..s)
                    .map(|j| C64::from(((i * 3 + j) % 5) as f64))
                    .collect()
            })
            .collect();
        let t = LinearTransform::from_matrix(&m);
        let x: Vec<C64> = (0..s).map(|j| C64::new(j as f64, 1.0)).collect();
        let y = t.apply_plain(&x);
        for i in 0..s {
            let mut expect = C64::default();
            for j in 0..s {
                expect = expect.add(m[i][j].mul(x[j]));
            }
            assert!((y[i].re - expect.re).abs() < 1e-9);
            assert!((y[i].im - expect.im).abs() < 1e-9);
        }
    }

    #[test]
    fn homomorphic_bsgs_matches_plain() {
        let ctx = CkksContext::new(CkksParams::new(1 << 5, 2, 40).unwrap()).unwrap();
        let encoder = Encoder::new(&ctx);
        let slots = encoder.slot_count(); // 16
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(21));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let eval = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(22);

        // A circulant-ish band matrix with 3 diagonals.
        let mut m = vec![vec![C64::default(); slots]; slots];
        for j in 0..slots {
            m[j][j] = C64::from(2.0);
            m[j][(j + 1) % slots] = C64::from(-1.0);
            m[j][(j + 5) % slots] = C64::from(0.5);
        }
        let t = LinearTransform::from_matrix(&m);
        assert_eq!(t.diagonal_count(), 3);

        let baby = 4;
        let steps = t.required_steps(baby);
        let gks = kg.galois_keys(&sk, &steps).unwrap();

        let x: Vec<C64> = (0..slots)
            .map(|j| C64::from(1.0 + j as f64 * 0.1))
            .collect();
        let ct = eval
            .encrypt(&pk, &encoder.encode(&ctx, 2, &x).unwrap(), &mut rng)
            .unwrap();
        let y_ct = t.apply(&ctx, &eval, &encoder, &ct, &gks, baby).unwrap();
        let y_ct = eval.rescale(&y_ct).unwrap();
        let got = encoder.decode(&ctx, &eval.decrypt(&sk, &y_ct).unwrap());
        let expect = t.apply_plain(&x);
        for j in 0..slots {
            assert!(
                (got[j].re - expect[j].re).abs() < 1e-2,
                "slot {j}: {} vs {}",
                got[j].re,
                expect[j].re
            );
        }
    }
}
