use std::fmt;
use uvpu_math::MathError;

/// Errors produced by the CKKS scheme.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CkksError {
    /// Parameter validation failed.
    InvalidParameters(String),
    /// Operands live at different levels and must be aligned first.
    LevelMismatch {
        /// Left operand level.
        left: usize,
        /// Right operand level.
        right: usize,
    },
    /// The ciphertext has no levels left to rescale or multiply into.
    OutOfLevels,
    /// Operand scales differ too much for addition.
    ScaleMismatch {
        /// Left operand scale.
        left: f64,
        /// Right operand scale.
        right: f64,
    },
    /// Too many slot values for the ring degree.
    TooManySlots {
        /// Provided count.
        provided: usize,
        /// Capacity (`N/2`).
        capacity: usize,
    },
    /// A rotation key for this step was not generated.
    MissingGaloisKey {
        /// The requested rotation step.
        step: i64,
    },
    /// A level or prime index beyond the context's modulus chain.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of entries available.
        len: usize,
    },
    /// An error bubbled up from the mathematical substrate.
    Math(MathError),
}

impl fmt::Display for CkksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameters(s) => write!(f, "invalid parameters: {s}"),
            Self::LevelMismatch { left, right } => {
                write!(f, "level mismatch: {left} vs {right}")
            }
            Self::OutOfLevels => write!(f, "no levels remain in the modulus chain"),
            Self::ScaleMismatch { left, right } => {
                write!(f, "scale mismatch: {left} vs {right}")
            }
            Self::TooManySlots { provided, capacity } => {
                write!(f, "{provided} slot values exceed capacity {capacity}")
            }
            Self::MissingGaloisKey { step } => {
                write!(f, "no galois key generated for rotation step {step}")
            }
            Self::IndexOutOfRange { index, len } => {
                write!(f, "index {index} beyond the {len}-entry modulus chain")
            }
            Self::Math(e) => write!(f, "math error: {e}"),
        }
    }
}

impl std::error::Error for CkksError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for CkksError {
    fn from(e: MathError) -> Self {
        Self::Math(e)
    }
}
