//! The CKKS encoder: packing `N/2` complex numbers into a polynomial via
//! the canonical embedding (paper §II-A's SIMD packing).
//!
//! Slot `j` corresponds to evaluating the message polynomial at
//! `ζ^{5^j mod 2N}` (ζ the primitive complex `2N`-th root); indexing
//! slots along powers of 5 is exactly what makes a ring automorphism
//! `X ↦ X^{5^r}` act as a cyclic rotation of the slots — the `HRot`
//! operation the paper's automorphism hardware accelerates.

use crate::params::CkksContext;
use crate::rns_poly::RnsPoly;
use crate::CkksError;

/// A complex number (self-contained; no external numerics dependency).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Creates a complex number.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Complex multiplication.
    ///
    /// Named `mul` (not the `Mul` trait) on purpose: the call sites read
    /// as scheme math, and the type deliberately implements no operator
    /// traits.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, other: Self) -> Self {
        Self {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    /// Complex addition.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Self) -> Self {
        Self {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    /// Complex conjugate.
    #[must_use]
    pub const fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

/// An encoded (or decrypted) message: an RNS polynomial tagged with its
/// scale and level.
#[derive(Debug, Clone, PartialEq)]
pub struct Plaintext {
    /// The message polynomial (coefficient form).
    pub poly: RnsPoly,
    /// The encoding scale Δ attached to this message.
    pub scale: f64,
}

/// The canonical-embedding encoder for one ring degree.
///
/// # Example
///
/// ```
/// use uvpu_ckks::encoder::{C64, Encoder};
/// use uvpu_ckks::params::{CkksContext, CkksParams};
///
/// # fn main() -> Result<(), uvpu_ckks::CkksError> {
/// let ctx = CkksContext::new(CkksParams::new(1 << 6, 2, 40)?)?;
/// let enc = Encoder::new(&ctx);
/// let values = vec![C64::new(1.5, -0.5); 8];
/// let pt = enc.encode(&ctx, 2, &values)?;
/// let back = enc.decode(&ctx, &pt);
/// assert!((back[0].re - 1.5).abs() < 1e-6);
/// assert!((back[0].im + 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    n: usize,
    /// `rotation_group[j] = 5^j mod 2N` — the slot-to-root exponent map.
    rotation_group: Vec<usize>,
    /// `roots[e] = ζ^e` for `e ∈ [0, 2N)`.
    roots: Vec<C64>,
}

impl Encoder {
    /// Builds the encoder for the context's ring degree.
    #[must_use]
    pub fn new(ctx: &CkksContext) -> Self {
        let n = ctx.params().n();
        let two_n = 2 * n;
        let roots: Vec<C64> = (0..two_n)
            .map(|e| {
                let theta = std::f64::consts::PI * e as f64 / n as f64;
                C64::new(theta.cos(), theta.sin())
            })
            .collect();
        let mut rotation_group = Vec::with_capacity(n / 2);
        let mut g = 1usize;
        for _ in 0..n / 2 {
            rotation_group.push(g);
            g = g * 5 % two_n;
        }
        Self {
            n,
            rotation_group,
            roots,
        }
    }

    /// Number of complex slots (`N/2`).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.n / 2
    }

    /// Encodes up to `N/2` complex values at the given level with the
    /// context's scale Δ.
    ///
    /// # Errors
    ///
    /// [`CkksError::TooManySlots`] when more values than slots are given.
    pub fn encode(
        &self,
        ctx: &CkksContext,
        level: usize,
        values: &[C64],
    ) -> Result<Plaintext, CkksError> {
        self.encode_at_scale(ctx, level, values, ctx.params().scale())
    }

    /// Encodes with an explicit scale (used to match a ciphertext's scale
    /// for plaintext multiplication).
    ///
    /// # Errors
    ///
    /// [`CkksError::TooManySlots`] when more values than slots are given.
    pub fn encode_at_scale(
        &self,
        ctx: &CkksContext,
        level: usize,
        values: &[C64],
        scale: f64,
    ) -> Result<Plaintext, CkksError> {
        let slots = self.slot_count();
        if values.len() > slots {
            return Err(CkksError::TooManySlots {
                provided: values.len(),
                capacity: slots,
            });
        }
        let two_n = 2 * self.n;
        // m_k = (2Δ/N)·Re( Σ_j z_j · ζ^{−r_j·k} ), exploiting conjugate
        // symmetry of the other N/2 embedding slots.
        let mut coeffs = vec![0i64; self.n];
        for (k, c) in coeffs.iter_mut().enumerate() {
            let mut acc = C64::default();
            for (j, &z) in values.iter().enumerate() {
                let e = (two_n - self.rotation_group[j] * k % two_n) % two_n;
                acc = acc.add(z.mul(self.roots[e]));
            }
            let real = 2.0 * acc.re / self.n as f64;
            *c = (real * scale).round() as i64;
        }
        Ok(Plaintext {
            poly: RnsPoly::from_signed(ctx, level, &coeffs)?,
            scale,
        })
    }

    /// Decodes a plaintext back into its complex slot values.
    ///
    /// # Panics
    ///
    /// Panics if the plaintext is in evaluation form.
    #[must_use]
    pub fn decode(&self, ctx: &CkksContext, pt: &Plaintext) -> Vec<C64> {
        let two_n = 2 * self.n;
        let coeffs: Vec<f64> = (0..self.n)
            .map(|k| pt.poly.coefficient_centered_f64(ctx, k) / pt.scale)
            .collect();
        (0..self.slot_count())
            .map(|j| {
                let r = self.rotation_group[j];
                let mut acc = C64::default();
                for (k, &c) in coeffs.iter().enumerate() {
                    let e = r * k % two_n;
                    acc = acc.add(self.roots[e].mul(C64::from(c)));
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    fn setup() -> (CkksContext, Encoder) {
        let ctx = CkksContext::new(CkksParams::new(1 << 7, 2, 40).unwrap()).unwrap();
        let enc = Encoder::new(&ctx);
        (ctx, enc)
    }

    #[test]
    fn c64_algebra() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        let p = a.mul(b);
        assert!((p.re - 5.0).abs() < 1e-12);
        assert!((p.im - 5.0).abs() < 1e-12);
        assert_eq!(a.conj().im, -2.0);
        assert!((C64::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn encode_decode_round_trip() {
        let (ctx, enc) = setup();
        let values: Vec<C64> = (0..enc.slot_count())
            .map(|j| C64::new(j as f64 * 0.25 - 3.0, (j as f64).sin()))
            .collect();
        let pt = enc.encode(&ctx, 2, &values).unwrap();
        let back = enc.decode(&ctx, &pt);
        for (z, w) in values.iter().zip(&back) {
            assert!((z.re - w.re).abs() < 1e-6, "{} vs {}", z.re, w.re);
            assert!((z.im - w.im).abs() < 1e-6);
        }
    }

    #[test]
    fn partial_slot_vectors_pad_with_zeros() {
        let (ctx, enc) = setup();
        let values = vec![C64::from(7.0); 3];
        let pt = enc.encode(&ctx, 1, &values).unwrap();
        let back = enc.decode(&ctx, &pt);
        assert!((back[0].re - 7.0).abs() < 1e-6);
        assert!(back[5].abs() < 1e-6);
    }

    #[test]
    fn too_many_slots_is_rejected() {
        let (ctx, enc) = setup();
        let values = vec![C64::default(); enc.slot_count() + 1];
        assert!(matches!(
            enc.encode(&ctx, 1, &values),
            Err(CkksError::TooManySlots { .. })
        ));
    }

    #[test]
    fn encoding_is_additive() {
        let (ctx, enc) = setup();
        let a: Vec<C64> = (0..8).map(|j| C64::new(j as f64, 0.5)).collect();
        let b: Vec<C64> = (0..8).map(|j| C64::new(1.0, -j as f64)).collect();
        let pa = enc.encode(&ctx, 1, &a).unwrap();
        let pb = enc.encode(&ctx, 1, &b).unwrap();
        let sum = Plaintext {
            poly: pa.poly.add(&pb.poly).unwrap(),
            scale: pa.scale,
        };
        let back = enc.decode(&ctx, &sum);
        for (j, w) in back.iter().take(8).enumerate() {
            assert!((w.re - (a[j].re + b[j].re)).abs() < 1e-5);
            assert!((w.im - (a[j].im + b[j].im)).abs() < 1e-5);
        }
    }

    #[test]
    fn galois_five_rotates_slots() {
        // The whole point of the rotation-group indexing: X ↦ X^5 shifts
        // the slot vector by one position.
        let (ctx, enc) = setup();
        let values: Vec<C64> = (0..enc.slot_count()).map(|j| C64::from(j as f64)).collect();
        let pt = enc.encode(&ctx, 1, &values).unwrap();
        let rotated = Plaintext {
            poly: pt.poly.galois(5).unwrap(),
            scale: pt.scale,
        };
        let back = enc.decode(&ctx, &rotated);
        let slots = enc.slot_count();
        for (j, w) in back.iter().take(slots).enumerate() {
            let expect = ((j + 1) % slots) as f64;
            assert!(
                (w.re - expect).abs() < 1e-5,
                "slot {j}: {} vs {expect}",
                w.re
            );
        }
    }
}
