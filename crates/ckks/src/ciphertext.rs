//! CKKS ciphertexts.

use crate::rns_poly::RnsPoly;

/// A CKKS ciphertext: `size` polynomials (2 normally, 3 transiently after
/// a multiplication before relinearization), a level, and a scale.
///
/// Decryption evaluates `Σ_k parts[k]·s^k` and decodes at `scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    /// The ciphertext polynomials (coefficient form).
    pub parts: Vec<RnsPoly>,
    /// The encoding scale carried by the payload.
    pub scale: f64,
}

impl Ciphertext {
    /// Current level.
    #[must_use]
    pub fn level(&self) -> usize {
        self.parts[0].level()
    }

    /// Number of polynomials (2 after relinearization).
    #[must_use]
    pub fn size(&self) -> usize {
        self.parts.len()
    }

    /// Ring degree.
    #[must_use]
    pub fn n(&self) -> usize {
        self.parts[0].n()
    }
}
