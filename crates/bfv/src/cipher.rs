//! BFV ciphertexts and the homomorphic evaluator.
//!
//! Exact integer arithmetic: decryption recovers `round(t/q · (c₀ + c₁s))
//! mod t` with zero approximation error as long as the noise stays under
//! `Δ/2`. Multiplication computes the ciphertext tensor over ℤ (128-bit
//! exact) and scales by `t/q` — the scale-invariant Fan–Vercauteren
//! construction.

use crate::encoder::Plaintext;
use crate::keys::{GaloisKeys, KeySwitchKey, PublicKey, SecretKey};
use crate::params::BfvParams;
use crate::BfvError;
use rand::Rng;
use uvpu_core::trace::{scheme_span, scheme_span_lazy};
use uvpu_math::automorphism::apply_galois_coeff;

/// A BFV ciphertext: 2 (or transiently 3) polynomials mod `q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    /// The ciphertext polynomials (coefficients in `[0, q)`).
    pub parts: Vec<Vec<u64>>,
}

impl Ciphertext {
    /// Number of polynomials.
    #[must_use]
    pub fn size(&self) -> usize {
        self.parts.len()
    }
}

/// Requires `ct` to carry at least `needed` polynomials.
pub(crate) fn require_parts(parts: &[Vec<u64>], needed: usize) -> Result<(), BfvError> {
    if parts.len() < needed {
        return Err(BfvError::CiphertextTooShort {
            needed,
            got: parts.len(),
        });
    }
    Ok(())
}

/// Ring product mod `q` via the parameter set's NTT.
///
/// Runs the fused lazy-reduction pipeline: both operands stay in Harvey's
/// `[0, 4q)` range through the forward transforms and a single pointwise
/// pass feeds the inverse, with scratch borrowed from the polynomial pool
/// instead of fresh heap allocations. Public so the benchmark harness can
/// measure the primitive directly; inputs must be length-`n` slices of
/// canonical (`< q`) residues.
///
/// # Errors
///
/// Substrate errors (cannot occur for valid parameters).
pub fn ring_mul_q(params: &BfvParams, a: &[u64], b: &[u64]) -> Result<Vec<u64>, BfvError> {
    let mut out = uvpu_math::pool::take_scratch(params.n());
    uvpu_math::kernel::ntt_pointwise_intt(params.ntt(), a, b, &mut out);
    Ok(out)
}

/// `b = −(a·s) + e` (mod q), shared by public-key and keyswitch-key
/// generation.
pub(crate) fn b_from_a_s_e(
    params: &BfvParams,
    a: &[u64],
    s: &[i64],
    e: &[i64],
) -> Result<Vec<u64>, BfvError> {
    let q = params.modulus();
    let s_q: Vec<u64> = s.iter().map(|&c| q.from_i64(c)).collect();
    let a_s = ring_mul_q(params, a, &s_q)?;
    Ok(a_s
        .iter()
        .zip(e)
        .map(|(&x, &err)| q.add(q.neg(x), q.from_i64(err)))
        .collect())
}

/// Exact negacyclic convolution of centered operands over ℤ (`i128`).
///
/// The parallel path gathers each output coefficient independently
/// (`out[k] = Σ_{i+j=k} a_i·b_j − Σ_{i+j=k+n} a_i·b_j`); `i128` sums are
/// exact integers, so the result is bit-identical to the sequential
/// scatter loop regardless of summation order or thread count.
fn exact_negacyclic(a: &[i64], b: &[i64]) -> Vec<i128> {
    let n = a.len();
    let threads = uvpu_par::max_threads();
    if threads > 1 && n >= 128 {
        let chunk = n.div_ceil(threads * 2);
        let parts: Vec<Vec<i128>> = uvpu_par::par_map_indexed(n.div_ceil(chunk), |ci| {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(n);
            (lo..hi)
                .map(|k| {
                    let mut acc = 0i128;
                    for (i, &x) in a.iter().enumerate() {
                        if x == 0 {
                            continue;
                        }
                        let (j, negate) = if i <= k {
                            (k - i, false)
                        } else {
                            (k + n - i, true)
                        };
                        let p = i128::from(x) * i128::from(b[j]);
                        acc += if negate { -p } else { p };
                    }
                    acc
                })
                .collect()
        });
        return parts.concat();
    }
    let mut out = vec![0i128; n];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            let p = i128::from(x) * i128::from(y);
            let k = i + j;
            if k < n {
                out[k] += p;
            } else {
                out[k - n] -= p;
            }
        }
    }
    out
}

/// The homomorphic evaluator.
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use uvpu_bfv::cipher::Evaluator;
/// use uvpu_bfv::encoder::BatchEncoder;
/// use uvpu_bfv::keys::KeyGenerator;
/// use uvpu_bfv::params::BfvParams;
///
/// # fn main() -> Result<(), uvpu_bfv::BfvError> {
/// let params = BfvParams::new(1 << 6, 50)?;
/// let enc = BatchEncoder::new(&params)?;
/// let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(1));
/// let sk = kg.secret_key();
/// let pk = kg.public_key(&sk)?;
/// let eval = Evaluator::new(&params);
/// let mut rng = StdRng::seed_from_u64(2);
///
/// let ct = eval.encrypt(&pk, &enc.encode(&[41])?, &mut rng)?;
/// let one = eval.encrypt(&pk, &enc.encode(&[1])?, &mut rng)?;
/// let sum = eval.add(&ct, &one);
/// assert_eq!(enc.decode(&eval.decrypt(&sk, &sum)?)[0], 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'a> {
    params: &'a BfvParams,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over a parameter set.
    #[must_use]
    pub const fn new(params: &'a BfvParams) -> Self {
        Self { params }
    }

    /// Public-key encryption: `(Δm + u·b + e₁, u·a + e₂)`.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn encrypt<R: Rng>(
        &self,
        pk: &PublicKey,
        pt: &Plaintext,
        rng: &mut R,
    ) -> Result<Ciphertext, BfvError> {
        let _span = scheme_span("bfv.encrypt");
        let params = self.params;
        let q = params.modulus();
        let n = params.n();
        let u = uvpu_math::sampling::ternary(rng, n);
        let u_q: Vec<u64> = u.iter().map(|&c| q.from_i64(c)).collect();
        let gauss = uvpu_math::sampling::GaussianSampler::new(params.error_std());
        let e1 = gauss.sample_vec(rng, n);
        let e2 = gauss.sample_vec(rng, n);
        let ub = ring_mul_q(params, &pk.b, &u_q)?;
        let ua = ring_mul_q(params, &pk.a, &u_q)?;
        let delta = params.delta();
        let c0: Vec<u64> = (0..n)
            .map(|k| {
                let dm = q.mul(delta, params.plain_modulus().reduce_u64(pt.coeffs[k]));
                q.add(q.add(ub[k], q.from_i64(e1[k])), dm)
            })
            .collect();
        let c1: Vec<u64> = (0..n).map(|k| q.add(ua[k], q.from_i64(e2[k]))).collect();
        uvpu_math::pool::recycle(ub);
        uvpu_math::pool::recycle(ua);
        Ok(Ciphertext {
            parts: vec![c0, c1],
        })
    }

    /// Decryption: `round(t/q · Σ c_k·s^k) mod t`.
    ///
    /// # Errors
    ///
    /// [`BfvError::CiphertextTooShort`] for an empty ciphertext, or
    /// substrate errors.
    pub fn decrypt(&self, sk: &SecretKey, ct: &Ciphertext) -> Result<Plaintext, BfvError> {
        let params = self.params;
        let q = params.modulus();
        require_parts(&ct.parts, 1)?;
        let s: Vec<u64> = sk.signed.iter().map(|&c| q.from_i64(c)).collect();
        let mut acc = ct.parts[0].clone();
        let mut s_pow = s.clone();
        for part in &ct.parts[1..] {
            let prod = ring_mul_q(params, part, &s_pow)?;
            for (a, p) in acc.iter_mut().zip(&prod) {
                *a = q.add(*a, *p);
            }
            uvpu_math::pool::recycle(prod);
            let next = ring_mul_q(params, &s_pow, &s)?;
            uvpu_math::pool::recycle(std::mem::replace(&mut s_pow, next));
        }
        uvpu_math::pool::recycle(s_pow);
        let t = params.plain_modulus();
        let t_val = i128::from(t.value());
        let q_val = i128::from(q.value());
        let coeffs: Vec<u64> = acc
            .iter()
            .map(|&v| {
                let centered = i128::from(q.to_centered(v));
                // round(t·v/q) with round-half-up, then mod t.
                let scaled = (t_val * centered + q_val.div_euclid(2)).div_euclid(q_val);
                t.from_i64(scaled as i64)
            })
            .collect();
        Ok(Plaintext { coeffs })
    }

    /// Remaining noise budget in bits: `log₂(q / (2t·|noise|)) `; decryption
    /// fails when this hits zero.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn noise_budget(&self, sk: &SecretKey, ct: &Ciphertext) -> Result<f64, BfvError> {
        let params = self.params;
        let q = params.modulus();
        let t = params.plain_modulus();
        // Compute v = Σ c_k s^k, subtract Δ·m, measure the residue.
        let pt = self.decrypt(sk, ct)?;
        let s: Vec<u64> = sk.signed.iter().map(|&c| q.from_i64(c)).collect();
        let mut acc = ct.parts[0].clone();
        let mut s_pow = s.clone();
        for part in &ct.parts[1..] {
            let prod = ring_mul_q(params, part, &s_pow)?;
            for (a, p) in acc.iter_mut().zip(&prod) {
                *a = q.add(*a, *p);
            }
            uvpu_math::pool::recycle(prod);
            let next = ring_mul_q(params, &s_pow, &s)?;
            uvpu_math::pool::recycle(std::mem::replace(&mut s_pow, next));
        }
        uvpu_math::pool::recycle(s_pow);
        let mut max_noise = 0f64;
        for (k, &v) in acc.iter().enumerate() {
            // noise = v − round(q/t)·m (centered): use exact t·v − q·m.
            let tv = i128::from(t.value()) * i128::from(q.to_centered(v));
            let qm = i128::from(q.value()) * i128::from(t.to_centered(pt.coeffs[k]));
            let r = tv - qm; // ≈ t·noise_k
            max_noise = max_noise.max((r.abs() as f64) / t.value() as f64);
        }
        let budget = (q.value() as f64 / (2.0 * t.value() as f64 * max_noise.max(1.0))).log2();
        Ok(budget.max(0.0))
    }

    /// Homomorphic addition (exact).
    #[must_use]
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let _span = scheme_span("bfv.add");
        let q = self.params.modulus();
        let size = a.size().max(b.size());
        let n = self.params.n();
        let zero = uvpu_math::pool::take_zeroed(n);
        let parts = (0..size)
            .map(|k| {
                let x = a.parts.get(k).unwrap_or(&zero);
                let y = b.parts.get(k).unwrap_or(&zero);
                x.iter().zip(y).map(|(&u, &v)| q.add(u, v)).collect()
            })
            .collect();
        uvpu_math::pool::recycle(zero);
        Ciphertext { parts }
    }

    /// Homomorphic subtraction (exact).
    ///
    /// Subtracts part-wise (`x − y ≡ x + (−y) mod q`) without materializing
    /// a negated copy of `b`.
    #[must_use]
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let q = self.params.modulus();
        let size = a.size().max(b.size());
        let n = self.params.n();
        let zero = uvpu_math::pool::take_zeroed(n);
        let parts = (0..size)
            .map(|k| {
                let x = a.parts.get(k).unwrap_or(&zero);
                let y = b.parts.get(k).unwrap_or(&zero);
                x.iter().zip(y).map(|(&u, &v)| q.sub(u, v)).collect()
            })
            .collect();
        uvpu_math::pool::recycle(zero);
        Ciphertext { parts }
    }

    /// Adds a plaintext: `c₀ += Δ·m`.
    ///
    /// # Errors
    ///
    /// [`BfvError::CiphertextTooShort`] for an empty ciphertext.
    pub fn add_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, BfvError> {
        let q = self.params.modulus();
        let delta = self.params.delta();
        require_parts(&ct.parts, 1)?;
        let mut parts = ct.parts.clone();
        for (c, &m) in parts[0].iter_mut().zip(&pt.coeffs) {
            *c = q.add(*c, q.mul(delta, self.params.plain_modulus().reduce_u64(m)));
        }
        Ok(Ciphertext { parts })
    }

    /// Multiplies by a plaintext (slot-wise once batched).
    ///
    /// Noise note: the multiplication happens in the *ring*, so the noise
    /// grows with the plaintext polynomial's coefficient norm — which for
    /// a batched per-slot mask can reach `N·t/2` even when every slot
    /// value is small. Broadcast (all-slots-equal) masks encode to a
    /// constant polynomial and only scale noise by that constant; prefer
    /// them on noisy ciphertexts, or check [`Self::noise_budget`].
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn mul_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, BfvError> {
        let q = self.params.modulus();
        let m_q: Vec<u64> = pt
            .coeffs
            .iter()
            .map(|&c| {
                q.from_i64(
                    self.params
                        .plain_modulus()
                        .to_centered(self.params.plain_modulus().reduce_u64(c)),
                )
            })
            .collect();
        Ok(Ciphertext {
            parts: ct
                .parts
                .iter()
                .map(|p| ring_mul_q(self.params, p, &m_q))
                .collect::<Result<_, _>>()?,
        })
    }

    /// Homomorphic multiplication with relinearization: the ciphertext
    /// tensor over ℤ, scaled by `t/q`, then the quadratic term
    /// keyswitched away.
    ///
    /// # Errors
    ///
    /// [`BfvError::CiphertextTooShort`] for operands with fewer than two
    /// polynomials, or substrate errors.
    pub fn mul(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        rlk: &KeySwitchKey,
    ) -> Result<Ciphertext, BfvError> {
        let _span = scheme_span("bfv.mul");
        let params = self.params;
        let q = params.modulus();
        require_parts(&a.parts, 2)?;
        require_parts(&b.parts, 2)?;
        let centered = |p: &[u64]| -> Vec<i64> { p.iter().map(|&v| q.to_centered(v)).collect() };
        let (a0, a1) = (centered(&a.parts[0]), centered(&a.parts[1]));
        let (b0, b1) = (centered(&b.parts[0]), centered(&b.parts[1]));

        let d0 = exact_negacyclic(&a0, &b0);
        let mut d1 = exact_negacyclic(&a0, &b1);
        for (x, y) in d1.iter_mut().zip(exact_negacyclic(&a1, &b0)) {
            *x += y;
        }
        let d2 = exact_negacyclic(&a1, &b1);

        let t_val = i128::from(params.plain_modulus().value());
        let q_val = i128::from(q.value());
        let scale = |v: &[i128]| -> Vec<u64> {
            v.iter()
                .map(|&x| {
                    // round(t·x/q) without overflowing i128: split x = u·q + r.
                    let u = x.div_euclid(q_val);
                    let r = x.rem_euclid(q_val);
                    let rounded = t_val * u + (t_val * r + q_val.div_euclid(2)).div_euclid(q_val);
                    q.from_i64(rounded.rem_euclid(q_val) as i64)
                })
                .collect()
        };
        let c0 = scale(&d0);
        let c1 = scale(&d1);
        let c2 = scale(&d2);

        let (mut ks0, mut ks1) = self.keyswitch(&c2, rlk)?;
        for (x, &y) in ks0.iter_mut().zip(&c0) {
            *x = q.add(*x, y);
        }
        for (x, &y) in ks1.iter_mut().zip(&c1) {
            *x = q.add(*x, y);
        }
        Ok(Ciphertext {
            parts: vec![ks0, ks1],
        })
    }

    /// Base-`2^w` keyswitch of `d` under `key`.
    ///
    /// Digit products are accumulated in the *evaluation* domain against
    /// the key's precomputed NTT images (`parts_eval`), so the whole call
    /// pays one forward transform per non-zero digit and exactly two
    /// inverse transforms — instead of two full NTT round-trips per digit.
    /// The inverse NTT is linear over `Z_q`, so the result is bit-identical
    /// to summing coefficient-domain products.
    fn keyswitch(&self, d: &[u64], key: &KeySwitchKey) -> Result<(Vec<u64>, Vec<u64>), BfvError> {
        let _span = scheme_span("bfv.keyswitch");
        let params = self.params;
        let q = params.modulus();
        let n = params.n();
        let w = params.decomp_bits();
        let mask = (1u64 << w) - 1;
        let table = params.ntt();
        // Digit products are independent; compute them on the pool and
        // accumulate sequentially in digit order so the modular sums are
        // bit-identical to the sequential path.
        let products = uvpu_par::par_map_indexed(key.parts_eval.len(), |i| {
            let (b_eval, a_eval) = &key.parts_eval[i];
            let mut digit = uvpu_math::pool::take_scratch(n);
            for (o, &v) in digit.iter_mut().zip(d) {
                *o = (v >> (w * i as u32)) & mask;
            }
            if digit.iter().all(|&x| x == 0) {
                uvpu_math::pool::recycle(digit);
                return None;
            }
            let mut p0 = uvpu_math::pool::take_zeroed(n);
            let mut p1 = uvpu_math::pool::take_zeroed(n);
            uvpu_math::kernel::ntt_accumulate_pair(table, &digit, b_eval, a_eval, &mut p0, &mut p1);
            uvpu_math::pool::recycle(digit);
            Some((p0, p1))
        });
        let mut acc0 = uvpu_math::pool::take_zeroed(n);
        let mut acc1 = uvpu_math::pool::take_zeroed(n);
        for (p0, p1) in products.into_iter().flatten() {
            for (a, &p) in acc0.iter_mut().zip(&p0) {
                *a = q.add(*a, p);
            }
            for (a, &p) in acc1.iter_mut().zip(&p1) {
                *a = q.add(*a, p);
            }
            uvpu_math::pool::recycle(p0);
            uvpu_math::pool::recycle(p1);
        }
        // Two inverse transforms total, independent — run them as a pair
        // on the worker pool (a no-op at one thread).
        let mut inv = uvpu_par::par_map_vec(vec![acc0, acc1], |_, mut f| {
            table.inverse_inplace(&mut f);
            f
        });
        match (inv.pop(), inv.pop()) {
            (Some(acc1), Some(acc0)) => Ok((acc0, acc1)),
            _ => Err(BfvError::Internal(
                "parallel inverse NTT pair lost an operand",
            )),
        }
    }

    /// Rotates the batched rows by `step` (HRot): the Galois automorphism
    /// — the paper's inter-lane-network permutation — plus a keyswitch.
    ///
    /// # Errors
    ///
    /// [`BfvError::MissingGaloisKey`] or substrate errors.
    pub fn rotate_rows(
        &self,
        ct: &Ciphertext,
        step: i64,
        gks: &GaloisKeys,
    ) -> Result<Ciphertext, BfvError> {
        let _span = scheme_span_lazy(|| format!("bfv.rotate_rows step={step}"));
        let (g, key) = gks.for_step(self.params, step)?;
        self.apply_galois(ct, g, key)
    }

    /// Swaps the two batched rows (column rotation).
    ///
    /// # Errors
    ///
    /// [`BfvError::MissingGaloisKey`] or substrate errors.
    pub fn rotate_columns(
        &self,
        ct: &Ciphertext,
        gks: &GaloisKeys,
    ) -> Result<Ciphertext, BfvError> {
        let _span = scheme_span("bfv.rotate_columns");
        let (g, key) = gks.for_row_swap(self.params)?;
        self.apply_galois(ct, g, key)
    }

    fn apply_galois(
        &self,
        ct: &Ciphertext,
        g: u64,
        key: &KeySwitchKey,
    ) -> Result<Ciphertext, BfvError> {
        let q = self.params.modulus();
        require_parts(&ct.parts, 2)?;
        let t0 = apply_galois_coeff(&ct.parts[0], g, &q);
        let t1 = apply_galois_coeff(&ct.parts[1], g, &q);
        let (mut ks0, ks1) = self.keyswitch(&t1, key)?;
        for (x, &y) in ks0.iter_mut().zip(&t0) {
            *x = q.add(*x, y);
        }
        uvpu_math::pool::recycle(t1);
        Ok(Ciphertext {
            parts: vec![ks0, ks1],
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::encoder::BatchEncoder;
    use crate::keys::KeyGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fix {
        params: BfvParams,
        enc: BatchEncoder,
        sk: SecretKey,
        pk: PublicKey,
        rlk: KeySwitchKey,
        rng: StdRng,
    }

    fn fix(n: usize) -> Fix {
        let params = BfvParams::new(n, 50).unwrap();
        let enc = BatchEncoder::new(&params).unwrap();
        let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(11));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let rlk = kg.relin_key(&sk).unwrap();
        Fix {
            params,
            enc,
            sk,
            pk,
            rlk,
            rng: StdRng::seed_from_u64(12),
        }
    }

    #[test]
    fn encrypt_decrypt_exact() {
        let mut f = fix(1 << 6);
        let eval = Evaluator::new(&f.params);
        let values: Vec<u64> = (0..64).map(|i| i * 1009 % 65537).collect();
        let ct = eval
            .encrypt(&f.pk, &f.enc.encode(&values).unwrap(), &mut f.rng)
            .unwrap();
        let out = f.enc.decode(&eval.decrypt(&f.sk, &ct).unwrap());
        assert_eq!(out, values, "BFV is exact");
        assert!(eval.noise_budget(&f.sk, &ct).unwrap() > 10.0);
    }

    #[test]
    fn addition_and_subtraction_are_exact_mod_t() {
        let mut f = fix(1 << 5);
        let eval = Evaluator::new(&f.params);
        let a: Vec<u64> = (0..32).map(|i| 65_000 + i).collect();
        let b: Vec<u64> = (0..32).map(|i| 1_000 + 3 * i).collect();
        let ca = eval
            .encrypt(&f.pk, &f.enc.encode(&a).unwrap(), &mut f.rng)
            .unwrap();
        let cb = eval
            .encrypt(&f.pk, &f.enc.encode(&b).unwrap(), &mut f.rng)
            .unwrap();
        let out = f
            .enc
            .decode(&eval.decrypt(&f.sk, &eval.add(&ca, &cb)).unwrap());
        for j in 0..32 {
            assert_eq!(out[j], (a[j] + b[j]) % 65537);
        }
        let out = f
            .enc
            .decode(&eval.decrypt(&f.sk, &eval.sub(&ca, &cb)).unwrap());
        for j in 0..32 {
            assert_eq!(out[j], (65537 + a[j] - b[j]) % 65537);
        }
    }

    #[test]
    fn multiplication_is_exact_slotwise() {
        let mut f = fix(1 << 5);
        let eval = Evaluator::new(&f.params);
        let a: Vec<u64> = (0..32).map(|i| i + 7).collect();
        let b: Vec<u64> = (0..32).map(|i| 5 * i + 1).collect();
        let ca = eval
            .encrypt(&f.pk, &f.enc.encode(&a).unwrap(), &mut f.rng)
            .unwrap();
        let cb = eval
            .encrypt(&f.pk, &f.enc.encode(&b).unwrap(), &mut f.rng)
            .unwrap();
        let prod = eval.mul(&ca, &cb, &f.rlk).unwrap();
        assert_eq!(prod.size(), 2, "relinearized back to two parts");
        let out = f.enc.decode(&eval.decrypt(&f.sk, &prod).unwrap());
        for j in 0..32 {
            assert_eq!(out[j], a[j] * b[j] % 65537, "slot {j}");
        }
    }

    #[test]
    fn plaintext_operations_are_exact() {
        let mut f = fix(1 << 5);
        let eval = Evaluator::new(&f.params);
        let a: Vec<u64> = (0..32).map(|i| 11 * i % 65537).collect();
        let w: Vec<u64> = (0..32).map(|i| i % 9 + 1).collect();
        let ct = eval
            .encrypt(&f.pk, &f.enc.encode(&a).unwrap(), &mut f.rng)
            .unwrap();
        let out = f.enc.decode(
            &eval
                .decrypt(
                    &f.sk,
                    &eval.mul_plain(&ct, &f.enc.encode(&w).unwrap()).unwrap(),
                )
                .unwrap(),
        );
        for j in 0..32 {
            assert_eq!(out[j], a[j] * w[j] % 65537);
        }
        let out = f.enc.decode(
            &eval
                .decrypt(
                    &f.sk,
                    &eval.add_plain(&ct, &f.enc.encode(&w).unwrap()).unwrap(),
                )
                .unwrap(),
        );
        for j in 0..32 {
            assert_eq!(out[j], (a[j] + w[j]) % 65537);
        }
    }

    #[test]
    fn rotation_matches_row_semantics() {
        let mut f = fix(1 << 5);
        let eval = Evaluator::new(&f.params);
        let mut kg = KeyGenerator::new(&f.params, StdRng::seed_from_u64(13));
        let gks = kg.galois_keys(&f.sk, &[1, 3]).unwrap();
        let rows = f.enc.row_size();
        let values: Vec<u64> = (0..32).collect();
        let ct = eval
            .encrypt(&f.pk, &f.enc.encode(&values).unwrap(), &mut f.rng)
            .unwrap();
        for step in [1usize, 3] {
            let rot = eval.rotate_rows(&ct, step as i64, &gks).unwrap();
            let out = f.enc.decode(&eval.decrypt(&f.sk, &rot).unwrap());
            for j in 0..rows {
                assert_eq!(out[j], values[(j + step) % rows], "step {step}");
                assert_eq!(out[rows + j], values[rows + (j + step) % rows]);
            }
        }
        let swapped = eval.rotate_columns(&ct, &gks).unwrap();
        let out = f.enc.decode(&eval.decrypt(&f.sk, &swapped).unwrap());
        for j in 0..rows {
            assert_eq!(out[j], values[rows + j]);
        }
    }

    #[test]
    fn depth_two_multiplication_with_small_plain_modulus() {
        // Noise grows ~t·N per multiplication; t = 257 buys depth 2 under
        // a single 50-bit q (t = 65537 supports depth 1).
        let params = BfvParams::with_plain_modulus(1 << 5, 50, 257).unwrap();
        let enc = BatchEncoder::new(&params).unwrap();
        let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(21));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        let rlk = kg.relin_key(&sk).unwrap();
        let eval = Evaluator::new(&params);
        let mut rng = StdRng::seed_from_u64(22);

        let a: Vec<u64> = (0..32).map(|i| i % 7).collect();
        let ct = eval
            .encrypt(&pk, &enc.encode(&a).unwrap(), &mut rng)
            .unwrap();
        let sq = eval.mul(&ct, &ct, &rlk).unwrap();
        let quad = eval.mul(&sq, &sq, &rlk).unwrap();
        let out = enc.decode(&eval.decrypt(&sk, &quad).unwrap());
        for (j, &w) in out.iter().take(32).enumerate() {
            let x = (j % 7) as u64;
            assert_eq!(w, x.pow(4) % 257, "slot {j}");
        }
        assert!(eval.noise_budget(&sk, &quad).unwrap() > 0.0);
    }

    #[test]
    fn malformed_ciphertexts_are_typed_errors_not_panics() {
        let mut f = fix(1 << 5);
        let eval = Evaluator::new(&f.params);
        let empty = Ciphertext { parts: vec![] };
        match eval.decrypt(&f.sk, &empty) {
            Err(BfvError::CiphertextTooShort { needed: 1, got: 0 }) => {}
            other => panic!("expected CiphertextTooShort, got {other:?}"),
        }
        let vals: Vec<u64> = (0..32).collect();
        let ct = eval
            .encrypt(&f.pk, &f.enc.encode(&vals).unwrap(), &mut f.rng)
            .unwrap();
        let truncated = Ciphertext {
            parts: ct.parts[..1].to_vec(),
        };
        assert!(matches!(
            eval.mul(&truncated, &ct, &f.rlk),
            Err(BfvError::CiphertextTooShort { needed: 2, got: 1 })
        ));
        assert!(matches!(
            eval.add_plain(&empty, &f.enc.encode(&vals).unwrap()),
            Err(BfvError::CiphertextTooShort { .. })
        ));
    }

    #[test]
    fn noise_budget_shrinks_with_depth() {
        let mut f = fix(1 << 5);
        let eval = Evaluator::new(&f.params);
        let a: Vec<u64> = (0..32).collect();
        let ct = eval
            .encrypt(&f.pk, &f.enc.encode(&a).unwrap(), &mut f.rng)
            .unwrap();
        let fresh = eval.noise_budget(&f.sk, &ct).unwrap();
        let sq = eval.mul(&ct, &ct, &f.rlk).unwrap();
        let after = eval.noise_budget(&f.sk, &sq).unwrap();
        assert!(fresh > after + 5.0, "fresh {fresh:.1} vs after {after:.1}");
        assert!(after > 0.0, "depth 1 must still decrypt");
    }

    #[test]
    fn mul_emits_scheme_spans() {
        use uvpu_core::trace::{self, RingBufferSink, SharedSink, TraceEvent};

        let mut f = fix(64);
        let eval = Evaluator::new(&f.params);
        let vals: Vec<u64> = (0..f.enc.slot_count()).map(|j| j as u64 % 7).collect();
        let pt = f.enc.encode(&vals).unwrap();
        let ct = eval.encrypt(&f.pk, &pt, &mut f.rng).unwrap();

        let shared = SharedSink::new(RingBufferSink::new(64));
        trace::install_global(Box::new(shared.clone()));
        let _ = eval.mul(&ct, &ct, &f.rlk).unwrap();
        trace::take_global();

        let names: Vec<String> = shared.with(|s| {
            s.events()
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::SpanBegin { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .collect()
        });
        assert!(names.iter().any(|n| n == "bfv.mul"), "{names:?}");
        assert!(names.iter().any(|n| n == "bfv.keyswitch"), "{names:?}");
    }
}
