//! A self-contained BFV homomorphic encryption scheme.
//!
//! The paper (§II-A) notes that although it discusses CKKS, "other
//! schemes like BGV, BFV can also be similarly supported given their
//! similar computation patterns". This crate backs that claim: an
//! exact-integer-arithmetic BFV built on the *same* substrate — the same
//! negacyclic ring, the same NTTs, and the same Galois automorphisms
//! routed by the unified inter-lane network.
//!
//! - [`params`]: ring degree, single ciphertext modulus `q`, plaintext
//!   modulus `t ≡ 1 (mod 2N)` for SIMD batching;
//! - [`encoder`]: the slot batching encoder (two rows of `N/2` slots,
//!   SEAL-style semantics);
//! - [`keys`]: ternary secrets, public keys, base-`2^w` relinearization
//!   and Galois keys;
//! - [`cipher`]: encrypt/decrypt, exact HAdd/HMult, and HRot — the same
//!   automorphism the CKKS path exercises;
//! - [`bgv`]: the BGV (least-significant-bit) variant on the same
//!   substrate, completing the paper's BGV/BFV claim.
//!
//! Parameters are sized for functional reproduction, not production
//! security.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use uvpu_bfv::cipher::Evaluator;
//! use uvpu_bfv::encoder::BatchEncoder;
//! use uvpu_bfv::keys::KeyGenerator;
//! use uvpu_bfv::params::BfvParams;
//!
//! # fn main() -> Result<(), uvpu_bfv::BfvError> {
//! let params = BfvParams::new(1 << 6, 50)?;
//! let encoder = BatchEncoder::new(&params)?;
//! let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(1));
//! let sk = kg.secret_key();
//! let pk = kg.public_key(&sk)?;
//! let rlk = kg.relin_key(&sk)?;
//! let eval = Evaluator::new(&params);
//! let mut rng = StdRng::seed_from_u64(2);
//!
//! let xs: Vec<u64> = (0..64).map(|i| i % 17).collect();
//! let ct = eval.encrypt(&pk, &encoder.encode(&xs)?, &mut rng)?;
//! let sq = eval.mul(&ct, &ct, &rlk)?;
//! let out = encoder.decode(&eval.decrypt(&sk, &sq)?);
//! assert_eq!(out[5], 25); // (5 mod 17)² — exact, no approximation
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgv;
#[warn(clippy::unwrap_used, clippy::expect_used)]
pub mod cipher;
pub mod encoder;
pub mod keys;
#[warn(clippy::unwrap_used, clippy::expect_used)]
pub mod params;

use std::fmt;
use uvpu_math::MathError;

/// Errors produced by the BFV scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BfvError {
    /// Parameter validation failed.
    InvalidParameters(&'static str),
    /// A slot vector exceeds the ring capacity.
    TooManySlots {
        /// Provided count.
        provided: usize,
        /// Capacity (`N`).
        capacity: usize,
    },
    /// A rotation key for this step was not generated.
    MissingGaloisKey {
        /// The requested rotation step.
        step: i64,
    },
    /// A ciphertext has too few polynomials for the operation.
    CiphertextTooShort {
        /// Polynomials the operation requires.
        needed: usize,
        /// Polynomials the ciphertext has.
        got: usize,
    },
    /// An internal invariant was violated (a bug, surfaced as an error
    /// instead of a panic).
    Internal(&'static str),
    /// An error bubbled up from the mathematical substrate.
    Math(MathError),
}

impl fmt::Display for BfvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameters(why) => write!(f, "invalid parameters: {why}"),
            Self::TooManySlots { provided, capacity } => {
                write!(f, "{provided} slot values exceed capacity {capacity}")
            }
            Self::MissingGaloisKey { step } => {
                write!(f, "no galois key generated for rotation step {step}")
            }
            Self::CiphertextTooShort { needed, got } => {
                write!(
                    f,
                    "ciphertext has {got} polynomials, operation needs {needed}"
                )
            }
            Self::Internal(why) => write!(f, "internal invariant violated: {why}"),
            Self::Math(e) => write!(f, "math error: {e}"),
        }
    }
}

impl std::error::Error for BfvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for BfvError {
    fn from(e: MathError) -> Self {
        Self::Math(e)
    }
}
