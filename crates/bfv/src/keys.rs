//! BFV key material: ternary secret, public key, and base-`2^w`
//! keyswitching keys for relinearization and rotation.

use crate::params::BfvParams;
use crate::BfvError;
use rand::Rng;
use std::collections::HashMap;
use uvpu_math::automorphism::{conjugation_exponent, galois_exponent};

/// The ternary secret key (signed coefficients in {−1, 0, 1}).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecretKey {
    pub(crate) signed: Vec<i64>,
}

/// The public key: an encryption of zero `(b, a)` with `b = −(a·s) + e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicKey {
    pub(crate) b: Vec<u64>,
    pub(crate) a: Vec<u64>,
}

/// A keyswitching key: for digit `i` of the base-`2^w` decomposition, an
/// encryption of `2^{wi} · target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySwitchKey {
    /// `(b_i, a_i)` pairs, one per digit.
    pub(crate) parts: Vec<(Vec<u64>, Vec<u64>)>,
    /// Forward-NTT images of `parts`, precomputed at keygen so every
    /// keyswitch can accumulate digit products in the evaluation domain
    /// and pay only two inverse transforms per call.
    pub(crate) parts_eval: Vec<(Vec<u64>, Vec<u64>)>,
}

/// Galois keys indexed by Galois element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GaloisKeys {
    pub(crate) keys: HashMap<u64, KeySwitchKey>,
}

impl GaloisKeys {
    /// Looks up the key for a row-rotation step.
    ///
    /// # Errors
    ///
    /// [`BfvError::MissingGaloisKey`] when the step was not generated.
    pub fn for_step(
        &self,
        params: &BfvParams,
        step: i64,
    ) -> Result<(u64, &KeySwitchKey), BfvError> {
        let g = galois_exponent(step, params.n());
        self.keys
            .get(&g)
            .map(|k| (g, k))
            .ok_or(BfvError::MissingGaloisKey { step })
    }

    /// Looks up the row-swap (column rotation) key.
    ///
    /// # Errors
    ///
    /// [`BfvError::MissingGaloisKey`] when it was not generated.
    pub fn for_row_swap(&self, params: &BfvParams) -> Result<(u64, &KeySwitchKey), BfvError> {
        let g = conjugation_exponent(params.n());
        self.keys
            .get(&g)
            .map(|k| (g, k))
            .ok_or(BfvError::MissingGaloisKey { step: 0 })
    }
}

/// Generates all BFV key material.
#[derive(Debug)]
pub struct KeyGenerator<'a, R: Rng> {
    params: &'a BfvParams,
    rng: R,
}

impl<'a, R: Rng> KeyGenerator<'a, R> {
    /// Creates a generator over the given randomness source.
    pub fn new(params: &'a BfvParams, rng: R) -> Self {
        Self { params, rng }
    }

    /// Samples the ternary secret.
    pub fn secret_key(&mut self) -> SecretKey {
        SecretKey {
            signed: uvpu_math::sampling::ternary(&mut self.rng, self.params.n()),
        }
    }

    fn sample_error(&mut self) -> Vec<i64> {
        uvpu_math::sampling::GaussianSampler::new(self.params.error_std())
            .sample_vec(&mut self.rng, self.params.n())
    }

    fn sample_uniform(&mut self) -> Vec<u64> {
        uvpu_math::sampling::uniform(
            &mut self.rng,
            self.params.n(),
            self.params.modulus().value(),
        )
    }

    /// Builds the public key.
    ///
    /// # Errors
    ///
    /// Substrate errors (cannot occur for valid parameters).
    pub fn public_key(&mut self, sk: &SecretKey) -> Result<PublicKey, BfvError> {
        let a = self.sample_uniform();
        let e = self.sample_error();
        let b = crate::cipher::b_from_a_s_e(self.params, &a, &sk.signed, &e)?;
        Ok(PublicKey { b, a })
    }

    /// Builds a keyswitch key for a target given as signed coefficients'
    /// residues mod `q`.
    fn keyswitch_key(&mut self, sk: &SecretKey, target: &[u64]) -> Result<KeySwitchKey, BfvError> {
        let q = self.params.modulus();
        let w = self.params.decomp_bits();
        let digits = self.params.decomp_digits();
        let mut parts = Vec::with_capacity(digits);
        let mut base = 1u64;
        for _ in 0..digits {
            let a = self.sample_uniform();
            let e = self.sample_error();
            let mut b = crate::cipher::b_from_a_s_e(self.params, &a, &sk.signed, &e)?;
            for (bi, &ti) in b.iter_mut().zip(target) {
                *bi = q.add(*bi, q.mul(q.reduce_u64(base), ti));
            }
            parts.push((b, a));
            base = base.wrapping_shl(w); // 2^{wi}; overflow harmless past q's bits
        }
        let parts_eval = parts
            .iter()
            .map(|(b, a)| {
                let mut fb = b.clone();
                self.params.ntt().forward_inplace(&mut fb);
                let mut fa = a.clone();
                self.params.ntt().forward_inplace(&mut fa);
                (fb, fa)
            })
            .collect();
        Ok(KeySwitchKey { parts, parts_eval })
    }

    /// The relinearization key (target `s²`).
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn relin_key(&mut self, sk: &SecretKey) -> Result<KeySwitchKey, BfvError> {
        let q = self.params.modulus();
        let s: Vec<u64> = sk.signed.iter().map(|&c| q.from_i64(c)).collect();
        let s2 = crate::cipher::ring_mul_q(self.params, &s, &s)?;
        self.keyswitch_key(sk, &s2)
    }

    /// Galois keys for the given row-rotation steps plus the row swap.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn galois_keys(&mut self, sk: &SecretKey, steps: &[i64]) -> Result<GaloisKeys, BfvError> {
        let n = self.params.n();
        let q = self.params.modulus();
        let mut elements: Vec<u64> = steps.iter().map(|&s| galois_exponent(s, n)).collect();
        elements.push(conjugation_exponent(n));
        elements.sort_unstable();
        elements.dedup();
        let mut keys = HashMap::new();
        for g in elements {
            let tau = uvpu_math::automorphism::apply_galois_coeff(
                &sk.signed.iter().map(|&c| q.from_i64(c)).collect::<Vec<_>>(),
                g,
                &q,
            );
            keys.insert(g, self.keyswitch_key(sk, &tau)?);
        }
        Ok(GaloisKeys { keys })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn public_key_is_noisy_zero() {
        let params = BfvParams::new(1 << 6, 50).unwrap();
        let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(1));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).unwrap();
        // b + a·s must be small (= e).
        let q = params.modulus();
        let s: Vec<u64> = sk.signed.iter().map(|&c| q.from_i64(c)).collect();
        let a_s = crate::cipher::ring_mul_q(&params, &pk.a, &s).unwrap();
        for (b, x) in pk.b.iter().zip(&a_s) {
            let v = q.to_centered(q.add(*b, *x));
            assert!(v.abs() < 40, "residual noise {v}");
        }
    }

    #[test]
    fn keyswitch_key_digit_count() {
        let params = BfvParams::new(1 << 6, 50).unwrap();
        let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(2));
        let sk = kg.secret_key();
        let rlk = kg.relin_key(&sk).unwrap();
        assert_eq!(rlk.parts.len(), params.decomp_digits());
    }

    #[test]
    fn galois_keys_cover_steps_and_swap() {
        let params = BfvParams::new(1 << 6, 50).unwrap();
        let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(3));
        let sk = kg.secret_key();
        let gks = kg.galois_keys(&sk, &[1, -2]).unwrap();
        assert!(gks.for_step(&params, 1).is_ok());
        assert!(gks.for_step(&params, -2).is_ok());
        assert!(gks.for_row_swap(&params).is_ok());
        assert!(gks.for_step(&params, 5).is_err());
    }
}
