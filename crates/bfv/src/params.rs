//! BFV parameters.

use crate::BfvError;
use std::sync::Arc;
use uvpu_math::modular::Modulus;
use uvpu_math::ntt::NttTable;

/// The plaintext modulus: the Fermat prime `65537 ≡ 1 (mod 2N)` for every
/// supported ring degree, enabling SIMD batching.
pub const PLAINTEXT_MODULUS: u64 = 65_537;

/// BFV parameters: ring degree `N`, a single ciphertext modulus `q`
/// (an NTT prime), and the batching plaintext modulus `t = 65537`.
///
/// Single-modulus BFV keeps the exact tensor arithmetic in 128-bit
/// integers (`N · (q/2)² < 2¹²⁷` is enforced), which is the clearest
/// correct formulation; the RNS generalization changes only bookkeeping.
///
/// # Example
///
/// ```
/// let p = uvpu_bfv::params::BfvParams::new(1 << 10, 50)?;
/// assert_eq!(p.n(), 1024);
/// assert_eq!(p.plain_modulus().value(), 65537);
/// # Ok::<(), uvpu_bfv::BfvError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BfvParams {
    n: usize,
    q: Modulus,
    t: Modulus,
    /// `Δ = ⌊q/t⌋`.
    delta: u64,
    /// Relinearization decomposition base `2^w`.
    decomp_bits: u32,
    /// Shared via the process-wide plan cache.
    ntt: Arc<NttTable>,
    error_std: f64,
}

impl BfvParams {
    /// Creates parameters with ring degree `n` and a `q_bits`-bit modulus.
    ///
    /// # Errors
    ///
    /// [`BfvError::InvalidParameters`] for a non-power-of-two `n`, a ring
    /// too small for batching (`2n ∤ t − 1`), or a modulus so large the
    /// exact tensor product would overflow `i128`.
    pub fn new(n: usize, q_bits: u32) -> Result<Self, BfvError> {
        Self::with_plain_modulus(n, q_bits, PLAINTEXT_MODULUS)
    }

    /// Creates parameters with an explicit plaintext modulus `t` (a prime
    /// with `t ≡ 1 (mod 2N)` for batching). Smaller `t` buys
    /// multiplicative depth: noise grows by roughly `t·N` per
    /// multiplication, so e.g. `t = 257` supports depth 2 where
    /// `t = 65537` supports depth 1 under a single 50-bit `q`.
    ///
    /// # Errors
    ///
    /// [`BfvError::InvalidParameters`] as for [`BfvParams::new`], plus a
    /// non-prime or batching-incompatible `t`.
    pub fn with_plain_modulus(n: usize, q_bits: u32, t_value: u64) -> Result<Self, BfvError> {
        if !n.is_power_of_two() || n < 8 {
            return Err(BfvError::InvalidParameters(
                "ring degree must be a power of two >= 8",
            ));
        }
        if !uvpu_math::primes::is_prime(t_value) {
            return Err(BfvError::InvalidParameters("t must be prime"));
        }
        if !(t_value - 1).is_multiple_of(2 * n as u64) {
            return Err(BfvError::InvalidParameters(
                "batching needs t == 1 (mod 2N)",
            ));
        }
        if !(30..=52).contains(&q_bits) {
            return Err(BfvError::InvalidParameters(
                "q must have 30..=52 bits (exact i128 tensor arithmetic)",
            ));
        }
        // N · (q/2)² must stay within i128 for the exact tensor product.
        let head = 2 * q_bits as usize + n.trailing_zeros() as usize;
        if head >= 126 {
            return Err(BfvError::InvalidParameters(
                "N·q² too large for exact 128-bit tensor arithmetic",
            ));
        }
        // q must be an NTT prime AND ≡ 1 (mod t): with q = K·t + 1 the
        // scale-invariant multiplication's ⌊q/t⌋ truncation term
        // `(q mod t)/t · ‖m·m'‖` collapses to `‖m·m'‖/t`, keeping the
        // noise far below Δ/2. Search on the lattice of both congruences.
        let step = 2 * n as u64 * t_value;
        if step >= 1u64 << (q_bits - 1) {
            return Err(BfvError::InvalidParameters(
                "q too small for both the NTT and the plaintext congruence",
            ));
        }
        let hi = (1u64 << q_bits) - 1;
        let lo = 1u64 << (q_bits - 1);
        let mut candidate = hi - (hi - 1) % step;
        while candidate > lo && !uvpu_math::primes::is_prime(candidate) {
            candidate -= step;
        }
        if candidate <= lo {
            return Err(BfvError::InvalidParameters(
                "no prime satisfies both congruences at this width",
            ));
        }
        let q = Modulus::new(candidate)?;
        let t = Modulus::new(t_value)?;
        // The lattice search guarantees both congruences; verify anyway
        // so a search bug surfaces as a typed error, not bad ciphertexts.
        if q.value() % t_value != 1 || q.value() % (2 * n as u64) != 1 {
            return Err(BfvError::Internal(
                "prime search returned q violating its congruences",
            ));
        }
        let ntt = uvpu_math::cache::ntt_table(q, n)?;
        Ok(Self {
            n,
            q,
            t,
            delta: q.value() / t_value,
            decomp_bits: 16,
            ntt,
            error_std: 3.2,
        })
    }

    /// Ring degree `N`.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// The ciphertext modulus.
    #[must_use]
    pub const fn modulus(&self) -> Modulus {
        self.q
    }

    /// The plaintext modulus `t`.
    #[must_use]
    pub const fn plain_modulus(&self) -> Modulus {
        self.t
    }

    /// `Δ = ⌊q/t⌋`, the plaintext scaling factor.
    #[must_use]
    pub const fn delta(&self) -> u64 {
        self.delta
    }

    /// Relinearization digit width `w` (base `2^w`).
    #[must_use]
    pub const fn decomp_bits(&self) -> u32 {
        self.decomp_bits
    }

    /// Number of base-`2^w` digits covering `q`.
    #[must_use]
    pub fn decomp_digits(&self) -> usize {
        (self.q.bits() as usize).div_ceil(self.decomp_bits as usize)
    }

    /// The NTT table under `q`.
    #[must_use]
    pub fn ntt(&self) -> &NttTable {
        &self.ntt
    }

    /// Gaussian noise standard deviation.
    #[must_use]
    pub const fn error_std(&self) -> f64 {
        self.error_std
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn validates_inputs() {
        assert!(BfvParams::new(100, 50).is_err());
        assert!(BfvParams::new(1 << 16, 50).is_err(), "batching limit");
        assert!(BfvParams::new(1 << 10, 20).is_err());
        assert!(BfvParams::new(1 << 10, 60).is_err());
        assert!(BfvParams::new(1 << 10, 50).is_ok());
    }

    #[test]
    fn delta_and_digits() {
        let p = BfvParams::new(1 << 8, 50).unwrap();
        assert_eq!(p.delta(), p.modulus().value() / 65537);
        assert!(p.delta() > 1 << 30);
        assert_eq!(p.decomp_digits(), 50usize.div_ceil(16));
    }
}
