//! A BGV variant sharing the BFV substrate.
//!
//! BGV \[Brakerski–Gentry–Vaikuntanathan\] carries the plaintext in the
//! **least-significant bits** (`c₀ + c₁s = m + t·e (mod q)`), where BFV
//! scales it to the most-significant bits (`Δ·m + e`). Computationally the
//! two are the same workload — the same ring products, the same NTTs, the
//! same Galois automorphisms — which is the paper's point when it says
//! BGV/BFV are "similarly supported" (§II-A). Multiplication in BGV is a
//! plain mod-`q` tensor (no exact rational rescaling), at the price of
//! multiplicative noise growth; production BGV manages that with modulus
//! switching down a prime chain, which this single-modulus variant omits
//! (depth 1, like single-modulus BFV — the hardware-relevant kernels are
//! identical).
//!
//! Parameter note: [`BfvParams`] already enforces `q ≡ 1 (mod t)`, which
//! is exactly BGV's requirement for noise-parity under mod-switching, so
//! the same parameter objects serve both schemes.

use crate::cipher::{b_from_a_s_e, ring_mul_q};
use crate::encoder::Plaintext;
use crate::keys::SecretKey;
use crate::params::BfvParams;
use crate::BfvError;
use rand::Rng;
use std::collections::HashMap;
use uvpu_math::automorphism::{apply_galois_coeff, conjugation_exponent, galois_exponent};
use uvpu_math::sampling::{ternary, GaussianSampler};

/// A BGV ciphertext (plaintext in the low bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgvCiphertext {
    /// The ciphertext polynomials, coefficients in `[0, q)`.
    pub parts: Vec<Vec<u64>>,
}

/// A BGV public key: `b = −(a·s) + t·e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgvPublicKey {
    pub(crate) b: Vec<u64>,
    pub(crate) a: Vec<u64>,
}

/// A BGV keyswitching key (base-`2^w` digits, noise scaled by `t`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgvKeySwitchKey {
    pub(crate) parts: Vec<(Vec<u64>, Vec<u64>)>,
}

/// BGV Galois keys, indexed by Galois element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BgvGaloisKeys {
    pub(crate) keys: HashMap<u64, BgvKeySwitchKey>,
}

/// The BGV evaluator (encrypt/decrypt/add/mul/rotate over the BFV
/// parameter set and encoder).
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use uvpu_bfv::bgv::BgvEvaluator;
/// use uvpu_bfv::encoder::BatchEncoder;
/// use uvpu_bfv::keys::KeyGenerator;
/// use uvpu_bfv::params::BfvParams;
///
/// # fn main() -> Result<(), uvpu_bfv::BfvError> {
/// let params = BfvParams::new(1 << 6, 50)?;
/// let enc = BatchEncoder::new(&params)?;
/// let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(1));
/// let sk = kg.secret_key();
/// let eval = BgvEvaluator::new(&params);
/// let mut rng = StdRng::seed_from_u64(2);
/// let pk = eval.public_key(&sk, &mut rng)?;
///
/// let ct = eval.encrypt(&pk, &enc.encode(&[21])?, &mut rng)?;
/// let doubled = eval.add(&ct, &ct);
/// assert_eq!(enc.decode(&eval.decrypt(&sk, &doubled)?)[0], 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BgvEvaluator<'a> {
    params: &'a BfvParams,
}

impl<'a> BgvEvaluator<'a> {
    /// Creates a BGV evaluator over a (shared) parameter set.
    #[must_use]
    pub const fn new(params: &'a BfvParams) -> Self {
        Self { params }
    }

    fn scaled_error<R: Rng>(&self, rng: &mut R) -> Vec<i64> {
        // BGV noise terms enter as t·e.
        let t = self.params.plain_modulus().value() as i64;
        GaussianSampler::new(self.params.error_std())
            .sample_vec(rng, self.params.n())
            .into_iter()
            .map(|e| e * t)
            .collect()
    }

    /// Generates the BGV public key `(−a·s + t·e, a)`.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn public_key<R: Rng>(
        &self,
        sk: &SecretKey,
        rng: &mut R,
    ) -> Result<BgvPublicKey, BfvError> {
        let q = self.params.modulus();
        let a = uvpu_math::sampling::uniform(rng, self.params.n(), q.value());
        let e = self.scaled_error(rng);
        let b = b_from_a_s_e(self.params, &a, &sk.signed, &e)?;
        Ok(BgvPublicKey { b, a })
    }

    /// Encryption: `(m + u·b + t·e₁, u·a + t·e₂)`.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn encrypt<R: Rng>(
        &self,
        pk: &BgvPublicKey,
        pt: &Plaintext,
        rng: &mut R,
    ) -> Result<BgvCiphertext, BfvError> {
        let params = self.params;
        let q = params.modulus();
        let n = params.n();
        let u = ternary(rng, n);
        let u_q: Vec<u64> = u.iter().map(|&c| q.from_i64(c)).collect();
        let e1 = self.scaled_error(rng);
        let e2 = self.scaled_error(rng);
        let ub = ring_mul_q(params, &pk.b, &u_q)?;
        let ua = ring_mul_q(params, &pk.a, &u_q)?;
        let c0: Vec<u64> = (0..n)
            .map(|k| {
                // The message rides in the low bits, centered mod t.
                let m = params.plain_modulus().reduce_u64(pt.coeffs[k]);
                let m_c = q.from_i64(params.plain_modulus().to_centered(m));
                q.add(q.add(ub[k], q.from_i64(e1[k])), m_c)
            })
            .collect();
        let c1: Vec<u64> = (0..n).map(|k| q.add(ua[k], q.from_i64(e2[k]))).collect();
        Ok(BgvCiphertext {
            parts: vec![c0, c1],
        })
    }

    /// Decryption: `(Σ c_k·s^k mod q, centered) mod t`.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn decrypt(&self, sk: &SecretKey, ct: &BgvCiphertext) -> Result<Plaintext, BfvError> {
        let params = self.params;
        let q = params.modulus();
        let t = params.plain_modulus();
        crate::cipher::require_parts(&ct.parts, 1)?;
        let s: Vec<u64> = sk.signed.iter().map(|&c| q.from_i64(c)).collect();
        let mut acc = ct.parts[0].clone();
        let mut s_pow = s.clone();
        for part in &ct.parts[1..] {
            let prod = ring_mul_q(params, part, &s_pow)?;
            for (a, p) in acc.iter_mut().zip(&prod) {
                *a = q.add(*a, *p);
            }
            s_pow = ring_mul_q(params, &s_pow, &s)?;
        }
        let coeffs: Vec<u64> = acc
            .iter()
            .map(|&v| t.from_i64(q.to_centered(v).rem_euclid(t.value() as i64)))
            .collect();
        Ok(Plaintext { coeffs })
    }

    /// Homomorphic addition (exact mod t).
    #[must_use]
    pub fn add(&self, a: &BgvCiphertext, b: &BgvCiphertext) -> BgvCiphertext {
        let q = self.params.modulus();
        let n = self.params.n();
        let zero = vec![0u64; n];
        let size = a.parts.len().max(b.parts.len());
        BgvCiphertext {
            parts: (0..size)
                .map(|k| {
                    let x = a.parts.get(k).unwrap_or(&zero);
                    let y = b.parts.get(k).unwrap_or(&zero);
                    x.iter().zip(y).map(|(&u, &v)| q.add(u, v)).collect()
                })
                .collect(),
        }
    }

    /// Homomorphic multiplication with relinearization: a plain mod-`q`
    /// tensor (BGV needs no exact rescaling — the LSB encoding makes the
    /// product land at the right place), then keyswitch of the quadratic
    /// term.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn mul(
        &self,
        a: &BgvCiphertext,
        b: &BgvCiphertext,
        rlk: &BgvKeySwitchKey,
    ) -> Result<BgvCiphertext, BfvError> {
        let params = self.params;
        let q = params.modulus();
        crate::cipher::require_parts(&a.parts, 2)?;
        crate::cipher::require_parts(&b.parts, 2)?;
        let d0 = ring_mul_q(params, &a.parts[0], &b.parts[0])?;
        let mut d1 = ring_mul_q(params, &a.parts[0], &b.parts[1])?;
        let d1b = ring_mul_q(params, &a.parts[1], &b.parts[0])?;
        for (x, y) in d1.iter_mut().zip(&d1b) {
            *x = q.add(*x, *y);
        }
        let d2 = ring_mul_q(params, &a.parts[1], &b.parts[1])?;
        let (ks0, ks1) = self.keyswitch(&d2, rlk)?;
        let c0 = d0.iter().zip(&ks0).map(|(&x, &y)| q.add(x, y)).collect();
        let c1 = d1.iter().zip(&ks1).map(|(&x, &y)| q.add(x, y)).collect();
        Ok(BgvCiphertext {
            parts: vec![c0, c1],
        })
    }

    /// The relinearization key (target `s²`, noise `t·e`).
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn relin_key<R: Rng>(
        &self,
        sk: &SecretKey,
        rng: &mut R,
    ) -> Result<BgvKeySwitchKey, BfvError> {
        let q = self.params.modulus();
        let s: Vec<u64> = sk.signed.iter().map(|&c| q.from_i64(c)).collect();
        let s2 = ring_mul_q(self.params, &s, &s)?;
        self.keyswitch_key(sk, &s2, rng)
    }

    /// Galois keys for row rotations plus the row swap.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    pub fn galois_keys<R: Rng>(
        &self,
        sk: &SecretKey,
        steps: &[i64],
        rng: &mut R,
    ) -> Result<BgvGaloisKeys, BfvError> {
        let n = self.params.n();
        let q = self.params.modulus();
        let mut elements: Vec<u64> = steps.iter().map(|&s| galois_exponent(s, n)).collect();
        elements.push(conjugation_exponent(n));
        elements.sort_unstable();
        elements.dedup();
        let mut keys = HashMap::new();
        for g in elements {
            let tau = apply_galois_coeff(
                &sk.signed.iter().map(|&c| q.from_i64(c)).collect::<Vec<_>>(),
                g,
                &q,
            );
            keys.insert(g, self.keyswitch_key(sk, &tau, rng)?);
        }
        Ok(BgvGaloisKeys { keys })
    }

    fn keyswitch_key<R: Rng>(
        &self,
        sk: &SecretKey,
        target: &[u64],
        rng: &mut R,
    ) -> Result<BgvKeySwitchKey, BfvError> {
        let q = self.params.modulus();
        let w = self.params.decomp_bits();
        let digits = self.params.decomp_digits();
        let mut parts = Vec::with_capacity(digits);
        let mut base = 1u64;
        for _ in 0..digits {
            let a = uvpu_math::sampling::uniform(rng, self.params.n(), q.value());
            let e = self.scaled_error(rng);
            let mut b = b_from_a_s_e(self.params, &a, &sk.signed, &e)?;
            for (bi, &ti) in b.iter_mut().zip(target) {
                *bi = q.add(*bi, q.mul(q.reduce_u64(base), ti));
            }
            parts.push((b, a));
            base = base.wrapping_shl(w);
        }
        Ok(BgvKeySwitchKey { parts })
    }

    fn keyswitch(
        &self,
        d: &[u64],
        key: &BgvKeySwitchKey,
    ) -> Result<(Vec<u64>, Vec<u64>), BfvError> {
        let params = self.params;
        let q = params.modulus();
        let n = params.n();
        let w = params.decomp_bits();
        let mask = (1u64 << w) - 1;
        let mut acc0 = vec![0u64; n];
        let mut acc1 = vec![0u64; n];
        for (i, (b_i, a_i)) in key.parts.iter().enumerate() {
            let digit: Vec<u64> = d.iter().map(|&v| (v >> (w * i as u32)) & mask).collect();
            if digit.iter().all(|&x| x == 0) {
                continue;
            }
            let p0 = ring_mul_q(params, &digit, b_i)?;
            let p1 = ring_mul_q(params, &digit, a_i)?;
            for k in 0..n {
                acc0[k] = q.add(acc0[k], p0[k]);
                acc1[k] = q.add(acc1[k], p1[k]);
            }
        }
        Ok((acc0, acc1))
    }

    /// Rotates the batched rows by `step` — the same automorphism network
    /// traffic as BFV's and CKKS's HRot.
    ///
    /// # Errors
    ///
    /// [`BfvError::MissingGaloisKey`] or substrate errors.
    pub fn rotate_rows(
        &self,
        ct: &BgvCiphertext,
        step: i64,
        gks: &BgvGaloisKeys,
    ) -> Result<BgvCiphertext, BfvError> {
        let g = galois_exponent(step, self.params.n());
        let key = gks
            .keys
            .get(&g)
            .ok_or(BfvError::MissingGaloisKey { step })?;
        let q = self.params.modulus();
        crate::cipher::require_parts(&ct.parts, 2)?;
        let t0 = apply_galois_coeff(&ct.parts[0], g, &q);
        let t1 = apply_galois_coeff(&ct.parts[1], g, &q);
        let (ks0, ks1) = self.keyswitch(&t1, key)?;
        let c0 = t0.iter().zip(&ks0).map(|(&x, &y)| q.add(x, y)).collect();
        Ok(BgvCiphertext {
            parts: vec![c0, ks1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::BatchEncoder;
    use crate::keys::KeyGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fix {
        params: BfvParams,
        enc: BatchEncoder,
        sk: SecretKey,
        rng: StdRng,
    }

    fn fix(n: usize) -> Fix {
        let params = BfvParams::new(n, 50).unwrap();
        let enc = BatchEncoder::new(&params).unwrap();
        let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(31));
        let sk = kg.secret_key();
        Fix {
            params,
            enc,
            sk,
            rng: StdRng::seed_from_u64(32),
        }
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut f = fix(1 << 6);
        let eval = BgvEvaluator::new(&f.params);
        let pk = eval.public_key(&f.sk, &mut f.rng).unwrap();
        let values: Vec<u64> = (0..64).map(|i| i * 2027 % 65537).collect();
        let ct = eval
            .encrypt(&pk, &f.enc.encode(&values).unwrap(), &mut f.rng)
            .unwrap();
        assert_eq!(f.enc.decode(&eval.decrypt(&f.sk, &ct).unwrap()), values);
    }

    #[test]
    fn addition_is_exact() {
        let mut f = fix(1 << 5);
        let eval = BgvEvaluator::new(&f.params);
        let pk = eval.public_key(&f.sk, &mut f.rng).unwrap();
        let a: Vec<u64> = (0..32).map(|i| 60_000 + i).collect();
        let b: Vec<u64> = (0..32).map(|i| 10_000 + 5 * i).collect();
        let ca = eval
            .encrypt(&pk, &f.enc.encode(&a).unwrap(), &mut f.rng)
            .unwrap();
        let cb = eval
            .encrypt(&pk, &f.enc.encode(&b).unwrap(), &mut f.rng)
            .unwrap();
        let out = f
            .enc
            .decode(&eval.decrypt(&f.sk, &eval.add(&ca, &cb)).unwrap());
        for j in 0..32 {
            assert_eq!(out[j], (a[j] + b[j]) % 65537);
        }
    }

    #[test]
    fn multiplication_is_exact_slotwise() {
        let mut f = fix(1 << 5);
        let eval = BgvEvaluator::new(&f.params);
        let pk = eval.public_key(&f.sk, &mut f.rng).unwrap();
        let rlk = eval.relin_key(&f.sk, &mut f.rng).unwrap();
        let a: Vec<u64> = (0..32).map(|i| i + 3).collect();
        let b: Vec<u64> = (0..32).map(|i| 7 * i + 2).collect();
        let ca = eval
            .encrypt(&pk, &f.enc.encode(&a).unwrap(), &mut f.rng)
            .unwrap();
        let cb = eval
            .encrypt(&pk, &f.enc.encode(&b).unwrap(), &mut f.rng)
            .unwrap();
        let prod = eval.mul(&ca, &cb, &rlk).unwrap();
        let out = f.enc.decode(&eval.decrypt(&f.sk, &prod).unwrap());
        for j in 0..32 {
            assert_eq!(out[j], a[j] * b[j] % 65537, "slot {j}");
        }
    }

    #[test]
    fn rotation_matches_row_semantics() {
        let mut f = fix(1 << 5);
        let eval = BgvEvaluator::new(&f.params);
        let pk = eval.public_key(&f.sk, &mut f.rng).unwrap();
        let gks = eval.galois_keys(&f.sk, &[2], &mut f.rng).unwrap();
        let rows = f.enc.row_size();
        let values: Vec<u64> = (0..32).collect();
        let ct = eval
            .encrypt(&pk, &f.enc.encode(&values).unwrap(), &mut f.rng)
            .unwrap();
        let rot = eval.rotate_rows(&ct, 2, &gks).unwrap();
        let out = f.enc.decode(&eval.decrypt(&f.sk, &rot).unwrap());
        for j in 0..rows {
            assert_eq!(out[j], values[(j + 2) % rows]);
            assert_eq!(out[rows + j], values[rows + (j + 2) % rows]);
        }
        assert!(eval.rotate_rows(&ct, 5, &gks).is_err());
    }

    #[test]
    fn bgv_and_bfv_agree_on_the_same_program() {
        // The paper's "similar computation patterns" claim, concretely:
        // the same plaintext program gives the same result under both
        // encodings.
        let mut f = fix(1 << 5);
        let bgv = BgvEvaluator::new(&f.params);
        let bfv = crate::cipher::Evaluator::new(&f.params);
        let mut kg = KeyGenerator::new(&f.params, StdRng::seed_from_u64(33));
        let bfv_pk = kg.public_key(&f.sk).unwrap();
        let bfv_rlk = kg.relin_key(&f.sk).unwrap();
        let bgv_pk = bgv.public_key(&f.sk, &mut f.rng).unwrap();
        let bgv_rlk = bgv.relin_key(&f.sk, &mut f.rng).unwrap();

        let a: Vec<u64> = (0..32).map(|i| i + 1).collect();
        let pt = f.enc.encode(&a).unwrap();

        let bgv_ct = bgv.encrypt(&bgv_pk, &pt, &mut f.rng).unwrap();
        let bgv_sq = bgv.mul(&bgv_ct, &bgv_ct, &bgv_rlk).unwrap();
        let bgv_out = f.enc.decode(&bgv.decrypt(&f.sk, &bgv_sq).unwrap());

        let bfv_ct = bfv.encrypt(&bfv_pk, &pt, &mut f.rng).unwrap();
        let bfv_sq = bfv.mul(&bfv_ct, &bfv_ct, &bfv_rlk).unwrap();
        let bfv_out = f.enc.decode(&bfv.decrypt(&f.sk, &bfv_sq).unwrap());

        assert_eq!(bgv_out, bfv_out, "two encodings, one answer");
    }
}
