//! SIMD batching for BFV: `N` integer slots per plaintext.
//!
//! With `t ≡ 1 (mod 2N)` the plaintext ring `Z_t[X]/(X^N+1)` splits into
//! `N` copies of `Z_t`; slot values are evaluations at the odd powers of
//! a `2N`-th root of unity ψ mod `t`. Slots are arranged in the standard
//! two-row layout (SEAL semantics): row 0 holds evaluations at `ψ^{5^j}`,
//! row 1 at `ψ^{−5^j}` — which makes the Galois automorphism `X ↦ X^{5^k}`
//! a cyclic rotation *within each row*, and `X ↦ X^{−1}` a row swap.
//! These are precisely the permutations the unified VPU's network routes.

use crate::params::BfvParams;
use crate::BfvError;
use std::collections::HashMap;
use std::sync::Arc;
use uvpu_math::modular::Modulus;
use uvpu_math::ntt::NttTable;

/// A BFV plaintext: `N` coefficients modulo `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plaintext {
    /// Coefficients in `[0, t)`.
    pub coeffs: Vec<u64>,
}

/// The batching encoder.
///
/// # Example
///
/// ```
/// use uvpu_bfv::encoder::BatchEncoder;
/// use uvpu_bfv::params::BfvParams;
///
/// # fn main() -> Result<(), uvpu_bfv::BfvError> {
/// let params = BfvParams::new(1 << 6, 50)?;
/// let enc = BatchEncoder::new(&params)?;
/// let values: Vec<u64> = (0..64).collect();
/// let pt = enc.encode(&values)?;
/// assert_eq!(enc.decode(&pt), values);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    n: usize,
    t: Modulus,
    ntt_t: Arc<NttTable>,
    /// `slot_to_pos[slot]` = position in the (bit-reversed) NTT output
    /// that evaluates at that slot's root exponent.
    slot_to_pos: Vec<usize>,
}

impl BatchEncoder {
    /// Builds the encoder, resolving the NTT's output ordering against
    /// the two-row slot layout by probing (self-verifying construction).
    ///
    /// # Errors
    ///
    /// [`BfvError::Math`] if `t` lacks the required roots (cannot happen
    /// for parameters built by [`BfvParams::new`]).
    pub fn new(params: &BfvParams) -> Result<Self, BfvError> {
        let n = params.n();
        let t = params.plain_modulus();
        let ntt_t = uvpu_math::cache::ntt_table(t, n)?;
        let two_n = 2 * n as u64;

        // Discrete-log table for ψ: ψ^k → k (t is tiny, ψ has order 2N).
        let psi = ntt_t.psi();
        let mut dlog = HashMap::with_capacity(2 * n);
        let mut acc = 1u64;
        for k in 0..two_n {
            dlog.insert(acc, k);
            acc = t.mul(acc, psi);
        }

        // Probe: forward-transform X; output position p holds ψ^{e(p)}.
        let mut probe = vec![0u64; n];
        probe[1] = 1;
        ntt_t.forward_inplace(&mut probe);
        let mut exp_to_pos = HashMap::with_capacity(n);
        for (p, &v) in probe.iter().enumerate() {
            let e = *dlog.get(&v).expect("output of the probe is a power of ψ");
            exp_to_pos.insert(e, p);
        }

        // Two-row slot layout: row 0 at 5^j, row 1 at −5^j (mod 2N).
        let mut slot_to_pos = Vec::with_capacity(n);
        let mut g = 1u64;
        let mut row0 = Vec::with_capacity(n / 2);
        let mut row1 = Vec::with_capacity(n / 2);
        for _ in 0..n / 2 {
            row0.push(*exp_to_pos.get(&g).expect("odd exponent covered"));
            row1.push(*exp_to_pos.get(&(two_n - g)).expect("odd exponent covered"));
            g = g * 5 % two_n;
        }
        slot_to_pos.extend(row0);
        slot_to_pos.extend(row1);
        Ok(Self {
            n,
            t,
            ntt_t,
            slot_to_pos,
        })
    }

    /// Total slot count (`N`: two rows of `N/2`).
    #[must_use]
    pub const fn slot_count(&self) -> usize {
        self.n
    }

    /// Slots per row (`N/2`).
    #[must_use]
    pub const fn row_size(&self) -> usize {
        self.n / 2
    }

    /// Encodes up to `N` integers (reduced mod `t`) into a plaintext.
    ///
    /// # Errors
    ///
    /// [`BfvError::TooManySlots`] for oversized inputs.
    pub fn encode(&self, values: &[u64]) -> Result<Plaintext, BfvError> {
        if values.len() > self.n {
            return Err(BfvError::TooManySlots {
                provided: values.len(),
                capacity: self.n,
            });
        }
        let mut evals = vec![0u64; self.n];
        for (slot, &v) in values.iter().enumerate() {
            evals[self.slot_to_pos[slot]] = self.t.reduce_u64(v);
        }
        self.ntt_t.inverse_inplace(&mut evals);
        Ok(Plaintext { coeffs: evals })
    }

    /// Decodes a plaintext back into its `N` slot values.
    ///
    /// # Panics
    ///
    /// Panics if the plaintext degree mismatches the encoder.
    #[must_use]
    pub fn decode(&self, pt: &Plaintext) -> Vec<u64> {
        assert_eq!(pt.coeffs.len(), self.n);
        let mut evals = pt.coeffs.clone();
        for c in &mut evals {
            *c = self.t.reduce_u64(*c);
        }
        self.ntt_t.forward_inplace(&mut evals);
        (0..self.n).map(|s| evals[self.slot_to_pos[s]]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_math::automorphism::apply_galois_coeff;

    fn setup(n: usize) -> (BfvParams, BatchEncoder) {
        let p = BfvParams::new(n, 50).unwrap();
        let e = BatchEncoder::new(&p).unwrap();
        (p, e)
    }

    #[test]
    fn encode_decode_round_trip() {
        let (_, enc) = setup(1 << 6);
        let values: Vec<u64> = (0..64).map(|i| i * 997 % 65537).collect();
        assert_eq!(enc.decode(&enc.encode(&values).unwrap()), values);
        // Partial vectors pad with zeros.
        let partial = enc.encode(&[1, 2, 3]).unwrap();
        let out = enc.decode(&partial);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out[3..].iter().all(|&v| v == 0));
    }

    #[test]
    fn encoding_is_slotwise_multiplicative() {
        // The whole point of batching: coefficient-domain ring products
        // are slot-wise integer products.
        let (p, enc) = setup(1 << 5);
        let a: Vec<u64> = (0..32).map(|i| i + 1).collect();
        let b: Vec<u64> = (0..32).map(|i| 2 * i + 3).collect();
        let pa = enc.encode(&a).unwrap();
        let pb = enc.encode(&b).unwrap();
        let prod = uvpu_math::ntt::naive_negacyclic_mul(&pa.coeffs, &pb.coeffs, &p.plain_modulus());
        let out = enc.decode(&Plaintext { coeffs: prod });
        for j in 0..32 {
            assert_eq!(out[j], a[j] * b[j] % 65537, "slot {j}");
        }
    }

    #[test]
    fn galois_five_rotates_rows() {
        let (p, enc) = setup(1 << 5);
        let rows = enc.row_size();
        let values: Vec<u64> = (0..32).collect();
        let pt = enc.encode(&values).unwrap();
        let rotated = Plaintext {
            coeffs: apply_galois_coeff(&pt.coeffs, 5, &p.plain_modulus()),
        };
        let out = enc.decode(&rotated);
        for j in 0..rows {
            assert_eq!(out[j], values[(j + 1) % rows], "row 0 slot {j}");
            assert_eq!(
                out[rows + j],
                values[rows + (j + 1) % rows],
                "row 1 slot {j}"
            );
        }
    }

    #[test]
    fn galois_inverse_swaps_rows() {
        let (p, enc) = setup(1 << 5);
        let rows = enc.row_size();
        let values: Vec<u64> = (0..32).collect();
        let pt = enc.encode(&values).unwrap();
        let g = 2 * 32 - 1; // X ↦ X^{2N−1} = X^{−1}
        let swapped = Plaintext {
            coeffs: apply_galois_coeff(&pt.coeffs, g, &p.plain_modulus()),
        };
        let out = enc.decode(&swapped);
        for j in 0..rows {
            assert_eq!(out[j], values[rows + j]);
            assert_eq!(out[rows + j], values[j]);
        }
    }

    #[test]
    fn rejects_oversize_vectors() {
        let (_, enc) = setup(1 << 5);
        assert!(matches!(
            enc.encode(&vec![0; 33]),
            Err(BfvError::TooManySlots { .. })
        ));
    }
}
