//! Typed generators for the paper's evaluation tables.
//!
//! Each function returns the rows of one table, computed from the
//! structural models — the `uvpu-bench` binaries print them in the
//! paper's format and EXPERIMENTS.md records measured-vs-published.

use crate::designs::{DesignKind, DesignModel};
use crate::tech::TechParams;

/// One row of the paper's Table I (qualitative comparison).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Design name.
    pub design: &'static str,
    /// How the design transposes data inside NTTs.
    pub transpose_in_ntt: &'static str,
    /// How the design performs automorphism.
    pub automorphism: &'static str,
}

/// The rows of Table I, in the paper's order.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    DesignKind::ALL
        .iter()
        .map(|k| Table1Row {
            design: k.name(),
            transpose_in_ntt: k.ntt_approach(),
            automorphism: k.automorphism_approach(),
        })
        .collect()
}

/// One row of the paper's Table II (area/power comparison at 64 lanes).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Design name.
    pub design: &'static str,
    /// Permutation-network area (µm²).
    pub network_area_um2: f64,
    /// Network area relative to Ours.
    pub network_area_ratio: f64,
    /// Full-VPU area (µm²).
    pub vpu_area_um2: f64,
    /// VPU area relative to Ours.
    pub vpu_area_ratio: f64,
    /// Network power (mW).
    pub network_power_mw: f64,
    /// Network power relative to Ours.
    pub network_power_ratio: f64,
    /// Full-VPU power (mW).
    pub vpu_power_mw: f64,
    /// VPU power relative to Ours.
    pub vpu_power_ratio: f64,
}

/// The rows of Table II for a given lane count (the paper uses `m = 64`).
#[must_use]
pub fn table2(tech: &TechParams, m: usize) -> Vec<Table2Row> {
    let ours = DesignModel::new(DesignKind::Ours, m);
    let (na0, va0) = (ours.network_area(tech), ours.vpu_area(tech));
    let (np0, vp0) = (ours.network_power(tech), ours.vpu_power(tech));
    DesignKind::ALL
        .iter()
        .map(|&k| {
            let d = DesignModel::new(k, m);
            Table2Row {
                design: k.name(),
                network_area_um2: d.network_area(tech),
                network_area_ratio: d.network_area(tech) / na0,
                vpu_area_um2: d.vpu_area(tech),
                vpu_area_ratio: d.vpu_area(tech) / va0,
                network_power_mw: d.network_power(tech),
                network_power_ratio: d.network_power(tech) / np0,
                vpu_power_mw: d.vpu_power(tech),
                vpu_power_ratio: d.vpu_power(tech) / vp0,
            }
        })
        .collect()
}

/// One row of the paper's Table IV (scalability of our network).
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Lane count.
    pub lanes: usize,
    /// Network area (µm²).
    pub area_um2: f64,
    /// Network power (mW).
    pub power_mw: f64,
}

/// The rows of Table IV (`m = 4 … 256`).
#[must_use]
pub fn table4(tech: &TechParams) -> Vec<Table4Row> {
    [4usize, 8, 16, 32, 64, 128, 256]
        .iter()
        .map(|&m| {
            let d = DesignModel::new(DesignKind::Ours, m);
            Table4Row {
                lanes: m,
                area_um2: d.network_area(tech),
                power_mw: d.network_power(tech),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_rows_ending_with_ours() {
        let t = table1();
        assert_eq!(t.len(), 5);
        assert_eq!(t[0].design, "F1");
        assert_eq!(t[4].design, "Ours");
        assert_eq!(t[4].transpose_in_ntt, t[4].automorphism, "unified network");
    }

    #[test]
    fn table2_ratios_normalize_to_ours() {
        let rows = table2(&TechParams::asap7(), 64);
        let ours = rows.last().unwrap();
        assert_eq!(ours.design, "Ours");
        assert!((ours.network_area_ratio - 1.0).abs() < 1e-12);
        assert!((ours.vpu_power_ratio - 1.0).abs() < 1e-12);
        for r in &rows[..4] {
            assert!(
                r.network_area_ratio > 1.0,
                "{}: {}",
                r.design,
                r.network_area_ratio
            );
            assert!(r.network_power_ratio > 1.0);
        }
    }

    #[test]
    fn table2_vpu_values_track_paper() {
        // Paper Table II VPU areas: F1 300306.61, BTS 264095.35,
        // ARK 254170.69, SHARP 289143.70, Ours 250603.81 (µm²).
        let rows = table2(&TechParams::asap7(), 64);
        let expect = [300_306.61, 264_095.35, 254_170.69, 289_143.70, 250_603.81];
        for (r, e) in rows.iter().zip(expect) {
            let rel = (r.vpu_area_um2 - e).abs() / e;
            assert!(rel < 0.02, "{}: {} vs {e}", r.design, r.vpu_area_um2);
        }
    }

    #[test]
    fn table4_monotone_and_superlinear() {
        let rows = table4(&TechParams::asap7());
        assert_eq!(rows.len(), 7);
        for w in rows.windows(2) {
            let growth = w[1].area_um2 / w[0].area_um2;
            assert!(growth > 2.0, "each doubling more than doubles area");
            assert!(growth < 2.6, "but stays near the paper's ~2.27×: {growth}");
        }
    }
}
