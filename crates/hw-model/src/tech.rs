//! Technology parameters for the area/power models.
//!
//! The paper synthesizes its RTL with the ASAP7 7 nm predictive PDK and
//! models SRAM with FN-CACTI. Without a PDK, this crate uses an
//! **analytical primitive-cost model**: every design is reduced to counts
//! of four primitives (2:1 MUX bits, SRAM bits, per-lane network ports,
//! crossbar crosspoints), and each primitive carries a unit area/power.
//!
//! Unit costs are **calibrated once** against the paper's own published
//! synthesis results and then frozen:
//!
//! - MUX/port/base constants: least-squares fit of the paper's Table IV
//!   ("Ours", m = 4…256). The fit residual is below 0.03% at every row —
//!   the published scaling data is an exact affine function of
//!   `mux_bits = 64·m·(log₂ m + 2)` and `m`, which independently confirms
//!   the structural model.
//! - SRAM constants: calibrated from the paper's F1 row of Table II
//!   (whose cost is dominated by the 2× quadrant-swap buffers). The
//!   resulting 0.0970 µm²/bit is consistent with published 7 nm SRAM
//!   macro densities (≈0.031 µm² bitcell × ≈3× periphery at this size).
//! - Lane cost: calibrated from the paper's "Ours" VPU row (Table II):
//!   the paper's full-VPU numbers are exactly `lanes + network`, which
//!   fixes the per-lane cost of the Barrett multiplier + modular
//!   adder/subtractor + register file slice.
//!
//! All five designs are then evaluated with the *same* constants on their
//! own structural counts; nothing per-baseline is fitted for **area**.
//! For **power**, a per-design activity factor (documented in
//! [`crate::designs`]) models the workload-dependent switching the paper
//! measured from simulation.

/// Unit-cost parameters of the 7 nm technology model.
///
/// # Example
///
/// ```
/// let tech = uvpu_hw_model::tech::TechParams::asap7();
/// assert!(tech.mux_area_per_bit > 0.1 && tech.mux_area_per_bit < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Area of one 2:1 MUX bit including local wiring (µm²).
    pub mux_area_per_bit: f64,
    /// Dynamic + leakage power of one MUX bit at 1 GHz (mW).
    pub mux_power_per_bit: f64,
    /// Per-lane network port cost: drivers and vertical wiring (µm²).
    pub port_area_per_lane: f64,
    /// Per-lane port power (mW).
    pub port_power_per_lane: f64,
    /// Affine fit constant (shared periphery; small) (µm²).
    pub base_area: f64,
    /// Affine fit constant (mW).
    pub base_power: f64,
    /// SRAM area per bit, periphery included (µm²).
    pub sram_area_per_bit: f64,
    /// SRAM power per bit under continuous streaming access (mW).
    pub sram_power_per_bit: f64,
    /// A crossbar crosspoint bit relative to a full 2:1 MUX bit
    /// (pass-gate implementations are cheaper than mux trees).
    pub crosspoint_area_factor: f64,
    /// Crosspoint power relative to a MUX bit.
    pub crosspoint_power_factor: f64,
    /// One computing lane: 64-bit Barrett modular multiplier, modular
    /// adder/subtractor, and 2R1W register-file slice (µm²).
    pub lane_area: f64,
    /// One computing lane's power (mW).
    pub lane_power: f64,
    /// Datapath width in bits.
    pub word_bits: u32,
}

impl TechParams {
    /// The calibrated 7 nm / 1 GHz / 64-bit parameter set (see module
    /// docs for the calibration provenance).
    #[must_use]
    pub const fn asap7() -> Self {
        Self {
            mux_area_per_bit: 0.137_598,
            mux_power_per_bit: 3.894_3e-4,
            port_area_per_lane: 22.278_6,
            port_power_per_lane: 0.043_682,
            base_area: -21.03,
            base_power: 0.0336,
            sram_area_per_bit: 0.096_95,
            sram_power_per_bit: 1.546_9e-4,
            crosspoint_area_factor: 0.5,
            crosspoint_power_factor: 0.5,
            lane_area: 3_823.284_7,
            lane_power: 11.697_2,
            word_bits: 64,
        }
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::asap7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_asap7() {
        assert_eq!(TechParams::default(), TechParams::asap7());
    }

    #[test]
    fn sram_density_is_physically_plausible() {
        let t = TechParams::asap7();
        // 7 nm HD bitcell ≈ 0.027–0.032 µm²; with periphery the macro
        // density lands at 2–4× the raw cell.
        assert!(t.sram_area_per_bit > 2.0 * 0.027);
        assert!(t.sram_area_per_bit < 4.0 * 0.032);
    }

    #[test]
    fn lane_dominates_network_primitives() {
        let t = TechParams::asap7();
        // One lane should cost orders of magnitude more than one MUX bit —
        // the paper's "lanes dominate the VPU" observation.
        assert!(t.lane_area > 1000.0 * t.mux_area_per_bit);
    }
}
