//! Calibrated analytical area/power models for the `uvpu` evaluation
//! (paper §V-B and §V-D).
//!
//! The paper synthesizes its Verilog with the ASAP7 7 nm library and
//! compares five approaches to FHE's irregular permutations, all ported
//! onto the same 64-lane VPU. This crate reproduces that evaluation with
//! a structural cost model:
//!
//! - [`tech`]: unit costs per primitive (MUX bit, SRAM bit, crosspoint,
//!   lane), calibrated once against the paper's own published synthesis
//!   numbers (Table IV "Ours" + the F1 SRAM row) and then frozen;
//! - [`designs`]: the primitive counts of Ours / F1 / BTS / ARK / SHARP
//!   and their resulting network and full-VPU area/power;
//! - [`cost`]: the dynamic half — a [`cost::CostModel`] trait charging
//!   per-event cycles/energy, implemented for the five designs plus the
//!   modeled RPU and BASALISC competitors;
//! - [`tables`]: typed rows regenerating the paper's Tables I, II and IV;
//! - [`chip`]: the full Fig 1(a) accelerator roll-up (VPUs + SRAM + NoC).
//!
//! # Example
//!
//! ```
//! use uvpu_hw_model::designs::{DesignKind, DesignModel};
//! use uvpu_hw_model::tech::TechParams;
//!
//! let tech = TechParams::asap7();
//! let ours = DesignModel::new(DesignKind::Ours, 64);
//! println!(
//!     "network: {:.2} µm², {:.2} mW; VPU: {:.2} µm²",
//!     ours.network_area(&tech),
//!     ours.network_power(&tech),
//!     ours.vpu_area(&tech),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod cost;
pub mod designs;
pub mod tables;
pub mod tech;
