//! Structural area/power models of the five permutation-hardware designs
//! compared in the paper's Table II, all ported onto the same `m`-lane
//! VPU (§V-A).
//!
//! Each design reduces to primitive counts; costs come from the shared
//! [`crate::tech::TechParams`]. Structures (paper §II-D and
//! §V-B):
//!
//! | Design | NTT permutations | Automorphism |
//! |---|---|---|
//! | **F1** | 2× quadrant-swap SRAM transpose buffers | cyclic-shift network + the transpose unit |
//! | **BTS** | full `m×m` crossbar (64-bit links) | same crossbar, address-mapped |
//! | **ARK** | dedicated constant-geometry NTT connections | separate multi-stage (Beneš-style) network |
//! | **SHARP** | F1-style SRAM transpose (hierarchical, 1.5× banking) | ARK's multi-stage network |
//! | **Ours** | one unified network: 2 CG stages + log₂ m shift stages + control SRAM |
//!
//! Power additionally carries a per-design **activity factor**, modelling
//! the workload-dependent switching the paper measured from simulation:
//! ARK's two always-clocked separate networks switch more than their area
//! share (1.76×); SHARP's banked SRAM streams at roughly half of F1's
//! duty (0.52×); BTS's pass-gate crossbar toggles fewer nodes per
//! traversal than a mux tree (0.85×).

use crate::tech::TechParams;
use uvpu_math::util::log2_exact;

/// Which prior design (or ours) to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DesignKind {
    /// This paper's unified inter-lane network.
    Ours,
    /// F1 \[MICRO'21\]: quadrant-swap SRAM transpose + cyclic shifts.
    F1,
    /// BTS \[ISCA'22\]: full crossbar.
    Bts,
    /// ARK \[MICRO'22\]: separate dedicated NTT + automorphism networks.
    Ark,
    /// SHARP \[ISCA'23\]: ARK's automorphism network + F1-style SRAM transpose.
    Sharp,
}

impl DesignKind {
    /// All designs, in the paper's Table II row order.
    pub const ALL: [DesignKind; 5] = [
        DesignKind::F1,
        DesignKind::Bts,
        DesignKind::Ark,
        DesignKind::Sharp,
        DesignKind::Ours,
    ];

    /// Human-readable name matching the paper.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Self::Ours => "Ours",
            Self::F1 => "F1",
            Self::Bts => "BTS",
            Self::Ark => "ARK",
            Self::Sharp => "SHARP",
        }
    }

    /// The design's approach to the NTT transpose (paper Table I).
    #[must_use]
    pub const fn ntt_approach(&self) -> &'static str {
        match self {
            Self::Ours => "Unified constant-geometry + shift network",
            Self::F1 => "Quadrant-swap buffers",
            Self::Bts => "Crossbars",
            Self::Ark => "Dedicated unit",
            Self::Sharp => "Quadrant-swap buffers",
        }
    }

    /// The design's approach to automorphism (paper Table I).
    #[must_use]
    pub const fn automorphism_approach(&self) -> &'static str {
        match self {
            Self::Ours => "Unified constant-geometry + shift network",
            Self::F1 => "Cyclic shift + transpose",
            Self::Bts => "Crossbars",
            Self::Ark => "Dedicated network",
            Self::Sharp => "Dedicated network",
        }
    }
}

/// Primitive counts for one design's permutation hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkStructure {
    /// 2:1 MUX bits (full-cost mux-tree bits).
    pub mux_bits: f64,
    /// Crossbar crosspoint bits (cheaper than full MUX bits).
    pub crosspoint_bits: f64,
    /// SRAM bits (transpose buffers, control stores).
    pub sram_bits: f64,
    /// Lane-port count (each separate unit adds its own `m` ports).
    pub port_lanes: usize,
    /// Workload activity factor applied to dynamic power.
    pub activity: f64,
}

/// The area/power model of one design's permutation network on an
/// `m`-lane, 64-bit VPU.
///
/// # Example
///
/// ```
/// use uvpu_hw_model::designs::{DesignKind, DesignModel};
/// use uvpu_hw_model::tech::TechParams;
///
/// let tech = TechParams::asap7();
/// let ours = DesignModel::new(DesignKind::Ours, 64);
/// let f1 = DesignModel::new(DesignKind::F1, 64);
/// // The paper's headline: F1's network is ~9.4× larger than ours.
/// let ratio = f1.network_area(&tech) / ours.network_area(&tech);
/// assert!(ratio > 8.5 && ratio < 10.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignModel {
    kind: DesignKind,
    m: usize,
}

impl DesignModel {
    /// Creates the model for `m` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two ≥ 4.
    #[must_use]
    pub fn new(kind: DesignKind, m: usize) -> Self {
        assert!(
            m.is_power_of_two() && m >= 4,
            "m = {m} must be a power of two >= 4"
        );
        Self { kind, m }
    }

    /// The design being modelled.
    #[must_use]
    pub const fn kind(&self) -> DesignKind {
        self.kind
    }

    /// Lane count.
    #[must_use]
    pub const fn m(&self) -> usize {
        self.m
    }

    /// The automorphism control store size in bits — `(m/2)·(m−1)` for
    /// our design (paper §IV-B), zero for the baselines (their controls
    /// are hard-wired or address-generated).
    #[must_use]
    pub fn control_store_bits(&self) -> usize {
        match self.kind {
            DesignKind::Ours => (self.m / 2) * (self.m - 1),
            _ => 0,
        }
    }

    /// The primitive counts of the permutation hardware.
    #[must_use]
    pub fn structure(&self, tech: &TechParams) -> NetworkStructure {
        let m = self.m as f64;
        let w = f64::from(tech.word_bits);
        let log_m = log2_exact(self.m) as f64;
        match self.kind {
            DesignKind::Ours => NetworkStructure {
                // 2 CG stages + log m shift stages, one m-lane MUX row each.
                mux_bits: w * m * (log_m + 2.0),
                crosspoint_bits: 0.0,
                // The (m/2)·(m−1)-bit automorphism control store (≈2 kbit
                // at m = 64) is not charged separately: the paper calls it
                // "a small area cost" and its published Table IV scaling
                // curve is an exact affine function of the MUX-bit and
                // lane counts alone, i.e. the control store is absorbed
                // into the per-lane overhead. See `control_store_bits`.
                sram_bits: 0.0,
                port_lanes: self.m,
                activity: 1.0,
            },
            DesignKind::F1 => NetworkStructure {
                // Cyclic-shift network: log m stages.
                mux_bits: w * m * log_m,
                crosspoint_bits: 0.0,
                // Double-buffered quadrant-swap transpose: 2 tiles of m×m words.
                sram_bits: 2.0 * m * m * w,
                port_lanes: self.m,
                activity: 1.0,
            },
            DesignKind::Bts => NetworkStructure {
                mux_bits: 0.0,
                // Full m×m crossbar: (m−1) crosspoints per output bit.
                crosspoint_bits: w * m * (m - 1.0),
                sram_bits: 0.0,
                port_lanes: self.m,
                activity: 0.85,
            },
            DesignKind::Ark => NetworkStructure {
                // Separate Beneš-style automorphism network (2·log m − 1
                // stages) + dedicated CG NTT connections (2 stages); the
                // two units each bring their own lane ports and clocking.
                mux_bits: w * m * (2.0 * log_m - 1.0 + 2.0),
                crosspoint_bits: 0.0,
                sram_bits: 0.0,
                port_lanes: 2 * self.m,
                activity: 1.758,
            },
            DesignKind::Sharp => NetworkStructure {
                // ARK's automorphism network …
                mux_bits: w * m * (2.0 * log_m - 1.0),
                crosspoint_bits: 0.0,
                // … plus a hierarchical quadrant-swap transpose with 1.5×
                // banking (ping-pong on half-quadrants instead of F1's
                // full double buffer).
                sram_bits: 1.5 * m * m * w,
                port_lanes: 2 * self.m,
                activity: 0.524,
            },
        }
    }

    /// Area of the permutation network (µm²) — paper Table II column 1.
    #[must_use]
    pub fn network_area(&self, tech: &TechParams) -> f64 {
        crate::cost::structure_area(tech, &self.structure(tech))
    }

    /// Power of the permutation network (mW) — paper Table II column 3.
    #[must_use]
    pub fn network_power(&self, tech: &TechParams) -> f64 {
        crate::cost::structure_power(tech, &self.structure(tech))
    }

    /// Area of the full VPU: the `m` lanes (identical across designs, as
    /// in the paper's porting methodology) plus this design's network.
    #[must_use]
    pub fn vpu_area(&self, tech: &TechParams) -> f64 {
        tech.lane_area * self.m as f64 + self.network_area(tech)
    }

    /// Power of the full VPU.
    #[must_use]
    pub fn vpu_power(&self, tech: &TechParams) -> f64 {
        tech.lane_power * self.m as f64 + self.network_power(tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechParams {
        TechParams::asap7()
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_lane_count() {
        let _ = DesignModel::new(DesignKind::Ours, 48);
    }

    #[test]
    fn ours_matches_paper_table4_closely() {
        // (m, area µm², power mW) — paper Table IV.
        let rows = [
            (4usize, 208.99, 0.59),
            (8, 509.45, 1.38),
            (16, 1180.83, 3.13),
            (32, 2664.50, 7.02),
            (64, 5913.62, 15.59),
            (128, 12975.47, 34.28),
            (256, 28226.38, 75.02),
        ];
        let t = tech();
        for (m, area, power) in rows {
            let d = DesignModel::new(DesignKind::Ours, m);
            let da = (d.network_area(&t) - area).abs() / area;
            let dp = (d.network_power(&t) - power).abs() / power;
            assert!(da < 0.005, "m={m}: area {} vs {area}", d.network_area(&t));
            assert!(dp < 0.05, "m={m}: power {} vs {power}", d.network_power(&t));
        }
    }

    #[test]
    fn network_area_ordering_matches_table2() {
        // Paper: F1 > SHARP > BTS > ARK > Ours at m = 64.
        let t = tech();
        let area = |k| DesignModel::new(k, 64).network_area(&t);
        assert!(area(DesignKind::F1) > area(DesignKind::Sharp));
        assert!(area(DesignKind::Sharp) > area(DesignKind::Bts));
        assert!(area(DesignKind::Bts) > area(DesignKind::Ark));
        assert!(area(DesignKind::Ark) > area(DesignKind::Ours));
    }

    #[test]
    fn headline_ratios_are_in_range() {
        let t = tech();
        let ours = DesignModel::new(DesignKind::Ours, 64);
        let worst_area =
            DesignModel::new(DesignKind::F1, 64).network_area(&t) / ours.network_area(&t);
        let worst_power =
            DesignModel::new(DesignKind::F1, 64).network_power(&t) / ours.network_power(&t);
        // Paper: up to 9.4× area and 6.0× power savings.
        assert!((worst_area - 9.4).abs() < 1.0, "area ratio {worst_area}");
        assert!((worst_power - 6.0).abs() < 0.8, "power ratio {worst_power}");
    }

    #[test]
    fn vpu_is_lane_dominated() {
        // Paper: full-VPU savings shrink to 1.01–1.20× area because the
        // lanes dominate.
        let t = tech();
        let ours = DesignModel::new(DesignKind::Ours, 64);
        for kind in [
            DesignKind::F1,
            DesignKind::Bts,
            DesignKind::Ark,
            DesignKind::Sharp,
        ] {
            let d = DesignModel::new(kind, 64);
            let ratio = d.vpu_area(&t) / ours.vpu_area(&t);
            assert!(ratio > 1.0 && ratio < 1.25, "{kind:?}: {ratio}");
        }
        let net_share = ours.network_area(&t) / ours.vpu_area(&t);
        assert!(
            net_share < 0.05,
            "network is a small VPU fraction: {net_share}"
        );
    }

    #[test]
    fn scaling_is_slightly_superlinear() {
        // Table IV: 4 → 256 lanes (64×) grows area ~135× and power ~127×.
        let t = tech();
        let a4 = DesignModel::new(DesignKind::Ours, 4).network_area(&t);
        let a256 = DesignModel::new(DesignKind::Ours, 256).network_area(&t);
        let growth = a256 / a4;
        assert!(growth > 64.0, "superlinear: {growth}");
        assert!(
            (growth - 135.0).abs() < 8.0,
            "paper reports ~135×: {growth}"
        );
        let p4 = DesignModel::new(DesignKind::Ours, 4).network_power(&t);
        let p256 = DesignModel::new(DesignKind::Ours, 256).network_power(&t);
        let pgrowth = p256 / p4;
        assert!(
            (pgrowth - 127.0).abs() < 10.0,
            "paper reports ~127×: {pgrowth}"
        );
    }

    #[test]
    fn crossbar_scales_quadratically() {
        let t = tech();
        let b64 = DesignModel::new(DesignKind::Bts, 64).network_area(&t);
        let b256 = DesignModel::new(DesignKind::Bts, 256).network_area(&t);
        // 4× lanes ⇒ ~16× crossbar (the "scales poorly" claim).
        assert!(b256 / b64 > 12.0);
    }

    #[test]
    fn table1_strings_cover_all_designs() {
        for kind in DesignKind::ALL {
            assert!(!kind.name().is_empty());
            assert!(!kind.ntt_approach().is_empty());
            assert!(!kind.automorphism_approach().is_empty());
        }
    }
}
