//! The [`CostModel`] seam: one trace stream, N accelerator cost models.
//!
//! [`DesignModel`](crate::designs::DesignModel) answers *static*
//! questions (area and power of a design's permutation hardware). This
//! module extracts the *dynamic* half into a trait: given the PR-1 trace
//! events of a workload (butterfly / element-wise / network-move beats
//! and register-file transfers), how many cycles does backend X need and
//! how many picojoules does each hardware component dissipate?
//!
//! The trait is implemented by [`BackendModel`] for seven backends:
//!
//! - the paper's five designs (**Ours**, **F1**, **BTS**, **ARK**,
//!   **SHARP**), whose structures come straight from
//!   [`DesignModel::structure`](crate::designs::DesignModel::structure)
//!   so a fully-active network traversal costs exactly the Table II
//!   network power (the same identity the `uvpu-metrics` energy model
//!   maintains for "Ours");
//! - two modeled competitors from outside the paper, ported onto the
//!   same `m`-lane 64-bit VPU with the paper's §V-A methodology (same
//!   lanes, different permutation hardware): **RPU** and **BASALISC**
//!   (structural parameters cited on [`BackendKind::Rpu`] and
//!   [`BackendKind::Basalisc`]).
//!
//! ## The charging model
//!
//! Every backend replays the *same* beat stream — the workload is fixed;
//! only the hardware interpreting it differs:
//!
//! - **cycles**: each beat kind carries a per-backend integer cycle
//!   factor. The unified network does any permutation in one traversal;
//!   SRAM-transpose designs (F1, SHARP) double-pump permutations (write
//!   the tile, read it transposed); ARK's two separate networks must be
//!   traversed back-to-back for a fused shuffle+shift; RPU's ring ISA
//!   has no fused butterfly instruction and decomposes it into three
//!   vector ALU ops; BASALISC routes automorphisms through the memory
//!   hierarchy (store + load with address remapping).
//! - **energy**: each beat activates component bins
//!   ([`CostComponent`]), and each backend prices a bin activation from
//!   its own structure. Integer activation *counts* accumulate; pricing
//!   happens at render time — so attribution is independent of event
//!   arrival order across worker threads, exactly like the PR-3
//!   profiler.
//!
//! The per-backend parameters are deliberately coarse (integer factors,
//! affine structure costs): the goal is a deterministic, auditable
//! comparison in the style of the paper's Table II/IV, not a
//! cycle-accurate alien simulator.

use crate::designs::{DesignKind, DesignModel, NetworkStructure};
use crate::tech::TechParams;
use uvpu_core::trace::{BeatKind, MemDir, NetKind};

/// Number of component bins ([`CostComponent::ALL`]).
pub const COST_COMPONENTS: usize = 7;

/// A component bin of the cross-backend energy breakdown.
///
/// The bins generalize the `uvpu-metrics` attribution: `NetCg` is "the
/// hardware that realizes NTT-internal permutations" (CG stages for
/// Ours/ARK/BASALISC, the transpose SRAM for F1/SHARP, the crossbar for
/// BTS/RPU) and `NetShift` is "the hardware that realizes automorphism
/// shifts" (shift stages, Beneš networks, or memory-level remapping).
/// For "Ours" the names coincide with the physical stage groups, which
/// is what keeps the Ours column bit-identical to the PR-3 metrics
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostComponent {
    /// Lane ALUs during butterfly beats.
    LanesButterfly,
    /// Lane ALUs during element-wise beats.
    LanesEwise,
    /// NTT-permutation hardware (CG stages / transpose SRAM / crossbar).
    NetCg,
    /// Automorphism-shift hardware (shift stages / Beneš / remap SRAM).
    NetShift,
    /// Per-lane network ports (drivers and vertical wiring).
    NetPorts,
    /// Shared network periphery (affine fit constant + control stores).
    NetBase,
    /// Register-file ⇄ SRAM word transfers.
    RegFile,
}

impl CostComponent {
    /// All components, in snapshot rendering order.
    pub const ALL: [Self; COST_COMPONENTS] = [
        Self::LanesButterfly,
        Self::LanesEwise,
        Self::NetCg,
        Self::NetShift,
        Self::NetPorts,
        Self::NetBase,
        Self::RegFile,
    ];

    /// Dense index for counter arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Self::LanesButterfly => 0,
            Self::LanesEwise => 1,
            Self::NetCg => 2,
            Self::NetShift => 3,
            Self::NetPorts => 4,
            Self::NetBase => 5,
            Self::RegFile => 6,
        }
    }

    /// Stable snapshot name — identical to the `uvpu-metrics` component
    /// names so the "Ours" column of a comparison report lines up with
    /// the metrics snapshot key-for-key.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::LanesButterfly => "lanes.butterfly",
            Self::LanesEwise => "lanes.ewise",
            Self::NetCg => "net.cg_stages",
            Self::NetShift => "net.shift_stages",
            Self::NetPorts => "net.ports",
            Self::NetBase => "net.base",
            Self::RegFile => "regfile",
        }
    }
}

/// A backend whose cost model can replay a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BackendKind {
    /// One of the paper's five designs (Table II).
    Design(DesignKind),
    /// RPU — the Ring Processing Unit (arXiv:2303.17118).
    ///
    /// Ported structure: RPU executes FHE kernels on wide vector ALUs
    /// fed from a multi-bank vector register file; data rearrangement is
    /// done by explicit `shuffle`-class ring-ISA instructions through
    /// the bank↔lane crossbar interconnect (RPU §IV, "permute/shuffle
    /// support"), with the permutation patterns themselves held in a
    /// small on-chip pattern store. On an `m`-lane 64-bit VPU that is a
    /// full `m×m` crossbar (`64·m·(m−1)` crosspoint bits, as for BTS)
    /// plus an `m`-word pattern SRAM (`64·m` bits). Because the ISA has
    /// no fused butterfly-with-route instruction, one CT butterfly
    /// decomposes into three vector ops (modmul + modadd + modsub),
    /// charged as three lane activations and three cycles.
    Rpu,
    /// BASALISC — programmable BGV accelerator (arXiv:2205.14017).
    ///
    /// Ported structure: BASALISC runs NTTs on dedicated pipelined
    /// butterfly datapaths with fixed (constant-geometry-style)
    /// connections, but performs automorphisms "for free" in the memory
    /// hierarchy by address-remapping ciphertext polynomials during
    /// SRAM transfers (BASALISC §III, conflict-free memory access /
    /// permutation-on-the-move). On an `m`-lane VPU that is two CG mux
    /// rows (`64·m·2` bits) for the NTT connections plus an `m×m`-word
    /// staging SRAM (`64·m²` bits) for the remapped transfer, with the
    /// NTT unit and the memory path each bringing their own `m` lane
    /// ports. A remapped transfer is a store + load, so shift-class
    /// network moves cost two cycles.
    Basalisc,
}

impl BackendKind {
    /// All modeled backends: the paper's five designs in Table II row
    /// order, then the two external competitors.
    pub const ALL: [Self; 7] = [
        Self::Design(DesignKind::F1),
        Self::Design(DesignKind::Bts),
        Self::Design(DesignKind::Ark),
        Self::Design(DesignKind::Sharp),
        Self::Design(DesignKind::Ours),
        Self::Rpu,
        Self::Basalisc,
    ];

    /// Stable display name (report keys).
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Self::Design(d) => d.name(),
            Self::Rpu => "RPU",
            Self::Basalisc => "BASALISC",
        }
    }
}

/// Per-event cycle and energy charging plus the static area/power of one
/// accelerator backend — the seam a comparison sink (and, later, a
/// service layer's per-tenant attribution) programs against.
///
/// Implementations must be pure functions of `(kind, count)`: charging
/// is called from trace sinks that require bit-identical results
/// regardless of event arrival order across worker threads.
pub trait CostModel {
    /// Stable backend name (report keys).
    fn name(&self) -> &'static str;

    /// Lane count of the modeled VPU.
    fn lanes(&self) -> usize;

    /// Cycles this backend needs for `count` beats of `kind`.
    fn beat_cycles(&self, kind: BeatKind, count: u64) -> u64;

    /// Adds the component activations of `count` beats of `kind` into
    /// `counts` (indexed by [`CostComponent::index`]).
    fn charge_beats(&self, kind: BeatKind, count: u64, counts: &mut [u64; COST_COMPONENTS]);

    /// Adds a register-file transfer of `words` words into `counts`.
    fn charge_mem(&self, dir: MemDir, words: u64, counts: &mut [u64; COST_COMPONENTS]);

    /// Prices one component's activation count in pJ.
    fn component_pj(&self, component: CostComponent, count: u64) -> f64;

    /// Area of the permutation network (µm²).
    fn network_area_um2(&self) -> f64;

    /// Power of the permutation network (mW), workload activity applied.
    fn network_power_mw(&self) -> f64;

    /// Area of the full VPU (lanes + network) (µm²).
    fn vpu_area_um2(&self) -> f64;

    /// Peak power of the full VPU (mW).
    fn vpu_power_mw(&self) -> f64;

    /// One-line citation for the structural parameters.
    fn provenance(&self) -> &'static str;
}

/// Integer cycle factors per beat class (all ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CycleFactors {
    /// Cycles per butterfly beat.
    butterfly: u64,
    /// Cycles per element-wise beat.
    ewise: u64,
    /// Cycles per CG-class network pass (NTT-internal permutation).
    cg_pass: u64,
    /// Cycles per shift-class network pass (automorphisms, routes).
    shift_pass: u64,
    /// Cycles per fused shuffle+shift pass.
    combined_pass: u64,
}

/// Per-activation energy quanta (pJ), one per component bin.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EnergyQuanta {
    lane_beat_pj: f64,
    cg_beat_pj: f64,
    shift_beat_pj: f64,
    ports_beat_pj: f64,
    base_beat_pj: f64,
    regfile_word_pj: f64,
}

/// The concrete [`CostModel`] for every [`BackendKind`].
///
/// # Example
///
/// ```
/// use uvpu_hw_model::cost::{BackendKind, BackendModel, CostModel};
/// use uvpu_hw_model::tech::TechParams;
///
/// let tech = TechParams::asap7();
/// let ours = BackendModel::new(BackendKind::Design(
///     uvpu_hw_model::designs::DesignKind::Ours), 64, &tech);
/// let rpu = BackendModel::new(BackendKind::Rpu, 64, &tech);
/// // The crossbar-based RPU port pays quadratic network area.
/// assert!(rpu.network_area_um2() > 2.0 * ours.network_area_um2());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendModel {
    kind: BackendKind,
    lanes: usize,
    factors: CycleFactors,
    quanta: EnergyQuanta,
    /// Whether one physical traversal serves both the CG and shift roles
    /// (crossbar backends): a fused shuffle+shift then activates only
    /// the CG bin, not both.
    single_traversal: bool,
    /// How many lane activations one butterfly beat costs (3 for RPU's
    /// decomposed mul/add/sub, 1 everywhere else).
    butterfly_lane_acts: u64,
    /// How many network traversals one butterfly beat costs (2 for the
    /// SRAM-transpose designs' write+read, 1 everywhere else).
    butterfly_net_acts: u64,
    network_area: f64,
    network_power: f64,
    vpu_area: f64,
    vpu_power: f64,
}

impl BackendModel {
    /// Builds the cost model of `kind` for an `m`-lane VPU.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two ≥ 4 (the
    /// [`DesignModel::new`] domain).
    #[must_use]
    pub fn new(kind: BackendKind, m: usize, tech: &TechParams) -> Self {
        assert!(
            m.is_power_of_two() && m >= 4,
            "m = {m} must be a power of two >= 4"
        );
        let w = f64::from(tech.word_bits);
        let mf = m as f64;
        let log_m = f64::from((m as u64).trailing_zeros());

        // Structure and the split of its power into the cg/shift bins.
        // `cg_pj`/`shift_pj` carry the NTT-permutation and shift
        // hardware; ports/base carry the rest. The activity factor
        // multiplies everything, preserving the identity
        // "fully-active traversal == network_power".
        let (structure, cg_raw, shift_raw, base_extra, single, lane_acts, net_acts, factors) =
            match kind {
                BackendKind::Design(design) => {
                    let s = DesignModel::new(design, m).structure(tech);
                    match design {
                        DesignKind::Ours => (
                            s,
                            tech.mux_power_per_bit * w * mf * 2.0,
                            tech.mux_power_per_bit * w * mf * log_m,
                            0.0,
                            false,
                            1,
                            1,
                            CycleFactors {
                                butterfly: 1,
                                ewise: 1,
                                cg_pass: 1,
                                shift_pass: 1,
                                combined_pass: 1,
                            },
                        ),
                        DesignKind::F1 => (
                            s,
                            // NTT permutation = the quadrant-swap SRAM.
                            tech.sram_power_per_bit * s.sram_bits,
                            // Shifts = the log m cyclic-shift mux stages.
                            tech.mux_power_per_bit * s.mux_bits,
                            0.0,
                            false,
                            1,
                            2,
                            CycleFactors {
                                butterfly: 2,
                                ewise: 1,
                                cg_pass: 2,
                                shift_pass: 1,
                                combined_pass: 3,
                            },
                        ),
                        DesignKind::Bts => (
                            s,
                            // One crossbar serves both roles.
                            tech.mux_power_per_bit
                                * tech.crosspoint_power_factor
                                * s.crosspoint_bits,
                            tech.mux_power_per_bit
                                * tech.crosspoint_power_factor
                                * s.crosspoint_bits,
                            0.0,
                            true,
                            1,
                            1,
                            CycleFactors {
                                butterfly: 1,
                                ewise: 1,
                                cg_pass: 1,
                                shift_pass: 1,
                                combined_pass: 1,
                            },
                        ),
                        DesignKind::Ark => (
                            s,
                            // Dedicated CG NTT connections: 2 mux rows.
                            tech.mux_power_per_bit * w * mf * 2.0,
                            // Separate Beneš automorphism network.
                            tech.mux_power_per_bit * w * mf * (2.0 * log_m - 1.0),
                            0.0,
                            false,
                            1,
                            1,
                            CycleFactors {
                                butterfly: 1,
                                ewise: 1,
                                cg_pass: 1,
                                shift_pass: 1,
                                // Two separate units back-to-back.
                                combined_pass: 2,
                            },
                        ),
                        DesignKind::Sharp => (
                            s,
                            // NTT permutation = the banked transpose SRAM.
                            tech.sram_power_per_bit * s.sram_bits,
                            // Shifts = ARK's Beneš network.
                            tech.mux_power_per_bit * s.mux_bits,
                            0.0,
                            false,
                            1,
                            2,
                            CycleFactors {
                                butterfly: 2,
                                ewise: 1,
                                cg_pass: 2,
                                shift_pass: 1,
                                combined_pass: 3,
                            },
                        ),
                    }
                }
                BackendKind::Rpu => {
                    // Crossbar between VRF banks and lanes + an m-word
                    // pattern store (see the BackendKind docs for the
                    // citation). Activity as BTS: pass-gate crossbar.
                    let s = NetworkStructure {
                        mux_bits: 0.0,
                        crosspoint_bits: w * mf * (mf - 1.0),
                        sram_bits: w * mf,
                        port_lanes: m,
                        activity: 0.85,
                    };
                    (
                        s,
                        tech.mux_power_per_bit * tech.crosspoint_power_factor * s.crosspoint_bits,
                        tech.mux_power_per_bit * tech.crosspoint_power_factor * s.crosspoint_bits,
                        // Pattern store streams with the periphery.
                        tech.sram_power_per_bit * s.sram_bits,
                        true,
                        3,
                        1,
                        CycleFactors {
                            butterfly: 3,
                            ewise: 1,
                            cg_pass: 1,
                            shift_pass: 1,
                            combined_pass: 1,
                        },
                    )
                }
                BackendKind::Basalisc => {
                    // Dedicated CG NTT connections + automorphism-by-
                    // address-remap staging SRAM; NTT unit and memory
                    // path each bring their own lane ports.
                    let s = NetworkStructure {
                        mux_bits: w * mf * 2.0,
                        crosspoint_bits: 0.0,
                        sram_bits: mf * mf * w,
                        port_lanes: 2 * m,
                        activity: 1.0,
                    };
                    (
                        s,
                        tech.mux_power_per_bit * s.mux_bits,
                        tech.sram_power_per_bit * s.sram_bits,
                        0.0,
                        false,
                        1,
                        1,
                        CycleFactors {
                            butterfly: 1,
                            ewise: 1,
                            cg_pass: 2,
                            shift_pass: 2,
                            combined_pass: 4,
                        },
                    )
                }
            };

        let network_area = structure_area(tech, &structure);
        let network_power = structure_power(tech, &structure);
        let quanta = EnergyQuanta {
            lane_beat_pj: tech.lane_power * mf,
            cg_beat_pj: cg_raw * structure.activity,
            shift_beat_pj: shift_raw * structure.activity,
            ports_beat_pj: tech.port_power_per_lane
                * structure.port_lanes as f64
                * structure.activity,
            base_beat_pj: (tech.base_power + base_extra) * structure.activity,
            regfile_word_pj: tech.sram_power_per_bit * w,
        };
        Self {
            kind,
            lanes: m,
            factors,
            quanta,
            single_traversal: single,
            butterfly_lane_acts: lane_acts,
            butterfly_net_acts: net_acts,
            network_area,
            network_power,
            vpu_area: tech.lane_area * mf + network_area,
            vpu_power: tech.lane_power * mf + network_power,
        }
    }

    /// The backend being modeled.
    #[must_use]
    pub const fn kind(&self) -> BackendKind {
        self.kind
    }

    /// Energy of a fully-active network traversal (pJ): by construction
    /// equal to [`network_power_mw`](CostModel::network_power_mw) read
    /// in pJ/cycle (1 mW / 1 GHz = 1 pJ). For crossbar backends the
    /// CG and shift bins alias the same hardware, so only one of them
    /// participates.
    #[must_use]
    pub fn network_active_pj(&self) -> f64 {
        let q = &self.quanta;
        let stages = if self.single_traversal {
            q.cg_beat_pj
        } else {
            q.cg_beat_pj + q.shift_beat_pj
        };
        stages + q.ports_beat_pj + q.base_beat_pj
    }

    /// Whether one physical traversal serves both permutation roles
    /// (crossbar backends).
    #[must_use]
    pub const fn is_single_traversal(&self) -> bool {
        self.single_traversal
    }

    /// The standard suite of all seven backends at `m` lanes, in
    /// [`BackendKind::ALL`] order.
    #[must_use]
    pub fn suite(m: usize, tech: &TechParams) -> Vec<Self> {
        BackendKind::ALL
            .iter()
            .map(|&k| Self::new(k, m, tech))
            .collect()
    }
}

impl CostModel for BackendModel {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn lanes(&self) -> usize {
        self.lanes
    }

    fn beat_cycles(&self, kind: BeatKind, count: u64) -> u64 {
        let per = match kind {
            BeatKind::Butterfly => self.factors.butterfly,
            BeatKind::Elementwise(_) => self.factors.ewise,
            BeatKind::NetworkMove(net) => match net {
                NetKind::CgShuffle | NetKind::CgUnshuffle => self.factors.cg_pass,
                NetKind::Route | NetKind::Shift => self.factors.shift_pass,
                NetKind::CgShuffleShift | NetKind::CgUnshuffleShift => self.factors.combined_pass,
            },
        };
        per * count
    }

    fn charge_beats(&self, kind: BeatKind, count: u64, counts: &mut [u64; COST_COMPONENTS]) {
        match kind {
            BeatKind::Butterfly => {
                counts[CostComponent::LanesButterfly.index()] += self.butterfly_lane_acts * count;
                counts[CostComponent::NetCg.index()] += self.butterfly_net_acts * count;
                counts[CostComponent::NetPorts.index()] += self.butterfly_net_acts * count;
                counts[CostComponent::NetBase.index()] += self.butterfly_net_acts * count;
            }
            BeatKind::Elementwise(_) => {
                counts[CostComponent::LanesEwise.index()] += count;
            }
            BeatKind::NetworkMove(net) => {
                counts[CostComponent::NetPorts.index()] += count;
                counts[CostComponent::NetBase.index()] += count;
                match net {
                    NetKind::Route => {}
                    NetKind::CgShuffle | NetKind::CgUnshuffle => {
                        counts[CostComponent::NetCg.index()] += count;
                    }
                    NetKind::Shift => {
                        counts[CostComponent::NetShift.index()] += count;
                    }
                    NetKind::CgShuffleShift | NetKind::CgUnshuffleShift => {
                        counts[CostComponent::NetCg.index()] += count;
                        // One crossbar traversal serves both roles: do
                        // not double-charge the same hardware.
                        if !self.single_traversal {
                            counts[CostComponent::NetShift.index()] += count;
                        }
                    }
                }
            }
        }
    }

    fn charge_mem(&self, _dir: MemDir, words: u64, counts: &mut [u64; COST_COMPONENTS]) {
        counts[CostComponent::RegFile.index()] += words;
    }

    fn component_pj(&self, component: CostComponent, count: u64) -> f64 {
        let per = match component {
            CostComponent::LanesButterfly | CostComponent::LanesEwise => self.quanta.lane_beat_pj,
            CostComponent::NetCg => self.quanta.cg_beat_pj,
            CostComponent::NetShift => self.quanta.shift_beat_pj,
            CostComponent::NetPorts => self.quanta.ports_beat_pj,
            CostComponent::NetBase => self.quanta.base_beat_pj,
            CostComponent::RegFile => self.quanta.regfile_word_pj,
        };
        per * count as f64
    }

    fn network_area_um2(&self) -> f64 {
        self.network_area
    }

    fn network_power_mw(&self) -> f64 {
        self.network_power
    }

    fn vpu_area_um2(&self) -> f64 {
        self.vpu_area
    }

    fn vpu_power_mw(&self) -> f64 {
        self.vpu_power
    }

    fn provenance(&self) -> &'static str {
        match self.kind {
            BackendKind::Design(DesignKind::Ours) => {
                "This paper, Tables II/IV (unified CG + shift network)"
            }
            BackendKind::Design(DesignKind::F1) => {
                "F1 [MICRO'21], ported per paper SV-A (SRAM transpose + cyclic shifts)"
            }
            BackendKind::Design(DesignKind::Bts) => {
                "BTS [ISCA'22], ported per paper SV-A (full crossbar)"
            }
            BackendKind::Design(DesignKind::Ark) => {
                "ARK [MICRO'22], ported per paper SV-A (dedicated NTT + Benes networks)"
            }
            BackendKind::Design(DesignKind::Sharp) => {
                "SHARP [ISCA'23], ported per paper SV-A (banked transpose + Benes)"
            }
            BackendKind::Rpu => {
                "RPU [arXiv:2303.17118 SIV], ring-ISA crossbar port (see BackendKind::Rpu)"
            }
            BackendKind::Basalisc => {
                "BASALISC [arXiv:2205.14017 SIII], BGV pipeline port (see BackendKind::Basalisc)"
            }
        }
    }
}

/// Area of a [`NetworkStructure`] (µm²) — the formula previously inlined
/// in [`DesignModel::network_area`], extracted so external backends
/// price their structures with the same calibrated constants.
#[must_use]
pub fn structure_area(tech: &TechParams, s: &NetworkStructure) -> f64 {
    tech.mux_area_per_bit * (s.mux_bits + tech.crosspoint_area_factor * s.crosspoint_bits)
        + tech.sram_area_per_bit * s.sram_bits
        + tech.port_area_per_lane * s.port_lanes as f64
        + tech.base_area
}

/// Power of a [`NetworkStructure`] (mW), activity factor applied — the
/// formula previously inlined in [`DesignModel::network_power`].
#[must_use]
pub fn structure_power(tech: &TechParams, s: &NetworkStructure) -> f64 {
    let structural = tech.mux_power_per_bit
        * (s.mux_bits + tech.crosspoint_power_factor * s.crosspoint_bits)
        + tech.sram_power_per_bit * s.sram_bits
        + tech.port_power_per_lane * s.port_lanes as f64
        + tech.base_power;
    structural * s.activity
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_core::trace::EwiseOp;

    fn tech() -> TechParams {
        TechParams::asap7()
    }

    #[test]
    fn suite_covers_seven_distinct_backends() {
        let suite = BackendModel::suite(64, &tech());
        assert_eq!(suite.len(), 7);
        let mut names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7, "backend names must be unique");
        for b in &suite {
            assert!(!b.provenance().is_empty());
            assert!(b.network_area_um2() > 0.0, "{}", b.name());
            assert!(b.network_power_mw() > 0.0, "{}", b.name());
            assert!(b.vpu_area_um2() > b.network_area_um2());
            assert!(b.vpu_power_mw() > b.network_power_mw());
        }
    }

    #[test]
    fn design_backends_match_design_model_statics() {
        // The extracted area/power must be bit-identical to what
        // DesignModel computes — the trait is a refactor, not a fork.
        let t = tech();
        for design in DesignKind::ALL {
            let d = DesignModel::new(design, 64);
            let b = BackendModel::new(BackendKind::Design(design), 64, &t);
            assert_eq!(b.network_area_um2(), d.network_area(&t), "{design:?}");
            assert_eq!(b.network_power_mw(), d.network_power(&t), "{design:?}");
            assert_eq!(b.vpu_area_um2(), d.vpu_area(&t), "{design:?}");
            assert_eq!(b.vpu_power_mw(), d.vpu_power(&t), "{design:?}");
        }
    }

    #[test]
    fn fully_active_traversal_costs_the_table2_power() {
        // The metrics-layer identity, generalized to every backend: a
        // beat that exercises the whole permutation network costs
        // exactly that backend's network power read in pJ/cycle.
        let t = tech();
        for m in [4usize, 16, 64, 256] {
            for b in BackendModel::suite(m, &t) {
                let active = b.network_active_pj();
                let table = b.network_power_mw();
                assert!(
                    (active - table).abs() < 1e-9,
                    "{} m={m}: {active} vs {table}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn ours_charging_matches_the_unified_network() {
        let b = BackendModel::new(BackendKind::Design(DesignKind::Ours), 64, &tech());
        assert_eq!(b.beat_cycles(BeatKind::Butterfly, 5), 5);
        assert_eq!(
            b.beat_cycles(BeatKind::NetworkMove(NetKind::CgShuffleShift), 3),
            3,
            "the unified network fuses shuffle+shift into one traversal"
        );
        let mut counts = [0u64; COST_COMPONENTS];
        b.charge_beats(BeatKind::Butterfly, 2, &mut counts);
        b.charge_beats(
            BeatKind::NetworkMove(NetKind::CgShuffleShift),
            1,
            &mut counts,
        );
        b.charge_beats(BeatKind::Elementwise(EwiseOp::Mul), 4, &mut counts);
        b.charge_mem(MemDir::Load, 64, &mut counts);
        assert_eq!(counts[CostComponent::LanesButterfly.index()], 2);
        assert_eq!(counts[CostComponent::LanesEwise.index()], 4);
        assert_eq!(counts[CostComponent::NetCg.index()], 3);
        assert_eq!(counts[CostComponent::NetShift.index()], 1);
        assert_eq!(counts[CostComponent::NetPorts.index()], 3);
        assert_eq!(counts[CostComponent::RegFile.index()], 64);
    }

    #[test]
    fn competitor_cycle_factors_differentiate() {
        let t = tech();
        let ours = BackendModel::new(BackendKind::Design(DesignKind::Ours), 64, &t);
        let f1 = BackendModel::new(BackendKind::Design(DesignKind::F1), 64, &t);
        let rpu = BackendModel::new(BackendKind::Rpu, 64, &t);
        let bas = BackendModel::new(BackendKind::Basalisc, 64, &t);
        // SRAM-transpose designs double-pump CG passes.
        assert_eq!(
            f1.beat_cycles(BeatKind::NetworkMove(NetKind::CgShuffle), 10),
            2 * ours.beat_cycles(BeatKind::NetworkMove(NetKind::CgShuffle), 10)
        );
        // RPU decomposes butterflies into three vector ops.
        assert_eq!(rpu.beat_cycles(BeatKind::Butterfly, 7), 21);
        // BASALISC routes shifts through the memory hierarchy.
        assert_eq!(bas.beat_cycles(BeatKind::NetworkMove(NetKind::Shift), 4), 8);
        // ...but its dedicated NTT unit keeps butterflies single-cycle.
        assert_eq!(bas.beat_cycles(BeatKind::Butterfly, 4), 4);
    }

    #[test]
    fn crossbar_backends_do_not_double_charge_fused_passes() {
        let t = tech();
        for b in [
            BackendModel::new(BackendKind::Design(DesignKind::Bts), 64, &t),
            BackendModel::new(BackendKind::Rpu, 64, &t),
        ] {
            assert!(b.is_single_traversal());
            let mut counts = [0u64; COST_COMPONENTS];
            b.charge_beats(
                BeatKind::NetworkMove(NetKind::CgShuffleShift),
                1,
                &mut counts,
            );
            assert_eq!(counts[CostComponent::NetCg.index()], 1, "{}", b.name());
            assert_eq!(counts[CostComponent::NetShift.index()], 0, "{}", b.name());
        }
    }

    #[test]
    fn rpu_butterfly_charges_three_lane_activations() {
        let b = BackendModel::new(BackendKind::Rpu, 64, &tech());
        let mut counts = [0u64; COST_COMPONENTS];
        b.charge_beats(BeatKind::Butterfly, 2, &mut counts);
        assert_eq!(counts[CostComponent::LanesButterfly.index()], 6);
        assert_eq!(counts[CostComponent::NetCg.index()], 2);
    }

    #[test]
    fn rpu_scales_like_a_crossbar() {
        let t = tech();
        let a64 = BackendModel::new(BackendKind::Rpu, 64, &t).network_area_um2();
        let a256 = BackendModel::new(BackendKind::Rpu, 256, &t).network_area_um2();
        assert!(a256 / a64 > 12.0, "crossbar port scales quadratically");
    }

    #[test]
    fn component_names_match_metrics_bins() {
        // The Ours column of a comparison report must line up with the
        // PR-3 metrics snapshot key-for-key.
        let names: Vec<&str> = CostComponent::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "lanes.butterfly",
                "lanes.ewise",
                "net.cg_stages",
                "net.shift_stages",
                "net.ports",
                "net.base",
                "regfile"
            ]
        );
        for (i, c) in CostComponent::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_lane_count() {
        let _ = BackendModel::new(BackendKind::Rpu, 48, &tech());
    }
}
