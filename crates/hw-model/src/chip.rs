//! Chip-level cost roll-up (paper Fig 1(a)): multiple VPUs, a ring NoC,
//! and the global on-chip SRAM.
//!
//! The paper evaluates at VPU scope; this module extends the same
//! primitive-cost model to the full accelerator so the network savings
//! can be read at every aggregation level: inter-lane network → VPU →
//! chip. Global SRAM uses a high-density macro factor (large arrays
//! amortize periphery better than the small transpose buffers of
//! Table II — ~0.6× the per-bit cost, consistent with published
//! single-bank vs multi-MiB macro densities).

use crate::designs::{DesignKind, DesignModel};
use crate::tech::TechParams;

/// Density advantage of multi-MiB SRAM macros over the small buffers the
/// Table II models price.
const BULK_SRAM_DENSITY_FACTOR: f64 = 0.6;

/// A chip configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipConfig {
    /// Number of VPUs.
    pub vpus: usize,
    /// Lanes per VPU.
    pub lanes: usize,
    /// Global SRAM capacity in bytes.
    pub sram_bytes: usize,
    /// NoC link width in bits (a ring with one link per VPU).
    pub noc_link_bits: usize,
}

impl Default for ChipConfig {
    /// A representative FHE accelerator shape: 8 × 64-lane VPUs around
    /// 64 MiB of SRAM with 512-bit ring links.
    fn default() -> Self {
        Self {
            vpus: 8,
            lanes: 64,
            sram_bytes: 64 << 20,
            noc_link_bits: 512,
        }
    }
}

/// Chip-level area/power for one permutation-hardware design choice.
///
/// # Example
///
/// ```
/// use uvpu_hw_model::chip::{ChipConfig, ChipModel};
/// use uvpu_hw_model::designs::DesignKind;
/// use uvpu_hw_model::tech::TechParams;
///
/// let tech = TechParams::asap7();
/// let chip = ChipModel::new(ChipConfig::default(), DesignKind::Ours);
/// let mm2 = chip.total_area(&tech) / 1e6;
/// assert!(mm2 > 10.0 && mm2 < 200.0, "a plausible FHE accelerator: {mm2} mm²");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipModel {
    config: ChipConfig,
    design: DesignKind,
}

impl ChipModel {
    /// Creates the model.
    #[must_use]
    pub const fn new(config: ChipConfig, design: DesignKind) -> Self {
        Self { config, design }
    }

    /// The configuration.
    #[must_use]
    pub const fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Area of all VPUs (µm²).
    #[must_use]
    pub fn vpus_area(&self, tech: &TechParams) -> f64 {
        DesignModel::new(self.design, self.config.lanes).vpu_area(tech) * self.config.vpus as f64
    }

    /// Area of the global SRAM (µm²).
    #[must_use]
    pub fn sram_area(&self, tech: &TechParams) -> f64 {
        self.config.sram_bytes as f64 * 8.0 * tech.sram_area_per_bit * BULK_SRAM_DENSITY_FACTOR
    }

    /// Area of the ring NoC (µm²): one link's worth of pipeline
    /// registers and MUXes per VPU stop.
    #[must_use]
    pub fn noc_area(&self, tech: &TechParams) -> f64 {
        // Each ring stop: a 2:1 steering MUX row plus a register stage per
        // link bit, approximated as 3 MUX-bit equivalents per bit.
        let per_stop = 3.0 * self.config.noc_link_bits as f64 * tech.mux_area_per_bit
            + tech.port_area_per_lane * (self.config.noc_link_bits / 64) as f64;
        per_stop * self.config.vpus as f64
    }

    /// Total chip area (µm²).
    #[must_use]
    pub fn total_area(&self, tech: &TechParams) -> f64 {
        self.vpus_area(tech) + self.sram_area(tech) + self.noc_area(tech)
    }

    /// Total chip power (mW), with SRAM at streaming activity on one
    /// port's worth of bits per cycle.
    #[must_use]
    pub fn total_power(&self, tech: &TechParams) -> f64 {
        let vpus = DesignModel::new(self.design, self.config.lanes).vpu_power(tech)
            * self.config.vpus as f64;
        // SRAM: leakage ∝ capacity at a small fraction of the streaming
        // per-bit power, plus dynamic on the active words.
        let leak = self.config.sram_bytes as f64 * 8.0 * tech.sram_power_per_bit * 0.02;
        let dynamic =
            (self.config.vpus * self.config.noc_link_bits) as f64 * tech.sram_power_per_bit * 40.0;
        let noc =
            3.0 * (self.config.vpus * self.config.noc_link_bits) as f64 * tech.mux_power_per_bit;
        vpus + leak + dynamic + noc
    }

    /// The fraction of chip area attributable to permutation hardware.
    #[must_use]
    pub fn permutation_share(&self, tech: &TechParams) -> f64 {
        let net = DesignModel::new(self.design, self.config.lanes).network_area(tech)
            * self.config.vpus as f64;
        net / self.total_area(tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_savings_are_diluted_but_real() {
        let tech = TechParams::asap7();
        let cfg = ChipConfig::default();
        let ours = ChipModel::new(cfg, DesignKind::Ours);
        let f1 = ChipModel::new(cfg, DesignKind::F1);
        let ratio = f1.total_area(&tech) / ours.total_area(&tech);
        // VPU-level was 1.20×; SRAM dilutes it further but it stays > 1.
        assert!(ratio > 1.005 && ratio < 1.20, "chip ratio {ratio}");
        assert!(f1.total_power(&tech) > ours.total_power(&tech));
    }

    #[test]
    fn component_breakdown_sums() {
        let tech = TechParams::asap7();
        let chip = ChipModel::new(ChipConfig::default(), DesignKind::Ours);
        let total = chip.total_area(&tech);
        let parts = chip.vpus_area(&tech) + chip.sram_area(&tech) + chip.noc_area(&tech);
        assert!((total - parts).abs() < 1e-6);
        assert!(
            chip.sram_area(&tech) > chip.noc_area(&tech),
            "SRAM dominates the uncore"
        );
    }

    #[test]
    fn permutation_share_shrinks_with_scope() {
        let tech = TechParams::asap7();
        let chip = ChipModel::new(ChipConfig::default(), DesignKind::F1);
        let vpu_share = DesignModel::new(DesignKind::F1, 64).network_area(&tech)
            / DesignModel::new(DesignKind::F1, 64).vpu_area(&tech);
        assert!(chip.permutation_share(&tech) < vpu_share);
        assert!(chip.permutation_share(&tech) > 0.001);
    }
}
