//! The profiler: a [`TraceSink`] that turns the PR-1 event stream into
//! utilization and energy attribution.
//!
//! A [`ProfilerSink`] can sit anywhere a sink can: inline on a
//! [`Vpu`](uvpu_core::vpu::Vpu) (cycle-level beats and phase spans),
//! behind [`SyncSink`](uvpu_core::trace::SyncSink) as the process-global
//! sink (scheme-level spans, scheduler task spans, and spans emitted
//! from `uvpu-par` pool workers), or teed with other sinks. One
//! profiler instance shared across all of those yields a single
//! coherent snapshot.
//!
//! What it maintains:
//!
//! - `running`: the [`CycleStats`] reconstructed purely from beats —
//!   bit-identical to the VPU's own accounting for a traced run;
//! - `phases`: per-span cycle attribution (nested spans both observe
//!   inner beats), from which per-phase utilization is derived;
//! - `tasks`: scheduler task attribution — spans named `task.*` carry
//!   cycle timestamps from the accelerator's timeline, so their
//!   durations are exact per-task cycle counts;
//! - component activation counts priced by an [`EnergyModel`] at
//!   snapshot time (counts, not floats, accumulate — so the result is
//!   independent of event arrival order across worker threads);
//! - a [`MetricsRegistry`] of beat/mem/span counters and histograms.
//!
//! Span durations measured on the *logical* clock (scheme-level spans on
//! [`SCHEME_TRACK`]) are deliberately **not** attributed as cycles: a
//! sequence number measures event counts, not time, and interleaves
//! nondeterministically across threads. Scheme spans are only counted.

use crate::energy::{Component, EnergyModel};
use crate::registry::MetricsRegistry;
use std::collections::BTreeMap;
use uvpu_core::stats::CycleStats;
use uvpu_core::trace::{BeatKind, MemDir, TraceSink, SCHEME_TRACK};

/// Per-task attribution record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskRecord {
    /// Completed spans of this task shape.
    pub count: u64,
    /// Total cycles across those spans (timestamp deltas on the
    /// scheduler timeline).
    pub cycles: u64,
}

/// The utilization / energy attribution profiler.
///
/// See the [module docs](self) for the attribution model and the crate
/// docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct ProfilerSink {
    energy: EnergyModel,
    registry: MetricsRegistry,
    running: CycleStats,
    component_counts: [u64; 7],
    open: Vec<OpenSpan>,
    phases: BTreeMap<String, CycleStats>,
    tasks: BTreeMap<String, TaskRecord>,
}

#[derive(Debug, Clone)]
struct OpenSpan {
    track: u32,
    name: String,
    begin_ts: u64,
    at_begin: CycleStats,
}

impl ProfilerSink {
    /// A fresh profiler pricing energy for `lanes` lanes with the
    /// calibrated ASAP7 model.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not a power of two ≥ 4.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        Self::with_energy_model(EnergyModel::asap7(lanes))
    }

    /// A fresh profiler with an explicit energy model.
    #[must_use]
    pub fn with_energy_model(energy: EnergyModel) -> Self {
        let mut registry = MetricsRegistry::new();
        registry.set_gauge("lanes", energy.lanes() as f64);
        Self {
            energy,
            registry,
            running: CycleStats::new(),
            component_counts: [0; 7],
            open: Vec::new(),
            phases: BTreeMap::new(),
            tasks: BTreeMap::new(),
        }
    }

    /// The energy model in use.
    #[must_use]
    pub const fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The metrics registry (beat/mem/span counters, histograms).
    #[must_use]
    pub const fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Cycle totals reconstructed purely from trace events — for a
    /// traced run, bit-identical to the VPU's own
    /// [`stats`](uvpu_core::vpu::Vpu::stats).
    #[must_use]
    pub const fn running(&self) -> &CycleStats {
        &self.running
    }

    /// Per-phase cycle attribution keyed by span name, accumulated over
    /// all completed spans of that name.
    #[must_use]
    pub const fn phases(&self) -> &BTreeMap<String, CycleStats> {
        &self.phases
    }

    /// Per-task attribution: scheduler spans named `task.*`, keyed by
    /// the task shape (the name without its `task.` prefix).
    #[must_use]
    pub const fn tasks(&self) -> &BTreeMap<String, TaskRecord> {
        &self.tasks
    }

    /// Activation counts per [`Component`] (beats; words for
    /// [`Component::RegFile`]).
    #[must_use]
    pub fn component_count(&self, component: Component) -> u64 {
        self.component_counts[component.index()]
    }

    /// Energy attributed to one component so far (pJ).
    #[must_use]
    pub fn component_pj(&self, component: Component) -> f64 {
        self.energy
            .component_pj(component, self.component_counts[component.index()])
    }

    /// Total attributed dynamic energy (pJ).
    #[must_use]
    pub fn energy_total_pj(&self) -> f64 {
        Component::ALL.iter().map(|&c| self.component_pj(c)).sum()
    }

    /// Energy share of a coarse component group (`"lanes"`,
    /// `"network"`, `"regfile"`); zero when nothing was attributed yet.
    #[must_use]
    pub fn group_share(&self, group: &str) -> f64 {
        let total = self.energy_total_pj();
        if total == 0.0 {
            return 0.0;
        }
        Component::ALL
            .iter()
            .filter(|c| c.group() == group)
            .map(|&c| self.component_pj(c))
            .sum::<f64>()
            / total
    }

    /// Renders the deterministic snapshot JSON (no advisory section).
    /// See [`crate::snapshot`] for the schema.
    #[must_use]
    pub fn snapshot(&self, workload: &str, variant: &str) -> String {
        crate::snapshot::render(self, workload, variant)
    }
}

impl TraceSink for ProfilerSink {
    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        self.beats(track, cycle, kind, 1);
    }

    fn beats(&mut self, _track: u32, _cycle: u64, kind: BeatKind, count: u64) {
        kind.charge(&mut self.running, count);
        EnergyModel::charge_beats(kind, count, &mut self.component_counts);
        self.registry.inc_family("beats", kind.name(), count);
    }

    fn mem(&mut self, _track: u32, _cycle: u64, dir: MemDir, _addr: usize, lanes: usize) {
        self.component_counts[Component::RegFile.index()] += lanes as u64;
        let label = match dir {
            MemDir::Load => "load",
            MemDir::Store => "store",
        };
        self.registry.inc_family("mem.ops", label, 1);
        self.registry.inc_family("mem.words", label, lanes as u64);
    }

    fn span_begin(&mut self, track: u32, ts: u64, name: &str) {
        self.open.push(OpenSpan {
            track,
            name: name.to_string(),
            begin_ts: ts,
            at_begin: self.running,
        });
    }

    fn span_end(&mut self, track: u32, ts: u64, name: &str) {
        // Close the innermost open span matching (track, name); tolerate
        // a track mismatch (fall back to name-only) so hand-emitted span
        // pairs with inconsistent tracks still close, but *count*
        // genuinely unmatched ends instead of dropping them silently.
        let pos = self
            .open
            .iter()
            .rposition(|s| s.track == track && s.name == name)
            .or_else(|| self.open.iter().rposition(|s| s.name == name));
        let Some(pos) = pos else {
            self.registry.inc("span.unmatched_end", 1);
            return;
        };
        let span = self.open.remove(pos);
        let cost = self.running.delta(&span.at_begin);
        *self.phases.entry(span.name.clone()).or_default() += cost;
        self.registry.inc_family("span.count", &span.name, 1);
        // Timestamp-based duration attribution only where timestamps are
        // cycles (never on the scheme track's logical sequence clock).
        if track != SCHEME_TRACK {
            if let Some(shape) = span.name.strip_prefix("task.") {
                let cycles = ts.saturating_sub(span.begin_ts);
                let rec = self.tasks.entry(shape.to_string()).or_default();
                rec.count += 1;
                rec.cycles += cycles;
                self.registry.observe("task.cycle_hist", cycles);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_core::trace::{EwiseOp, NetKind};

    #[test]
    fn running_totals_match_beats() {
        let mut p = ProfilerSink::new(64);
        p.beat(0, 0, BeatKind::Butterfly);
        p.beats(0, 1, BeatKind::Elementwise(EwiseOp::Mac), 4);
        p.beats(0, 5, BeatKind::NetworkMove(NetKind::Shift), 2);
        assert_eq!(p.running().butterfly, 1);
        assert_eq!(p.running().elementwise, 4);
        assert_eq!(p.running().network_move, 2);
        assert_eq!(p.registry().family("beats")["butterfly"], 1);
        assert_eq!(p.registry().family("beats")["ewise.mac"], 4);
        assert_eq!(p.registry().family("beats")["net.shift"], 2);
    }

    #[test]
    fn phases_attribute_nested_spans() {
        let mut p = ProfilerSink::new(64);
        p.span_begin(0, 0, "outer");
        p.beat(0, 0, BeatKind::Butterfly);
        p.span_begin(0, 1, "inner");
        p.beat(0, 1, BeatKind::NetworkMove(NetKind::Shift));
        p.span_end(0, 2, "inner");
        p.span_end(0, 2, "outer");
        assert_eq!(p.phases()["outer"].total(), 2);
        assert_eq!(p.phases()["inner"].total(), 1);
        assert_eq!(p.registry().family("span.count")["outer"], 1);
        assert_eq!(p.registry().counter("span.unmatched_end"), 0);
        p.span_end(0, 3, "never-opened");
        assert_eq!(p.registry().counter("span.unmatched_end"), 1);
    }

    #[test]
    fn task_spans_attribute_cycle_durations() {
        let mut p = ProfilerSink::new(64);
        p.span_begin(2, 100, "task.ntt n=1024");
        p.span_end(2, 350, "task.ntt n=1024");
        p.span_begin(3, 0, "task.ntt n=1024");
        p.span_end(3, 50, "task.ntt n=1024");
        let rec = p.tasks()["ntt n=1024"];
        assert_eq!(rec.count, 2);
        assert_eq!(rec.cycles, 300);
        let h = p.registry().histogram("task.cycle_hist").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 300);
    }

    #[test]
    fn scheme_spans_are_counted_but_not_timed() {
        let mut p = ProfilerSink::new(64);
        p.span_begin(SCHEME_TRACK, 0, "task.fake-on-scheme-track");
        p.span_end(SCHEME_TRACK, 99, "task.fake-on-scheme-track");
        p.span_begin(SCHEME_TRACK, 100, "ckks.mul");
        p.span_end(SCHEME_TRACK, 101, "ckks.mul");
        assert!(p.tasks().is_empty(), "sequence clocks are not cycle time");
        assert_eq!(p.registry().family("span.count")["ckks.mul"], 1);
    }

    #[test]
    fn unmatched_ends_are_counted_not_attributed() {
        let mut p = ProfilerSink::new(64);
        p.span_end(0, 5, "never-opened");
        p.span_end(1, 6, "also-never-opened");
        assert_eq!(p.registry().counter("span.unmatched_end"), 2);
        assert!(p.phases().is_empty(), "nothing was attributed");
        assert!(p.registry().family("span.count").is_empty());
        // A matched end after unmatched ones still attributes normally.
        p.span_begin(0, 7, "real");
        p.beat(0, 7, BeatKind::Butterfly);
        p.span_end(0, 8, "real");
        assert_eq!(p.phases()["real"].butterfly, 1);
        assert_eq!(p.registry().counter("span.unmatched_end"), 2);
    }

    #[test]
    fn nested_same_name_spans_close_innermost_first() {
        let mut p = ProfilerSink::new(64);
        p.span_begin(0, 0, "x");
        p.beat(0, 0, BeatKind::Butterfly);
        p.span_begin(0, 1, "x");
        p.beats(0, 1, BeatKind::NetworkMove(NetKind::Shift), 3);
        // First end closes the INNER x (rposition): it observed only the
        // 3 network beats; the outer x observed all 4.
        p.span_end(0, 4, "x");
        p.span_end(0, 5, "x");
        assert_eq!(p.phases()["x"].total(), 4 + 3, "outer(4) + inner(3)");
        assert_eq!(p.registry().family("span.count")["x"], 2);
        assert_eq!(p.registry().counter("span.unmatched_end"), 0);
    }

    #[test]
    fn cross_track_end_falls_back_to_name_only_matching() {
        let mut p = ProfilerSink::new(64);
        p.span_begin(2, 100, "task.ntt n=64");
        p.beat(2, 100, BeatKind::Butterfly);
        // End arrives on a different track: the (track, name) match
        // fails, the name-only fallback closes the open span — and the
        // task duration uses the matched span's own begin timestamp.
        p.span_end(7, 160, "task.ntt n=64");
        assert_eq!(p.registry().counter("span.unmatched_end"), 0);
        assert_eq!(p.phases()["task.ntt n=64"].butterfly, 1);
        let rec = p.tasks()["ntt n=64"];
        assert_eq!(rec.count, 1);
        assert_eq!(rec.cycles, 60, "duration from the matched begin ts");
    }

    #[test]
    fn exact_track_match_beats_newer_name_only_match() {
        let mut p = ProfilerSink::new(64);
        p.span_begin(0, 0, "task.x n=1");
        p.span_begin(1, 100, "task.x n=1");
        // Track 0's end must close track 0's span (begin ts 0 → duration
        // 110, log₂ bucket 6; then 130-100=30, bucket 4) even though
        // track 1's same-name span is more recent. Pure name-only
        // matching would mispair them as 10 (bucket 3) + 130 (bucket 7).
        p.span_end(0, 110, "task.x n=1");
        p.span_end(1, 130, "task.x n=1");
        assert_eq!(p.registry().counter("span.unmatched_end"), 0);
        let h = p.registry().histogram("task.cycle_hist").unwrap();
        assert_eq!(h.buckets[6], 1, "110-cycle duration from exact match");
        assert_eq!(h.buckets[4], 1, "30-cycle duration from exact match");
        assert_eq!(h.buckets[3] + h.buckets[7], 0, "no name-only mispairing");
    }

    #[test]
    fn mem_words_price_the_register_file() {
        let mut p = ProfilerSink::new(64);
        p.mem(0, 0, MemDir::Load, 3, 64);
        p.mem(0, 1, MemDir::Store, 4, 64);
        assert_eq!(p.component_count(Component::RegFile), 128);
        assert_eq!(p.registry().family("mem.words")["load"], 64);
        assert_eq!(p.registry().family("mem.ops")["store"], 1);
        let expected = p.energy_model().regfile_word_pj * 128.0;
        assert!((p.component_pj(Component::RegFile) - expected).abs() < 1e-9);
    }

    #[test]
    fn energy_groups_partition_the_total() {
        let mut p = ProfilerSink::new(64);
        p.beats(0, 0, BeatKind::Butterfly, 100);
        p.beats(0, 100, BeatKind::NetworkMove(NetKind::CgShuffleShift), 10);
        p.mem(0, 110, MemDir::Load, 0, 64);
        let total = p.energy_total_pj();
        assert!(total > 0.0);
        let sum: f64 = ["lanes", "network", "regfile"]
            .iter()
            .map(|g| p.group_share(g))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p.group_share("lanes") > p.group_share("network"));
    }
}
