//! Energy counter tracks for Perfetto timelines.
//!
//! [`EnergyTimelineSink`] wraps a [`PerfettoSink`] and, alongside the
//! usual beat slices and span events, emits Chrome **counter** samples
//! (`ph: 'C'`) carrying the cumulative per-component energy in pJ — one
//! series per [`Component`] bin. Opened in `ui.perfetto.dev`, the
//! counter track plots energy growing next to the spans that spent it,
//! so "which phase burned the pJ" is visible without leaving the
//! timeline.
//!
//! Samples are taken on beat events (one sample per `beat`/`beats`
//! call, at the event's timestamp). Register-file transfers update the
//! cumulative counts without emitting a sample of their own (`mem`
//! events are far more numerous than beat batches); the final state is
//! flushed as one last sample by [`EnergyTimelineSink::to_json`], so
//! the terminal counter values always equal the exact totals.
//!
//! Values are rendered with the shared fixed-precision
//! [`fmt_pj`](crate::snapshot::fmt_pj), keeping the export
//! deterministic for identical event streams.

use crate::energy::{Component, EnergyModel};
use uvpu_core::trace::{BeatKind, MemDir, PerfettoSink, TraceSink};

/// A [`PerfettoSink`] wrapper adding cumulative per-component energy
/// counter tracks.
///
/// # Example
///
/// ```
/// use uvpu_core::trace::{BeatKind, TraceSink};
/// use uvpu_metrics::timeline::EnergyTimelineSink;
///
/// let mut sink = EnergyTimelineSink::new(64, 50);
/// sink.beats(0, 0, BeatKind::Butterfly, 8);
/// let json = sink.to_json();
/// assert!(json.contains("\"ph\":\"C\""));
/// assert!(json.contains("lanes.butterfly"));
/// ```
#[derive(Debug, Clone)]
pub struct EnergyTimelineSink {
    energy: EnergyModel,
    inner: PerfettoSink,
    counts: [u64; 7],
    track: u32,
    samples: usize,
    last_ts: u64,
}

impl EnergyTimelineSink {
    /// Counter name shown on the Perfetto track.
    pub const COUNTER_NAME: &'static str = "energy_pj";

    /// A fresh sink pricing `lanes` lanes with the calibrated ASAP7
    /// model; counter samples are emitted on `track`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not a power of two ≥ 4.
    #[must_use]
    pub fn new(lanes: usize, track: u32) -> Self {
        Self::with_energy_model(EnergyModel::asap7(lanes), track)
    }

    /// A fresh sink with an explicit energy model.
    #[must_use]
    pub fn with_energy_model(energy: EnergyModel, track: u32) -> Self {
        Self {
            energy,
            inner: PerfettoSink::new(),
            counts: [0; 7],
            track,
            samples: 0,
            last_ts: 0,
        }
    }

    /// Counter samples emitted so far (excluding the final flush).
    #[must_use]
    pub const fn sample_count(&self) -> usize {
        self.samples
    }

    /// Cumulative activation counts per [`Component`] (beats; words for
    /// [`Component::RegFile`]).
    #[must_use]
    pub const fn component_counts(&self) -> &[u64; 7] {
        &self.counts
    }

    /// Total attributed energy so far (pJ).
    #[must_use]
    pub fn energy_total_pj(&self) -> f64 {
        Component::ALL
            .iter()
            .map(|&c| self.energy.component_pj(c, self.counts[c.index()]))
            .sum()
    }

    /// Events in the wrapped exporter (slices, spans, and counter
    /// samples, after coalescing).
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.inner.event_count()
    }

    fn sample(&mut self, ts: u64) {
        self.last_ts = self.last_ts.max(ts);
        let series: Vec<(&str, String)> = Component::ALL
            .iter()
            .map(|&c| {
                (
                    c.name(),
                    crate::snapshot::fmt_pj(self.energy.component_pj(c, self.counts[c.index()])),
                )
            })
            .collect();
        self.inner
            .counter(self.track, ts, Self::COUNTER_NAME, &series);
        self.samples += 1;
    }

    /// Serializes the wrapped trace, appending one final counter sample
    /// so the terminal values equal the exact cumulative totals (they
    /// can otherwise lag by the register-file words charged since the
    /// last beat).
    #[must_use]
    pub fn to_json(&mut self) -> String {
        self.sample(self.last_ts);
        self.inner.to_json()
    }
}

impl TraceSink for EnergyTimelineSink {
    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        self.beats(track, cycle, kind, 1);
    }

    fn beats(&mut self, track: u32, cycle: u64, kind: BeatKind, count: u64) {
        self.inner.beats(track, cycle, kind, count);
        EnergyModel::charge_beats(kind, count, &mut self.counts);
        self.sample(cycle.saturating_add(count));
    }

    fn mem(&mut self, track: u32, cycle: u64, dir: MemDir, addr: usize, lanes: usize) {
        self.inner.mem(track, cycle, dir, addr, lanes);
        self.counts[Component::RegFile.index()] += lanes as u64;
        self.last_ts = self.last_ts.max(cycle);
    }

    fn span_begin(&mut self, track: u32, ts: u64, name: &str) {
        self.inner.span_begin(track, ts, name);
        self.last_ts = self.last_ts.max(ts);
    }

    fn span_end(&mut self, track: u32, ts: u64, name: &str) {
        self.inner.span_end(track, ts, name);
        self.last_ts = self.last_ts.max(ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_core::trace::NetKind;

    #[test]
    fn counter_samples_carry_all_components() {
        let mut sink = EnergyTimelineSink::new(64, 50);
        sink.beats(0, 0, BeatKind::Butterfly, 10);
        sink.beats(0, 10, BeatKind::NetworkMove(NetKind::Shift), 2);
        sink.mem(0, 12, MemDir::Load, 0, 64);
        assert_eq!(sink.sample_count(), 2, "one sample per beat batch");
        assert_eq!(sink.component_counts()[Component::RegFile.index()], 64);
        let json = sink.to_json();
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"energy_pj\""));
        assert!(json.contains("\"tid\":50"));
        for c in Component::ALL {
            assert!(json.contains(c.name()), "series {} present", c.name());
        }
        // The final flush carries the regfile words charged by `mem`.
        let expected =
            crate::snapshot::fmt_pj(EnergyModel::asap7(64).component_pj(Component::RegFile, 64));
        assert!(
            json.contains(&format!("\"regfile\":{expected}")),
            "final sample has exact totals: {json}"
        );
    }

    #[test]
    fn beat_slices_still_exported() {
        let mut sink = EnergyTimelineSink::new(64, 50);
        sink.span_begin(0, 0, "phase");
        sink.beats(0, 0, BeatKind::Butterfly, 4);
        sink.span_end(0, 4, "phase");
        let json = sink.to_json();
        assert!(json.contains("\"name\":\"butterfly\""), "{json}");
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
    }

    #[test]
    fn totals_match_the_energy_model() {
        let mut sink = EnergyTimelineSink::new(64, 50);
        sink.beats(0, 0, BeatKind::Butterfly, 100);
        sink.mem(0, 100, MemDir::Store, 0, 64);
        let em = EnergyModel::asap7(64);
        let expected = em.component_pj(Component::LanesButterfly, 100)
            + em.component_pj(Component::NetCg, 100)
            + em.component_pj(Component::NetPorts, 100)
            + em.component_pj(Component::NetBase, 100)
            + em.component_pj(Component::RegFile, 64);
        assert!((sink.energy_total_pj() - expected).abs() < 1e-9);
    }
}
