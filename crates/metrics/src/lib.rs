//! `uvpu-metrics` — utilization and energy attribution for the VPU stack.
//!
//! The paper's evaluation rests on two kinds of numbers: throughput
//! *utilization* (compute cycles over total cycles — Table III) and
//! per-component *area/power breakdowns* (Tables II and IV). The static
//! `table*` bins regenerate those for fixed kernels; this crate closes
//! the loop for **live workloads**: a [`profiler::ProfilerSink`] consumes
//! the `uvpu-core` trace-event stream and attributes every beat, memory
//! transfer, and span to
//!
//! 1. **per-phase lane/network utilization** — the same
//!    [`CycleStats::utilization`](uvpu_core::stats::CycleStats::utilization)
//!    figure of Table III, but broken down by trace span (NTT dimension,
//!    rescale, key-switch, scheduler task, …); and
//! 2. **per-component dynamic energy** — using the calibrated
//!    `uvpu-hw-model` unit costs. At the model's 1 GHz clock, a
//!    component consuming `P` mW dissipates exactly `P` pJ per active
//!    cycle, so the [`energy::EnergyModel`] per-beat costs are the
//!    Table IV power bins re-expressed as energy quanta.
//!
//! Everything is **deterministic by construction**: the profiler stores
//! only integer event counts (energy is multiplied out at snapshot
//! time), registry maps are ordered, and the JSON snapshot
//! ([`snapshot`]) renders with fixed field order and fixed float
//! precision. Two runs of the same workload — at any `UVPU_THREADS`
//! setting — produce byte-identical snapshots, which is what lets
//! `scripts/ci.sh` gate on a committed baseline with a plain byte diff.
//!
//! # Layout
//!
//! - [`registry`] — counters, gauges, log₂-bucket histograms, and
//!   labeled counter families in ordered maps;
//! - [`energy`] — per-beat energy quanta derived from
//!   [`TechParams`](uvpu_hw_model::tech::TechParams);
//! - [`profiler`] — the [`TraceSink`](uvpu_core::trace::TraceSink)
//!   implementation doing the attribution;
//! - [`snapshot`] — the versioned `BENCH_*.json` schema: rendering,
//!   advisory-section handling, and baseline diffing;
//! - [`treeprof`] — `uvpu-obs`: the hierarchical call-tree profiler
//!   (full span *paths*, self vs. inclusive cycles, per-path latency
//!   histograms), wrapping a flat [`profiler::ProfilerSink`] whose bins
//!   its totals reproduce bit-exactly;
//! - [`report`] — the versioned `uvpu-obs/v1` snapshot, collapsed-stack
//!   flamegraph text, and Perfetto tree summary;
//! - [`timeline`] — a Perfetto exporter wrapper adding cumulative
//!   per-component energy counter tracks to the trace timeline.
//!
//! # Example
//!
//! ```
//! use uvpu_core::trace::TraceSink;
//! use uvpu_core::vpu::Vpu;
//! use uvpu_core::ntt_map::NttPlan;
//! use uvpu_math::{modular::Modulus, primes::ntt_prime};
//! use uvpu_metrics::profiler::ProfilerSink;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (n, m) = (1usize << 10, 64);
//! let q = Modulus::new(ntt_prime(50, n)?)?;
//! let mut vpu = Vpu::with_sink(m, q, 8, ProfilerSink::new(m))?;
//! let run = NttPlan::new(q, n, m)?.execute_forward_negacyclic(&mut vpu, &vec![1; n])?;
//! let profiler = vpu.into_sink();
//! // Trace-derived totals are bit-identical to the VPU's own stats …
//! assert_eq!(*profiler.running(), run.stats);
//! // … and the top-level phase carries the Table III utilization.
//! let phase = &profiler.phases()["ntt.forward_negacyclic"];
//! assert_eq!(phase.utilization(), run.stats.utilization());
//! assert!(profiler.energy_total_pj() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod profiler;
pub mod registry;
pub mod report;
pub mod snapshot;
pub mod timeline;
pub mod treeprof;

// The doc-test above needs uvpu-math paths; re-export for convenience.
#[doc(hidden)]
pub use uvpu_core;
