//! A small, deterministic metrics registry.
//!
//! Four metric kinds, mirroring what production telemetry stacks
//! (Prometheus-style) expose, but with two constraints this workspace
//! cares about:
//!
//! - **Determinism**: all maps are [`BTreeMap`]s and all values are
//!   integers (or explicitly-set gauges), so a registry filled by a
//!   deterministic event stream renders to a byte-identical snapshot on
//!   every run and at every `UVPU_THREADS` setting.
//! - **No dependencies**: the build environment is offline; everything
//!   is hand-rolled.
//!
//! | Kind | Entry point | Use |
//! |---|---|---|
//! | counter | [`MetricsRegistry::inc`] | monotonically growing event counts |
//! | gauge | [`MetricsRegistry::set_gauge`] | last-written configuration values |
//! | histogram | [`MetricsRegistry::observe`] | log₂-bucketed distributions |
//! | family | [`MetricsRegistry::inc_family`] | counters keyed by a label value |

use std::collections::BTreeMap;

/// A log₂-bucketed histogram of `u64` observations.
///
/// Bucket `k` counts observations `v` with `⌊log₂ v⌋ = k` (so bucket 0
/// holds `v = 1`, bucket 10 holds `1024..=2047`, …); zero-valued
/// observations get their own bucket. Exact `count` and `sum` are kept
/// alongside, so means stay exact even though the buckets are coarse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Observations equal to zero.
    pub zeros: u64,
    /// `buckets[k]` = observations with `⌊log₂ v⌋ = k`.
    pub buckets: [u64; 64],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observations, saturating at `u64::MAX`.
    pub sum: u64,
}

impl Default for Histogram {
    // Not derivable: `[u64; 64]` has no `Default` (arrays stop at 32).
    fn default() -> Self {
        Self {
            zeros: 0,
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v == 0 {
            self.zeros += 1;
        } else {
            self.buckets[(63 - v.leading_zeros()) as usize] += 1;
        }
    }

    /// Mean observation, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The value at percentile `p` (in percent, `0.0..=100.0`), or
    /// `None` when the histogram is empty.
    ///
    /// Because observations are stored log₂-bucketed, the exact value is
    /// gone; this returns the **bucket upper bound** of the bucket that
    /// contains the percentile rank — a deterministic, conservative
    /// (never under-reporting) convention:
    ///
    /// - the zero bucket reports `0`;
    /// - bucket `k` (holding `2^k ..= 2^(k+1)-1`) reports `2^(k+1) - 1`;
    /// - bucket 63 reports `u64::MAX`.
    ///
    /// The rank is `ceil(p/100 · count)` clamped to `[1, count]`
    /// (nearest-rank definition), so `percentile(0.0)` and
    /// `percentile(100.0)` are the smallest and largest buckets touched.
    /// Integer-only given integer inputs: the only float op is the rank
    /// computation, which is exact for counts below 2^52.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_precision_loss)]
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zeros;
        if rank <= seen {
            return Some(0);
        }
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Some(if k == 63 {
                    u64::MAX
                } else {
                    (1u64 << (k + 1)) - 1
                });
            }
        }
        // Unreachable when count is consistent with the buckets; fall
        // back to the top bucket bound rather than panicking.
        Some(u64::MAX)
    }

    /// `(p50, p90, p99)` bucket upper bounds, or `None` when empty.
    /// See [`Self::percentile`] for the convention.
    #[must_use]
    pub fn p50_p90_p99(&self) -> Option<(u64, u64, u64)> {
        Some((
            self.percentile(50.0)?,
            self.percentile(90.0)?,
            self.percentile(99.0)?,
        ))
    }

    /// The non-empty buckets as `(label, count)` pairs, zeros first.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        if self.zeros > 0 {
            out.push(("0".to_string(), self.zeros));
        }
        for (k, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                out.push((format!("2^{k}"), c));
            }
        }
        out
    }
}

/// The registry: ordered maps from metric name to value.
///
/// Names are free-form dotted strings (`"beats.butterfly"`). A name
/// belongs to exactly one kind; mixing kinds under one name is a
/// programming error and panics in debug builds (release builds keep
/// the first kind and ignore the mismatched write).
///
/// # Example
///
/// ```
/// use uvpu_metrics::registry::MetricsRegistry;
///
/// let mut r = MetricsRegistry::new();
/// r.inc("events", 3);
/// r.inc("events", 2);
/// r.set_gauge("lanes", 64.0);
/// r.observe("task.cycles", 1500);
/// r.inc_family("beats", "butterfly", 10);
/// assert_eq!(r.counter("events"), 5);
/// assert_eq!(r.family("beats").get("butterfly"), Some(&10));
/// assert_eq!(r.histogram("task.cycles").unwrap().count, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    families: BTreeMap<String, BTreeMap<String, u64>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, delta: u64) {
        debug_assert!(
            !self.gauges.contains_key(name) && !self.histograms.contains_key(name),
            "metric {name} already registered with a different kind"
        );
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        debug_assert!(
            !self.counters.contains_key(name) && !self.histograms.contains_key(name),
            "metric {name} already registered with a different kind"
        );
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into the histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        debug_assert!(
            !self.counters.contains_key(name) && !self.gauges.contains_key(name),
            "metric {name} already registered with a different kind"
        );
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Adds `delta` to label `label` of the counter family `family`.
    pub fn inc_family(&mut self, family: &str, label: &str, delta: u64) {
        *self
            .families
            .entry(family.to_string())
            .or_default()
            .entry(label.to_string())
            .or_insert(0) += delta;
    }

    /// Current value of a counter (zero if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram under `name`, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The labeled counters of `family` (empty map if absent).
    #[must_use]
    pub fn family(&self, family: &str) -> &BTreeMap<String, u64> {
        static EMPTY: BTreeMap<String, u64> = BTreeMap::new();
        self.families.get(family).unwrap_or(&EMPTY)
    }

    /// All counters, ordered by name.
    #[must_use]
    pub const fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, ordered by name.
    #[must_use]
    pub const fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// All histograms, ordered by name.
    #[must_use]
    pub const fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// All families, ordered by name (labels ordered within).
    #[must_use]
    pub const fn families(&self) -> &BTreeMap<String, BTreeMap<String, u64>> {
        &self.families
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 1024, 2047, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.zeros, 1);
        assert_eq!(h.buckets[0], 2, "two observations of 1");
        assert_eq!(h.buckets[1], 2, "2 and 3 share ⌊log₂⌋ = 1");
        assert_eq!(h.buckets[10], 2, "1024 and 2047 share bucket 10");
        assert_eq!(h.buckets[63], 1);
        assert_eq!(h.sum, u64::MAX, "sum saturates instead of overflowing");
        let labels: Vec<String> = h.nonzero_buckets().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, ["0", "2^0", "2^1", "2^10", "2^63"]);
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.p50_p90_p99(), None);
    }

    #[test]
    fn percentile_of_single_observation_is_its_bucket_bound() {
        let mut h = Histogram::default();
        h.observe(1500); // bucket 10 (1024..=2047) → upper bound 2047
        assert_eq!(h.percentile(0.0), Some(2047));
        assert_eq!(h.percentile(50.0), Some(2047));
        assert_eq!(h.percentile(100.0), Some(2047));
        assert_eq!(h.p50_p90_p99(), Some((2047, 2047, 2047)));

        let mut z = Histogram::default();
        z.observe(0);
        assert_eq!(z.p50_p90_p99(), Some((0, 0, 0)));
    }

    #[test]
    fn percentile_of_saturated_top_bucket_is_u64_max() {
        let mut h = Histogram::default();
        h.observe(u64::MAX); // bucket 63
        h.observe(u64::MAX - 7);
        assert_eq!(h.percentile(50.0), Some(u64::MAX));
        assert_eq!(h.percentile(99.0), Some(u64::MAX));
        assert_eq!(h.sum, u64::MAX, "sum saturates; percentiles still work");
    }

    #[test]
    fn percentile_walks_zeros_then_buckets_by_rank() {
        let mut h = Histogram::default();
        // 2 zeros, 6 ones, 2 large: ranks 1-2 → 0, 3-8 → 1, 9-10 → 2^11-1.
        for _ in 0..2 {
            h.observe(0);
        }
        for _ in 0..6 {
            h.observe(1);
        }
        for _ in 0..2 {
            h.observe(1u64 << 10);
        }
        assert_eq!(h.percentile(10.0), Some(0), "rank 1 lands in zeros");
        assert_eq!(h.percentile(20.0), Some(0), "rank 2 lands in zeros");
        assert_eq!(h.percentile(50.0), Some(1), "rank 5 lands in bucket 0");
        assert_eq!(h.percentile(80.0), Some(1), "rank 8 lands in bucket 0");
        assert_eq!(h.percentile(90.0), Some(2047), "rank 9 lands in bucket 10");
        assert_eq!(h.p50_p90_p99(), Some((1, 2047, 2047)));
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), None);
        h.observe(10);
        h.observe(20);
        assert_eq!(h.mean(), Some(15.0));
    }

    #[test]
    fn registry_round_trips_every_kind() {
        let mut r = MetricsRegistry::new();
        r.inc("c", 1);
        r.inc("c", 41);
        r.set_gauge("g", 2.5);
        r.set_gauge("g", 3.5);
        r.observe("h", 7);
        r.inc_family("f", "x", 2);
        r.inc_family("f", "y", 3);
        r.inc_family("f", "x", 1);
        assert_eq!(r.counter("c"), 42);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(3.5));
        assert_eq!(r.gauge("missing"), None);
        assert_eq!(r.histogram("h").unwrap().sum, 7);
        assert!(r.histogram("missing").is_none());
        assert_eq!(r.family("f")["x"], 3);
        assert!(r.family("missing").is_empty());
    }

    #[test]
    fn iteration_order_is_sorted() {
        let mut r = MetricsRegistry::new();
        for name in ["zeta", "alpha", "mid"] {
            r.inc(name, 1);
            r.inc_family("fam", name, 1);
        }
        let names: Vec<&String> = r.counters().keys().collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        let labels: Vec<&String> = r.family("fam").keys().collect();
        assert_eq!(labels, ["alpha", "mid", "zeta"]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics_in_debug() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("x", 1.0);
        r.inc("x", 1);
    }
}
