//! Per-beat energy quanta derived from the calibrated hardware model.
//!
//! The `uvpu-hw-model` unit costs are *powers* (mW) at the model's 1 GHz
//! clock; since `1 mW / 1 GHz = 1 pJ`, a component consuming `P` mW
//! dissipates exactly `P` pJ in every cycle it is active. This module
//! re-expresses the Table IV power bins as per-beat energy quanta so a
//! trace of pipeline beats can be priced component by component.
//!
//! Attribution model (matching the paper's "Ours" design — 2
//! constant-geometry stages, log₂ m shift stages, m lane ports, and `m`
//! compute lanes):
//!
//! | Beat | Active components |
//! |---|---|
//! | butterfly | lanes + CG stages + ports + base |
//! | element-wise | lanes only (no network traversal) |
//! | `net.route` | ports + base |
//! | `net.cg_*` | CG stages + ports + base |
//! | `net.shift` | shift stages + ports + base |
//! | `net.cg_*+shift` | CG + shift stages + ports + base |
//! | register-file word | per-word SRAM streaming energy |
//!
//! By construction the four network bins sum to exactly
//! [`DesignModel::network_power`](uvpu_hw_model::designs::DesignModel::network_power)
//! of the "Ours" design (activity 1.0) — a beat that exercises the whole
//! network costs precisely the Table IV network power, so the breakdown
//! of a live workload is consistent with the static tables by identity,
//! not by tuning (verified in this module's tests).

use uvpu_core::trace::{BeatKind, NetKind};
use uvpu_hw_model::tech::TechParams;

/// A component bin of the energy breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// The `m` lane ALUs during butterfly beats.
    LanesButterfly,
    /// The `m` lane ALUs during element-wise beats.
    LanesEwise,
    /// The two constant-geometry (perfect shuffle) stages.
    NetCg,
    /// The log₂ m shift stages.
    NetShift,
    /// The per-lane network ports (drivers and vertical wiring).
    NetPorts,
    /// The shared network periphery (the affine fit constant).
    NetBase,
    /// Register-file ⇄ SRAM word transfers.
    RegFile,
}

impl Component {
    /// All components, in snapshot rendering order.
    pub const ALL: [Self; 7] = [
        Self::LanesButterfly,
        Self::LanesEwise,
        Self::NetCg,
        Self::NetShift,
        Self::NetPorts,
        Self::NetBase,
        Self::RegFile,
    ];

    /// Dense index for counter arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Self::LanesButterfly => 0,
            Self::LanesEwise => 1,
            Self::NetCg => 2,
            Self::NetShift => 3,
            Self::NetPorts => 4,
            Self::NetBase => 5,
            Self::RegFile => 6,
        }
    }

    /// Stable snapshot name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::LanesButterfly => "lanes.butterfly",
            Self::LanesEwise => "lanes.ewise",
            Self::NetCg => "net.cg_stages",
            Self::NetShift => "net.shift_stages",
            Self::NetPorts => "net.ports",
            Self::NetBase => "net.base",
            Self::RegFile => "regfile",
        }
    }

    /// Coarse group for the share summary (`lanes` / `network` /
    /// `regfile`).
    #[must_use]
    pub const fn group(self) -> &'static str {
        match self {
            Self::LanesButterfly | Self::LanesEwise => "lanes",
            Self::NetCg | Self::NetShift | Self::NetPorts | Self::NetBase => "network",
            Self::RegFile => "regfile",
        }
    }
}

/// Per-beat energy quanta (pJ) for an `m`-lane VPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    lanes: usize,
    /// All `m` lanes computing for one cycle.
    pub lane_beat_pj: f64,
    /// The 2 CG stages switching for one cycle.
    pub cg_beat_pj: f64,
    /// The log₂ m shift stages switching for one cycle.
    pub shift_beat_pj: f64,
    /// The `m` lane ports driving for one cycle.
    pub ports_beat_pj: f64,
    /// The shared periphery for one cycle.
    pub base_beat_pj: f64,
    /// One 64-bit word through the register file.
    pub regfile_word_pj: f64,
}

impl EnergyModel {
    /// Builds the model for `lanes` lanes from explicit tech parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not a power of two ≥ 4 (the same domain as
    /// [`uvpu_hw_model::designs::DesignModel::new`]).
    #[must_use]
    pub fn from_tech(tech: &TechParams, lanes: usize) -> Self {
        assert!(
            lanes.is_power_of_two() && lanes >= 4,
            "lanes = {lanes} must be a power of two >= 4"
        );
        let m = lanes as f64;
        let w = f64::from(tech.word_bits);
        let log_m = f64::from(lanes.trailing_zeros());
        Self {
            lanes,
            lane_beat_pj: tech.lane_power * m,
            cg_beat_pj: tech.mux_power_per_bit * w * m * 2.0,
            shift_beat_pj: tech.mux_power_per_bit * w * m * log_m,
            ports_beat_pj: tech.port_power_per_lane * m,
            base_beat_pj: tech.base_power,
            regfile_word_pj: tech.sram_power_per_bit * w,
        }
    }

    /// The calibrated ASAP7 model for `lanes` lanes.
    #[must_use]
    pub fn asap7(lanes: usize) -> Self {
        Self::from_tech(&TechParams::asap7(), lanes)
    }

    /// Lane count this model prices.
    #[must_use]
    pub const fn lanes(&self) -> usize {
        self.lanes
    }

    /// Energy of a fully-active network traversal (all four bins) — by
    /// construction equal to the Table IV network power of the "Ours"
    /// design at this lane count, read in pJ/cycle.
    #[must_use]
    pub fn network_active_pj(&self) -> f64 {
        self.cg_beat_pj + self.shift_beat_pj + self.ports_beat_pj + self.base_beat_pj
    }

    /// Adds one beat batch's component activations into `counts`
    /// (indexed by [`Component::index`]; [`Component::RegFile`] counts
    /// words, not beats, and is never touched here).
    pub fn charge_beats(kind: BeatKind, count: u64, counts: &mut [u64; 7]) {
        match kind {
            BeatKind::Butterfly => {
                counts[Component::LanesButterfly.index()] += count;
                counts[Component::NetCg.index()] += count;
                counts[Component::NetPorts.index()] += count;
                counts[Component::NetBase.index()] += count;
            }
            BeatKind::Elementwise(_) => {
                counts[Component::LanesEwise.index()] += count;
            }
            BeatKind::NetworkMove(net) => {
                counts[Component::NetPorts.index()] += count;
                counts[Component::NetBase.index()] += count;
                match net {
                    NetKind::Route => {}
                    NetKind::CgShuffle | NetKind::CgUnshuffle => {
                        counts[Component::NetCg.index()] += count;
                    }
                    NetKind::Shift => {
                        counts[Component::NetShift.index()] += count;
                    }
                    NetKind::CgShuffleShift | NetKind::CgUnshuffleShift => {
                        counts[Component::NetCg.index()] += count;
                        counts[Component::NetShift.index()] += count;
                    }
                }
            }
        }
    }

    /// Prices one component's activation count (beats, or words for
    /// [`Component::RegFile`]) in pJ.
    #[must_use]
    pub fn component_pj(&self, component: Component, count: u64) -> f64 {
        let per = match component {
            Component::LanesButterfly | Component::LanesEwise => self.lane_beat_pj,
            Component::NetCg => self.cg_beat_pj,
            Component::NetShift => self.shift_beat_pj,
            Component::NetPorts => self.ports_beat_pj,
            Component::NetBase => self.base_beat_pj,
            Component::RegFile => self.regfile_word_pj,
        };
        per * count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_core::trace::EwiseOp;
    use uvpu_hw_model::designs::{DesignKind, DesignModel};

    #[test]
    fn network_bins_sum_to_table4_power() {
        // 1 mW at 1 GHz = 1 pJ/cycle: a fully-active traversal must cost
        // exactly the "Ours" network power of Table IV, at every lane
        // count the table covers.
        let tech = TechParams::asap7();
        for m in [4usize, 8, 16, 32, 64, 128, 256] {
            let em = EnergyModel::from_tech(&tech, m);
            let table = DesignModel::new(DesignKind::Ours, m).network_power(&tech);
            assert!(
                (em.network_active_pj() - table).abs() < 1e-9,
                "m={m}: {} vs {table}",
                em.network_active_pj()
            );
        }
    }

    #[test]
    fn lanes_dominate_the_network() {
        // Table II's observation, seen through the energy lens: one
        // compute beat costs far more than one network traversal.
        let em = EnergyModel::asap7(64);
        assert!(em.lane_beat_pj > 10.0 * em.network_active_pj());
    }

    #[test]
    fn charge_matches_attribution_table() {
        let mut counts = [0u64; 7];
        EnergyModel::charge_beats(BeatKind::Butterfly, 3, &mut counts);
        EnergyModel::charge_beats(BeatKind::Elementwise(EwiseOp::Mul), 2, &mut counts);
        EnergyModel::charge_beats(BeatKind::NetworkMove(NetKind::Shift), 5, &mut counts);
        EnergyModel::charge_beats(
            BeatKind::NetworkMove(NetKind::CgShuffleShift),
            1,
            &mut counts,
        );
        EnergyModel::charge_beats(BeatKind::NetworkMove(NetKind::Route), 4, &mut counts);
        assert_eq!(counts[Component::LanesButterfly.index()], 3);
        assert_eq!(counts[Component::LanesEwise.index()], 2);
        assert_eq!(counts[Component::NetCg.index()], 3 + 1);
        assert_eq!(counts[Component::NetShift.index()], 5 + 1);
        assert_eq!(counts[Component::NetPorts.index()], 3 + 5 + 1 + 4);
        assert_eq!(counts[Component::NetBase.index()], 3 + 5 + 1 + 4);
        assert_eq!(counts[Component::RegFile.index()], 0);
    }

    #[test]
    fn pricing_scales_linearly() {
        let em = EnergyModel::asap7(64);
        let one = em.component_pj(Component::NetShift, 1);
        assert!((em.component_pj(Component::NetShift, 10) - 10.0 * one).abs() < 1e-12);
        assert_eq!(em.component_pj(Component::RegFile, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_lane_count() {
        let _ = EnergyModel::asap7(48);
    }
}
