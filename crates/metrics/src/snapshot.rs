//! The versioned `BENCH_*.json` snapshot schema.
//!
//! A snapshot is the machine-readable result of profiling one workload.
//! Its **deterministic core** — schema id, workload id, cycle totals,
//! per-phase utilization, per-component energy, per-task attribution,
//! and the registry dump — is rendered with fixed field order, sorted
//! keys, and fixed float precision, so repeated runs (at any
//! `UVPU_THREADS`) produce byte-identical text. An optional
//! **advisory** section (wall-clock, thread count, host shape) carries
//! the run-dependent facts; it is always the last top-level key and is
//! stripped before any comparison ([`strip_advisory`]).
//!
//! ## Versioning rules
//!
//! The `"schema"` field is `uvpu-metrics/v<N>`. Any change that alters
//! the rendered bytes of the deterministic core for an unchanged
//! workload — a new field, a renamed phase, a float precision change, a
//! cost-model recalibration — must bump `N` and regenerate the
//! committed baselines in the same commit. Advisory-only changes don't
//! bump the version. The CI gate compares baselines byte-for-byte, so
//! an unversioned schema drift fails loudly rather than silently.
//!
//! ## Layout (one field per line, 2-space indent)
//!
//! ```json
//! {
//!   "schema": "uvpu-metrics/v1",
//!   "workload": "ckks_mul_rescale",
//!   "variant": "full",
//!   "lanes": 64,
//!   "cycles": { "butterfly": …, "elementwise": …, "network_move": …, "total": …, "utilization": … },
//!   "phases": { "<span name>": { …same shape as cycles… }, … },
//!   "energy": { "components_pj": { … }, "total_pj": …, "shares": { "lanes": …, "network": …, "regfile": … } },
//!   "tasks": { "<task shape>": { "count": …, "cycles": … }, … },
//!   "counters": { … }, "gauges": { … }, "families": { … }, "histograms": { … },
//!   "advisory": { "wall_ms": …, … }
//! }
//! ```
//!
//! `utilization` is `null` for phases with zero total cycles (a logical
//! span that charged no beats — rendering `1.0` there would read as
//! "perfectly utilized"; see
//! [`CycleStats::utilization_checked`](uvpu_core::stats::CycleStats::utilization_checked)).

use crate::energy::Component;
use crate::profiler::ProfilerSink;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use uvpu_core::stats::CycleStats;

/// Current schema identifier.
pub const SCHEMA: &str = "uvpu-metrics/v1";

/// Marker introducing the advisory section (always the last key).
const ADVISORY_MARKER: &str = ",\n  \"advisory\": {";

/// Fixed-precision rendering for ratios (utilization, shares). Public
/// because every downstream deterministic-JSON renderer (the
/// `uvpu-compare` report, `trace_report --json`) must format ratios with
/// the *same* precision for cross-report numbers to be comparable
/// byte-for-byte.
#[must_use]
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.6}")
}

/// Fixed-precision rendering for energies (pJ). Public for the same
/// reason as [`fmt_ratio`]: the `uvpu-compare` report's `Ours` column is
/// required to reproduce this crate's snapshot numbers exactly, which
/// only holds if both render through one function.
#[must_use]
pub fn fmt_pj(x: f64) -> String {
    format!("{x:.3}")
}

/// Escapes a string for a JSON literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one `CycleStats` as a single-line JSON object with its
/// utilization (`null` when the stats are empty).
#[must_use]
pub fn cycle_stats_json(stats: &CycleStats) -> String {
    let util = stats
        .utilization_checked()
        .map_or_else(|| "null".to_string(), fmt_ratio);
    format!(
        "{{\"butterfly\": {}, \"elementwise\": {}, \"network_move\": {}, \"total\": {}, \"utilization\": {}}}",
        stats.butterfly,
        stats.elementwise,
        stats.network_move,
        stats.total(),
        util
    )
}

/// Renders a per-phase breakdown map as a JSON object (one phase per
/// line at the given indent). Shared by the `metrics_report` snapshot
/// and `trace_report --json`, so both emit the same schema.
#[must_use]
pub fn phases_to_json(phases: &BTreeMap<String, CycleStats>, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    if phases.is_empty() {
        return "{}".to_string();
    }
    let mut out = String::from("{\n");
    for (i, (name, stats)) in phases.iter().enumerate() {
        let _ = write!(
            out,
            "{inner}\"{}\": {}",
            escape(name),
            cycle_stats_json(stats)
        );
        if i + 1 < phases.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let _ = write!(out, "{pad}}}");
    out
}

/// Renders the deterministic snapshot core for a profiler. No advisory
/// section; the result ends with `}` and a newline.
#[must_use]
pub fn render(profiler: &ProfilerSink, workload: &str, variant: &str) -> String {
    let reg = profiler.registry();
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{}\",", escape(SCHEMA));
    let _ = writeln!(out, "  \"workload\": \"{}\",", escape(workload));
    let _ = writeln!(out, "  \"variant\": \"{}\",", escape(variant));
    let _ = writeln!(out, "  \"lanes\": {},", profiler.energy_model().lanes());

    let _ = writeln!(
        out,
        "  \"cycles\": {},",
        cycle_stats_json(profiler.running())
    );
    let _ = writeln!(
        out,
        "  \"phases\": {},",
        phases_to_json(profiler.phases(), 2)
    );

    // Energy: per-component pJ, total, and coarse shares.
    out.push_str("  \"energy\": {\n    \"components_pj\": {\n");
    for (i, c) in Component::ALL.iter().enumerate() {
        let _ = write!(
            out,
            "      \"{}\": {}",
            c.name(),
            fmt_pj(profiler.component_pj(*c))
        );
        out.push_str(if i + 1 < Component::ALL.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("    },\n");
    let _ = writeln!(
        out,
        "    \"total_pj\": {},",
        fmt_pj(profiler.energy_total_pj())
    );
    let _ = writeln!(
        out,
        "    \"shares\": {{\"lanes\": {}, \"network\": {}, \"regfile\": {}}}",
        fmt_ratio(profiler.group_share("lanes")),
        fmt_ratio(profiler.group_share("network")),
        fmt_ratio(profiler.group_share("regfile"))
    );
    out.push_str("  },\n");

    // Tasks: scheduler attribution.
    if profiler.tasks().is_empty() {
        out.push_str("  \"tasks\": {},\n");
    } else {
        out.push_str("  \"tasks\": {\n");
        let n = profiler.tasks().len();
        for (i, (shape, rec)) in profiler.tasks().iter().enumerate() {
            let _ = write!(
                out,
                "    \"{}\": {{\"count\": {}, \"cycles\": {}}}",
                escape(shape),
                rec.count,
                rec.cycles
            );
            out.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        out.push_str("  },\n");
    }

    // Registry dump: counters, gauges, families, histograms.
    out.push_str("  \"counters\": {");
    for (i, (name, v)) in reg.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(name), v);
    }
    out.push_str(if reg.counters().is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"gauges\": {");
    for (i, (name, v)) in reg.gauges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(name), fmt_ratio(*v));
    }
    out.push_str(if reg.gauges().is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"families\": {");
    for (i, (family, labels)) in reg.families().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {{", escape(family));
        for (j, (label, v)) in labels.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", escape(label), v);
        }
        out.push('}');
    }
    out.push_str(if reg.families().is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"histograms\": {");
    for (i, (name, h)) in reg.histograms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": {{",
            escape(name),
            h.count,
            h.sum
        );
        for (j, (label, c)) in h.nonzero_buckets().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{label}\": {c}");
        }
        out.push_str("}}");
    }
    out.push_str(if reg.histograms().is_empty() {
        "}\n"
    } else {
        "\n  }\n"
    });

    out.push_str("}\n");
    out
}

/// Appends an advisory section (pre-rendered `"key": value` pairs, in
/// the given order) to a deterministic core produced by [`render`].
///
/// # Panics
///
/// Panics if `core` does not end with the `}`-newline produced by
/// [`render`].
#[must_use]
pub fn with_advisory(core: &str, fields: &[(&str, String)]) -> String {
    let body = core
        .strip_suffix("}\n")
        .expect("core snapshot must end with `}` and a newline");
    // Re-open the object: the core's last section line must gain a comma.
    let body = body.strip_suffix('\n').unwrap_or(body);
    let mut out = String::with_capacity(core.len() + 128);
    out.push_str(body);
    out.push_str(ADVISORY_MARKER);
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(k), v);
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Returns the deterministic core of a snapshot: everything before the
/// advisory section (re-closed as valid JSON), or the input unchanged
/// (normalized to end with one newline) when no advisory is present.
#[must_use]
pub fn strip_advisory(snapshot: &str) -> String {
    match snapshot.find(ADVISORY_MARKER) {
        Some(pos) => {
            let mut out = snapshot[..pos].to_string();
            out.push_str("\n}\n");
            out
        }
        None => {
            let mut out = snapshot.trim_end_matches('\n').to_string();
            out.push('\n');
            out
        }
    }
}

/// Line-by-line comparison of two snapshots' deterministic cores.
/// Returns human-readable drift descriptions (empty = identical). At
/// most `limit` differing lines are reported, with a summary line when
/// truncated.
#[must_use]
pub fn diff(baseline: &str, current: &str, limit: usize) -> Vec<String> {
    let a = strip_advisory(baseline);
    let b = strip_advisory(current);
    if a == b {
        return Vec::new();
    }
    let mut out = Vec::new();
    let (la, lb): (Vec<&str>, Vec<&str>) = (a.lines().collect(), b.lines().collect());
    let mut differing = 0usize;
    for i in 0..la.len().max(lb.len()) {
        let x = la.get(i).copied().unwrap_or("<missing>");
        let y = lb.get(i).copied().unwrap_or("<missing>");
        if x != y {
            differing += 1;
            if out.len() < limit {
                out.push(format!(
                    "line {}: baseline `{}` != current `{}`",
                    i + 1,
                    x.trim(),
                    y.trim()
                ));
            }
        }
    }
    if differing > out.len() {
        out.push(format!(
            "… and {} more differing lines",
            differing - out.len()
        ));
    }
    if out.is_empty() {
        // Same lines but different line structure (e.g. trailing junk).
        out.push("snapshots differ in whitespace/line structure".to_string());
    }
    out
}

/// Context diff of two snapshots' deterministic cores, unified-diff
/// style: each drift region is reported as a `@@ lines A-B @@` hunk with
/// `context` unchanged lines on both sides, baseline lines prefixed
/// `-`, current lines prefixed `+`. Returns render-ready lines (empty =
/// identical). At most `limit` differing line pairs are expanded; a
/// summary line reports the remainder when truncated.
///
/// Prefer this over [`diff`] for human-facing gate output: seeing the
/// surrounding energy/phase keys tells the reader *which section*
/// drifted without opening the files.
#[must_use]
pub fn diff_context(baseline: &str, current: &str, context: usize, limit: usize) -> Vec<String> {
    let a = strip_advisory(baseline);
    let b = strip_advisory(current);
    if a == b {
        return Vec::new();
    }
    let (la, lb): (Vec<&str>, Vec<&str>) = (a.lines().collect(), b.lines().collect());
    let len = la.len().max(lb.len());
    let differs = |i: usize| la.get(i) != lb.get(i);
    let diff_indices: Vec<usize> = (0..len).filter(|&i| differs(i)).collect();
    if diff_indices.is_empty() {
        return vec!["snapshots differ in whitespace/line structure".to_string()];
    }

    // Group differing indices into hunks: runs whose context windows
    // touch or overlap merge into one region.
    let mut hunks: Vec<(usize, usize)> = Vec::new();
    for &i in &diff_indices {
        match hunks.last_mut() {
            Some((_, end)) if i <= *end + 2 * context + 1 => *end = i,
            _ => hunks.push((i, i)),
        }
    }

    let mut out = Vec::new();
    let mut expanded = 0usize;
    let total = diff_indices.len();
    'hunks: for (first, last) in hunks {
        let lo = first.saturating_sub(context);
        let hi = (last + context + 1).min(len);
        out.push(format!("@@ lines {}-{} @@", lo + 1, hi));
        for i in lo..hi {
            let x = la.get(i).copied();
            let y = lb.get(i).copied();
            if x == y {
                if let Some(line) = x {
                    out.push(format!("  {line}"));
                }
            } else {
                if expanded >= limit {
                    out.push(format!("… and {} more differing lines", total - expanded));
                    break 'hunks;
                }
                expanded += 1;
                if let Some(line) = x {
                    out.push(format!("- {line}"));
                }
                if let Some(line) = y {
                    out.push(format!("+ {line}"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::ProfilerSink;
    use uvpu_core::trace::{BeatKind, MemDir, NetKind, TraceSink};

    fn sample_profiler() -> ProfilerSink {
        let mut p = ProfilerSink::new(64);
        p.span_begin(0, 0, "ntt.forward");
        p.beats(0, 0, BeatKind::Butterfly, 96);
        p.beats(0, 96, BeatKind::NetworkMove(NetKind::Shift), 32);
        p.span_end(0, 128, "ntt.forward");
        p.mem(0, 128, MemDir::Load, 0, 64);
        p.span_begin(3, 100, "task.ntt n=1024");
        p.span_end(3, 228, "task.ntt n=1024");
        p
    }

    /// Cheap structural validity probe: balanced braces outside strings.
    fn assert_balanced_json(json: &str) {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced at: …{json}");
        }
        assert_eq!(depth, 0, "unbalanced: {json}");
        assert!(!in_str);
    }

    #[test]
    fn render_is_valid_and_repeatable() {
        let p = sample_profiler();
        let a = render(&p, "unit", "test");
        let b = render(&p, "unit", "test");
        assert_eq!(a, b, "rendering is deterministic");
        assert_balanced_json(&a);
        assert!(a.starts_with("{\n  \"schema\": \"uvpu-metrics/v1\""));
        assert!(a.contains("\"workload\": \"unit\""));
        assert!(a.contains("\"ntt.forward\": {\"butterfly\": 96"));
        assert!(a.contains("\"utilization\": 0.750000"));
        assert!(a.contains("\"ntt n=1024\": {\"count\": 1, \"cycles\": 128}"));
        assert!(a.contains("\"lanes.butterfly\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn empty_profile_renders_cleanly() {
        let p = ProfilerSink::new(64);
        let s = render(&p, "empty", "test");
        assert_balanced_json(&s);
        assert!(s.contains("\"utilization\": null"), "{s}");
        assert!(s.contains("\"tasks\": {}"));
        assert!(s.contains("\"counters\": {}"));
    }

    #[test]
    fn advisory_round_trip() {
        let p = sample_profiler();
        let core = render(&p, "unit", "test");
        let full = with_advisory(
            &core,
            &[
                ("wall_ms", "12.5".to_string()),
                ("threads", "4".to_string()),
            ],
        );
        assert_balanced_json(&full);
        assert!(full.contains("\"advisory\": {"));
        assert!(full.contains("\"wall_ms\": 12.5"));
        assert_eq!(strip_advisory(&full), core, "strip restores the core");
        assert_eq!(strip_advisory(&core), core, "strip is id on cores");
    }

    #[test]
    fn diff_reports_drift_and_only_drift() {
        let p = sample_profiler();
        let core = render(&p, "unit", "test");
        assert!(diff(&core, &core, 20).is_empty());
        // Advisory differences are invisible to the diff.
        let a = with_advisory(&core, &[("wall_ms", "1.0".to_string())]);
        let b = with_advisory(&core, &[("wall_ms", "999.0".to_string())]);
        assert!(diff(&a, &b, 20).is_empty());
        // A cycle-total drift is visible and names the line.
        let drifted = core.replace("\"butterfly\": 96", "\"butterfly\": 97");
        let d = diff(&core, &drifted, 20);
        assert!(!d.is_empty());
        assert!(d[0].contains("butterfly"), "{d:?}");
        // Truncation.
        let d1 = diff(&core, &drifted, 0);
        assert_eq!(d1.len(), 1);
        assert!(d1[0].contains("more differing lines"), "{d1:?}");
    }

    #[test]
    fn context_diff_shows_surrounding_lines() {
        let p = sample_profiler();
        let core = render(&p, "unit", "test");
        assert!(diff_context(&core, &core, 3, 20).is_empty());
        // Advisory differences stay invisible.
        let a = with_advisory(&core, &[("wall_ms", "1.0".to_string())]);
        let b = with_advisory(&core, &[("wall_ms", "999.0".to_string())]);
        assert!(diff_context(&a, &b, 3, 20).is_empty());
        // One drifted line yields one hunk with ±3 context lines.
        let drifted = core.replacen("\"butterfly\": 96", "\"butterfly\": 97", 1);
        let d = diff_context(&core, &drifted, 3, 20);
        assert!(d[0].starts_with("@@ lines "), "{d:?}");
        assert_eq!(d.iter().filter(|l| l.starts_with("- ")).count(), 1);
        assert_eq!(d.iter().filter(|l| l.starts_with("+ ")).count(), 1);
        let ctx = d.iter().filter(|l| l.starts_with("  ")).count();
        assert!((3..=6).contains(&ctx), "context lines around hunk: {d:?}");
        let minus = d.iter().find(|l| l.starts_with("- ")).unwrap();
        assert!(minus.contains("\"butterfly\": 96"));
        // Truncation keeps the summary.
        let d0 = diff_context(&core, &drifted, 3, 0);
        assert!(
            d0.iter().any(|l| l.contains("more differing lines")),
            "{d0:?}"
        );
    }

    #[test]
    fn context_diff_merges_nearby_hunks() {
        let base = (0..30).map(|i| format!("line{i}")).collect::<Vec<_>>();
        let mut near = base.clone();
        near[10] = "changedA".into();
        near[12] = "changedB".into();
        let d = diff_context(&base.join("\n"), &near.join("\n"), 3, 20);
        assert_eq!(
            d.iter().filter(|l| l.starts_with("@@")).count(),
            1,
            "two drifts 2 lines apart share one hunk: {d:?}"
        );
        let mut far = base.clone();
        far[2] = "changedA".into();
        far[25] = "changedB".into();
        let d = diff_context(&base.join("\n"), &far.join("\n"), 3, 20);
        assert_eq!(
            d.iter().filter(|l| l.starts_with("@@")).count(),
            2,
            "distant drifts get separate hunks: {d:?}"
        );
    }

    #[test]
    fn phases_json_shape_is_shared() {
        let p = sample_profiler();
        let json = phases_to_json(p.phases(), 0);
        assert_balanced_json(&json);
        assert!(json.contains("\"ntt.forward\""));
        assert_eq!(phases_to_json(&std::collections::BTreeMap::new(), 0), "{}");
    }
}
