//! The versioned `uvpu-obs/v1` observability report: deterministic JSON
//! snapshot, collapsed-stack flamegraph text, and a Perfetto-compatible
//! tree summary, all rendered from one [`TreeProfilerSink`].
//!
//! ## Versioning rules
//!
//! Same contract as [`crate::snapshot`]: the `"schema"` field is
//! `uvpu-obs/v<N>`; any change that alters the rendered bytes of the
//! deterministic core for an unchanged workload bumps `N` and
//! regenerates the committed `BENCH_obs_baseline*.json` in the same
//! commit. Advisory sections (appended by the caller via
//! [`crate::snapshot::with_advisory`]) never gate.
//!
//! ## Layout (one tree node per line, sorted by path)
//!
//! ```json
//! {
//!   "schema": "uvpu-obs/v1",
//!   "workload": "ckks_mul_rescale",
//!   "variant": "full",
//!   "lanes": 64,
//!   "cycles": { …flat running totals… },
//!   "tree": {
//!     "<path>": { "count": …, "depth": …, "self": {…}, "incl": {…},
//!                 "self_pj": {…, "total": …}, "latency": {…, "p50": …} },
//!     …
//!   },
//!   "flamegraph": { "lines": …, "total_cycles": …, "digest": "0x…" },
//!   "overhead": { "spans": …, "unmatched_ends": …,
//!                 "paths": …, "max_depth": …, "bytes_retained": … }
//! }
//! ```
//!
//! The raw sink-invocation count
//! ([`TreeProfilerSink::events_observed`]) is deliberately **not** in
//! the core: worker pools batch `beats` calls differently per thread
//! count, so the call count varies even though every aggregate is
//! byte-identical. Report binaries surface it in the advisory section
//! alongside wall-clock.
//!
//! Latency percentiles are log₂-bucket **upper bounds**
//! ([`Histogram::percentile`](crate::registry::Histogram::percentile));
//! `null` when the node never completed a span. The flamegraph digest
//! is FNV-1a 64 over the exact flamegraph text, so the snapshot gate
//! transitively pins the flamegraph bytes without committing every line
//! into the JSON.
//!
//! [`render`] calls [`TreeProfilerSink::assert_matches_flat`] first, so
//! every emitted snapshot has proven Σ self == flat bins at runtime.

use crate::energy::Component;
use crate::snapshot::{cycle_stats_json, escape, fmt_pj};
use crate::treeprof::{PathNode, TreeProfilerSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use uvpu_core::trace::{PerfettoSink, TraceSink};

/// Current schema identifier.
pub const SCHEMA: &str = "uvpu-obs/v1";

/// FNV-1a 64-bit hash (offset-basis / prime per the reference spec) —
/// dependency-free content digest for the flamegraph text.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders the collapsed-stack flamegraph text: one
/// `seg;seg;…;leaf self_cycles` line per tree node with nonzero self
/// cycles, sorted by path. Directly consumable by standard flamegraph
/// tooling (`flamegraph.pl`, inferno, speedscope).
#[must_use]
pub fn flamegraph(tree: &TreeProfilerSink) -> String {
    let mut out = String::new();
    for (path, node) in tree.nodes() {
        let cycles = node.self_cycles.total();
        if cycles > 0 {
            let _ = writeln!(out, "{} {}", path.replace('/', ";"), cycles);
        }
    }
    out
}

/// Renders one node's latency histogram as a single-line JSON object
/// with derived percentiles (`null` when empty).
fn latency_json(node: &PathNode) -> String {
    let h = &node.latency;
    let (p50, p90, p99) = h.p50_p90_p99().map_or_else(
        || ("null".to_string(), "null".to_string(), "null".to_string()),
        |(a, b, c)| (a.to_string(), b.to_string(), c.to_string()),
    );
    let mut out = format!(
        "{{\"count\": {}, \"sum\": {}, \"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \"buckets\": {{",
        h.count, h.sum
    );
    for (i, (label, c)) in h.nonzero_buckets().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{label}\": {c}");
    }
    out.push_str("}}");
    out
}

/// Renders the deterministic `uvpu-obs/v1` snapshot core. No advisory
/// section; the result ends with `}` and a newline, so
/// [`crate::snapshot::with_advisory`] /
/// [`crate::snapshot::strip_advisory`] /
/// [`crate::snapshot::diff_context`] apply unchanged.
///
/// # Panics
///
/// Panics when the tree's self totals diverge from the embedded flat
/// profiler's bins ([`TreeProfilerSink::assert_matches_flat`]) — a
/// snapshot is only ever rendered from a consistent tree.
#[must_use]
pub fn render(tree: &TreeProfilerSink, workload: &str, variant: &str) -> String {
    tree.assert_matches_flat();
    let flame = flamegraph(tree);
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{}\",", escape(SCHEMA));
    let _ = writeln!(out, "  \"workload\": \"{}\",", escape(workload));
    let _ = writeln!(out, "  \"variant\": \"{}\",", escape(variant));
    let _ = writeln!(out, "  \"lanes\": {},", tree.flat().energy_model().lanes());
    let _ = writeln!(
        out,
        "  \"cycles\": {},",
        cycle_stats_json(tree.flat().running())
    );

    if tree.nodes().is_empty() {
        out.push_str("  \"tree\": {},\n");
    } else {
        out.push_str("  \"tree\": {\n");
        let n = tree.nodes().len();
        for (i, (path, node)) in tree.nodes().iter().enumerate() {
            let _ = write!(
                out,
                "    \"{}\": {{\"count\": {}, \"depth\": {}, \"self\": {}, \"incl\": {}, \"self_pj\": {{",
                escape(path),
                node.count,
                node.depth,
                cycle_stats_json(&node.self_cycles),
                cycle_stats_json(&node.incl_cycles)
            );
            for c in Component::ALL {
                let _ = write!(
                    out,
                    "\"{}\": {}, ",
                    c.name(),
                    fmt_pj(tree.node_component_pj(node, c))
                );
            }
            let _ = write!(
                out,
                "\"total\": {}}}, \"latency\": {}}}",
                fmt_pj(tree.node_energy_pj(node)),
                latency_json(node)
            );
            out.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        out.push_str("  },\n");
    }

    let _ = writeln!(
        out,
        "  \"flamegraph\": {{\"lines\": {}, \"total_cycles\": {}, \"digest\": \"0x{:016x}\"}},",
        flame.lines().count(),
        tree.flat().running().total(),
        fnv1a(flame.as_bytes())
    );
    let _ = writeln!(
        out,
        "  \"overhead\": {{\"spans\": {}, \"unmatched_ends\": {}, \"paths\": {}, \"max_depth\": {}, \"bytes_retained\": {}}}",
        tree.span_events(),
        tree.unmatched_ends(),
        tree.nodes().len(),
        tree.max_depth(),
        tree.bytes_retained()
    );
    out.push_str("}\n");
    out
}

/// Synthetic layout duration for one subtree: a node must be wide
/// enough for its own inclusive cycles, its observed latency, and all
/// of its children laid end to end.
fn layout_dur(
    path: &str,
    nodes: &BTreeMap<String, PathNode>,
    children: &BTreeMap<&str, Vec<&str>>,
) -> u64 {
    let own = nodes.get(path).map_or(0, |n| {
        n.incl_cycles
            .total()
            .max(n.latency.sum)
            .max(n.self_cycles.total())
    });
    let kids: u64 = children
        .get(path)
        .map(|c| c.iter().map(|k| layout_dur(k, nodes, children)).sum())
        .unwrap_or(0);
    own.max(kids)
}

/// Emits one subtree as `B`/`E` slices at `cursor`, children laid out
/// left-to-right in path order, and returns the subtree's width.
fn layout_emit(
    path: &str,
    cursor: u64,
    sink: &mut PerfettoSink,
    nodes: &BTreeMap<String, PathNode>,
    children: &BTreeMap<&str, Vec<&str>>,
) -> u64 {
    let dur = layout_dur(path, nodes, children);
    let leaf = crate::treeprof::leaf_of(path);
    sink.span_begin(0, cursor, leaf);
    let mut at = cursor;
    if let Some(kids) = children.get(path) {
        for kid in kids {
            at += layout_emit(kid, at, sink, nodes, children);
        }
    }
    sink.span_end(0, cursor + dur, leaf);
    dur
}

/// Renders the call tree as a Perfetto-compatible trace: one synthetic
/// track, each path a `B`/`E` slice pair whose width is the subtree's
/// aggregate weight, children nested left-to-right in path order. The
/// timestamps are a deterministic *layout*, not a replay — the tree has
/// aggregated away individual span instances — but the nesting and the
/// proportions are exactly the call-tree attribution, viewable at
/// `ui.perfetto.dev`.
#[must_use]
pub fn perfetto_tree(tree: &TreeProfilerSink) -> String {
    let nodes = tree.nodes();
    let mut children: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut roots: Vec<&str> = Vec::new();
    for path in nodes.keys() {
        match path.rfind('/') {
            Some(cut) if nodes.contains_key(&path[..cut]) => {
                children.entry(&path[..cut]).or_default().push(path);
            }
            _ => roots.push(path),
        }
    }
    let mut sink = PerfettoSink::new();
    let mut cursor = 0u64;
    for root in roots {
        cursor += layout_emit(root, cursor, &mut sink, nodes, &children);
    }
    sink.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_core::trace::BeatKind;

    fn sample_tree() -> TreeProfilerSink {
        let mut t = TreeProfilerSink::new(64);
        t.span_begin(0, 0, "ntt.forward");
        t.beats(0, 0, BeatKind::Butterfly, 96);
        t.span_begin(0, 96, "twiddle");
        t.beats(0, 96, BeatKind::Butterfly, 16);
        t.span_end(0, 112, "twiddle");
        t.span_end(0, 112, "ntt.forward");
        t.span_begin(3, 100, "task.ntt n=1024");
        t.span_end(3, 228, "task.ntt n=1024");
        t
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn flamegraph_collapses_paths_with_self_cycles() {
        let t = sample_tree();
        let flame = flamegraph(&t);
        assert!(flame.contains("ntt.forward 96\n"), "{flame}");
        assert!(flame.contains("ntt.forward;twiddle 16\n"), "{flame}");
        assert!(
            !flame.contains("task.ntt"),
            "zero-self nodes are omitted: {flame}"
        );
        let total: u64 = flame
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, t.flat().running().total());
    }

    #[test]
    fn render_is_deterministic_and_advisory_compatible() {
        let t = sample_tree();
        let a = render(&t, "unit", "test");
        let b = render(&t, "unit", "test");
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema\": \"uvpu-obs/v1\""));
        assert!(a.contains("\"ntt.forward/twiddle\""));
        assert!(a.contains("\"p50\": "));
        assert!(a.ends_with("}\n"));
        let full = crate::snapshot::with_advisory(&a, &[("wall_ms", "1.0".into())]);
        assert_eq!(crate::snapshot::strip_advisory(&full), a);
        assert!(crate::snapshot::diff_context(&a, &full, 3, 60).is_empty());
    }

    #[test]
    fn render_pins_the_flamegraph_via_digest() {
        let t = sample_tree();
        let core = render(&t, "unit", "test");
        let digest = format!("0x{:016x}", fnv1a(flamegraph(&t).as_bytes()));
        assert!(core.contains(&digest), "digest {digest} not in:\n{core}");
    }

    #[test]
    fn perfetto_tree_nests_children() {
        let t = sample_tree();
        let json = perfetto_tree(&t);
        assert!(json.contains("\"name\":\"ntt.forward\""));
        assert!(json.contains("\"name\":\"twiddle\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        // Begin events: one per tree node.
        assert_eq!(json.matches("\"ph\":\"B\"").count(), t.nodes().len());
    }

    #[test]
    fn empty_tree_renders_cleanly() {
        let t = TreeProfilerSink::new(64);
        let core = render(&t, "unit", "test");
        assert!(core.contains("\"tree\": {}"), "{core}");
        assert!(core.contains("\"paths\": 0"));
        assert_eq!(flamegraph(&t), "");
    }
}
