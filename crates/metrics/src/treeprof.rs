//! Hierarchical call-tree profiling: the `uvpu-obs` aggregation sink.
//!
//! The flat [`ProfilerSink`] keys cycles and energy by span **name**, so
//! `task.ntt` cycles spent inside `ckks.keyswitch` are indistinguishable
//! from standalone NTTs. A [`TreeProfilerSink`] keeps the live span
//! stack **per track** and aggregates into a call tree keyed by the full
//! span *path* (segments joined by `/`, e.g.
//! `ckks.keyswitch/task.ntt n=8192`), with:
//!
//! - **self** cycles and per-component activation counts: every beat /
//!   mem event is charged to the innermost span open on the event's own
//!   track at arrival (the reserved `(untracked)` node when none is), so
//!   each event is attributed exactly once and the tree's self totals
//!   sum to the flat profiler's bins *by construction*;
//! - **inclusive** cycles: the same global
//!   [`CycleStats::delta`] computation the flat profiler uses for its
//!   phase attribution, accumulated per path instead of per name;
//! - a per-path log₂-bucket **latency histogram** (timestamp deltas on
//!   cycle-clocked tracks; inclusive beat-cycles on the scheme track,
//!   whose logical sequence clock is not time);
//! - **self-measurement**: events observed, span events, unmatched span
//!   ends, and an estimate of bytes retained by the aggregation state.
//!
//! Energy is *not* accumulated as floats: the tree keeps integer
//! activation counts per [`Component`] and prices them through the same
//! [`EnergyModel`] quanta at render time, so per-path pJ figures are
//! bit-equal to what the flat profiler reports for the same counts.
//!
//! The embedded flat profiler is fed every event **first**, so a
//! `TreeProfilerSink` is a strict superset of a [`ProfilerSink`] on the
//! same stream — and [`TreeProfilerSink::assert_matches_flat`] checks
//! the structural identities (Σ self == flat totals, per-leaf Σ incl ==
//! flat phases) at runtime. [`crate::report::render`] calls it before
//! every render, so an `uvpu-obs/v1` snapshot that exists at all has
//! already proven consistency with the `uvpu-metrics/v1` attribution.
//!
//! ## Span matching
//!
//! `span_end` closes the innermost open span with the same name on the
//! event's track; when the track has no match, it falls back to the
//! most recently opened matching name on *any* track (the same span the
//! flat profiler's arrival-ordered `rposition` fallback picks, since
//! begin serials are arrival-ordered); a genuinely unmatched end is
//! counted, never dropped silently. A span's path is fixed at begin
//! time, so a cross-track fallback close never retroactively moves
//! already-attributed children.

use crate::energy::{Component, EnergyModel};
use crate::profiler::ProfilerSink;
use crate::registry::Histogram;
use std::collections::BTreeMap;
use uvpu_core::stats::CycleStats;
use uvpu_core::trace::{BeatKind, MemDir, TraceSink, SCHEME_TRACK};

/// Path key for events arriving on a track with no open span.
pub const UNTRACKED: &str = "(untracked)";

/// Aggregated call-tree node, keyed by full span path.
#[derive(Debug, Clone, Default)]
pub struct PathNode {
    /// Completed spans at this path.
    pub count: u64,
    /// Path depth (number of `/`-separated segments; 1 = root).
    pub depth: usize,
    /// Cycles charged while this path was the innermost open span on
    /// the event's track.
    pub self_cycles: CycleStats,
    /// Global-delta cycles over completed spans (children included) —
    /// the flat profiler's phase attribution, keyed by path.
    pub incl_cycles: CycleStats,
    /// Integer activation counts per [`Component`], charged at event
    /// arrival; priced via [`EnergyModel::component_pj`] at render time.
    pub self_components: [u64; 7],
    /// Per-completion latency: timestamp deltas on cycle-clocked
    /// tracks, inclusive beat-cycles on [`SCHEME_TRACK`].
    pub latency: Histogram,
}

/// One live (open) span on a track's stack.
#[derive(Debug, Clone)]
struct OpenNode {
    path: String,
    name: String,
    begin_ts: u64,
    at_begin: CycleStats,
    /// Arrival order of the begin event, for the cross-track fallback.
    serial: u64,
}

/// The call-tree profiler. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct TreeProfilerSink {
    flat: ProfilerSink,
    stacks: BTreeMap<u32, Vec<OpenNode>>,
    nodes: BTreeMap<String, PathNode>,
    next_serial: u64,
    events_observed: u64,
    span_events: u64,
    unmatched_ends: u64,
    max_depth: usize,
}

impl TreeProfilerSink {
    /// A fresh tree profiler pricing energy for `lanes` lanes with the
    /// calibrated ASAP7 model.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not a power of two ≥ 4.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        Self::with_energy_model(EnergyModel::asap7(lanes))
    }

    /// A fresh tree profiler with an explicit energy model.
    #[must_use]
    pub fn with_energy_model(energy: EnergyModel) -> Self {
        Self {
            flat: ProfilerSink::with_energy_model(energy),
            stacks: BTreeMap::new(),
            nodes: BTreeMap::new(),
            next_serial: 0,
            events_observed: 0,
            span_events: 0,
            unmatched_ends: 0,
            max_depth: 0,
        }
    }

    /// The embedded flat profiler (fed every event first).
    #[must_use]
    pub const fn flat(&self) -> &ProfilerSink {
        &self.flat
    }

    /// The aggregated call tree, keyed by full span path (sorted).
    #[must_use]
    pub const fn nodes(&self) -> &BTreeMap<String, PathNode> {
        &self.nodes
    }

    /// Total trace events observed (beats, mems, span begins/ends).
    #[must_use]
    pub const fn events_observed(&self) -> u64 {
        self.events_observed
    }

    /// Span begin/end events observed.
    #[must_use]
    pub const fn span_events(&self) -> u64 {
        self.span_events
    }

    /// Span ends that matched no open span anywhere.
    #[must_use]
    pub const fn unmatched_ends(&self) -> u64 {
        self.unmatched_ends
    }

    /// Deepest path observed (segments).
    #[must_use]
    pub const fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Estimated bytes retained by the aggregation state: path keys plus
    /// fixed node size for the tree, plus any still-open span stacks.
    /// Deterministic (no allocator introspection) so it can live in the
    /// snapshot core.
    #[must_use]
    pub fn bytes_retained(&self) -> u64 {
        let nodes: u64 = self
            .nodes
            .keys()
            .map(|p| (p.len() + std::mem::size_of::<PathNode>()) as u64)
            .sum();
        let open: u64 = self
            .stacks
            .values()
            .flatten()
            .map(|o| (o.path.len() + o.name.len() + std::mem::size_of::<OpenNode>()) as u64)
            .sum();
        nodes + open
    }

    /// Energy priced for one node's activation counts (pJ) — the same
    /// integer-count × quantum path as the flat profiler.
    #[must_use]
    pub fn node_component_pj(&self, node: &PathNode, component: Component) -> f64 {
        self.flat
            .energy_model()
            .component_pj(component, node.self_components[component.index()])
    }

    /// Total self energy of one node (pJ).
    #[must_use]
    pub fn node_energy_pj(&self, node: &PathNode) -> f64 {
        Component::ALL
            .iter()
            .map(|&c| self.node_component_pj(node, c))
            .sum()
    }

    /// The innermost open path on `track`, or [`UNTRACKED`].
    fn current_path(&self, track: u32) -> (String, usize) {
        match self.stacks.get(&track).and_then(|s| s.last()) {
            Some(open) => (open.path.clone(), depth_of(&open.path)),
            None => (UNTRACKED.to_string(), 1),
        }
    }

    /// Charges an event's self-cost to the innermost open node on
    /// `track`, creating the node entry on first charge.
    fn charge_self(&mut self, track: u32, f: impl FnOnce(&mut PathNode)) {
        let (path, depth) = self.current_path(track);
        self.max_depth = self.max_depth.max(depth);
        let node = self.nodes.entry(path).or_default();
        node.depth = depth;
        f(node);
    }

    /// Asserts the structural identities between the tree and the
    /// embedded flat profiler. Called by [`crate::report::render`]
    /// before every render.
    ///
    /// # Panics
    ///
    /// Panics (with the offending key) when any identity fails:
    ///
    /// 1. Σ node self cycles == flat running totals (bit-exact);
    /// 2. Σ node self component counts == flat component counts (so the
    ///    priced pJ are bit-equal too — same integer counts through the
    ///    same quanta);
    /// 3. for every flat phase name, Σ inclusive cycles over tree nodes
    ///    with that leaf name == the flat phase entry;
    /// 4. unmatched span-end counts agree.
    pub fn assert_matches_flat(&self) {
        let mut self_sum = CycleStats::new();
        let mut comp_sum = [0u64; 7];
        for node in self.nodes.values() {
            self_sum += node.self_cycles;
            for (i, &c) in node.self_components.iter().enumerate() {
                comp_sum[i] += c;
            }
        }
        assert_eq!(
            self_sum,
            *self.flat.running(),
            "tree self-cycle sum diverged from flat running totals"
        );
        for c in Component::ALL {
            assert_eq!(
                comp_sum[c.index()],
                self.flat.component_count(c),
                "tree component count diverged from flat for {}",
                c.name()
            );
        }
        let mut incl_by_leaf: BTreeMap<&str, CycleStats> = BTreeMap::new();
        for (path, node) in &self.nodes {
            if node.count > 0 {
                *incl_by_leaf.entry(leaf_of(path)).or_default() += node.incl_cycles;
            }
        }
        for (name, flat_stats) in self.flat.phases() {
            let tree_stats = incl_by_leaf.get(name.as_str()).copied().unwrap_or_default();
            assert_eq!(
                tree_stats, *flat_stats,
                "tree inclusive sum diverged from flat phase {name:?}"
            );
        }
        assert_eq!(
            self.unmatched_ends,
            self.flat.registry().counter("span.unmatched_end"),
            "unmatched span-end counts diverged"
        );
    }
}

/// Number of `/`-separated segments in a path.
fn depth_of(path: &str) -> usize {
    path.split('/').count()
}

/// The last `/`-separated segment of a path (the span name).
#[must_use]
pub fn leaf_of(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Span names become path segments: `/` (the path separator) and `;`
/// (the flamegraph separator) are mapped to `_` so the grammar stays
/// unambiguous whatever the instrumentation emits.
fn sanitize(name: &str) -> String {
    name.replace(['/', ';'], "_")
}

impl TraceSink for TreeProfilerSink {
    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        self.beats(track, cycle, kind, 1);
    }

    fn beats(&mut self, track: u32, cycle: u64, kind: BeatKind, count: u64) {
        self.flat.beats(track, cycle, kind, count);
        self.events_observed += 1;
        self.charge_self(track, |node| {
            kind.charge(&mut node.self_cycles, count);
            EnergyModel::charge_beats(kind, count, &mut node.self_components);
        });
    }

    fn mem(&mut self, track: u32, cycle: u64, dir: MemDir, addr: usize, lanes: usize) {
        self.flat.mem(track, cycle, dir, addr, lanes);
        self.events_observed += 1;
        self.charge_self(track, |node| {
            node.self_components[Component::RegFile.index()] += lanes as u64;
        });
    }

    fn span_begin(&mut self, track: u32, ts: u64, name: &str) {
        self.flat.span_begin(track, ts, name);
        self.events_observed += 1;
        self.span_events += 1;
        let at_begin = *self.flat.running();
        let stack = self.stacks.entry(track).or_default();
        let segment = sanitize(name);
        let path = match stack.last() {
            Some(parent) => format!("{}/{}", parent.path, segment),
            None => segment,
        };
        let serial = self.next_serial;
        self.next_serial += 1;
        stack.push(OpenNode {
            path,
            name: name.to_string(),
            begin_ts: ts,
            at_begin,
            serial,
        });
    }

    fn span_end(&mut self, track: u32, ts: u64, name: &str) {
        self.flat.span_end(track, ts, name);
        self.events_observed += 1;
        self.span_events += 1;
        // Innermost same-name span on this track; else the most recently
        // opened same-name span on any track (matching the flat
        // profiler's arrival-ordered fallback); else unmatched.
        let own = self
            .stacks
            .get(&track)
            .and_then(|s| s.iter().rposition(|o| o.name == name))
            .map(|pos| (track, pos));
        let found = own.or_else(|| {
            self.stacks
                .iter()
                .flat_map(|(&t, stack)| {
                    stack
                        .iter()
                        .enumerate()
                        .filter(|(_, o)| o.name == name)
                        .map(move |(pos, o)| (o.serial, t, pos))
                })
                .max_by_key(|&(serial, _, _)| serial)
                .map(|(_, t, pos)| (t, pos))
        });
        let Some((t, pos)) = found else {
            self.unmatched_ends += 1;
            return;
        };
        let open = self
            .stacks
            .get_mut(&t)
            .expect("matched stack exists")
            .remove(pos);
        let incl = self.flat.running().delta(&open.at_begin);
        let depth = depth_of(&open.path);
        self.max_depth = self.max_depth.max(depth);
        let node = self.nodes.entry(open.path).or_default();
        node.depth = depth;
        node.count += 1;
        node.incl_cycles += incl;
        // Latency: timestamp deltas are cycles on scheduler/VPU tracks;
        // the scheme track's sequence clock is not time, so observe the
        // inclusive beat-cycles there instead.
        let latency = if t == SCHEME_TRACK {
            incl.total()
        } else {
            ts.saturating_sub(open.begin_ts)
        };
        node.latency.observe(latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_core::trace::{EwiseOp, NetKind};

    #[test]
    fn paths_nest_per_track() {
        let mut t = TreeProfilerSink::new(64);
        t.span_begin(0, 0, "outer");
        t.beat(0, 0, BeatKind::Butterfly);
        t.span_begin(0, 1, "inner");
        t.beats(0, 1, BeatKind::NetworkMove(NetKind::Shift), 3);
        t.span_end(0, 4, "inner");
        t.beat(0, 4, BeatKind::Elementwise(EwiseOp::Mul));
        t.span_end(0, 5, "outer");
        let nodes = t.nodes();
        assert_eq!(nodes["outer"].self_cycles.total(), 2, "own beats only");
        assert_eq!(nodes["outer"].incl_cycles.total(), 5, "children included");
        assert_eq!(nodes["outer/inner"].self_cycles.network_move, 3);
        assert_eq!(nodes["outer/inner"].depth, 2);
        assert_eq!(t.max_depth(), 2);
        t.assert_matches_flat();
    }

    #[test]
    fn untracked_events_get_the_reserved_root() {
        let mut t = TreeProfilerSink::new(64);
        t.beat(5, 0, BeatKind::Butterfly);
        t.mem(5, 1, MemDir::Load, 0, 64);
        assert_eq!(t.nodes()[UNTRACKED].self_cycles.butterfly, 1);
        assert_eq!(
            t.nodes()[UNTRACKED].self_components[Component::RegFile.index()],
            64
        );
        t.assert_matches_flat();
    }

    #[test]
    fn tracks_have_independent_stacks() {
        let mut t = TreeProfilerSink::new(64);
        t.span_begin(0, 0, "a");
        t.span_begin(1, 0, "b");
        t.beat(0, 0, BeatKind::Butterfly);
        t.beat(1, 0, BeatKind::Butterfly);
        t.span_end(1, 1, "b");
        t.span_end(0, 1, "a");
        // Track 1's span is NOT a child of track 0's: per-track stacks.
        assert!(t.nodes().contains_key("a"));
        assert!(t.nodes().contains_key("b"));
        assert!(!t.nodes().contains_key("a/b"));
        assert_eq!(t.nodes()["a"].self_cycles.butterfly, 1);
        assert_eq!(t.nodes()["b"].self_cycles.butterfly, 1);
        // Inclusive uses the global delta (flat-phase semantics), so the
        // concurrent beat on the other track is observed by both.
        assert_eq!(t.nodes()["a"].incl_cycles.total(), 2);
        t.assert_matches_flat();
    }

    #[test]
    fn nested_same_name_spans_stack_in_the_path() {
        let mut t = TreeProfilerSink::new(64);
        t.span_begin(0, 0, "x");
        t.span_begin(0, 1, "x");
        t.beat(0, 1, BeatKind::Butterfly);
        t.span_end(0, 2, "x");
        t.span_end(0, 3, "x");
        assert_eq!(t.nodes()["x/x"].self_cycles.butterfly, 1);
        assert_eq!(t.nodes()["x/x"].count, 1);
        assert_eq!(t.nodes()["x"].count, 1);
        assert_eq!(t.nodes()["x"].self_cycles.total(), 0);
        t.assert_matches_flat();
    }

    #[test]
    fn cross_track_fallback_matches_most_recent_begin() {
        let mut t = TreeProfilerSink::new(64);
        t.span_begin(0, 0, "s");
        t.span_begin(1, 5, "s");
        // End arrives on a third track: falls back to track 1's span
        // (most recently opened), exactly as the flat profiler's
        // name-only rposition fallback does.
        t.span_end(9, 10, "s");
        assert_eq!(t.nodes()["s"].count, 1);
        assert_eq!(
            t.nodes()["s"].latency.sum,
            5,
            "latency from the matched span's own begin timestamp"
        );
        t.span_end(0, 11, "s");
        t.span_end(0, 12, "s");
        assert_eq!(t.unmatched_ends(), 1, "third end matches nothing");
        t.assert_matches_flat();
    }

    #[test]
    fn scheme_track_latency_is_inclusive_cycles_not_sequence_deltas() {
        let mut t = TreeProfilerSink::new(64);
        t.span_begin(SCHEME_TRACK, 100, "ckks.mul");
        t.beats(SCHEME_TRACK, 0, BeatKind::Butterfly, 7);
        t.span_end(SCHEME_TRACK, 900, "ckks.mul");
        let node = &t.nodes()["ckks.mul"];
        assert_eq!(node.latency.sum, 7, "beat-cycles, not 800 sequence ticks");
        t.span_begin(2, 100, "task.ntt n=64");
        t.span_end(2, 350, "task.ntt n=64");
        assert_eq!(t.nodes()["task.ntt n=64"].latency.sum, 250, "ts delta");
        t.assert_matches_flat();
    }

    #[test]
    fn path_separators_in_names_are_sanitized() {
        let mut t = TreeProfilerSink::new(64);
        t.span_begin(0, 0, "weird/name;x");
        t.span_end(0, 1, "weird/name;x");
        assert!(t.nodes().contains_key("weird_name_x"));
        t.assert_matches_flat();
    }

    #[test]
    fn self_measurement_counts_events_and_bytes() {
        let mut t = TreeProfilerSink::new(64);
        assert_eq!(t.bytes_retained(), 0);
        t.span_begin(0, 0, "a");
        t.beat(0, 0, BeatKind::Butterfly);
        t.span_end(0, 1, "a");
        assert_eq!(t.events_observed(), 3);
        assert_eq!(t.span_events(), 2);
        assert!(t.bytes_retained() > 0);
        t.assert_matches_flat();
    }

    #[test]
    fn node_energy_prices_through_the_flat_quanta() {
        let mut t = TreeProfilerSink::new(64);
        t.span_begin(0, 0, "k");
        t.beats(0, 0, BeatKind::Butterfly, 100);
        t.span_end(0, 100, "k");
        let node = t.nodes()["k"].clone();
        let total: f64 = Component::ALL
            .iter()
            .map(|&c| t.node_component_pj(&node, c))
            .sum();
        assert!((t.node_energy_pj(&node) - total).abs() < 1e-12);
        // Single-node tree: node energy == flat total, bit-for-bit
        // (same integer counts through the same pricing function).
        assert_eq!(t.node_energy_pj(&node), t.flat().energy_total_pj());
    }
}
