//! A minimal arbitrary-precision **unsigned** integer.
//!
//! The CKKS decoder needs to reconstruct centered values modulo
//! `Q = q_0 · q_1 · … · q_L` (several hundred bits) from RNS residues. This
//! module implements just enough big-integer arithmetic for that CRT step —
//! little-endian `u64` limbs with schoolbook operations — avoiding an
//! external bignum dependency.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs).
///
/// The representation is normalized: no trailing zero limbs; zero is the
/// empty limb vector.
///
/// # Example
///
/// ```
/// use uvpu_math::bigint::UBig;
///
/// let a = UBig::from(u64::MAX);
/// let b = a.mul_u64(u64::MAX);
/// assert_eq!(b.rem_u64(7), ((u128::from(u64::MAX) * u128::from(u64::MAX)) % 7) as u64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl UBig {
    /// The value zero.
    #[must_use]
    pub const fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value one.
    #[must_use]
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Whether this is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    #[must_use]
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() as u32 - 1) + (64 - top.leading_zeros()),
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Adds another big integer.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (unsigned underflow).
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self >= other, "UBig::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Multiplies by a single word.
    #[must_use]
    pub fn mul_u64(&self, k: u64) -> Self {
        if k == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &limb in &self.limbs {
            let t = u128::from(limb) * u128::from(k) + u128::from(carry);
            out.push(t as u64);
            carry = (t >> 64) as u64;
        }
        if carry > 0 {
            out.push(carry);
        }
        Self { limbs: out }
    }

    /// Full big × big multiplication (schoolbook).
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = u128::from(a) * u128::from(b) + u128::from(out[i + j]) + u128::from(carry);
                out[i + j] = t as u64;
                carry = (t >> 64) as u64;
            }
            out[i + other.limbs.len()] = out[i + other.limbs.len()].wrapping_add(carry);
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Divides by a single word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn div_rem_u64(&self, k: u64) -> (Self, u64) {
        assert_ne!(k, 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (u128::from(rem) << 64) | u128::from(self.limbs[i]);
            out[i] = (cur / u128::from(k)) as u64;
            rem = (cur % u128::from(k)) as u64;
        }
        let mut q = Self { limbs: out };
        q.normalize();
        (q, rem)
    }

    /// Remainder modulo a single word.
    #[must_use]
    pub fn rem_u64(&self, k: u64) -> u64 {
        self.div_rem_u64(k).1
    }

    /// Shifts left by one bit (doubles the value).
    #[must_use]
    pub fn shl1(&self) -> Self {
        self.mul_u64(2)
    }

    /// Converts to `f64` (loses precision beyond 53 bits, as expected).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64; // 2^64
        }
        acc
    }

    /// Reduces `self` modulo `m` when `self < bound · m` for small `bound`,
    /// by repeated subtraction (used after CRT accumulation where
    /// `self < L · Q`).
    #[must_use]
    pub fn rem_by_subtraction(&self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modulus must be nonzero");
        let mut r = self.clone();
        while &r >= m {
            // Subtract the largest shifted multiple of m that fits, so the
            // loop is O(bits) even for large quotients.
            let shift = r.bits().saturating_sub(m.bits());
            let mut candidate = m.clone();
            for _ in 0..shift {
                candidate = candidate.shl1();
            }
            if candidate > r {
                candidate = m.clone();
                for _ in 0..shift.saturating_sub(1) {
                    candidate = candidate.shl1();
                }
            }
            r = r.sub(&candidate);
        }
        r
    }
}

impl From<u64> for UBig {
    fn from(x: u64) -> Self {
        if x == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![x] }
        }
    }
}

impl From<u128> for UBig {
    fn from(x: u128) -> Self {
        let mut r = Self {
            limbs: vec![x as u64, (x >> 64) as u64],
        };
        r.normalize();
        r
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        write!(f, "{}", chunks.pop().expect("nonzero"))?;
        for c in chunks.iter().rev() {
            write!(f, "{c:019}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_zero() {
        assert!(UBig::zero().is_zero());
        assert!(UBig::from(0u64).is_zero());
        assert!(!UBig::one().is_zero());
        assert_eq!(UBig::from(42u64).bits(), 6);
        assert_eq!(UBig::zero().bits(), 0);
        assert_eq!(UBig::from(1u128 << 100).bits(), 101);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = UBig::from(u128::MAX);
        let b = UBig::from(u64::MAX);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
        assert_eq!(a.add(&UBig::zero()), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = UBig::one().sub(&UBig::from(2u64));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xdead_beef_cafe_babeu64;
        let b = 0x1234_5678_9abc_def0u64;
        let prod = UBig::from(a).mul(&UBig::from(b));
        assert_eq!(prod, UBig::from(u128::from(a) * u128::from(b)));
        assert_eq!(UBig::from(a).mul_u64(b), prod);
    }

    #[test]
    fn mul_big_associative_sample() {
        let a = UBig::from(u128::MAX).mul_u64(12345);
        let b = UBig::from(0xffff_ffff_ffffu64);
        let c = UBig::from(97u64);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn div_rem_reconstructs() {
        let x = UBig::from(u128::MAX).mul_u64(0x1234_5678);
        for k in [1u64, 2, 3, 10, u64::MAX] {
            let (q, r) = x.div_rem_u64(k);
            assert!(r < k);
            assert_eq!(q.mul_u64(k).add(&UBig::from(r)), x);
        }
    }

    #[test]
    fn rem_by_subtraction_matches_div() {
        let m = UBig::from(0x0fff_ffff_ffd8_0001u64);
        let x = m.mul_u64(123).add(&UBig::from(98765u64));
        assert_eq!(x.rem_by_subtraction(&m), UBig::from(98765u64));
        // x smaller than m stays untouched.
        assert_eq!(UBig::from(5u64).rem_by_subtraction(&m), UBig::from(5u64));
        // Large quotient exercises the shifted-subtraction path.
        let y = m.mul(&m).add(&UBig::one());
        assert_eq!(y.rem_by_subtraction(&m), UBig::one());
    }

    #[test]
    fn display_matches_decimal() {
        assert_eq!(UBig::zero().to_string(), "0");
        assert_eq!(UBig::from(12345u64).to_string(), "12345");
        let big = UBig::from(u128::MAX);
        assert_eq!(big.to_string(), u128::MAX.to_string());
    }

    #[test]
    fn to_f64_approximates() {
        let x = UBig::from(1u128 << 90);
        let expect = (1u128 << 90) as f64;
        assert!((x.to_f64() - expect).abs() / expect < 1e-15);
    }

    #[test]
    fn ordering_is_numeric() {
        let a = UBig::from(u64::MAX);
        let b = a.add(&UBig::one());
        assert!(b > a);
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
