//! Montgomery multiplication, kept as the design-choice baseline.
//!
//! The paper (§III-A) selects **Barrett** reduction for the lane datapath
//! because FHE keyswitching performs RNS base conversions, where operands
//! arrive in plain representation; Montgomery multiplication would require
//! domain conversions around every base-conversion step. This module
//! provides a correct Montgomery implementation so the trade-off can be
//! measured (see the `ablation` bench in `uvpu-bench`).

use crate::MathError;

/// A Montgomery multiplication context for an odd modulus `q < 2^62`.
///
/// Values live in *Montgomery form* `x̄ = x · 2^64 mod q`. Use
/// [`MontgomeryContext::to_montgomery`] / [`MontgomeryContext::from_montgomery`]
/// to convert at the boundary.
///
/// # Example
///
/// ```
/// use uvpu_math::montgomery::MontgomeryContext;
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let ctx = MontgomeryContext::new(0x3fff_ffff_ffff_ffe5)?;
/// let a = ctx.to_montgomery(123_456_789);
/// let b = ctx.to_montgomery(987_654_321);
/// let p = ctx.from_montgomery(ctx.mul(a, b));
/// assert_eq!(p, (123_456_789u128 * 987_654_321 % 0x3fff_ffff_ffff_ffe5) as u64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontgomeryContext {
    q: u64,
    /// `-q^{-1} mod 2^64`.
    q_inv_neg: u64,
    /// `2^128 mod q`, used to enter Montgomery form with one REDC.
    r2: u64,
}

impl MontgomeryContext {
    /// Creates a context for odd `q ∈ [3, 2^62)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ModulusOutOfRange`] if `q` is even or out of
    /// range (Montgomery reduction requires `gcd(q, 2^64) = 1`).
    pub fn new(q: u64) -> Result<Self, MathError> {
        if !(3..(1 << 62)).contains(&q) || q.is_multiple_of(2) {
            return Err(MathError::ModulusOutOfRange { value: q });
        }
        // Newton iteration for the inverse of q modulo 2^64: five steps
        // double the number of correct bits from the seed (odd q ⇒ q ≡ q^{-1} mod 8).
        let mut inv = q;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(q.wrapping_mul(inv)));
        }
        debug_assert_eq!(q.wrapping_mul(inv), 1);
        let r = (1u128 << 64) % u128::from(q); // 2^64 mod q
        let r2 = (r * r % u128::from(q)) as u64;
        Ok(Self {
            q,
            q_inv_neg: inv.wrapping_neg(),
            r2,
        })
    }

    /// The modulus `q`.
    #[inline]
    #[must_use]
    pub const fn modulus(&self) -> u64 {
        self.q
    }

    /// Montgomery reduction: computes `t · 2^{-64} mod q` for `t < q · 2^64`.
    #[inline]
    #[must_use]
    pub fn redc(&self, t: u128) -> u64 {
        let m = (t as u64).wrapping_mul(self.q_inv_neg);
        let t = (t + u128::from(m) * u128::from(self.q)) >> 64;
        let t = t as u64;
        if t >= self.q {
            t - self.q
        } else {
            t
        }
    }

    /// Converts `x < q` into Montgomery form.
    #[inline]
    #[must_use]
    pub fn to_montgomery(&self, x: u64) -> u64 {
        debug_assert!(x < self.q);
        self.redc(u128::from(x) * u128::from(self.r2))
    }

    /// Converts a Montgomery-form value back to plain representation.
    #[inline]
    #[must_use]
    pub fn from_montgomery(&self, x: u64) -> u64 {
        self.redc(u128::from(x))
    }

    /// Multiplies two Montgomery-form operands; result stays in Montgomery form.
    #[inline]
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.redc(u128::from(a) * u128::from(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::Modulus;

    #[test]
    fn rejects_even_and_tiny_moduli() {
        assert!(MontgomeryContext::new(2).is_err());
        assert!(MontgomeryContext::new(1 << 40).is_err());
        assert!(MontgomeryContext::new(1 << 63).is_err());
        assert!(MontgomeryContext::new(97).is_ok());
    }

    #[test]
    fn round_trip_through_montgomery_form() {
        let ctx = MontgomeryContext::new(0x0fff_ffff_ffd8_0001).unwrap();
        for x in [0u64, 1, 2, 12345, 0x0fff_ffff_ffd8_0000] {
            assert_eq!(ctx.from_montgomery(ctx.to_montgomery(x)), x);
        }
    }

    #[test]
    fn mul_agrees_with_barrett() {
        let q = 0x3fff_ffff_ffff_ffe5u64;
        let ctx = MontgomeryContext::new(q).unwrap();
        let barrett = Modulus::new(q).unwrap();
        let samples = [0u64, 1, 2, q / 2, q - 1, 0x1234_5678_9abc_def0 % q];
        for &a in &samples {
            for &b in &samples {
                let am = ctx.to_montgomery(a);
                let bm = ctx.to_montgomery(b);
                assert_eq!(ctx.from_montgomery(ctx.mul(am, bm)), barrett.mul(a, b));
            }
        }
    }
}
