//! The index algebra of FHE automorphisms.
//!
//! The paper's Eq (1) defines the automorphism as the permutation
//! `σ_{Φ,r}: i ↦ i·Φ^r mod N` on the `N` evaluation-domain elements of a
//! ciphertext polynomial. This module implements:
//!
//! - [`AffineMap`]: the slightly more general map `i ↦ i·g + t mod N`
//!   (`g` odd). The `t` offset appears for two reasons: the paper's own
//!   Eq (2) composes a small automorphism with a per-column cyclic shift,
//!   and the exact Galois action on naturally-indexed evaluation points is
//!   itself of this affine form.
//! - [`galois_exponent`]: the CKKS rotation → Galois element map
//!   (`g = 5^step mod 2N`).
//! - [`apply_galois_coeff`]: the coefficient-domain Galois action on
//!   `Z_q[X]/(X^N+1)` (with the `X^N = −1` sign flips), the golden model
//!   for CKKS rotations.
//! - [`RowColumnDecomposition`]: Eq (2)/(3) — the `N = R×C` factorization
//!   whose column-invariance lets the hardware process one column per
//!   vector at a time.
//! - [`ShiftDecomposition`]: **the paper's key insight** (§IV-B). Any
//!   `ρ_t ∘ σ_g` on `m` elements decomposes into one rotate-by-one bit per
//!   node of a binary residue-class tree — exactly one control bit per
//!   MUX group of the inter-lane shift network, `m − 1` bits in total.

use crate::modular::Modulus;
use crate::util::log2_exact;
use crate::MathError;

/// The conventional automorphism base Φ = 5 (paper §II-C).
pub const PHI: u64 = 5;

/// The affine index map `i ↦ i·g + t mod n` with `g` odd and `n` a power
/// of two — the class of permutations the inter-lane network realizes in
/// a single pass.
///
/// # Example
///
/// ```
/// use uvpu_math::automorphism::AffineMap;
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let map = AffineMap::new(8, 5, 0)?; // the paper's σ_{5,1} on 8 elements
/// assert_eq!(map.apply_index(1), 5);
/// assert_eq!(map.apply_index(2), 2); // 2·5 = 10 ≡ 2 (mod 8)
/// let inv = map.inverse();
/// for i in 0..8 {
///     assert_eq!(inv.apply_index(map.apply_index(i)), i);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffineMap {
    n: usize,
    g: u64,
    t: u64,
}

impl AffineMap {
    /// Creates the map `i ↦ i·g + t mod n`.
    ///
    /// # Errors
    ///
    /// - [`MathError::LengthNotPowerOfTwo`] if `n` is not a power of two.
    /// - [`MathError::EvenMultiplier`] if `g` is even (not invertible mod a
    ///   power of two, hence not a permutation).
    pub fn new(n: usize, g: u64, t: u64) -> Result<Self, MathError> {
        if !n.is_power_of_two() || n == 0 {
            return Err(MathError::LengthNotPowerOfTwo { length: n });
        }
        if g.is_multiple_of(2) {
            return Err(MathError::EvenMultiplier { multiplier: g });
        }
        Ok(Self {
            n,
            g: g % n as u64,
            t: t % n as u64,
        })
    }

    /// The pure automorphism `σ_g: i ↦ i·g mod n` (Eq (1) with `g = Φ^r`).
    ///
    /// # Errors
    ///
    /// Same as [`AffineMap::new`].
    pub fn automorphism(n: usize, g: u64) -> Result<Self, MathError> {
        Self::new(n, g, 0)
    }

    /// The cyclic shift `ρ_t: i ↦ i + t mod n`.
    ///
    /// # Errors
    ///
    /// Same as [`AffineMap::new`] (never [`MathError::EvenMultiplier`]).
    pub fn rotation(n: usize, t: u64) -> Result<Self, MathError> {
        Self::new(n, 1, t)
    }

    /// The identity map.
    ///
    /// # Errors
    ///
    /// [`MathError::LengthNotPowerOfTwo`] for invalid `n`.
    pub fn identity(n: usize) -> Result<Self, MathError> {
        Self::new(n, 1, 0)
    }

    /// Domain size `n`.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// The multiplier `g` (reduced mod `n`).
    #[must_use]
    pub const fn multiplier(&self) -> u64 {
        self.g
    }

    /// The offset `t` (reduced mod `n`).
    #[must_use]
    pub const fn offset(&self) -> u64 {
        self.t
    }

    /// Whether this is the identity permutation.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.g == 1 % self.n as u64 && self.t == 0
    }

    /// New position of the element at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    #[must_use]
    pub fn apply_index(&self, i: usize) -> usize {
        assert!(i < self.n, "index {i} out of range for n = {}", self.n);
        ((i as u64 * self.g + self.t) % self.n as u64) as usize
    }

    /// Applies the permutation to a slice: `out[map(i)] = input[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n`.
    #[must_use]
    pub fn permute<T: Copy>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.n, "input length must equal n");
        let mut out = input.to_vec();
        for (i, &x) in input.iter().enumerate() {
            out[self.apply_index(i)] = x;
        }
        out
    }

    /// The inverse permutation (also affine: `i ↦ i·g⁻¹ − t·g⁻¹`).
    #[must_use]
    pub fn inverse(&self) -> Self {
        if self.n == 1 {
            return *self;
        }
        let n = self.n as u64;
        let g_inv = crate::util::mod_inverse(self.g, n).expect("odd g is invertible mod 2^k");
        let t_inv = (n - (self.t * g_inv) % n) % n;
        Self {
            n: self.n,
            g: g_inv,
            t: t_inv,
        }
    }

    /// Composition: the map `i ↦ then(self(i))`.
    ///
    /// # Panics
    ///
    /// Panics if the domains differ.
    #[must_use]
    pub fn then(&self, then: &Self) -> Self {
        assert_eq!(self.n, then.n, "composed maps must share a domain");
        let n = self.n as u64;
        Self {
            n: self.n,
            g: (self.g * then.g) % n,
            t: (self.t * then.g + then.t) % n,
        }
    }
}

/// Returns the Galois element `g = Φ^step mod 2n` that realizes a CKKS
/// slot rotation by `step` positions (negative steps rotate the other
/// way); `step = 0` maps to conjugation (`g = 2n − 1`) when `conjugate`
/// is requested via [`conjugation_exponent`].
///
/// # Panics
///
/// Panics if `n` is not a power of two.
///
/// # Example
///
/// ```
/// // Rotating by 1 in a ring of degree 8 uses g = 5.
/// assert_eq!(uvpu_math::automorphism::galois_exponent(1, 8), 5);
/// assert_eq!(uvpu_math::automorphism::galois_exponent(-1, 8), 13); // 5^{-1} mod 16
/// ```
#[must_use]
pub fn galois_exponent(step: i64, n: usize) -> u64 {
    assert!(n.is_power_of_two() && n >= 2);
    let order = 2 * n as u64;
    // The slot group has order n/2; reduce the step into it.
    let half = (n / 2).max(1) as i64;
    let step = step.rem_euclid(half) as u64;
    let mut g = 1u64;
    for _ in 0..step {
        g = g * PHI % order;
    }
    g
}

/// The Galois element for complex conjugation: `2n − 1`.
#[must_use]
pub fn conjugation_exponent(n: usize) -> u64 {
    2 * n as u64 - 1
}

/// Applies the Galois automorphism `X ↦ X^g` to the coefficient vector of
/// `a ∈ Z_q[X]/(X^N + 1)`: coefficient `a[i]` lands at `i·g mod 2N`, with a
/// sign flip when the exponent wraps past `N` (`X^N = −1`).
///
/// This is the golden model the evaluation-domain permutation executed by
/// the VPU must agree with (after NTT conjugation).
///
/// # Panics
///
/// Panics if `a.len()` is not a power of two or `g` is even.
#[must_use]
pub fn apply_galois_coeff(a: &[u64], g: u64, q: &Modulus) -> Vec<u64> {
    let n = a.len();
    assert!(n.is_power_of_two());
    assert_eq!(g % 2, 1, "Galois element must be odd");
    let two_n = 2 * n as u64;
    let mut out = vec![0u64; n];
    for (i, &coeff) in a.iter().enumerate() {
        let e = (i as u64 * g) % two_n;
        if e < n as u64 {
            out[e as usize] = q.add(out[e as usize], coeff);
        } else {
            let idx = (e - n as u64) as usize;
            out[idx] = q.sub(out[idx], coeff);
        }
    }
    out
}

/// The `N = R×C` row-major decomposition of an affine map (paper Eq (2)/(3)).
///
/// Viewing indices as `i = r·C + c`, the map `i ↦ i·g + t` satisfies:
///
/// - **Eq (3)**: the new column `c' = (c·g + t) mod C` depends only on `c`
///   — whole columns move to new column positions.
/// - **Eq (2)**: within the column, the new row is
///   `r' = (r·g + s_c) mod R` with the column-constant shift
///   `s_c = ⌊(c·g + t)/C⌋ mod R` — a smaller affine map on `R` elements.
///
/// # Example
///
/// ```
/// use uvpu_math::automorphism::{AffineMap, RowColumnDecomposition};
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let map = AffineMap::automorphism(64, 25)?; // σ_{5,2} on N = 64
/// let dec = RowColumnDecomposition::new(map, 8, 8)?;
/// // Column invariance: all elements of column 3 land in the same column.
/// let target = dec.column_target(3);
/// for r in 0..8 {
///     assert_eq!(map.apply_index(r * 8 + 3) % 8, target);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowColumnDecomposition {
    map: AffineMap,
    rows: usize,
    cols: usize,
}

impl RowColumnDecomposition {
    /// Decomposes `map` over an `rows × cols` row-major matrix.
    ///
    /// # Errors
    ///
    /// [`MathError::LengthMismatch`] if `rows · cols ≠ map.n()`, and
    /// [`MathError::LengthNotPowerOfTwo`] if the factors are not powers of
    /// two.
    pub fn new(map: AffineMap, rows: usize, cols: usize) -> Result<Self, MathError> {
        if rows * cols != map.n() {
            return Err(MathError::LengthMismatch {
                left: rows * cols,
                right: map.n(),
            });
        }
        if !rows.is_power_of_two() || !cols.is_power_of_two() {
            return Err(MathError::LengthNotPowerOfTwo {
                length: if rows.is_power_of_two() { cols } else { rows },
            });
        }
        Ok(Self { map, rows, cols })
    }

    /// The underlying affine map.
    #[must_use]
    pub const fn map(&self) -> AffineMap {
        self.map
    }

    /// Matrix shape `(rows, cols)`.
    #[must_use]
    pub const fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Eq (3): the column every element of column `c` moves to.
    ///
    /// # Panics
    ///
    /// Panics if `c ≥ cols`.
    #[must_use]
    pub fn column_target(&self, c: usize) -> usize {
        assert!(c < self.cols);
        ((c as u64 * self.map.g + self.map.t) % self.cols as u64) as usize
    }

    /// Eq (2): the column-constant row shift `s_c = ⌊(c·g + t)/C⌋ mod R`.
    ///
    /// # Panics
    ///
    /// Panics if `c ≥ cols`.
    #[must_use]
    pub fn column_shift(&self, c: usize) -> u64 {
        assert!(c < self.cols);
        ((c as u64 * self.map.g + self.map.t) / self.cols as u64) % self.rows as u64
    }

    /// The complete per-column row map: `r ↦ (r·g + s_c) mod R` — itself an
    /// [`AffineMap`], which is what the inter-lane network executes in one
    /// pass per column.
    ///
    /// # Panics
    ///
    /// Panics if `c ≥ cols`.
    #[must_use]
    pub fn column_row_map(&self, c: usize) -> AffineMap {
        AffineMap::new(
            self.rows,
            self.map.g % self.rows as u64,
            self.column_shift(c),
        )
        .expect("rows is a power of two and g is odd")
    }
}

/// The paper's §IV-B insight, as data: the decomposition of an affine map
/// `ρ_t ∘ σ_g` on `m` elements into **one rotate-by-one bit per residue
/// class** — `bits[ℓ][j]` says whether the subsequence
/// `{i : i ≡ j (mod 2^ℓ)}` rotates by one position (i.e. every element
/// moves from index `i` to `i + 2^ℓ mod m`).
///
/// Applying level `log₂ m − 1` first down to level `0` last reproduces the
/// map exactly; this ordering matches the inter-lane shift network's stage
/// order (distance `m/2` first, distance `1` last), so the decomposition
/// *is* the network's control word.
///
/// # Example
///
/// ```
/// use uvpu_math::automorphism::{AffineMap, ShiftDecomposition};
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let map = AffineMap::new(64, 5, 3)?;
/// let dec = ShiftDecomposition::decompose(&map);
/// let data: Vec<u64> = (0..64).collect();
/// assert_eq!(dec.apply(&data), map.permute(&data));
/// assert_eq!(dec.control_bit_count(), 63); // m − 1 bits, as in Fig 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftDecomposition {
    m: usize,
    /// `bits[level][class]`, `level ∈ [0, log₂ m)`, `class ∈ [0, 2^level)`.
    bits: Vec<Vec<bool>>,
}

impl ShiftDecomposition {
    /// Decomposes an affine map into per-class rotate-by-one bits.
    ///
    /// Runs in `O(m)`: the residue-class tree has `m − 1` nodes and each
    /// contributes constant work.
    #[must_use]
    pub fn decompose(map: &AffineMap) -> Self {
        let m = map.n();
        let levels = log2_exact(m) as usize;
        let mut bits: Vec<Vec<bool>> = (0..levels).map(|l| vec![false; 1 << l]).collect();
        // Recursive node: subsequence {i ≡ class (mod 2^level)} of length
        // sub_n, carrying the local map s ↦ s·g + t (mod sub_n).
        fn node(bits: &mut [Vec<bool>], level: usize, class: usize, sub_n: usize, g: u64, t: u64) {
            if sub_n == 1 {
                return;
            }
            let t = t % sub_n as u64;
            let g = g % sub_n as u64;
            // Odd offset: peel off a rotate-by-one at this node (applied
            // *after* the children), leaving an even offset to split.
            let bit = t % 2 == 1;
            bits[level][class] = bit;
            let t_even = if bit {
                (t + sub_n as u64 - 1) % sub_n as u64
            } else {
                t
            };
            // Even positions (original indices ≡ class mod 2^{level+1}):
            //   2s ↦ 2s·g + t_even  ⇒  s ↦ s·g + t_even/2 (mod sub_n/2).
            node(bits, level + 1, class, sub_n / 2, g, t_even / 2);
            // Odd positions (original indices ≡ class + 2^level):
            //   2s+1 ↦ 2s·g + g + t_even = 2(s·g + (g + t_even − 1)/2) + 1.
            node(
                bits,
                level + 1,
                class + (1 << level),
                sub_n / 2,
                g,
                (g + t_even - 1) / 2 % (sub_n as u64 / 2),
            );
        }
        node(&mut bits, 0, 0, m, map.multiplier(), map.offset());
        Self { m, bits }
    }

    /// Domain size.
    #[must_use]
    pub const fn m(&self) -> usize {
        self.m
    }

    /// Number of rotate-by-one control bits (always `m − 1`).
    #[must_use]
    pub fn control_bit_count(&self) -> usize {
        self.bits.iter().map(Vec::len).sum()
    }

    /// The bit for residue class `class` at `level` (stage distance `2^level`).
    ///
    /// # Panics
    ///
    /// Panics if `level ≥ log₂ m` or `class ≥ 2^level`.
    #[must_use]
    pub fn bit(&self, level: usize, class: usize) -> bool {
        self.bits[level][class]
    }

    /// All bits at a level (stage distance `2^level`), indexed by class.
    ///
    /// # Panics
    ///
    /// Panics if `level ≥ log₂ m`.
    #[must_use]
    pub fn level_bits(&self, level: usize) -> &[bool] {
        &self.bits[level]
    }

    /// Applies the decomposition: level `log₂ m − 1` (distance `m/2`)
    /// first, level `0` (distance `1`) last — mirroring the shift-network
    /// stage order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != m`.
    #[must_use]
    pub fn apply<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.m);
        let mut cur = data.to_vec();
        for level in (0..self.bits.len()).rev() {
            let d = 1usize << level;
            let mut next = cur.clone();
            for i in 0..self.m {
                if self.bits[level][i % d] {
                    next[(i + d) % self.m] = cur[i];
                }
            }
            cur = next;
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::Modulus;
    use proptest::prelude::*;

    #[test]
    fn affine_map_validation() {
        assert!(AffineMap::new(12, 5, 0).is_err());
        assert!(AffineMap::new(16, 4, 0).is_err());
        assert!(AffineMap::new(16, 5, 100).is_ok());
        assert!(AffineMap::new(0, 1, 0).is_err());
    }

    #[test]
    fn affine_map_is_permutation() {
        for g in (1..32u64).step_by(2) {
            for t in 0..32u64 {
                let map = AffineMap::new(32, g, t).unwrap();
                let mut seen = [false; 32];
                for i in 0..32 {
                    let j = map.apply_index(i);
                    assert!(!seen[j], "collision at {j}");
                    seen[j] = true;
                }
            }
        }
    }

    #[test]
    fn paper_example_n64_r2() {
        // §II-C discusses N = 64, r = 2 (g = Φ² = 25): the movement has
        // little locality. Check σ(i) = 25·i mod 64 on the first indices
        // and that the map is its own documented inverse composition.
        let map = AffineMap::automorphism(64, 25).unwrap();
        let dests: Vec<usize> = (0..5).map(|i| map.apply_index(i)).collect();
        assert_eq!(dests, vec![0, 25, 50, 11, 36]);
        let inv = map.inverse();
        assert_eq!(inv.multiplier(), 41); // 25·41 ≡ 1 (mod 64)
        for i in 0..64 {
            assert_eq!(inv.apply_index(map.apply_index(i)), i);
        }
    }

    #[test]
    fn inverse_and_compose() {
        let a = AffineMap::new(128, 5, 7).unwrap();
        let b = AffineMap::new(128, 77, 30).unwrap();
        let ab = a.then(&b);
        for i in 0..128 {
            assert_eq!(ab.apply_index(i), b.apply_index(a.apply_index(i)));
        }
        assert!(a.then(&a.inverse()).is_identity());
        assert!(a.inverse().then(&a).is_identity());
    }

    #[test]
    fn permute_places_elements() {
        let map = AffineMap::new(8, 3, 1).unwrap();
        let data: Vec<u64> = (0..8).collect();
        let out = map.permute(&data);
        for i in 0..8 {
            assert_eq!(out[map.apply_index(i)], data[i]);
        }
    }

    #[test]
    fn galois_exponent_powers_of_five() {
        assert_eq!(galois_exponent(0, 16), 1);
        assert_eq!(galois_exponent(1, 16), 5);
        assert_eq!(galois_exponent(2, 16), 25);
        assert_eq!(galois_exponent(3, 16), 125 % 32);
        // Negative steps invert within the order-n/2 subgroup.
        let g = galois_exponent(-1, 16);
        assert_eq!(g * 5 % 32, 1);
        assert_eq!(conjugation_exponent(16), 31);
    }

    #[test]
    fn galois_coeff_action_on_monomials() {
        let q = Modulus::new(97).unwrap();
        let n = 8;
        // a = X: X ↦ X^g.
        let mut a = vec![0u64; n];
        a[1] = 1;
        let out = apply_galois_coeff(&a, 5, &q);
        let mut expect = vec![0u64; n];
        expect[5] = 1;
        assert_eq!(out, expect);
        // a = X^3: 3·5 = 15 ≥ 8 ⇒ X^{15} = X^{15-16}·X = −X^7.
        let mut a = vec![0u64; n];
        a[3] = 1;
        let out = apply_galois_coeff(&a, 5, &q);
        let mut expect = vec![0u64; n];
        expect[7] = q.neg(1);
        assert_eq!(out, expect);
    }

    #[test]
    fn galois_coeff_is_ring_homomorphism() {
        let q = Modulus::new(0x0fff_ffff_ffd8_0001).unwrap();
        let n = 16;
        let a: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 31 + 4)).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 17 + 9)).collect();
        let g = 5u64;
        let prod = crate::ntt::naive_negacyclic_mul(&a, &b, &q);
        let lhs = apply_galois_coeff(&prod, g, &q);
        let rhs = crate::ntt::naive_negacyclic_mul(
            &apply_galois_coeff(&a, g, &q),
            &apply_galois_coeff(&b, g, &q),
            &q,
        );
        assert_eq!(lhs, rhs, "τ_g(ab) = τ_g(a)·τ_g(b)");
    }

    #[test]
    fn row_column_invariance_eq3() {
        // Eq (3): elements of a column stay together for every odd g and t.
        for (rows, cols) in [(8usize, 8usize), (16, 4), (4, 16), (2, 32)] {
            let n = rows * cols;
            for g in (1..n as u64).step_by(2 * (n / 16).max(1)) {
                for t in [0u64, 1, 5, cols as u64] {
                    let map = AffineMap::new(n, g, t).unwrap();
                    let dec = RowColumnDecomposition::new(map, rows, cols).unwrap();
                    for c in 0..cols {
                        let target = dec.column_target(c);
                        let row_map = dec.column_row_map(c);
                        for r in 0..rows {
                            let flat = map.apply_index(r * cols + c);
                            assert_eq!(flat % cols, target, "Eq (3) violated");
                            assert_eq!(flat / cols, row_map.apply_index(r), "Eq (2) violated");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shift_decomposition_matches_paper_fig2_example() {
        // §IV-B example with 8 lanes: even sub-column shifted by 2 and odd
        // by 3 (global distances 4 and 6). Build that target directly and
        // confirm the decomposition realizes it... The example composes two
        // *independent* sub-shifts, which our AffineMap cannot express, so
        // instead verify the stated primitive: the network can shift the
        // even and odd classes independently, which is bits at level 1.
        let data: Vec<u64> = (0..8).collect();
        // Rotate-by-one of class 0 (mod 2): i → i+2 for even i.
        let mut dec = ShiftDecomposition::decompose(&AffineMap::identity(8).unwrap());
        dec.bits[1][0] = true;
        let out = dec.apply(&data);
        assert_eq!(out, vec![6, 1, 0, 3, 2, 5, 4, 7]);
    }

    #[test]
    fn shift_decomposition_exhaustive_small() {
        for log_m in 1..=6u32 {
            let m = 1usize << log_m;
            let data: Vec<u64> = (0..m as u64).collect();
            for g in (1..m as u64).step_by(2) {
                for t in 0..m as u64 {
                    let map = AffineMap::new(m, g, t).unwrap();
                    let dec = ShiftDecomposition::decompose(&map);
                    assert_eq!(dec.control_bit_count(), m - 1);
                    assert_eq!(dec.apply(&data), map.permute(&data), "m={m} g={g} t={t}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn shift_decomposition_random_large(log_m in 7u32..=9, g_seed in any::<u64>(), t_seed in any::<u64>()) {
            let m = 1usize << log_m;
            let g = (g_seed % m as u64) | 1;
            let t = t_seed % m as u64;
            let map = AffineMap::new(m, g, t).unwrap();
            let dec = ShiftDecomposition::decompose(&map);
            let data: Vec<u64> = (0..m as u64).collect();
            prop_assert_eq!(dec.apply(&data), map.permute(&data));
        }

        #[test]
        fn affine_inverse_roundtrip(log_n in 1u32..=10, g_seed in any::<u64>(), t_seed in any::<u64>(), i_seed in any::<usize>()) {
            let n = 1usize << log_n;
            let g = (g_seed % n as u64) | 1;
            let t = t_seed % n as u64;
            let map = AffineMap::new(n, g, t).unwrap();
            let i = i_seed % n;
            prop_assert_eq!(map.inverse().apply_index(map.apply_index(i)), i);
        }
    }
}
