//! NTT-friendly prime generation and primitive roots.
//!
//! A length-`2N` negacyclic NTT over `Z_q` needs a primitive `2N`-th root
//! of unity, which exists exactly when `q ≡ 1 (mod 2N)`. This module finds
//! such primes deterministically (Miller–Rabin with the u64-complete base
//! set), factors `q − 1` with Pollard rho to locate generators, and
//! extracts roots of any power-of-two order.

use crate::modular::Modulus;
use crate::util::gcd;
use crate::MathError;

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the 12-base witness set proven complete for 64-bit integers.
///
/// # Example
///
/// ```
/// assert!(uvpu_math::primes::is_prime(0x0fff_ffff_fffc_0001));
/// assert!(!uvpu_math::primes::is_prime(0x0fff_ffff_ffd8_0001));
/// ```
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let d = n - 1;
    let s = d.trailing_zeros();
    let d = d >> s;
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    (u128::from(a) * u128::from(b) % u128::from(m)) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Finds the largest prime with exactly `bits` bits satisfying
/// `q ≡ 1 (mod 2·ntt_len)`.
///
/// # Errors
///
/// Returns [`MathError::PrimeNotFound`] if no such prime exists below
/// `2^bits`, and [`MathError::LengthNotPowerOfTwo`] if `ntt_len` is not a
/// power of two.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let q = uvpu_math::primes::ntt_prime(40, 1 << 12)?;
/// assert!(uvpu_math::primes::is_prime(q));
/// assert_eq!(q % (2 << 12), 1);
/// # Ok(())
/// # }
/// ```
pub fn ntt_prime(bits: u32, ntt_len: usize) -> Result<u64, MathError> {
    if !ntt_len.is_power_of_two() {
        return Err(MathError::LengthNotPowerOfTwo { length: ntt_len });
    }
    assert!(
        (3..=61).contains(&bits),
        "prime width must be in [3, 61] bits"
    );
    let step = 2 * ntt_len as u64;
    let hi = (1u64 << bits) - 1;
    let lo = 1u64 << (bits - 1);
    let mut candidate = hi - (hi - 1) % step; // largest value ≡ 1 mod step, ≤ hi
    while candidate > lo {
        if is_prime(candidate) {
            return Ok(candidate);
        }
        candidate -= step;
    }
    Err(MathError::PrimeNotFound {
        bits,
        ntt_len: ntt_len as u64,
    })
}

/// Generates `count` **distinct** primes of the given bit width, all
/// congruent to `1 mod 2·ntt_len`, in descending order.
///
/// This is the modulus-chain generator used by the RNS-CKKS scheme.
///
/// # Errors
///
/// Returns [`MathError::PrimeNotFound`] if fewer than `count` primes exist.
pub fn ntt_prime_chain(bits: u32, ntt_len: usize, count: usize) -> Result<Vec<u64>, MathError> {
    if !ntt_len.is_power_of_two() {
        return Err(MathError::LengthNotPowerOfTwo { length: ntt_len });
    }
    assert!(
        (3..=61).contains(&bits),
        "prime width must be in [3, 61] bits"
    );
    let step = 2 * ntt_len as u64;
    let hi = (1u64 << bits) - 1;
    let lo = 1u64 << (bits - 1);
    let mut out = Vec::with_capacity(count);
    let mut candidate = hi - (hi - 1) % step;
    while out.len() < count && candidate > lo {
        if is_prime(candidate) {
            out.push(candidate);
        }
        candidate -= step;
    }
    if out.len() < count {
        return Err(MathError::PrimeNotFound {
            bits,
            ntt_len: ntt_len as u64,
        });
    }
    Ok(out)
}

/// Pollard-rho integer factorization returning the prime factorization of
/// `n` as sorted `(prime, exponent)` pairs.
///
/// # Example
///
/// ```
/// assert_eq!(uvpu_math::primes::factorize(360), vec![(2, 3), (3, 2), (5, 1)]);
/// ```
#[must_use]
pub fn factorize(mut n: u64) -> Vec<(u64, u32)> {
    let mut factors = Vec::new();
    if n < 2 {
        return factors;
    }
    for p in [2u64, 3, 5] {
        let mut e = 0;
        while n.is_multiple_of(p) {
            n /= p;
            e += 1;
        }
        if e > 0 {
            factors.push((p, e));
        }
    }
    let mut stack = vec![n];
    let mut primes = Vec::new();
    while let Some(m) = stack.pop() {
        if m == 1 {
            continue;
        }
        if is_prime(m) {
            primes.push(m);
            continue;
        }
        let d = pollard_rho(m);
        stack.push(d);
        stack.push(m / d);
    }
    primes.sort_unstable();
    let mut i = 0;
    while i < primes.len() {
        let p = primes[i];
        let mut e = 0;
        while i < primes.len() && primes[i] == p {
            e += 1;
            i += 1;
        }
        factors.push((p, e));
    }
    factors.sort_unstable();
    factors
}

/// Finds a non-trivial factor of composite odd `n > 1` (Brent's variant).
fn pollard_rho(n: u64) -> u64 {
    debug_assert!(n > 1 && !is_prime(n));
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut c = 1u64;
    loop {
        let f = |x: u64| (mul_mod(x, x, n) + c) % n;
        let (mut x, mut y, mut d) = (2u64, 2u64, 1u64);
        while d == 1 {
            x = f(x);
            y = f(f(y));
            d = gcd(x.abs_diff(y), n);
        }
        if d != n {
            return d;
        }
        c += 1;
    }
}

/// Finds a generator of the multiplicative group `Z_q^*` for prime `q`.
///
/// # Errors
///
/// Returns [`MathError::NoRootOfUnity`] if `q` is not prime (no generator
/// search is meaningful then).
pub fn primitive_root(q: &Modulus) -> Result<u64, MathError> {
    let value = q.value();
    if !is_prime(value) {
        return Err(MathError::NoRootOfUnity {
            modulus: value,
            order: value - 1,
        });
    }
    let phi = value - 1;
    let factors = factorize(phi);
    'candidate: for g in 2..value {
        for &(p, _) in &factors {
            if q.pow(g, phi / p) == 1 {
                continue 'candidate;
            }
        }
        return Ok(g);
    }
    unreachable!("every prime field has a generator")
}

/// Returns a primitive `order`-th root of unity modulo prime `q`.
///
/// # Errors
///
/// Returns [`MathError::NoRootOfUnity`] when `order ∤ q − 1` or `q` is not
/// prime.
///
/// # Example
///
/// ```
/// use uvpu_math::modular::Modulus;
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let q = Modulus::new(97)?;
/// let w = uvpu_math::primes::root_of_unity(&q, 8)?;
/// assert_eq!(q.pow(w, 8), 1);
/// assert_ne!(q.pow(w, 4), 1);
/// # Ok(())
/// # }
/// ```
pub fn root_of_unity(q: &Modulus, order: u64) -> Result<u64, MathError> {
    let phi = q.value() - 1;
    if order == 0 || !phi.is_multiple_of(order) {
        return Err(MathError::NoRootOfUnity {
            modulus: q.value(),
            order,
        });
    }
    let g = primitive_root(q)?;
    let root = q.pow(g, phi / order);
    debug_assert_eq!(q.pow(root, order), 1);
    Ok(root)
}

/// Returns the *minimal* primitive `order`-th root of unity, making table
/// generation deterministic across runs.
///
/// # Errors
///
/// Same as [`root_of_unity`].
pub fn min_root_of_unity(q: &Modulus, order: u64) -> Result<u64, MathError> {
    let root = root_of_unity(q, order)?;
    // All primitive order-th roots are root^k for k co-prime with order;
    // scan for the smallest. `order` is small (≤ 2^21 in practice).
    let mut best = root;
    let mut pow = 1u64;
    for k in 1..order {
        pow = q.mul(pow, root);
        if gcd(k, order) == 1 && pow < best {
            best = pow;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_prime_small_exhaustive() {
        let sieve_limit = 2000usize;
        let mut sieve = vec![true; sieve_limit];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..sieve_limit {
            if sieve[i] {
                for j in (i * i..sieve_limit).step_by(i) {
                    sieve[j] = false;
                }
            }
        }
        for (n, &composite_free) in sieve.iter().enumerate().take(sieve_limit) {
            assert_eq!(is_prime(n as u64), composite_free, "n = {n}");
        }
    }

    #[test]
    fn is_prime_known_large_values() {
        assert!(is_prime((1 << 61) - 1)); // Mersenne prime M61
        assert!(!is_prime(u64::MAX)); // 3 · 5 · 17 · ...
        assert!(is_prime(0xffff_ffff_0000_0001)); // Goldilocks prime
        assert!(!is_prime(3_215_031_751)); // strong pseudoprime to bases 2,3,5,7
    }

    #[test]
    fn ntt_prime_has_required_congruence() {
        for log_n in [10usize, 12, 14, 16] {
            let n = 1usize << log_n;
            let q = ntt_prime(50, n).unwrap();
            assert!(is_prime(q));
            assert_eq!(q % (2 * n as u64), 1);
            assert_eq!(64 - q.leading_zeros(), 50);
        }
    }

    #[test]
    fn ntt_prime_chain_distinct_descending() {
        let chain = ntt_prime_chain(45, 1 << 12, 8).unwrap();
        assert_eq!(chain.len(), 8);
        for w in chain.windows(2) {
            assert!(w[0] > w[1]);
        }
        for &q in &chain {
            assert!(is_prime(q));
            assert_eq!(q % (2 << 12), 1);
        }
    }

    #[test]
    fn ntt_prime_rejects_non_power_of_two() {
        assert!(matches!(
            ntt_prime(40, 1000),
            Err(MathError::LengthNotPowerOfTwo { length: 1000 })
        ));
    }

    #[test]
    fn factorize_round_trips() {
        for n in [1u64, 2, 12, 97, 360, 1 << 20, 600_851_475_143, 0xdead_beef] {
            let f = factorize(n);
            let product: u64 = f.iter().map(|&(p, e)| p.pow(e)).product::<u64>().max(1);
            if n >= 1 {
                assert_eq!(product, n.max(1), "n = {n}");
            }
            for &(p, _) in &f {
                assert!(is_prime(p));
            }
        }
    }

    #[test]
    fn primitive_root_generates_group() {
        for q in [17u64, 97, 65537, 7681, 12289] {
            let m = Modulus::new(q).unwrap();
            let g = primitive_root(&m).unwrap();
            // g^{(q-1)/p} ≠ 1 for every prime p | q-1.
            for (p, _) in factorize(q - 1) {
                assert_ne!(m.pow(g, (q - 1) / p), 1);
            }
            assert_eq!(m.pow(g, q - 1), 1);
        }
    }

    #[test]
    fn root_of_unity_order_is_exact() {
        let q = Modulus::new(7681).unwrap(); // 7681 = 512·15 + 1
        let w = root_of_unity(&q, 512).unwrap();
        assert_eq!(q.pow(w, 512), 1);
        assert_ne!(q.pow(w, 256), 1);
        assert!(root_of_unity(&q, 1024).is_err());
    }

    #[test]
    fn min_root_is_primitive_and_minimal() {
        let q = Modulus::new(97).unwrap();
        let w = min_root_of_unity(&q, 8).unwrap();
        assert_eq!(q.pow(w, 8), 1);
        assert_ne!(q.pow(w, 4), 1);
        for c in 2..w {
            let ok = q.pow(c, 8) == 1 && q.pow(c, 4) != 1 && q.pow(c, 2) != 1 && c != 1;
            assert!(!ok, "found smaller primitive root {c}");
        }
    }
}
