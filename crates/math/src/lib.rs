//! Mathematical substrate for the `uvpu` reproduction of *"A Unified Vector
//! Processing Unit for Fully Homomorphic Encryption"* (DATE 2025).
//!
//! This crate is self-contained (no external bignum or crypto dependencies)
//! and provides everything the VPU simulator and the CKKS scheme are built
//! on:
//!
//! - [`modular`]: 64-bit modular arithmetic with Barrett reduction (the
//!   reduction algorithm the paper's lanes use, §III-A) and Shoup
//!   multiplication for precomputed twiddle factors.
//! - [`montgomery`]: Montgomery multiplication, kept as the ablation
//!   baseline the paper argues against for FHE base conversion.
//! - [`primes`]: NTT-friendly prime generation, deterministic Miller–Rabin,
//!   Pollard-rho factorization and primitive-root search.
//! - [`ntt`]: golden-model number theoretic transforms — naive DFTs,
//!   iterative DIT/DIF, cyclic and negacyclic — that every VPU-mapped
//!   transform is bit-exactly checked against.
//! - [`poly`]: the polynomial ring `Z_q[X]/(X^N + 1)`.
//! - [`rns`]: residue number system bases and CRT reconstruction.
//! - [`bigint`]: a minimal unsigned big integer, just large enough for CRT.
//! - [`sampling`]: the RLWE noise distributions (rounded Gaussian,
//!   ternary secrets, uniform residues) shared by the CKKS and BFV crates.
//! - [`automorphism`]: the index algebra of Galois automorphisms — Eq (1)
//!   of the paper, the R×C decomposition of Eq (2)/(3), and the recursive
//!   reduction of an automorphism to shifts that the inter-lane network
//!   exploits.
//!
//! # Example
//!
//! ```
//! use uvpu_math::modular::Modulus;
//! use uvpu_math::ntt::NttTable;
//!
//! # fn main() -> Result<(), uvpu_math::MathError> {
//! let q = uvpu_math::primes::ntt_prime(50, 1 << 10)?;
//! let modulus = Modulus::new(q)?;
//! let table = NttTable::new(modulus, 1 << 10)?;
//! let mut data: Vec<u64> = (0..1u64 << 10).collect();
//! let original = data.clone();
//! table.forward_inplace(&mut data);
//! table.inverse_inplace(&mut data);
//! assert_eq!(data, original);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automorphism;
pub mod bigint;
pub mod cache;
pub mod kernel;
pub mod modular;
pub mod montgomery;
pub mod ntt;
pub mod poly;
pub mod pool;
pub mod primes;
pub mod rns;
pub mod sampling;
pub mod util;

mod error;

pub use error::MathError;
