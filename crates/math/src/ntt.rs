//! Golden-model number theoretic transforms.
//!
//! Everything the VPU executes is checked bit-exactly against the
//! transforms in this module:
//!
//! - [`NttTable`]: the *negacyclic* NTT over `Z_q[X]/(X^N + 1)` (merged-ψ
//!   Cooley–Tukey forward / Gentleman–Sande inverse, the standard FHE
//!   formulation). Forward output is in bit-reversed order; inverse
//!   consumes bit-reversed order — combining the two needs no explicit
//!   bit-reversal pass, which is also why the paper's lanes implement
//!   *both* DIT and DIF butterflies (§III-A).
//! - [`CyclicNtt`]: the classic cyclic DFT over `Z_q` in natural order,
//!   the building block of the multi-dimensional (four-step) decomposition
//!   of §II-B.
//! - [`four_step_cyclic`]: the 2D decomposition identity (row NTTs →
//!   twiddle scaling → column NTTs) in pure index arithmetic.
//! - Naive `O(N²)` references used only by tests.

use crate::modular::{Modulus, ShoupMul};
use crate::pool;
use crate::primes::min_root_of_unity;
use crate::util::{bit_reverse, log2_exact};
use crate::MathError;

/// Precomputed tables for the negacyclic NTT over `Z_q[X]/(X^N + 1)`.
///
/// # Example
///
/// ```
/// use uvpu_math::{modular::Modulus, ntt::NttTable, primes::ntt_prime};
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let n = 256;
/// let q = Modulus::new(ntt_prime(30, n)?)?;
/// let table = NttTable::new(q, n)?;
/// let mut a = vec![0u64; n];
/// a[1] = 1; // the polynomial X
/// let mut b = a.clone();
/// table.forward_inplace(&mut a);
/// table.forward_inplace(&mut b);
/// let mut prod: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.mul(x, y)).collect();
/// table.inverse_inplace(&mut prod);
/// assert_eq!(prod[2], 1); // X · X = X²
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    modulus: Modulus,
    n: usize,
    log_n: u32,
    /// ψ^{brv(i)} with Shoup precomputation, ψ a primitive 2N-th root.
    pub(crate) root_powers: Vec<ShoupMul>,
    /// ψ^{-brv(i)} with Shoup precomputation.
    pub(crate) inv_root_powers: Vec<ShoupMul>,
    /// N^{-1} mod q.
    pub(crate) n_inv: ShoupMul,
    psi: u64,
}

impl NttTable {
    /// Builds NTT tables for ring degree `n` (a power of two ≥ 2).
    ///
    /// # Errors
    ///
    /// - [`MathError::LengthNotPowerOfTwo`] if `n` is not a power of two.
    /// - [`MathError::NoRootOfUnity`] if `q ≢ 1 (mod 2n)` or `q` is not prime.
    pub fn new(modulus: Modulus, n: usize) -> Result<Self, MathError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(MathError::LengthNotPowerOfTwo { length: n });
        }
        let log_n = log2_exact(n);
        let psi = min_root_of_unity(&modulus, 2 * n as u64)?;
        let psi_inv = modulus.inv(psi)?;
        let mut root_powers = Vec::with_capacity(n);
        let mut inv_root_powers = Vec::with_capacity(n);
        let mut fwd = vec![0u64; n];
        let mut inv = vec![0u64; n];
        let mut acc_f = 1u64;
        let mut acc_i = 1u64;
        for i in 0..n {
            fwd[i] = acc_f;
            inv[i] = acc_i;
            acc_f = modulus.mul(acc_f, psi);
            acc_i = modulus.mul(acc_i, psi_inv);
        }
        for i in 0..n {
            let r = bit_reverse(i, log_n);
            root_powers.push(ShoupMul::new(fwd[r], &modulus));
            inv_root_powers.push(ShoupMul::new(inv[r], &modulus));
        }
        let n_inv = modulus.inv(n as u64)?;
        Ok(Self {
            modulus,
            n,
            log_n,
            root_powers,
            inv_root_powers,
            n_inv: ShoupMul::new(n_inv, &modulus),
            psi,
        })
    }

    /// The ring degree `N`.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// The modulus the tables were built for.
    #[must_use]
    pub const fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// The primitive `2N`-th root of unity ψ used by the tables.
    #[must_use]
    pub const fn psi(&self) -> u64 {
        self.psi
    }

    /// Forward negacyclic NTT, in place.
    ///
    /// Input: coefficients in natural order. Output: evaluations in
    /// **bit-reversed** order (the "NTT domain" every element-wise FHE
    /// operation works in).
    ///
    /// Executes the Harvey lazy-reduction kernel
    /// ([`crate::kernel::forward_inplace`]); output is byte-identical to
    /// [`Self::forward_inplace_reference`], and debug builds assert so
    /// on every call.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward_inplace(&self, a: &mut [u64]) {
        crate::kernel::forward_inplace(self, a);
    }

    /// Forward negacyclic NTT on the fully-reduced golden-model path:
    /// every butterfly lands in `[0, q)`. Kept as the audit reference
    /// for the lazy kernel; prefer [`Self::forward_inplace`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward_inplace_reference(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        let q = &self.modulus;
        let mut t = self.n;
        let mut m = 1;
        while m < self.n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.root_powers[m + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = s.mul(a[j + t], q);
                    a[j] = q.add(u, v);
                    a[j + t] = q.sub(u, v);
                }
            }
            m *= 2;
        }
    }

    /// Inverse negacyclic NTT, in place.
    ///
    /// Input: evaluations in bit-reversed order (as produced by
    /// [`Self::forward_inplace`]). Output: coefficients in natural order.
    ///
    /// Executes the Harvey lazy-reduction kernel
    /// ([`crate::kernel::inverse_inplace`]); output is byte-identical to
    /// [`Self::inverse_inplace_reference`], and debug builds assert so
    /// on every call.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse_inplace(&self, a: &mut [u64]) {
        crate::kernel::inverse_inplace(self, a);
    }

    /// Inverse negacyclic NTT on the fully-reduced golden-model path.
    /// Kept as the audit reference for the lazy kernel; prefer
    /// [`Self::inverse_inplace`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse_inplace_reference(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        let q = &self.modulus;
        let mut t = 1;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let s = self.inv_root_powers[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = q.add(u, v);
                    a[j + t] = s.mul(q.sub(u, v), q);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = self.n_inv.mul(*x, q);
        }
    }

    /// Number of butterfly stages (`log₂ N`).
    #[must_use]
    pub const fn stages(&self) -> u32 {
        self.log_n
    }
}

/// Precomputed tables for the classic cyclic NTT (DFT over `Z_q`).
///
/// Both directions consume and produce **natural order** — this is the
/// form the four-step decomposition composes.
///
/// # Example
///
/// ```
/// use uvpu_math::{modular::Modulus, ntt::CyclicNtt};
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let q = Modulus::new(97)?; // 97 ≡ 1 (mod 32)
/// let ntt = CyclicNtt::new(q, 16)?;
/// let mut a: Vec<u64> = (0..16).collect();
/// let orig = a.clone();
/// ntt.forward_inplace(&mut a);
/// ntt.inverse_inplace(&mut a);
/// assert_eq!(a, orig);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CyclicNtt {
    modulus: Modulus,
    n: usize,
    omega: u64,
    omega_inv: u64,
    /// N^{-1} mod q as a Shoup pair, so the inverse-transform scaling
    /// pays one precomputed multiply per element instead of a Barrett
    /// reduction.
    n_inv: ShoupMul,
    /// `fwd_stages[s][j] = ω^{j·n/2^{s+1}}` as a Shoup pair: the twiddles
    /// of butterfly stage `s` (block length `2^{s+1}`), identical for
    /// every block of the stage. `n − 1` entries total per direction.
    fwd_stages: Vec<Vec<ShoupMul>>,
    inv_stages: Vec<Vec<ShoupMul>>,
}

impl CyclicNtt {
    /// Builds tables for a length-`n` cyclic NTT.
    ///
    /// # Errors
    ///
    /// - [`MathError::LengthNotPowerOfTwo`] if `n` is not a power of two.
    /// - [`MathError::NoRootOfUnity`] if `q ≢ 1 (mod n)` or `q` is not prime.
    pub fn new(modulus: Modulus, n: usize) -> Result<Self, MathError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(MathError::LengthNotPowerOfTwo { length: n });
        }
        let omega = min_root_of_unity(&modulus, n as u64)?;
        let omega_inv = modulus.inv(omega)?;
        Ok(Self {
            modulus,
            n,
            omega,
            omega_inv,
            n_inv: ShoupMul::new(modulus.inv(n as u64)?, &modulus),
            fwd_stages: Self::stage_twiddles(&modulus, n, omega),
            inv_stages: Self::stage_twiddles(&modulus, n, omega_inv),
        })
    }

    /// Per-stage twiddle tables with Shoup pairs: stage `s` uses block
    /// length `len = 2^{s+1}` and twiddles `w^j` for `j < len/2`, where
    /// `w = root^{n/len}`. The same `w^j` sequence repeats in every
    /// block of a stage, so it is generated once here instead of paying
    /// a full modular multiply per element inside the transform.
    fn stage_twiddles(q: &Modulus, n: usize, root: u64) -> Vec<Vec<ShoupMul>> {
        let mut stages = Vec::with_capacity(n.trailing_zeros() as usize);
        let mut len = 2;
        while len <= n {
            let wlen = q.pow(root, (n / len) as u64);
            let mut w = 1u64;
            let table = (0..len / 2)
                .map(|_| {
                    let pair = ShoupMul::new(w, q);
                    w = q.mul(w, wlen);
                    pair
                })
                .collect();
            stages.push(table);
            len *= 2;
        }
        stages
    }

    /// The transform length.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// The primitive `n`-th root of unity ω.
    #[must_use]
    pub const fn omega(&self) -> u64 {
        self.omega
    }

    /// The inverse root ω⁻¹ used by [`inverse_inplace`](Self::inverse_inplace).
    #[must_use]
    pub const fn omega_inv(&self) -> u64 {
        self.omega_inv
    }

    /// The modulus.
    #[must_use]
    pub const fn modulus(&self) -> Modulus {
        self.modulus
    }

    fn transform(&self, a: &mut [u64], stages: &[Vec<ShoupMul>]) {
        crate::util::bit_reverse_permute(a);
        if self.n >= crate::kernel::FOURSTEP_MIN_N {
            self.stages_blocked(a, stages);
        } else {
            self.stages_direct(a, stages);
        }
    }

    /// The stage-major butterfly sweep: one full pass over `a` per
    /// stage. Fine while `8n` bytes are cache-resident; large sizes go
    /// through [`Self::stages_blocked`] instead.
    fn stages_direct(&self, a: &mut [u64], stages: &[Vec<ShoupMul>]) {
        let q = &self.modulus;
        let mut len = 2;
        for twiddles in stages {
            for start in (0..self.n).step_by(len) {
                for (j, w) in twiddles.iter().enumerate() {
                    let u = a[start + j];
                    let v = w.mul(a[start + j + len / 2], q);
                    a[start + j] = q.add(u, v);
                    a[start + j + len / 2] = q.sub(u, v);
                }
            }
            len *= 2;
        }
    }

    /// Cache-blocked sweep for large `n`, mirroring the four-step
    /// kernel dispatch: view `a` (post bit-reversal) as `rows` chunks of
    /// `chunk` elements. Stages with block length `≤ chunk` stay inside
    /// one chunk — run them all per chunk while it is cache-resident
    /// (the row pass). The remaining stages pair equal offsets of
    /// chunks `len/(2·chunk)` apart — run them per tile of gathered
    /// offset columns (the column pass). Butterflies, twiddles, and the
    /// per-element stage order are unchanged, so the output is bitwise
    /// identical to [`Self::stages_direct`].
    fn stages_blocked(&self, a: &mut [u64], stages: &[Vec<ShoupMul>]) {
        let q = &self.modulus;
        let n = self.n;
        let chunk = crate::kernel::fourstep::DEFAULT_ROW_LEN.min(n / 2);
        let small = log2_exact(chunk) as usize;
        // Row pass: stages 0..small (block length 2^{s+1} ≤ chunk).
        for row in a.chunks_exact_mut(chunk) {
            let mut len = 2;
            for twiddles in &stages[..small] {
                for start in (0..chunk).step_by(len) {
                    for (j, w) in twiddles.iter().enumerate() {
                        let u = row[start + j];
                        let v = w.mul(row[start + j + len / 2], q);
                        row[start + j] = q.add(u, v);
                        row[start + j + len / 2] = q.sub(u, v);
                    }
                }
                len *= 2;
            }
        }
        // Column pass: remaining stages, tiled over chunk offsets. An
        // element at chunk r, offset c is position (r mod len/chunk)·chunk + c
        // inside its block, so its twiddle index is rj·chunk + c.
        let rows = n / chunk;
        let tcw = crate::kernel::fourstep::tile_cols(rows, chunk);
        for c0 in (0..chunk).step_by(tcw) {
            let cw = tcw.min(chunk - c0);
            let mut tile = pool::take_scratch(rows * cw);
            for r in 0..rows {
                tile[r * cw..(r + 1) * cw].copy_from_slice(&a[r * chunk + c0..r * chunk + c0 + cw]);
            }
            let mut len = 2 * chunk;
            for twiddles in &stages[small..] {
                let half_rows = (len / 2) / chunk;
                for br in (0..rows).step_by(2 * half_rows) {
                    for rj in 0..half_rows {
                        let rt = br + rj;
                        let (top, bot) = tile.split_at_mut((rt + half_rows) * cw);
                        let top = &mut top[rt * cw..(rt + 1) * cw];
                        let tw = &twiddles[rj * chunk + c0..rj * chunk + c0 + cw];
                        for ((t, b), w) in top.iter_mut().zip(bot.iter_mut()).zip(tw) {
                            let u = *t;
                            let v = w.mul(*b, q);
                            *t = q.add(u, v);
                            *b = q.sub(u, v);
                        }
                    }
                }
                len *= 2;
            }
            for r in 0..rows {
                a[r * chunk + c0..r * chunk + c0 + cw].copy_from_slice(&tile[r * cw..(r + 1) * cw]);
            }
            pool::recycle(tile);
        }
    }

    /// Forward cyclic NTT: `X[k] = Σ_j a[j]·ω^{jk}`, natural order in/out.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward_inplace(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal transform length");
        self.transform(a, &self.fwd_stages);
    }

    /// Inverse cyclic NTT, natural order in/out.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse_inplace(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal transform length");
        self.transform(a, &self.inv_stages);
        for x in a.iter_mut() {
            *x = self.n_inv.mul(*x, &self.modulus);
        }
    }
}

/// Naive `O(N²)` cyclic DFT used as the ultimate reference in tests.
///
/// # Panics
///
/// Panics if `omega` is not an `a.len()`-th root of unity (debug builds).
#[must_use]
pub fn naive_cyclic_dft(a: &[u64], omega: u64, q: &Modulus) -> Vec<u64> {
    let n = a.len();
    debug_assert_eq!(q.pow(omega, n as u64), 1);
    (0..n)
        .map(|k| {
            let mut acc = 0u64;
            for (j, &x) in a.iter().enumerate() {
                let w = q.pow(omega, (j * k % n) as u64);
                acc = q.add(acc, q.mul(x, w));
            }
            acc
        })
        .collect()
}

/// Naive negacyclic polynomial multiplication in `Z_q[X]/(X^N + 1)`.
#[must_use]
pub fn naive_negacyclic_mul(a: &[u64], b: &[u64], q: &Modulus) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            let p = q.mul(x, y);
            let k = i + j;
            if k < n {
                out[k] = q.add(out[k], p);
            } else {
                out[k - n] = q.sub(out[k - n], p); // X^N = −1
            }
        }
    }
    out
}

/// Two-dimensional four-step decomposition of the cyclic NTT.
///
/// With `n = rows · cols`, input indexed `a[rows·c + r]` and output indexed
/// `X[cols·r' + c']`, the transform factorizes into:
///
/// 1. length-`cols` NTTs across `c` for each `r` (root `ω^rows`),
/// 2. twiddle scaling by `ω^{r·c'}`,
/// 3. length-`rows` NTTs across `r` for each `c'` (root `ω^cols`).
///
/// This is the identity the VPU's dimension decomposition (§IV-A)
/// implements in hardware; it is exposed here so the hardware mapping can
/// be validated against pure index arithmetic.
///
/// # Panics
///
/// Panics if `a.len() != rows * cols` or the factors are not powers of two.
#[must_use]
pub fn four_step_cyclic(a: &[u64], rows: usize, cols: usize, omega: u64, q: &Modulus) -> Vec<u64> {
    let n = rows * cols;
    assert_eq!(a.len(), n, "length must equal rows * cols");
    assert!(rows.is_power_of_two() && cols.is_power_of_two());
    let omega_c = q.pow(omega, rows as u64); // primitive cols-th root
    let omega_r = q.pow(omega, cols as u64); // primitive rows-th root

    // Step 1: length-cols DFT along c for each fixed r.
    let mut b = vec![0u64; n];
    for r in 0..rows {
        for c_out in 0..cols {
            let mut acc = 0u64;
            for c in 0..cols {
                let w = q.pow(omega_c, (c * c_out % cols) as u64);
                acc = q.add(acc, q.mul(a[rows * c + r], w));
            }
            b[rows * c_out + r] = acc;
        }
    }
    // Step 2: twiddle by ω^{r·c'}.
    for r in 0..rows {
        for c_out in 0..cols {
            let w = q.pow(omega, (r * c_out % n) as u64);
            b[rows * c_out + r] = q.mul(b[rows * c_out + r], w);
        }
    }
    // Step 3: length-rows DFT along r for each fixed c'.
    let mut x = vec![0u64; n];
    for c_out in 0..cols {
        for r_out in 0..rows {
            let mut acc = 0u64;
            for r in 0..rows {
                let w = q.pow(omega_r, (r * r_out % rows) as u64);
                acc = q.add(acc, q.mul(b[rows * c_out + r], w));
            }
            x[cols * r_out + c_out] = acc;
        }
    }
    x
}

/// Applies the ψ-twist that converts a negacyclic problem to a cyclic one:
/// `out[i] = a[i] · ψ^i`.
///
/// The negacyclic NTT of `a` equals the cyclic NTT (with ω = ψ²) of the
/// twisted sequence — the identity the VPU pipeline uses so its four-step
/// machinery only ever deals with cyclic transforms.
#[must_use]
pub fn psi_twist(a: &[u64], psi: u64, q: &Modulus) -> Vec<u64> {
    let mut out = a.to_vec();
    psi_twist_inplace(&mut out, psi, q);
    out
}

/// In-place variant of [`psi_twist`], for callers holding pooled scratch.
pub fn psi_twist_inplace(a: &mut [u64], psi: u64, q: &Modulus) {
    let mut acc = 1u64;
    for x in a.iter_mut() {
        *x = q.mul(*x, acc);
        acc = q.mul(acc, psi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::ntt_prime;

    fn setup(n: usize, bits: u32) -> (Modulus, NttTable) {
        let q = Modulus::new(ntt_prime(bits, n).unwrap()).unwrap();
        let table = NttTable::new(q, n).unwrap();
        (q, table)
    }

    #[test]
    fn negacyclic_round_trip_various_sizes() {
        for log_n in [1usize, 2, 3, 6, 10] {
            let n = 1 << log_n;
            let (_, table) = setup(n, 30);
            let mut a: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();
            let orig = a.clone();
            table.forward_inplace(&mut a);
            assert_ne!(a, orig, "forward must change a generic input");
            table.inverse_inplace(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn negacyclic_convolution_theorem() {
        let n = 64;
        let (q, table) = setup(n, 30);
        let a: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * i + 3)).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 5 + 11)).collect();
        let expect = naive_negacyclic_mul(&a, &b, &q);

        let mut fa = a.clone();
        let mut fb = b.clone();
        table.forward_inplace(&mut fa);
        table.forward_inplace(&mut fb);
        let mut prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul(x, y)).collect();
        table.inverse_inplace(&mut prod);
        assert_eq!(prod, expect);
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // (X^{N-1})² = X^{2N-2} = −X^{N-2} in Z_q[X]/(X^N+1).
        let n = 16;
        let (q, table) = setup(n, 30);
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut fa = a.clone();
        table.forward_inplace(&mut fa);
        let mut prod: Vec<u64> = fa.iter().map(|&x| q.mul(x, x)).collect();
        table.inverse_inplace(&mut prod);
        let mut expect = vec![0u64; n];
        expect[n - 2] = q.neg(1);
        assert_eq!(prod, expect);
    }

    #[test]
    fn forward_is_linear() {
        let n = 32;
        let (q, table) = setup(n, 30);
        let a: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i + 2)).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(3 * i + 1)).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.add(x, y)).collect();
        let (mut fa, mut fb, mut fs) = (a, b, sum);
        table.forward_inplace(&mut fa);
        table.forward_inplace(&mut fb);
        table.forward_inplace(&mut fs);
        for i in 0..n {
            assert_eq!(fs[i], q.add(fa[i], fb[i]));
        }
    }

    #[test]
    fn cyclic_matches_naive_dft() {
        let q = Modulus::new(ntt_prime(20, 32).unwrap()).unwrap();
        let ntt = CyclicNtt::new(q, 32).unwrap();
        let a: Vec<u64> = (0..32u64).map(|i| q.reduce_u64(i * 13 + 5)).collect();
        let expect = naive_cyclic_dft(&a, ntt.omega(), &q);
        let mut got = a.clone();
        ntt.forward_inplace(&mut got);
        assert_eq!(got, expect);
        ntt.inverse_inplace(&mut got);
        assert_eq!(got, a);
    }

    #[test]
    fn four_step_matches_direct_cyclic() {
        let q = Modulus::new(ntt_prime(20, 64).unwrap()).unwrap();
        for (rows, cols) in [(8usize, 8usize), (4, 16), (16, 4), (2, 32)] {
            let n = rows * cols;
            let ntt = CyclicNtt::new(q, n).unwrap();
            let a: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 3 + 7)).collect();
            let four = four_step_cyclic(&a, rows, cols, ntt.omega(), &q);
            // With input strided as a[rows·c + r] and output as
            // X[cols·r' + c'], the four-step factorization reproduces the
            // flat DFT exactly — the "transpose" lives entirely in the
            // access strides, which is what the VPU exploits.
            let direct = naive_cyclic_dft(&a, ntt.omega(), &q);
            assert_eq!(four, direct, "rows={rows} cols={cols}");
        }
    }

    #[test]
    fn psi_twist_reduces_negacyclic_to_cyclic() {
        let n = 64;
        let (q, table) = setup(n, 30);
        let psi = table.psi();
        let omega = q.mul(psi, psi);
        let a: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i + 1)).collect();

        // Negacyclic NTT via the table (bit-reversed output).
        let mut neg = a.clone();
        table.forward_inplace(&mut neg);

        // Cyclic DFT of the twisted input (natural order).
        let twisted = psi_twist(&a, psi, &q);
        let cyc = naive_cyclic_dft(&twisted, omega, &q);

        // Both compute evaluations of a at odd powers of ψ; orderings
        // differ (bit-reversed vs natural), so compare as multisets.
        let mut x = neg.clone();
        let mut y = cyc.clone();
        x.sort_unstable();
        y.sort_unstable();
        assert_eq!(x, y);
    }

    #[test]
    fn cyclic_blocked_matches_direct_at_dispatch_size() {
        // n = 2^14 routes through stages_blocked; the stage-major loop
        // must produce the same bytes, and the round trip must close.
        let n = 1 << 14;
        let q = Modulus::new(ntt_prime(30, n).unwrap()).unwrap();
        let ntt = CyclicNtt::new(q, n).unwrap();
        let a: Vec<u64> = (0..n as u64)
            .map(|i| q.reduce_u64(i * 2654435761 + 9))
            .collect();

        let mut blocked = a.clone();
        ntt.forward_inplace(&mut blocked);
        let mut direct = a.clone();
        crate::util::bit_reverse_permute(&mut direct);
        ntt.stages_direct(&mut direct, &ntt.fwd_stages);
        assert_eq!(blocked, direct, "blocked cyclic sweep diverged");

        ntt.inverse_inplace(&mut blocked);
        assert_eq!(blocked, a, "blocked cyclic round trip failed");
    }

    #[test]
    fn rejects_bad_lengths_and_moduli() {
        let q = Modulus::new(97).unwrap();
        assert!(NttTable::new(q, 48).is_err());
        assert!(CyclicNtt::new(q, 0).is_err());
        // 97 ≡ 1 (mod 32) but not mod 64.
        assert!(CyclicNtt::new(q, 32).is_ok());
        assert!(CyclicNtt::new(q, 64).is_err());
    }

    #[test]
    fn stages_counts_log_n() {
        let (_, table) = setup(256, 30);
        assert_eq!(table.stages(), 8);
    }
}
