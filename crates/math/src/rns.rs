//! Residue number system (RNS) bases.
//!
//! CKKS ciphertext coefficients live modulo a huge product
//! `Q = q_0·q_1·…·q_L`; RNS decomposes every coefficient into one small
//! residue per prime (paper §II-A), so all arithmetic stays in 64-bit
//! lanes. This module provides the basis bookkeeping: CRT reconstruction,
//! centered lifting for the CKKS decoder, and the per-prime gadget
//! constants used by RNS keyswitching.

use crate::bigint::UBig;
use crate::modular::Modulus;
use crate::MathError;

/// An RNS basis: pairwise co-prime moduli with precomputed CRT constants.
///
/// # Example
///
/// ```
/// use uvpu_math::rns::RnsBasis;
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let basis = RnsBasis::new(vec![97, 193, 257])?;
/// let x = 1_234_567u64;
/// let residues = basis.decompose_u64(x);
/// assert_eq!(basis.reconstruct(&residues).to_string(), x.to_string());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RnsBasis {
    moduli: Vec<Modulus>,
    /// `Q = Π q_i`.
    product: UBig,
    /// `Q_i = Q / q_i`.
    punctured: Vec<UBig>,
    /// `Q_i mod q_j` for the fast-base-conversion style sums.
    punctured_mod: Vec<Vec<u64>>,
    /// `Q̃_i = Q_i^{-1} mod q_i`.
    punctured_inv: Vec<u64>,
}

impl RnsBasis {
    /// Builds a basis from raw modulus values.
    ///
    /// # Errors
    ///
    /// - [`MathError::InvalidBasis`] if empty or the moduli share factors.
    /// - [`MathError::ModulusOutOfRange`] for out-of-range moduli.
    pub fn new(values: Vec<u64>) -> Result<Self, MathError> {
        if values.is_empty() {
            return Err(MathError::InvalidBasis("basis must be non-empty"));
        }
        for (i, &a) in values.iter().enumerate() {
            for &b in &values[i + 1..] {
                if crate::util::gcd(a, b) != 1 {
                    return Err(MathError::InvalidBasis("moduli must be pairwise co-prime"));
                }
            }
        }
        let moduli: Vec<Modulus> = values
            .iter()
            .map(|&v| Modulus::new(v))
            .collect::<Result<_, _>>()?;

        let mut product = UBig::one();
        for &v in &values {
            product = product.mul_u64(v);
        }
        let punctured: Vec<UBig> = values.iter().map(|&v| product.div_rem_u64(v).0).collect();
        let punctured_mod: Vec<Vec<u64>> = punctured
            .iter()
            .map(|qi| values.iter().map(|&qj| qi.rem_u64(qj)).collect())
            .collect();
        let punctured_inv: Vec<u64> = moduli
            .iter()
            .enumerate()
            .map(|(i, m)| m.inv(punctured_mod[i][i]))
            .collect::<Result<_, _>>()?;
        Ok(Self {
            moduli,
            product,
            punctured,
            punctured_mod,
            punctured_inv,
        })
    }

    /// Number of primes in the basis.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// Whether the basis is empty (never true for a constructed basis).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// The moduli.
    #[must_use]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// The product `Q` of all moduli.
    #[must_use]
    pub fn product(&self) -> &UBig {
        &self.product
    }

    /// The punctured product `Q_i = Q / q_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn punctured_product(&self, i: usize) -> &UBig {
        &self.punctured[i]
    }

    /// `Q_i mod q_j` — the cross terms used by base conversion and the
    /// RNS keyswitch gadget.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn punctured_mod(&self, i: usize, j: usize) -> u64 {
        self.punctured_mod[i][j]
    }

    /// `Q̃_i = (Q/q_i)^{-1} mod q_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn punctured_inv(&self, i: usize) -> u64 {
        self.punctured_inv[i]
    }

    /// Decomposes a `u64` into its residues.
    #[must_use]
    pub fn decompose_u64(&self, x: u64) -> Vec<u64> {
        self.moduli.iter().map(|m| m.reduce_u64(x)).collect()
    }

    /// Decomposes a signed integer into residues (centered lifting).
    #[must_use]
    pub fn decompose_i64(&self, x: i64) -> Vec<u64> {
        self.moduli.iter().map(|m| m.from_i64(x)).collect()
    }

    /// CRT reconstruction: the unique `x ∈ [0, Q)` with `x ≡ residues[i]
    /// (mod q_i)`.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len() != self.len()`.
    #[must_use]
    pub fn reconstruct(&self, residues: &[u64]) -> UBig {
        assert_eq!(residues.len(), self.len());
        let mut acc = UBig::zero();
        for (i, (&x, m)) in residues.iter().zip(&self.moduli).enumerate() {
            let coeff = m.mul(m.reduce_u64(x), self.punctured_inv[i]);
            acc = acc.add(&self.punctured[i].mul_u64(coeff));
        }
        acc.rem_by_subtraction(&self.product)
    }

    /// CRT reconstruction to a **centered** `f64`: the representative in
    /// `(−Q/2, Q/2]` as a float. This is what the CKKS decoder needs.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len() != self.len()`.
    #[must_use]
    pub fn reconstruct_centered_f64(&self, residues: &[u64]) -> f64 {
        let x = self.reconstruct(residues);
        let half = self.product.div_rem_u64(2).0;
        if x > half {
            -(self.product.sub(&x).to_f64())
        } else {
            x.to_f64()
        }
    }

    /// Drops the last modulus, returning the shortened basis — the CKKS
    /// rescale step's bookkeeping.
    ///
    /// # Errors
    ///
    /// [`MathError::InvalidBasis`] if only one modulus remains.
    pub fn drop_last(&self) -> Result<Self, MathError> {
        if self.len() <= 1 {
            return Err(MathError::InvalidBasis("cannot drop the last modulus"));
        }
        let values: Vec<u64> = self.moduli[..self.len() - 1]
            .iter()
            .map(Modulus::value)
            .collect();
        Self::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::ntt_prime_chain;

    #[test]
    fn rejects_bad_bases() {
        assert!(RnsBasis::new(vec![]).is_err());
        assert!(RnsBasis::new(vec![6, 9]).is_err());
        assert!(RnsBasis::new(vec![97, 97]).is_err());
        assert!(RnsBasis::new(vec![97]).is_ok());
    }

    #[test]
    fn reconstruct_round_trips_u64() {
        let basis = RnsBasis::new(vec![97, 193, 257, 12289]).unwrap();
        for x in [0u64, 1, 96, 12345, 0xffff_ffff] {
            let r = basis.decompose_u64(x);
            assert_eq!(basis.reconstruct(&r).to_string(), x.to_string());
        }
    }

    #[test]
    fn reconstruct_large_basis() {
        let primes = ntt_prime_chain(45, 1 << 10, 6).unwrap();
        let basis = RnsBasis::new(primes).unwrap();
        // A value known only through residues of a big product.
        let big = UBig::from(u128::MAX).mul_u64(0xdead_beef);
        let residues: Vec<u64> = basis
            .moduli()
            .iter()
            .map(|m| big.rem_u64(m.value()))
            .collect();
        assert_eq!(basis.reconstruct(&residues), big);
    }

    #[test]
    fn centered_reconstruction_signs() {
        let basis = RnsBasis::new(vec![97, 193]).unwrap();
        assert_eq!(
            basis.reconstruct_centered_f64(&basis.decompose_i64(42)),
            42.0
        );
        assert_eq!(
            basis.reconstruct_centered_f64(&basis.decompose_i64(-42)),
            -42.0
        );
        assert_eq!(basis.reconstruct_centered_f64(&basis.decompose_i64(0)), 0.0);
        // Near the wrap boundary Q/2 = 9360 (Q = 18721).
        assert_eq!(
            basis.reconstruct_centered_f64(&basis.decompose_i64(9360)),
            9360.0
        );
        assert_eq!(
            basis.reconstruct_centered_f64(&basis.decompose_i64(-9360)),
            -9360.0
        );
    }

    #[test]
    fn punctured_identities() {
        let basis = RnsBasis::new(vec![97, 193, 257]).unwrap();
        for i in 0..3 {
            // Q_i · q_i = Q.
            assert_eq!(
                basis
                    .punctured_product(i)
                    .mul_u64(basis.moduli()[i].value()),
                *basis.product()
            );
            // Q_i · Q̃_i ≡ 1 (mod q_i).
            let m = basis.moduli()[i];
            assert_eq!(m.mul(basis.punctured_mod(i, i), basis.punctured_inv(i)), 1);
            // Q_i ≡ 0 (mod q_j) for j ≠ i.
            for j in 0..3 {
                if j != i {
                    assert_eq!(basis.punctured_mod(i, j) % basis.moduli()[j].value(), 0);
                }
            }
        }
    }

    #[test]
    fn drop_last_shrinks() {
        let basis = RnsBasis::new(vec![97, 193, 257]).unwrap();
        let smaller = basis.drop_last().unwrap();
        assert_eq!(smaller.len(), 2);
        assert_eq!(
            smaller
                .moduli()
                .iter()
                .map(Modulus::value)
                .collect::<Vec<_>>(),
            vec![97, 193]
        );
        let tiny = smaller.drop_last().unwrap();
        assert!(tiny.drop_last().is_err());
    }
}

/// Fast base conversion between RNS bases (BEHZ-style, paper §III-A's
/// motivation for Barrett lanes).
///
/// Converts residues under a source basis `B = {q_i}` to residues under a
/// disjoint target basis `B' = {p_j}` using only small-modulus arithmetic:
///
/// `conv(x)_j = Σ_i [x_i·Q̃_i]_{q_i} · (Q_i mod p_j)  (mod p_j)`
///
/// The result equals `x + α·Q (mod p_j)` for some overshoot
/// `α ∈ [0, len(B))` — the standard approximate conversion whose
/// correction FHE keyswitching absorbs into noise. Because operands enter
/// in plain (non-Montgomery) representation at every step, Barrett
/// multipliers handle them directly — the paper's §III-A argument.
///
/// # Example
///
/// ```
/// use uvpu_math::rns::{BasisExtender, RnsBasis};
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let from = RnsBasis::new(vec![97, 193])?;
/// let to = RnsBasis::new(vec![257, 12289])?;
/// let ext = BasisExtender::new(&from, &to)?;
/// let out = ext.convert(&from.decompose_u64(1234));
/// // Exact here because 1234 < Q and the α·Q overshoot is 0 or Q:
/// assert!(out[0] == 1234 % 257 || out[0] == (1234 + 97 * 193) % 257);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BasisExtender {
    from: RnsBasis,
    to: RnsBasis,
    /// `q_i_hat_mod_p[i][j] = (Q/q_i) mod p_j`.
    punctured_mod_target: Vec<Vec<u64>>,
    /// `Q mod p_j` (for overshoot correction by callers that track α).
    q_mod_target: Vec<u64>,
}

impl BasisExtender {
    /// Precomputes the conversion constants.
    ///
    /// # Errors
    ///
    /// [`MathError::InvalidBasis`] if the bases share a modulus.
    pub fn new(from: &RnsBasis, to: &RnsBasis) -> Result<Self, MathError> {
        for qi in from.moduli() {
            for pj in to.moduli() {
                if qi.value() == pj.value() {
                    return Err(MathError::InvalidBasis(
                        "source and target bases must be disjoint",
                    ));
                }
            }
        }
        let punctured_mod_target = (0..from.len())
            .map(|i| {
                to.moduli()
                    .iter()
                    .map(|pj| from.punctured_product(i).rem_u64(pj.value()))
                    .collect()
            })
            .collect();
        let q_mod_target = to
            .moduli()
            .iter()
            .map(|pj| from.product().rem_u64(pj.value()))
            .collect();
        Ok(Self {
            from: from.clone(),
            to: to.clone(),
            punctured_mod_target,
            q_mod_target,
        })
    }

    /// `Q mod p_j` — lets callers subtract the `α·Q` overshoot when they
    /// can bound or compute α.
    #[must_use]
    pub fn source_product_mod_target(&self, j: usize) -> u64 {
        self.q_mod_target[j]
    }

    /// Converts one value's residues; output has one residue per target
    /// modulus and equals `x + α·Q (mod p_j)` with `0 ≤ α < len(from)`.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the source basis size.
    #[must_use]
    pub fn convert(&self, residues: &[u64]) -> Vec<u64> {
        assert_eq!(residues.len(), self.from.len());
        // y_i = [x_i · Q̃_i]_{q_i}: computed once per source modulus.
        let ys: Vec<u64> = residues
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let m = self.from.moduli()[i];
                m.mul(m.reduce_u64(x), self.from.punctured_inv(i))
            })
            .collect();
        (0..self.to.len())
            .map(|j| {
                let pj = self.to.moduli()[j];
                let mut acc = 0u64;
                for (i, &y) in ys.iter().enumerate() {
                    acc = pj.add(
                        acc,
                        pj.mul(pj.reduce_u64(y), self.punctured_mod_target[i][j]),
                    );
                }
                acc
            })
            .collect()
    }

    /// Converts with exact overshoot removal using CRT (reference-quality,
    /// big-integer path — the hardware uses the approximate form above).
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the source basis size.
    #[must_use]
    pub fn convert_exact(&self, residues: &[u64]) -> Vec<u64> {
        let x = self.from.reconstruct(residues);
        self.to
            .moduli()
            .iter()
            .map(|pj| x.rem_u64(pj.value()))
            .collect()
    }
}

#[cfg(test)]
mod extender_tests {
    use super::*;

    fn bases() -> (RnsBasis, RnsBasis) {
        (
            RnsBasis::new(vec![0x0fff_ffff_fffc_0001, 65537, 97]).unwrap(),
            RnsBasis::new(vec![257, 12289, 7681]).unwrap(),
        )
    }

    #[test]
    fn rejects_overlapping_bases() {
        let a = RnsBasis::new(vec![97, 193]).unwrap();
        let b = RnsBasis::new(vec![193, 257]).unwrap();
        assert!(BasisExtender::new(&a, &b).is_err());
    }

    #[test]
    fn approximate_conversion_is_exact_up_to_alpha_q() {
        let (from, to) = bases();
        let ext = BasisExtender::new(&from, &to).unwrap();
        for x in [0u64, 1, 12345, 0xffff_ffff, 0x0fff_ffff_fffb_ffff] {
            let approx = ext.convert(&from.decompose_u64(x));
            let exact = ext.convert_exact(&from.decompose_u64(x));
            for j in 0..to.len() {
                let pj = to.moduli()[j];
                // approx ≡ exact + α·Q (mod p_j) for some 0 ≤ α < 3.
                let q_mod = ext.source_product_mod_target(j);
                let candidates: Vec<u64> = (0..from.len() as u64)
                    .map(|alpha| pj.add(exact[j], pj.mul(pj.reduce_u64(alpha), q_mod)))
                    .collect();
                assert!(
                    candidates.contains(&approx[j]),
                    "x={x} j={j}: {} not among {candidates:?}",
                    approx[j]
                );
            }
        }
    }

    #[test]
    fn zero_converts_exactly_and_alpha_is_bounded() {
        // Only x = 0 guarantees α = 0 (all y_i vanish); for other inputs
        // the overshoot depends on Σ y_i/q_i, NOT on x's magnitude — the
        // property the `approximate_conversion_is_exact_up_to_alpha_q`
        // test pins down.
        let (from, to) = bases();
        let ext = BasisExtender::new(&from, &to).unwrap();
        assert_eq!(
            ext.convert(&from.decompose_u64(0)),
            ext.convert_exact(&from.decompose_u64(0))
        );
    }

    #[test]
    fn conversion_is_additive_mod_target() {
        let (from, to) = bases();
        let ext = BasisExtender::new(&from, &to).unwrap();
        let a = 123_456u64;
        let b = 9_876u64;
        let ca = ext.convert_exact(&from.decompose_u64(a));
        let cb = ext.convert_exact(&from.decompose_u64(b));
        let cab = ext.convert_exact(&from.decompose_u64(a + b));
        for j in 0..to.len() {
            let pj = to.moduli()[j];
            assert_eq!(cab[j], pj.add(ca[j], cb[j]));
        }
    }
}
