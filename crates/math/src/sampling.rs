//! Randomness for lattice cryptography: the three distributions every
//! RLWE-based scheme draws from.
//!
//! - [`GaussianSampler`]: rounded-Gaussian error polynomials (Box–Muller
//!   with rounding and a hard tail cut, the standard software stand-in
//!   for a discrete Gaussian at σ ≈ 3.2);
//! - [`ternary`] / [`ternary_fixed_weight`]: secret keys;
//! - [`uniform`]: public randomness modulo `q`.
//!
//! Shared by the CKKS and BFV crates so noise behaviour is consistent
//! across schemes.

use rand::Rng;

/// A rounded-Gaussian sampler with standard deviation σ and a ⌈6σ⌉ tail
/// cut (samples beyond it are rejected and redrawn, matching common FHE
/// library practice).
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use uvpu_math::sampling::GaussianSampler;
///
/// let sampler = GaussianSampler::new(3.2);
/// let mut rng = StdRng::seed_from_u64(1);
/// let e = sampler.sample_vec(&mut rng, 1024);
/// assert!(e.iter().all(|&x| x.abs() <= 20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianSampler {
    sigma: f64,
    tail: i64,
}

impl GaussianSampler {
    /// Creates a sampler with the given σ.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive and finite.
    #[must_use]
    pub fn new(sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        Self {
            sigma,
            tail: (6.0 * sigma).ceil() as i64,
        }
    }

    /// The standard deviation.
    #[must_use]
    pub const fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one rounded-Gaussian integer.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> i64 {
        loop {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let x = (self.sigma * (-2.0 * u1.ln()).sqrt() * u2.cos()).round() as i64;
            if x.abs() <= self.tail {
                return x;
            }
        }
    }

    /// Draws a vector of rounded-Gaussian integers.
    pub fn sample_vec<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<i64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform ternary coefficients in {−1, 0, 1}.
pub fn ternary<R: Rng>(rng: &mut R, n: usize) -> Vec<i64> {
    (0..n).map(|_| i64::from(rng.gen_range(-1i8..=1))).collect()
}

/// Ternary coefficients with exactly `weight` non-zeros (sparse secrets,
/// as used by bootstrappable parameter sets).
///
/// # Panics
///
/// Panics if `weight > n`.
pub fn ternary_fixed_weight<R: Rng>(rng: &mut R, n: usize, weight: usize) -> Vec<i64> {
    assert!(weight <= n, "weight {weight} exceeds length {n}");
    let mut out = vec![0i64; n];
    let mut placed = 0;
    while placed < weight {
        let idx = rng.gen_range(0..n);
        if out[idx] == 0 {
            out[idx] = if rng.gen_bool(0.5) { 1 } else { -1 };
            placed += 1;
        }
    }
    out
}

/// Uniform residues in `[0, q)`.
pub fn uniform<R: Rng>(rng: &mut R, n: usize, q: u64) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range(0..q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_close() {
        let sampler = GaussianSampler::new(3.2);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let xs = sampler.sample_vec(&mut rng, n);
        let mean: f64 = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Rounded Gaussian variance ≈ σ² + 1/12.
        let expect = 3.2f64.powi(2) + 1.0 / 12.0;
        assert!(
            (var - expect).abs() / expect < 0.05,
            "var {var} vs {expect}"
        );
    }

    #[test]
    fn gaussian_tail_is_cut() {
        let sampler = GaussianSampler::new(2.0);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50_000 {
            assert!(sampler.sample(&mut rng).abs() <= 12);
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn gaussian_rejects_bad_sigma() {
        let _ = GaussianSampler::new(0.0);
    }

    #[test]
    fn ternary_values_and_balance() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs = ternary(&mut rng, 30_000);
        assert!(xs.iter().all(|&x| (-1..=1).contains(&x)));
        let counts = [-1i64, 0, 1].map(|v| xs.iter().filter(|&&x| x == v).count());
        for c in counts {
            let ratio = c as f64 / 30_000.0;
            assert!((ratio - 1.0 / 3.0).abs() < 0.02, "ratio {ratio}");
        }
    }

    #[test]
    fn fixed_weight_is_exact() {
        let mut rng = StdRng::seed_from_u64(10);
        let xs = ternary_fixed_weight(&mut rng, 1024, 64);
        assert_eq!(xs.iter().filter(|&&x| x != 0).count(), 64);
        assert!(xs.iter().all(|&x| (-1..=1).contains(&x)));
        assert!(ternary_fixed_weight(&mut rng, 8, 8).iter().all(|&x| x != 0));
    }

    #[test]
    fn uniform_stays_in_range_and_spreads() {
        let mut rng = StdRng::seed_from_u64(11);
        let q = 97u64;
        let xs = uniform(&mut rng, 100_000, q);
        assert!(xs.iter().all(|&x| x < q));
        let mean: f64 = xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
        assert!((mean - 48.0).abs() < 1.0, "mean {mean}");
    }
}
