//! Small bit-manipulation helpers shared across the crate.

/// Returns the base-2 logarithm of `n`.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
///
/// # Example
///
/// ```
/// assert_eq!(uvpu_math::util::log2_exact(64), 6);
/// ```
#[must_use]
pub fn log2_exact(n: usize) -> u32 {
    assert!(n.is_power_of_two(), "log2_exact: {n} is not a power of two");
    n.trailing_zeros()
}

/// Reverses the low `bits` bits of `x`.
///
/// # Example
///
/// ```
/// assert_eq!(uvpu_math::util::bit_reverse(0b001, 3), 0b100);
/// assert_eq!(uvpu_math::util::bit_reverse(6, 3), 3);
/// ```
#[must_use]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Permutes `data` into bit-reversed index order in place.
///
/// Applying the permutation twice restores the original order.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let bits = log2_exact(data.len());
    for i in 0..data.len() {
        let j = bit_reverse(i, bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Greatest common divisor of two unsigned integers.
///
/// # Example
///
/// ```
/// assert_eq!(uvpu_math::util::gcd(12, 18), 6);
/// assert_eq!(uvpu_math::util::gcd(0, 7), 7);
/// ```
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
#[must_use]
pub fn extended_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = extended_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Modular inverse of `a` modulo `m`, when it exists.
///
/// # Example
///
/// ```
/// assert_eq!(uvpu_math::util::mod_inverse(3, 7), Some(5));
/// assert_eq!(uvpu_math::util::mod_inverse(2, 4), None);
/// ```
#[must_use]
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    let (g, x, _) = extended_gcd(i128::from(a % m), i128::from(m));
    if g != 1 {
        return None;
    }
    let m = i128::from(m);
    Some(((x % m + m) % m) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_exact_small_powers() {
        for k in 0..20 {
            assert_eq!(log2_exact(1usize << k), k);
        }
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_exact_rejects_non_power() {
        let _ = log2_exact(12);
    }

    #[test]
    fn bit_reverse_is_involution() {
        for bits in 1..12u32 {
            for x in 0..(1usize << bits) {
                assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
            }
        }
    }

    #[test]
    fn bit_reverse_permute_round_trip() {
        let mut v: Vec<u32> = (0..64).collect();
        let orig = v.clone();
        bit_reverse_permute(&mut v);
        assert_ne!(v, orig);
        bit_reverse_permute(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(48, 36), 12);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 0), 0);
    }

    #[test]
    fn mod_inverse_matches_definition() {
        for m in [5u64, 7, 13, 97, 65537] {
            for a in 1..m.min(200) {
                let inv = mod_inverse(a, m).expect("prime modulus");
                assert_eq!((u128::from(a) * u128::from(inv) % u128::from(m)) as u64, 1);
            }
        }
    }

    #[test]
    fn mod_inverse_rejects_common_factor() {
        assert_eq!(mod_inverse(6, 9), None);
        assert_eq!(mod_inverse(0, 9), None);
    }
}
