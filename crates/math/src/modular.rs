//! 64-bit modular arithmetic with Barrett reduction.
//!
//! The paper's computing lanes use Barrett reduction for all modular
//! arithmetic (§III-A), chosen over Montgomery multiplication because FHE
//! keyswitching needs frequent RNS base conversions, which Barrett supports
//! without domain conversions. [`Modulus`] is the software model of that
//! lane datapath: a modulus value plus the precomputed 128-bit Barrett
//! ratio `⌊2^128 / q⌋`.
//!
//! [`ShoupMul`] models the lane's twiddle-factor multiplier: when one
//! operand is a known constant (an NTT twiddle factor), a cheaper
//! single-`mulhi` reduction applies.

use crate::util::mod_inverse;
use crate::MathError;

/// Largest supported modulus (exclusive): `2^62`.
///
/// Keeping two spare bits lets Barrett's quotient estimate stay within
/// `u64` and allows lazy sums of two residues without overflow, which is
/// also what the paper's 64-bit datapath does.
pub const MAX_MODULUS: u64 = 1 << 62;

/// A modulus `q ∈ [2, 2^62)` with its precomputed Barrett constants.
///
/// All arithmetic methods expect operands already reduced to `[0, q)` and
/// produce reduced results. Use [`Modulus::reduce_u64`] /
/// [`Modulus::reduce_u128`] to bring arbitrary words into range.
///
/// # Example
///
/// ```
/// use uvpu_math::modular::Modulus;
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let q = Modulus::new(0x0fff_ffff_fffc_0001)?; // a 60-bit NTT prime
/// let a = q.reduce_u64(u64::MAX);
/// let b = q.pow(3, 1 << 40);
/// assert_eq!(q.mul(a, q.inv(a)?), 1);
/// assert_eq!(q.mul(b, q.inv(b)?), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// `⌊2^128 / value⌋` as (low, high) 64-bit words.
    ratio: [u64; 2],
}

impl Modulus {
    /// Creates a modulus and precomputes its Barrett ratio.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ModulusOutOfRange`] unless `2 ≤ value < 2^62`.
    pub fn new(value: u64) -> Result<Self, MathError> {
        if !(2..MAX_MODULUS).contains(&value) {
            return Err(MathError::ModulusOutOfRange { value });
        }
        // ⌊2^128 / q⌋ computed via ⌊(2^128 - 1) / q⌋; the two agree unless q
        // divides 2^128, impossible for q ≥ 2 except powers of two — and for
        // powers of two ⌊2^128/q⌋ = 2^128/q while ⌊(2^128-1)/q⌋ is one less.
        // Correct for that case explicitly.
        let max = u128::MAX;
        let mut ratio = max / u128::from(value);
        if value.is_power_of_two() {
            ratio += 1;
        }
        Ok(Self {
            value,
            ratio: [ratio as u64, (ratio >> 64) as u64],
        })
    }

    /// The modulus value `q`.
    #[inline]
    #[must_use]
    pub const fn value(&self) -> u64 {
        self.value
    }

    /// Number of significant bits of `q`.
    #[inline]
    #[must_use]
    pub const fn bits(&self) -> u32 {
        64 - self.value.leading_zeros()
    }

    /// Reduces a full 64-bit word modulo `q` using Barrett reduction.
    #[inline]
    #[must_use]
    pub fn reduce_u64(&self, x: u64) -> u64 {
        // q̂ = ⌊x · ratio / 2^128⌋ needs only the high half of x · ratio.
        let lo = (u128::from(x) * u128::from(self.ratio[0])) >> 64;
        let hi = u128::from(x) * u128::from(self.ratio[1]);
        let q_hat = ((hi + lo) >> 64) as u64;
        let mut r = x.wrapping_sub(q_hat.wrapping_mul(self.value));
        while r >= self.value {
            r -= self.value;
        }
        r
    }

    /// Reduces a 128-bit product modulo `q` using Barrett reduction.
    ///
    /// Correct for any `x < q · 2^64` (which covers products of reduced
    /// operands, since `(q−1)^2 < q · 2^64`).
    #[inline]
    #[must_use]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        let x0 = x as u64;
        let x1 = (x >> 64) as u64;
        debug_assert!(
            x1 < self.value,
            "reduce_u128 requires x < q * 2^64 (x1 = {x1}, q = {})",
            self.value
        );
        // q̂ = ⌊x · R / 2^128⌋ with R = ratio (128-bit), x = x1·2^64 + x0:
        //   x·R / 2^128 = x1·r1 + (x0·r1 + x1·r0 + ⌊x0·r0 / 2^64⌋) / 2^64.
        let t = (u128::from(x0) * u128::from(self.ratio[0])) >> 64;
        let a = u128::from(x0) * u128::from(self.ratio[1]);
        let b = u128::from(x1) * u128::from(self.ratio[0]);
        // a + b + t cannot overflow u128 for q ≥ 2 (see module docs); keep a
        // checked add in debug builds regardless.
        let mid = a + b + t;
        let q_hat = (u128::from(x1) * u128::from(self.ratio[1]) + (mid >> 64)) as u64;
        let mut r = x0.wrapping_sub(q_hat.wrapping_mul(self.value));
        while r >= self.value {
            r -= self.value;
        }
        r
    }

    /// Modular addition of reduced operands.
    #[inline]
    #[must_use]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// Modular subtraction of reduced operands.
    #[inline]
    #[must_use]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        if a >= b {
            a - b
        } else {
            a + self.value - b
        }
    }

    /// Modular negation of a reduced operand.
    #[inline]
    #[must_use]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.value);
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Modular multiplication of reduced operands (Barrett).
    #[inline]
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.reduce_u128(u128::from(a) * u128::from(b))
    }

    /// Fused multiply-add: `a·b + c mod q` for reduced operands.
    #[inline]
    #[must_use]
    pub fn mul_add(&self, a: u64, b: u64, c: u64) -> u64 {
        self.reduce_u128(u128::from(a) * u128::from(b) + u128::from(c))
    }

    /// Modular exponentiation `base^exp mod q` by square-and-multiply.
    #[must_use]
    pub fn pow(&self, base: u64, mut exp: u64) -> u64 {
        let mut base = self.reduce_u64(base);
        let mut acc = 1u64 % self.value;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotInvertible`] if `gcd(a, q) ≠ 1`.
    pub fn inv(&self, a: u64) -> Result<u64, MathError> {
        mod_inverse(a, self.value).ok_or(MathError::NotInvertible {
            value: a,
            modulus: self.value,
        })
    }

    /// Maps a signed integer into `[0, q)`.
    #[inline]
    #[must_use]
    pub fn from_i64(&self, x: i64) -> u64 {
        let r = x.rem_euclid(self.value as i64);
        r as u64
    }

    /// Maps a residue to its centered representative in `(-q/2, q/2]`.
    #[inline]
    #[must_use]
    pub fn to_centered(&self, x: u64) -> i64 {
        debug_assert!(x < self.value);
        if x > self.value / 2 {
            (x as i64) - (self.value as i64)
        } else {
            x as i64
        }
    }
}

/// A precomputed constant multiplier using Shoup's trick.
///
/// For a fixed constant `w < q`, the precomputation `w' = ⌊w · 2^64 / q⌋`
/// reduces the modular product `x·w mod q` to one `mulhi`, two `mullo`, a
/// subtraction, and one conditional correction — exactly the structure a
/// hardware twiddle multiplier uses.
///
/// # Example
///
/// ```
/// use uvpu_math::modular::{Modulus, ShoupMul};
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let q = Modulus::new(0x3fff_ffff_ffff_ffe5)?;
/// let w = q.reduce_u64(0x1234_5678_9abc_def0);
/// let shoup = ShoupMul::new(w, &q);
/// let x = q.reduce_u64(0x0fed_cba9_8765_4321);
/// assert_eq!(shoup.mul(x, &q), q.mul(x, w));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupMul {
    /// The constant operand `w`, reduced.
    pub operand: u64,
    /// `⌊w · 2^64 / q⌋`.
    pub quotient: u64,
}

impl ShoupMul {
    /// Precomputes the Shoup quotient for constant `w` under `q`.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if `w` is not reduced.
    #[must_use]
    pub fn new(w: u64, q: &Modulus) -> Self {
        debug_assert!(w < q.value());
        let quotient = ((u128::from(w) << 64) / u128::from(q.value())) as u64;
        Self {
            operand: w,
            quotient,
        }
    }

    /// Computes `x · w mod q`.
    #[inline]
    #[must_use]
    pub fn mul(&self, x: u64, q: &Modulus) -> u64 {
        let r = self.mul_lazy(x, q);
        if r >= q.value() {
            r - q.value()
        } else {
            r
        }
    }

    /// Harvey's lazy constant product: returns `x·w mod q` **or**
    /// `x·w mod q + q` — a value in `[0, 2q)` — skipping the final
    /// conditional correction of [`Self::mul`].
    ///
    /// Valid for *any* `x: u64` (not just reduced operands): the Shoup
    /// quotient under-estimates `⌊x·w/q⌋` by at most one, so the
    /// remainder estimate lands in `[0, 2q)`. This is the butterfly
    /// multiplier of the lazy-reduction NTT kernels
    /// ([`crate::kernel`]), where values are carried unreduced through
    /// the stages and corrected once at the end.
    #[inline]
    #[must_use]
    pub fn mul_lazy(&self, x: u64, q: &Modulus) -> u64 {
        let q_hat = ((u128::from(x) * u128::from(self.quotient)) >> 64) as u64;
        x.wrapping_mul(self.operand)
            .wrapping_sub(q_hat.wrapping_mul(q.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moduli() -> Vec<Modulus> {
        [
            3u64,
            4,
            17,
            97,
            65537,
            (1 << 31) - 1,
            0x3fff_ffff_ffff_ffe5, // 62-bit
            0x0fff_ffff_ffd8_0001,
            MAX_MODULUS - 1,
        ]
        .iter()
        .map(|&q| Modulus::new(q).expect("valid modulus"))
        .collect()
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Modulus::new(0).is_err());
        assert!(Modulus::new(1).is_err());
        assert!(Modulus::new(MAX_MODULUS).is_err());
        assert!(Modulus::new(u64::MAX).is_err());
        assert!(Modulus::new(2).is_ok());
        assert!(Modulus::new(MAX_MODULUS - 1).is_ok());
    }

    #[test]
    fn reduce_u64_matches_remainder() {
        for q in moduli() {
            for x in [
                0u64,
                1,
                q.value() - 1,
                q.value(),
                q.value() + 1,
                u64::MAX,
                0xdead_beef_1234_5678,
            ] {
                assert_eq!(q.reduce_u64(x), x % q.value(), "x={x} q={}", q.value());
            }
        }
    }

    #[test]
    fn reduce_u128_matches_remainder() {
        for q in moduli() {
            let samples = [
                0u128,
                1,
                u128::from(q.value() - 1) * u128::from(q.value() - 1),
                u128::from(q.value()) * 0xffff_ffff,
                u128::from(u64::MAX),
            ];
            for x in samples {
                if (x >> 64) as u64 >= q.value() {
                    continue;
                }
                assert_eq!(q.reduce_u128(x), (x % u128::from(q.value())) as u64);
            }
        }
    }

    #[test]
    fn power_of_two_modulus_ratio_is_exact() {
        let q = Modulus::new(1 << 20).unwrap();
        for x in [0u64, 1, (1 << 20) - 1, 1 << 20, u64::MAX] {
            assert_eq!(q.reduce_u64(x), x % (1 << 20));
        }
    }

    #[test]
    fn add_sub_neg_round_trip() {
        for q in moduli() {
            let v = q.value();
            for a in [0, 1, v / 2, v - 1] {
                for b in [0, 1, v / 3, v - 1] {
                    let s = q.add(a, b);
                    assert_eq!(q.sub(s, b), a);
                    assert_eq!(q.add(q.neg(a), a), 0);
                }
            }
        }
    }

    #[test]
    fn mul_matches_u128_path() {
        for q in moduli() {
            let v = q.value();
            for a in [0, 1, 2, v / 2, v - 1] {
                for b in [0, 1, 3, v / 5 + 1, v - 1] {
                    let expect = (u128::from(a) * u128::from(b) % u128::from(v)) as u64;
                    assert_eq!(q.mul(a, b), expect);
                }
            }
        }
    }

    #[test]
    fn pow_and_fermat() {
        let q = Modulus::new(65537).unwrap();
        // Fermat's little theorem on the prime 65537.
        for a in [1u64, 2, 3, 12345, 65536] {
            assert_eq!(q.pow(a, 65536), 1);
        }
        assert_eq!(q.pow(2, 16), 65536);
        assert_eq!(q.pow(0, 0), 1, "0^0 = 1 by convention");
    }

    #[test]
    fn inv_errors_on_common_factor() {
        let q = Modulus::new(12).unwrap();
        assert!(q.inv(4).is_err());
        assert_eq!(q.inv(5).unwrap(), 5);
    }

    #[test]
    fn centered_representative() {
        let q = Modulus::new(17).unwrap();
        assert_eq!(q.to_centered(0), 0);
        assert_eq!(q.to_centered(8), 8);
        assert_eq!(q.to_centered(9), -8);
        assert_eq!(q.to_centered(16), -1);
        assert_eq!(q.from_i64(-1), 16);
        assert_eq!(q.from_i64(-17), 0);
        assert_eq!(q.from_i64(35), 1);
    }

    #[test]
    fn shoup_matches_barrett() {
        for q in moduli() {
            let v = q.value();
            for w in [0, 1, v / 2, v - 1] {
                let s = ShoupMul::new(w, &q);
                for x in [0, 1, v / 3, v - 1] {
                    assert_eq!(s.mul(x, &q), q.mul(x, w), "q={v} w={w} x={x}");
                }
            }
        }
    }

    #[test]
    fn mul_lazy_is_within_one_correction() {
        for q in moduli() {
            let v = q.value();
            for w in [0, 1, v / 2, v - 1] {
                let s = ShoupMul::new(w, &q);
                for x in [0u64, 1, v - 1, v, 2 * v - 1, u64::MAX] {
                    let lazy = s.mul_lazy(x, &q);
                    assert!(lazy < 2 * v, "q={v} w={w} x={x} lazy={lazy}");
                    let exact = ((u128::from(x) * u128::from(w)) % u128::from(v)) as u64;
                    assert!(
                        lazy == exact || lazy == exact + v,
                        "q={v} w={w} x={x}: {lazy} vs {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn mul_add_is_consistent() {
        let q = Modulus::new(0x3fff_ffff_ffff_ffe5).unwrap();
        let (a, b, c) = (q.value() - 1, q.value() - 2, q.value() - 3);
        assert_eq!(q.mul_add(a, b, c), q.add(q.mul(a, b), c));
    }
}
