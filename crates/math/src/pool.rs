//! Pooled polynomial scratch buffers.
//!
//! The RNS hot paths (`RnsPoly::mul`, keyswitch digit products, the BFV
//! ring multiply, the VPU functional model) used to allocate a fresh
//! `Vec<u64>` for every transform and every intermediate polynomial.
//! This module replaces those allocations with a **thread-aware slab
//! pool**: fixed-length `Box<[u64]>` slabs keyed by length, borrowed as
//! ordinary `Vec<u64>`s and returned with [`recycle`].
//!
//! # Design
//!
//! - Each thread owns a private free-list (no locking on the fast
//!   path). When a thread ends — including the scoped workers
//!   `uvpu_par` spawns per parallel map — its slabs drain into a
//!   process-wide overflow pool, so buffers survive the short-lived
//!   workers and are rediscovered by later calls. The drain runs both
//!   from the thread-local destructor and from a `uvpu_par` worker-exit
//!   hook (registered under its own named slot on first use).
//! - Borrows are plain `Vec<u64>` with `len == capacity == requested
//!   length`; [`recycle`] turns them back into slabs without copying
//!   (`Vec::into_boxed_slice` is free when `len == capacity`). A `Vec`
//!   that is simply dropped is returned to the system allocator — the
//!   pool never leaks, it just misses next time.
//! - [`stats`] exposes the `kernel.pool.{hits,misses,bytes_live}`
//!   counters surfaced through the metrics snapshot advisory section.
//!
//! Because slabs are reused, [`take_scratch`] hands out buffers with
//! **unspecified contents** (stale `u64`s from a previous borrow) — use
//! it only when every element is overwritten before being read, and
//! [`take_zeroed`] / [`take_copy`] otherwise.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Pool-wide counters; see [`stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Borrows served from a free-list (no heap allocation).
    pub hits: u64,
    /// Borrows that had to allocate a fresh slab.
    pub misses: u64,
    /// Bytes currently sitting in free-lists (local + global), ready to
    /// be handed out without touching the allocator.
    pub bytes_live: u64,
    /// High-water mark of `bytes_live` over the process lifetime — the
    /// peak footprint of pooled scratch (e.g. the four-step column
    /// tiles and row copies at `N = 2¹⁷`), never reset.
    pub bytes_peak: u64,
}

/// Free-slab census for one capacity class, as reported by
/// [`class_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStats {
    /// Slab length in `u64` words (the free-list key).
    pub len: usize,
    /// Free slabs on the calling thread's local free-list.
    pub local: usize,
    /// Free slabs in the process-wide overflow pool.
    pub global: usize,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BYTES_LIVE: AtomicU64 = AtomicU64::new(0);
static BYTES_PEAK: AtomicU64 = AtomicU64::new(0);

/// Free slabs, keyed by length.
type FreeLists = HashMap<usize, Vec<Box<[u64]>>>;

/// Free slabs shared by all threads; the spill target for thread-local
/// free-lists when a worker exits.
static GLOBAL: OnceLock<Mutex<FreeLists>> = OnceLock::new();

fn global() -> MutexGuard<'static, FreeLists> {
    GLOBAL
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Upper bound on free slabs kept per length across the whole process —
/// a backstop against pathological workloads hoarding memory. Generous:
/// the deepest pipeline (keyswitch over a full RNS basis on a wide
/// worker pool) borrows well under this many scratch buffers per length.
const MAX_FREE_PER_LEN: usize = 64;

struct LocalPool {
    free: FreeLists,
}

impl Drop for LocalPool {
    fn drop(&mut self) {
        spill(&mut self.free);
    }
}

/// Moves every slab of `free` into the global pool (bounded per length).
fn spill(free: &mut FreeLists) {
    if free.is_empty() {
        return;
    }
    let mut shared = global();
    for (len, slabs) in free.drain() {
        let bucket = shared.entry(len).or_default();
        for slab in slabs {
            if bucket.len() < MAX_FREE_PER_LEN {
                bucket.push(slab);
            } else {
                BYTES_LIVE.fetch_sub(8 * len as u64, Ordering::Relaxed);
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalPool> = RefCell::new(LocalPool {
        free: HashMap::new(),
    });
}

/// Registers the pool's `uvpu_par` worker hooks exactly once.
fn ensure_hooks() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        fn on_start() {}
        uvpu_par::register_worker_hooks("uvpu-math-pool", on_start, flush_thread);
    });
}

/// Takes a slab of exactly `len` words, with **unspecified contents**
/// (stale data from a previous borrow). Every element must be written
/// before it is read; use [`take_zeroed`] when that is not guaranteed.
#[must_use]
pub fn take_scratch(len: usize) -> Vec<u64> {
    ensure_hooks();
    let hit = LOCAL.with(|l| {
        let mut pool = l.borrow_mut();
        match pool.free.get_mut(&len).and_then(Vec::pop) {
            Some(slab) => Some(slab),
            None => global().get_mut(&len).and_then(Vec::pop),
        }
    });
    match hit {
        Some(slab) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            BYTES_LIVE.fetch_sub(8 * len as u64, Ordering::Relaxed);
            slab.into_vec()
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            vec![0u64; len]
        }
    }
}

/// Takes a zero-filled slab of `len` words.
#[must_use]
pub fn take_zeroed(len: usize) -> Vec<u64> {
    let mut v = take_scratch(len);
    v.fill(0);
    v
}

/// Takes a slab initialized as a copy of `src`.
#[must_use]
pub fn take_copy(src: &[u64]) -> Vec<u64> {
    let mut v = take_scratch(src.len());
    v.copy_from_slice(src);
    v
}

/// Returns a borrowed buffer to the current thread's free-list.
///
/// Only full slabs round-trip for free (`len == capacity`, which holds
/// for anything produced by the `take_*` functions); a `Vec` that was
/// grown or shrunk is dropped instead of repacked.
pub fn recycle(v: Vec<u64>) {
    if v.is_empty() || v.len() != v.capacity() {
        return;
    }
    let len = v.len();
    let accepted = LOCAL.with(|l| {
        let mut bucket = l.borrow_mut();
        let slabs = bucket.free.entry(len).or_default();
        if slabs.len() < MAX_FREE_PER_LEN {
            slabs.push(v.into_boxed_slice());
            true
        } else {
            false
        }
    });
    if accepted {
        let live = BYTES_LIVE.fetch_add(8 * len as u64, Ordering::Relaxed) + 8 * len as u64;
        BYTES_PEAK.fetch_max(live, Ordering::Relaxed);
    }
}

/// Drains the calling thread's free-list into the global pool.
///
/// Installed as a `uvpu_par` worker-exit hook so scratch borrowed inside
/// short-lived pool workers survives into the next parallel map; safe to
/// call from any thread at any time.
pub fn flush_thread() {
    // A worker can exit after its thread-local was already destroyed
    // (destructor ordering is platform-defined); try_with tolerates it.
    let _ = LOCAL.try_with(|l| spill(&mut l.borrow_mut().free));
}

/// Current pool counters: `(hits, misses, bytes_live, bytes_peak)` as
/// surfaced in the `kernel.pool.*` metrics family.
#[must_use]
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        bytes_live: BYTES_LIVE.load(Ordering::Relaxed),
        bytes_peak: BYTES_PEAK.load(Ordering::Relaxed),
    }
}

/// Per-capacity-class census of free slabs, sorted by length: the
/// calling thread's free-list plus the global overflow pool. Advisory
/// only — other threads' local free-lists are invisible (counting them
/// would mean cross-thread locks on the fast path), so the sum can
/// undershoot `bytes_live`.
#[must_use]
pub fn class_stats() -> Vec<ClassStats> {
    let mut classes: std::collections::BTreeMap<usize, (usize, usize)> =
        std::collections::BTreeMap::new();
    let _ = LOCAL.try_with(|l| {
        for (&len, slabs) in &l.borrow().free {
            classes.entry(len).or_default().0 = slabs.len();
        }
    });
    for (&len, slabs) in global().iter() {
        classes.entry(len).or_default().1 = slabs.len();
    }
    classes
        .into_iter()
        .map(|(len, (local, global))| ClassStats { len, local, global })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_reuses_slabs() {
        // Unique length so concurrent tests cannot interfere.
        let n = 4093;
        let before = stats();
        let a = take_scratch(n);
        recycle(a);
        let b = take_scratch(n);
        let after = stats();
        assert!(
            after.hits > before.hits,
            "second borrow of a recycled length must hit"
        );
        recycle(b);
    }

    #[test]
    fn concurrent_borrows_never_alias() {
        let n = 2039;
        let a = take_scratch(n);
        let b = take_scratch(n);
        assert_ne!(
            a.as_ptr(),
            b.as_ptr(),
            "two live borrows must be distinct slabs"
        );
        recycle(a);
        recycle(b);
    }

    #[test]
    fn zeroed_and_copy_initialize() {
        let n = 509;
        // Poison a slab, recycle it, and check the next takes see clean
        // or copied data.
        let mut p = take_scratch(n);
        p.fill(0xDEAD_BEEF);
        recycle(p);
        let z = take_zeroed(n);
        assert!(z.iter().all(|&x| x == 0));
        recycle(z);
        let src: Vec<u64> = (0..n as u64).collect();
        let c = take_copy(&src);
        assert_eq!(c, src);
        recycle(c);
    }

    #[test]
    fn worker_buffers_survive_into_the_global_pool() {
        let n = 1021;
        uvpu_par::with_threads(3, || {
            let _ = uvpu_par::par_map_indexed(6, |i| {
                let s = take_scratch(n);
                let p = s.as_ptr() as usize;
                recycle(s);
                i + p % 2
            });
        });
        // After the scoped workers exited, their slabs must be reachable
        // from this thread (via the global spill), not lost.
        let before = stats();
        let again = take_scratch(n);
        let after = stats();
        assert!(after.hits > before.hits, "spilled slab should be reused");
        recycle(again);
    }

    #[test]
    fn peak_and_class_stats_see_recycled_slabs() {
        let len = 6151; // unique length so other tests don't interfere
        let a = take_scratch(len);
        recycle(a);
        let s = stats();
        assert!(
            s.bytes_peak >= 8 * len as u64,
            "peak must cover the recycled slab"
        );
        let classes = class_stats();
        let class = classes
            .iter()
            .find(|c| c.len == len)
            .expect("recycled capacity class must be visible");
        assert!(class.local + class.global >= 1);
        assert!(
            classes.windows(2).all(|w| w[0].len < w[1].len),
            "classes must be sorted by length"
        );
    }

    #[test]
    fn grown_vectors_are_not_repacked() {
        let mut v = take_scratch(17);
        v.push(0); // len != capacity now (or reallocated)
        let live_before = stats().bytes_live;
        recycle(v);
        assert!(stats().bytes_live <= live_before + 8 * 18);
    }
}
