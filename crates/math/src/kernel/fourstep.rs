//! Cache-blocked four-step (2D) decomposition of the lazy NTT kernels.
//!
//! # Layout
//!
//! A size-`N = n1·n2` polynomial is viewed **in place** as an `n1 × n2`
//! row-major matrix: element `(r, c)` lives at `a[r·n2 + c]`. No data
//! is ever transposed; the decomposition lives entirely in the loop
//! structure. The merged-ψ Cooley–Tukey stages split cleanly along the
//! matrix axes:
//!
//! - stages `m = 1 .. n1/2` (butterfly distance `t ≥ n2`) only ever
//!   pair elements in the *same column* — the **column pass**;
//! - stages `m = n1 .. N/2` (`t < n2`) only pair elements in the *same
//!   row* — the **row pass**.
//!
//! The column pass is executed over tiles of `cw` adjacent columns,
//! gathered into a contiguous `n1 × cw` pooled scratch buffer (row
//! stride `cw` instead of the conflict-miss-prone power-of-two stride
//! `n2`), transformed through all `log₂ n1` column stages, and
//! scattered back. The row pass then runs the remaining `log₂ n2`
//! stages on each naturally contiguous, cache-resident row.
//!
//! # Twiddle correction, fused by relayout
//!
//! In the classic four-step formulation the two passes are followed by
//! an explicit `ω^{r·c}` twiddle-correction multiply. Here that multiply
//! is **fused into the row pass via table relayout**: at global stage
//! `m = m'·n1`, row `r`'s block `i'` is global block `i = r·m' + i'`, so
//! its twiddle is `root_powers[m'·(n1 + r) + i']`. [`FourStepTables`]
//! precomputes, per row, the gathered sequence
//!
//! ```text
//! row_fwd[r·n2 + m' + i'] = root_powers[m'·(n1 + r) + i']   (m' = 1, 2, 4, …)
//! ```
//!
//! (a permutation of `root_powers[n1..N]`, Shoup pairs included), so the
//! row pass indexes its twiddles exactly like a standalone size-`n2`
//! transform and no correction multiply ever materializes. The inverse
//! tables mirror this with `h' = h/n1` and `inv_root_powers`.
//!
//! # Bitwise identity with the direct kernels
//!
//! Reordering the stage iteration (all column stages per tile, then all
//! row stages per row) only permutes butterflies *within* a stage and
//! regroups independent per-element dependency chains; every element
//! still traverses its stages in the original order with the original
//! operands. The lazy representatives — forward in `[0, 4q)`, inverse
//! in `[0, 2q)` — are therefore **bitwise identical** to the direct
//! kernels at every pass boundary, not merely congruent mod `q`: the
//! same fold-to-`[0, 2q)` guards fire on the same values. Debug builds
//! assert this against the fully-reduced reference on every call, and
//! the committed bench digests pin it across thread counts.
//!
//! # Parallel waves
//!
//! Column tiles and rows are mutually independent, so both passes fan
//! out over [`uvpu_par::par_map_indexed`], whose index-ordered
//! collection keeps the scatter order deterministic. Workers write into
//! pooled scratch and results are copied back in index order — the
//! bytes are identical to the sequential in-place path at any
//! `UVPU_THREADS`.

use std::convert::Infallible;

use crate::modular::{Modulus, ShoupMul};
use crate::ntt::NttTable;
use crate::pool;

/// Row length targeted by [`default_n1`]: `2¹² · 8 B = 32 KiB` rows sit
/// in L1d for the whole row pass.
pub const DEFAULT_ROW_LEN: usize = 1 << 12;

/// Column-tile budget in bytes (half a typical 64 KiB L1d, leaving room
/// for the twiddle stream).
const TILE_BYTES: usize = 1 << 15;

/// The default row/column split for a size-`n` transform: rows of
/// [`DEFAULT_ROW_LEN`], i.e. `n1 = n / 2¹²`, clamped to a valid
/// factorization (`2 ≤ n1 ≤ n/2`).
#[must_use]
pub fn default_n1(n: usize) -> usize {
    (n / DEFAULT_ROW_LEN).clamp(2, n / 2)
}

/// Width in columns of one gathered tile: as many columns as keep the
/// `n1 × cw` tile under [`TILE_BYTES`], at least 4 (the unroll width)
/// but never more than the full row (`max` before `min`, since rows
/// shorter than 4 are legal for extreme splits). Powers of two in,
/// powers of two out, so tiles always divide `n2` evenly. Shared with
/// the blocked [`crate::ntt::CyclicNtt`] column pass.
pub(crate) fn tile_cols(n1: usize, n2: usize) -> usize {
    (TILE_BYTES / (8 * n1)).max(4).min(n2)
}

/// Precomputed per-row twiddle relayouts for one `(q, n, n1)` split; see
/// the module docs for the index algebra. Obtain shared instances via
/// [`crate::cache::fourstep_tables`].
#[derive(Debug, Clone)]
pub struct FourStepTables {
    n1: usize,
    n2: usize,
    /// `row_fwd[r·n2 + m' + i'] = root_powers[m'·(n1 + r) + i']`; slot
    /// `r·n2` is padding (stage indices start at 1), kept zero.
    row_fwd: Vec<ShoupMul>,
    /// Same relayout over `inv_root_powers` (`h'` in place of `m'`).
    row_inv: Vec<ShoupMul>,
}

impl FourStepTables {
    /// Builds the relayout tables for splitting `table`'s ring into
    /// `n1` rows of `n/n1` columns.
    ///
    /// # Panics
    ///
    /// Panics unless `n1` is a power of two with `2 ≤ n1 ≤ n/2`.
    #[must_use]
    pub fn new(table: &NttTable, n1: usize) -> Self {
        let n = table.n();
        assert!(
            n1.is_power_of_two() && n1 >= 2 && n1 <= n / 2,
            "four-step split must be a power of two in [2, n/2]"
        );
        let n2 = n / n1;
        let q = table.modulus();
        let pad = ShoupMul::new(0, &q);
        let mut row_fwd = vec![pad; n];
        let mut row_inv = vec![pad; n];
        for r in 0..n1 {
            let base = r * n2;
            let mut m = 1;
            while m < n2 {
                for i in 0..m {
                    row_fwd[base + m + i] = table.root_powers[m * (n1 + r) + i];
                    row_inv[base + m + i] = table.inv_root_powers[m * (n1 + r) + i];
                }
                m *= 2;
            }
        }
        Self {
            n1,
            n2,
            row_fwd,
            row_inv,
        }
    }

    /// Number of rows (`n1`) of the decomposition.
    #[must_use]
    pub const fn n1(&self) -> usize {
        self.n1
    }

    /// Row length (`n2 = n / n1`) of the decomposition.
    #[must_use]
    pub const fn n2(&self) -> usize {
        self.n2
    }
}

/// Builds [`FourStepTables`] through a fallible constructor signature so
/// the memo in [`crate::cache`] can share the `get_or_try_insert_with`
/// plumbing; the build itself cannot fail for a valid split.
pub(crate) fn build_tables(table: &NttTable, n1: usize) -> Result<FourStepTables, Infallible> {
    Ok(FourStepTables::new(table, n1))
}

/// Four contiguous forward butterflies sharing one twiddle, plus a
/// scalar tail: the 4-wide unroll keeps four independent `mul_lazy`
/// chains in flight, which is what feeds the multiplier on rows much
/// longer than its latency.
#[inline]
fn butterflies_fwd(top: &mut [u64], bot: &mut [u64], s: ShoupMul, q: &Modulus, two_q: u64) {
    debug_assert_eq!(top.len(), bot.len());
    let mut ts = top.chunks_exact_mut(4);
    let mut bs = bot.chunks_exact_mut(4);
    for (ct, cb) in ts.by_ref().zip(bs.by_ref()) {
        let mut u0 = ct[0];
        let mut u1 = ct[1];
        let mut u2 = ct[2];
        let mut u3 = ct[3];
        if u0 >= two_q {
            u0 -= two_q;
        }
        if u1 >= two_q {
            u1 -= two_q;
        }
        if u2 >= two_q {
            u2 -= two_q;
        }
        if u3 >= two_q {
            u3 -= two_q;
        }
        let v0 = s.mul_lazy(cb[0], q);
        let v1 = s.mul_lazy(cb[1], q);
        let v2 = s.mul_lazy(cb[2], q);
        let v3 = s.mul_lazy(cb[3], q);
        ct[0] = u0 + v0;
        ct[1] = u1 + v1;
        ct[2] = u2 + v2;
        ct[3] = u3 + v3;
        cb[0] = u0 + two_q - v0;
        cb[1] = u1 + two_q - v1;
        cb[2] = u2 + two_q - v2;
        cb[3] = u3 + two_q - v3;
    }
    for (t, b) in ts
        .into_remainder()
        .iter_mut()
        .zip(bs.into_remainder().iter_mut())
    {
        let mut u = *t;
        if u >= two_q {
            u -= two_q;
        }
        let v = s.mul_lazy(*b, q);
        *t = u + v;
        *b = u + two_q - v;
    }
}

/// Inverse (Gentleman–Sande) counterpart of [`butterflies_fwd`]: values
/// stay in `[0, 2q)`, differences `u + 2q − v < 4q` feed `mul_lazy`.
#[inline]
fn butterflies_inv(top: &mut [u64], bot: &mut [u64], s: ShoupMul, q: &Modulus, two_q: u64) {
    debug_assert_eq!(top.len(), bot.len());
    let mut ts = top.chunks_exact_mut(4);
    let mut bs = bot.chunks_exact_mut(4);
    for (ct, cb) in ts.by_ref().zip(bs.by_ref()) {
        let (u0, u1, u2, u3) = (ct[0], ct[1], ct[2], ct[3]);
        let (v0, v1, v2, v3) = (cb[0], cb[1], cb[2], cb[3]);
        let mut s0 = u0 + v0;
        let mut s1 = u1 + v1;
        let mut s2 = u2 + v2;
        let mut s3 = u3 + v3;
        if s0 >= two_q {
            s0 -= two_q;
        }
        if s1 >= two_q {
            s1 -= two_q;
        }
        if s2 >= two_q {
            s2 -= two_q;
        }
        if s3 >= two_q {
            s3 -= two_q;
        }
        ct[0] = s0;
        ct[1] = s1;
        ct[2] = s2;
        ct[3] = s3;
        cb[0] = s.mul_lazy(u0 + two_q - v0, q);
        cb[1] = s.mul_lazy(u1 + two_q - v1, q);
        cb[2] = s.mul_lazy(u2 + two_q - v2, q);
        cb[3] = s.mul_lazy(u3 + two_q - v3, q);
    }
    for (t, b) in ts
        .into_remainder()
        .iter_mut()
        .zip(bs.into_remainder().iter_mut())
    {
        let u = *t;
        let v = *b;
        let mut s0 = u + v;
        if s0 >= two_q {
            s0 -= two_q;
        }
        *t = s0;
        *b = s.mul_lazy(u + two_q - v, q);
    }
}

/// Copies `cw` columns starting at `c0` of the `n1 × n2` matrix in `a`
/// into the contiguous `n1 × cw` tile.
fn gather(a: &[u64], tile: &mut [u64], n1: usize, n2: usize, c0: usize, cw: usize) {
    for r in 0..n1 {
        tile[r * cw..(r + 1) * cw].copy_from_slice(&a[r * n2 + c0..r * n2 + c0 + cw]);
    }
}

/// Inverse of [`gather`].
fn scatter(a: &mut [u64], tile: &[u64], n1: usize, n2: usize, c0: usize, cw: usize) {
    for r in 0..n1 {
        a[r * n2 + c0..r * n2 + c0 + cw].copy_from_slice(&tile[r * cw..(r + 1) * cw]);
    }
}

/// All forward column stages (`m = 1 .. n1/2`) on one gathered tile.
/// Twiddles come straight from `root_powers[..n1]` — column stages need
/// no relayout because their blocks span whole rows.
fn tile_stages_fwd(table: &NttTable, tile: &mut [u64], n1: usize, cw: usize, two_q: u64) {
    let q = table.modulus();
    let mut tr = n1;
    let mut m = 1;
    while m < n1 {
        tr /= 2;
        for i in 0..m {
            let s = table.root_powers[m + i];
            for j in 2 * i * tr..2 * i * tr + tr {
                let (top, bot) = tile.split_at_mut((j + tr) * cw);
                butterflies_fwd(&mut top[j * cw..(j + 1) * cw], &mut bot[..cw], s, &q, two_q);
            }
        }
        m *= 2;
    }
}

/// All inverse column stages (`h = n1/2 .. 1`) on one gathered tile.
fn tile_stages_inv(table: &NttTable, tile: &mut [u64], n1: usize, cw: usize, two_q: u64) {
    let q = table.modulus();
    let mut tr = 1;
    let mut m = n1;
    while m > 1 {
        let h = m / 2;
        for i in 0..h {
            let s = table.inv_root_powers[h + i];
            for j in 2 * i * tr..2 * i * tr + tr {
                let (top, bot) = tile.split_at_mut((j + tr) * cw);
                butterflies_inv(&mut top[j * cw..(j + 1) * cw], &mut bot[..cw], s, &q, two_q);
            }
        }
        tr *= 2;
        m = h;
    }
}

/// All forward row stages (`m' = 1 .. n2/2`) on one contiguous row,
/// using that row's relayout slice of [`FourStepTables::row_fwd`].
fn row_stages_fwd(rt: &[ShoupMul], row: &mut [u64], q: &Modulus, two_q: u64) {
    let n2 = row.len();
    let mut t = n2;
    let mut m = 1;
    while m < n2 {
        t /= 2;
        for i in 0..m {
            let j1 = 2 * i * t;
            let (top, bot) = row.split_at_mut(j1 + t);
            butterflies_fwd(&mut top[j1..j1 + t], &mut bot[..t], rt[m + i], q, two_q);
        }
        m *= 2;
    }
}

/// All inverse row stages (`h' = n2/2 .. 1`) on one contiguous row.
fn row_stages_inv(rt: &[ShoupMul], row: &mut [u64], q: &Modulus, two_q: u64) {
    let n2 = row.len();
    let mut t = 1;
    let mut m = n2;
    while m > 1 {
        let h = m / 2;
        let mut j1 = 0;
        for i in 0..h {
            let (top, bot) = row.split_at_mut(j1 + t);
            butterflies_inv(&mut top[j1..j1 + t], &mut bot[..t], rt[h + i], q, two_q);
            j1 += 2 * t;
        }
        t *= 2;
        m = h;
    }
}

/// Largest row count for which the sequential column pass runs **in
/// place**: the whole matrix is the degenerate `cw = n2` tile, so each
/// column stage streams contiguous row pairs with no gather/scatter
/// copies. With more rows than this, `log₂ n1` full-array streams cost
/// more than the two copies a gathered tile pays once, so the tiled
/// path takes over.
const ROWPAIR_MAX_ROWS: usize = 64;

/// The column pass, forward or inverse. A column-stage butterfly pairs
/// whole rows (contiguous `n2`-slices), so three executions are
/// available, all running the same butterflies in the same stage order
/// (hence bitwise-identical results):
///
/// - sequential with `n1 ≤` [`ROWPAIR_MAX_ROWS`]: in place, the matrix
///   itself as one `cw = n2` tile — zero copies;
/// - sequential with many rows: gathered `n1 × cw` tiles, so every
///   stage hits a compact scratch block instead of `n1` far-apart rows;
/// - parallel: the tiles fan out over `uvpu_par`, transformed as pooled
///   copies and scattered back in index order.
fn column_pass(table: &NttTable, n1: usize, n2: usize, a: &mut [u64], two_q: u64, forward: bool) {
    let run = |tile: &mut [u64], cw: usize| {
        if forward {
            tile_stages_fwd(table, tile, n1, cw, two_q);
        } else {
            tile_stages_inv(table, tile, n1, cw, two_q);
        }
    };
    if uvpu_par::max_threads() <= 1 && n1 <= ROWPAIR_MAX_ROWS {
        run(a, n2);
        return;
    }
    let tw = tile_cols(n1, n2);
    let tiles = n2.div_ceil(tw);
    if uvpu_par::max_threads() > 1 && tiles > 1 {
        let src: &[u64] = a;
        let done = uvpu_par::par_map_indexed(tiles, |ti| {
            let c0 = ti * tw;
            let cw = tw.min(n2 - c0);
            let mut tile = pool::take_scratch(n1 * cw);
            gather(src, &mut tile, n1, n2, c0, cw);
            run(&mut tile, cw);
            tile
        });
        for (ti, tile) in done.into_iter().enumerate() {
            let c0 = ti * tw;
            let cw = tw.min(n2 - c0);
            scatter(a, &tile, n1, n2, c0, cw);
            pool::recycle(tile);
        }
    } else {
        for ti in 0..tiles {
            let c0 = ti * tw;
            let cw = tw.min(n2 - c0);
            let mut tile = pool::take_scratch(n1 * cw);
            gather(a, &mut tile, n1, n2, c0, cw);
            run(&mut tile, cw);
            scatter(a, &tile, n1, n2, c0, cw);
            pool::recycle(tile);
        }
    }
}

/// The row pass, forward or inverse, fanned out over `uvpu_par`. Rows
/// are disjoint `n2`-slices; the parallel wave transforms pooled copies
/// and writes them back in index order.
fn row_pass(fs: &FourStepTables, a: &mut [u64], q: &Modulus, two_q: u64, forward: bool) {
    let (n1, n2) = (fs.n1, fs.n2);
    let tables = if forward { &fs.row_fwd } else { &fs.row_inv };
    let run = |r: usize, row: &mut [u64]| {
        let rt = &tables[r * n2..(r + 1) * n2];
        if forward {
            row_stages_fwd(rt, row, q, two_q);
        } else {
            row_stages_inv(rt, row, q, two_q);
        }
    };
    if uvpu_par::max_threads() > 1 && n1 > 1 {
        let src: &[u64] = a;
        let done = uvpu_par::par_map_indexed(n1, |r| {
            let mut row = pool::take_copy(&src[r * n2..(r + 1) * n2]);
            run(r, &mut row);
            row
        });
        for (r, row) in done.into_iter().enumerate() {
            a[r * n2..(r + 1) * n2].copy_from_slice(&row);
            pool::recycle(row);
        }
    } else {
        for r in 0..n1 {
            run(r, &mut a[r * n2..(r + 1) * n2]);
        }
    }
}

/// Four-step forward negacyclic NTT with lazy reduction: column pass
/// (stages `m < n1`) then row pass (stages `m ≥ n1`). Output is bitwise
/// identical to [`super::forward_lazy_direct`] — every element in
/// `[0, 4q)`, bit-reversed order; run [`super::correct_lazy`] to land in
/// `[0, q)`.
///
/// # Panics
///
/// Panics if `a.len() != table.n()` or `fs` was built for a different
/// ring degree.
pub fn forward_lazy(table: &NttTable, fs: &FourStepTables, a: &mut [u64]) {
    let n = table.n();
    assert_eq!(a.len(), n, "input length must equal ring degree");
    assert_eq!(
        fs.n1 * fs.n2,
        n,
        "four-step tables built for a different ring degree"
    );
    let q = table.modulus();
    debug_assert!(
        a.iter().all(|&x| x < q.value()),
        "lazy forward NTT requires canonical input"
    );
    let two_q = 2 * q.value();
    column_pass(table, fs.n1, fs.n2, a, two_q, true);
    row_pass(fs, a, &q, two_q, true);
}

/// Four-step forward negacyclic NTT into canonical `[0, q)` output —
/// byte-identical to the reference transform; debug builds assert so.
///
/// # Panics
///
/// See [`forward_lazy`].
pub fn forward_inplace(table: &NttTable, fs: &FourStepTables, a: &mut [u64]) {
    #[cfg(debug_assertions)]
    let expect = {
        let mut e = a.to_vec();
        table.forward_inplace_reference(&mut e);
        e
    };
    forward_lazy(table, fs, a);
    super::correct_lazy(&table.modulus(), a);
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        a,
        &expect[..],
        "four-step forward NTT diverged from the fully-reduced reference"
    );
}

/// Four-step inverse negacyclic NTT: row pass (stages `h ≥ n1`) then
/// column pass (stages `h < n1`), then the `N⁻¹` scaling that doubles as
/// the final correction — byte-identical to
/// [`super::inverse_inplace_direct`]; debug builds assert so.
///
/// # Panics
///
/// Panics if `a.len() != table.n()` or `fs` was built for a different
/// ring degree.
pub fn inverse_inplace(table: &NttTable, fs: &FourStepTables, a: &mut [u64]) {
    let n = table.n();
    assert_eq!(a.len(), n, "input length must equal ring degree");
    assert_eq!(
        fs.n1 * fs.n2,
        n,
        "four-step tables built for a different ring degree"
    );
    let q = table.modulus();
    debug_assert!(
        a.iter().all(|&x| x < q.value()),
        "lazy inverse NTT requires canonical input"
    );
    #[cfg(debug_assertions)]
    let expect = {
        let mut e = a.to_vec();
        table.inverse_inplace_reference(&mut e);
        e
    };
    let two_q = 2 * q.value();
    row_pass(fs, a, &q, two_q, false);
    column_pass(table, fs.n1, fs.n2, a, two_q, false);
    for x in a.iter_mut() {
        *x = table.n_inv.mul(*x, &q);
    }
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        a,
        &expect[..],
        "four-step inverse NTT diverged from the fully-reduced reference"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel;
    use crate::primes::ntt_prime;

    fn setup(n: usize, bits: u32) -> (Modulus, NttTable) {
        let q = Modulus::new(ntt_prime(bits, n).unwrap()).unwrap();
        let table = NttTable::new(q, n).unwrap();
        (q, table)
    }

    fn random_poly(mut seed: u64, n: usize, q: &Modulus) -> Vec<u64> {
        (0..n)
            .map(|_| {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q.reduce_u64(seed)
            })
            .collect()
    }

    #[test]
    fn lazy_values_bitwise_match_direct_kernel() {
        // Not just congruent: the raw [0, 4q) forward representatives
        // must equal the direct kernel's, stage reordering or not.
        let n = 1 << 10;
        let (q, table) = setup(n, 50);
        let data = random_poly(0xF0, n, &q);
        for n1 in [2usize, 8, 32, 512] {
            let fs = FourStepTables::new(&table, n1);
            let mut direct = data.clone();
            kernel::forward_lazy_direct(&table, &mut direct);
            let mut four = data.clone();
            forward_lazy(&table, &fs, &mut four);
            assert_eq!(four, direct, "n1={n1}");
        }
    }

    #[test]
    fn every_split_matches_reference_both_directions() {
        let n = 1 << 8;
        for bits in [30u32, 50] {
            let (q, table) = setup(n, bits);
            let data = random_poly(u64::from(bits), n, &q);
            let mut fwd_ref = data.clone();
            table.forward_inplace_reference(&mut fwd_ref);
            let mut inv_ref = data.clone();
            table.inverse_inplace_reference(&mut inv_ref);
            let mut n1 = 2;
            while n1 <= n / 2 {
                let fs = FourStepTables::new(&table, n1);
                let mut f = data.clone();
                forward_inplace(&table, &fs, &mut f);
                assert_eq!(f, fwd_ref, "forward n1={n1} bits={bits}");
                let mut i = data.clone();
                inverse_inplace(&table, &fs, &mut i);
                assert_eq!(i, inv_ref, "inverse n1={n1} bits={bits}");
                n1 *= 2;
            }
        }
    }

    #[test]
    fn round_trips_across_thread_counts() {
        let n = 1 << 9;
        let (q, table) = setup(n, 61);
        let data = random_poly(7, n, &q);
        let fs = FourStepTables::new(&table, 16);
        for t in [1usize, 2, 4, 7] {
            let out = uvpu_par::with_threads(t, || {
                let mut v = data.clone();
                forward_inplace(&table, &fs, &mut v);
                inverse_inplace(&table, &fs, &mut v);
                v
            });
            assert_eq!(out, data, "threads={t}");
        }
    }

    #[test]
    fn default_split_keeps_rows_at_target_length() {
        assert_eq!(default_n1(1 << 14), 4);
        assert_eq!(default_n1(1 << 16), 16);
        assert_eq!(default_n1(1 << 17), 32);
        // Clamped at the small end: never below a 2-row split.
        assert_eq!(default_n1(1 << 4), 2);
    }

    #[test]
    #[should_panic(expected = "power of two in [2, n/2]")]
    fn rejects_degenerate_split() {
        let (_, table) = setup(64, 30);
        let _ = FourStepTables::new(&table, 64);
    }
}
