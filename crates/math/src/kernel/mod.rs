//! Harvey lazy-reduction NTT kernels and fused RNS pipelines.
//!
//! The transforms in [`crate::ntt`] are the *golden model*: every
//! butterfly fully reduces into `[0, q)`. This module is the hot path
//! that [`NttTable::forward_inplace`](crate::ntt::NttTable::forward_inplace)
//! and friends actually execute — the same butterflies with **lazy
//! reduction** in the style of Harvey ("Faster arithmetic for
//! number-theoretic transforms"):
//!
//! - the forward (Cooley–Tukey, merged-ψ) transform carries values in
//!   `[0, 4q)` and defers reduction to a single correction pass at the
//!   end ([`correct_lazy`]);
//! - the inverse (Gentleman–Sande) transform carries values in `[0, 2q)`
//!   and folds the final correction into the `N⁻¹` scaling multiply;
//! - twiddle multiplies use the Shoup quotient that is already
//!   precomputed in the cached tables, via
//!   [`ShoupMul::mul_lazy`](crate::modular::ShoupMul::mul_lazy), whose
//!   result lands in `[0, 2q)` for *any* `u64` input.
//!
//! Everything fits in 64 bits because [`crate::modular::MAX_MODULUS`]
//! guarantees `q < 2⁶²`, hence `4q < 2⁶⁴`.
//!
//! # Bit-exactness and the audit mode
//!
//! Lazy reduction changes *representatives*, never residues: at every
//! butterfly the lazy value is congruent mod `q` to the golden-model
//! value, and the final correction pass maps it to the unique canonical
//! representative in `[0, q)`. The outputs are therefore **byte-identical**
//! to the reference path — which is what keeps the PR-3/PR-4 snapshot and
//! fault baselines byte-stable. In debug builds every public entry point
//! re-runs the fully-reduced reference on a copy of its input and
//! `debug_assert!`s agreement, so the whole test suite doubles as a
//! continuous audit of the invariants above.
//!
//! # Fused pipelines
//!
//! [`ntt_pointwise_intt`] (negacyclic multiply: two forwards, pointwise
//! product, one inverse, with pooled scratch) and
//! [`ntt_accumulate`] / [`ntt_accumulate_pair`] (forward once, then
//! multiply-accumulate against evaluation-domain operands) replace the
//! materialize-a-`Vec`-per-step pipelines in `RnsPoly::mul`, the
//! keyswitch digit products, and the BFV `ring_mul_q`. Scratch comes
//! from the slab pool in [`crate::pool`], so steady-state invocations
//! perform **zero heap allocations**.
//!
//! # Large rings: the four-step dispatch
//!
//! The stage-major loops below stream the whole polynomial once per
//! stage, which collapses once `8N` bytes outgrow the cache hierarchy
//! (bootstrapping-grade rings, `N = 2¹⁴..2¹⁷`). At
//! [`FOURSTEP_MIN_N`] and above, [`forward_lazy`] / [`forward_inplace`]
//! / [`inverse_inplace`] transparently reroute to the cache-blocked
//! four-step decomposition in [`fourstep`], which executes the *same*
//! butterflies in a locality-friendly order and is therefore **bitwise
//! identical** to the direct kernels — lazy intermediates included. The
//! `*_direct` entry points keep the stage-major loops reachable for
//! benches and differential tests at any size.

use crate::modular::Modulus;
use crate::ntt::NttTable;
use crate::pool;

pub mod fourstep;

/// Smallest ring degree routed to the four-step decomposition. Below
/// this, `8N` bytes sit comfortably in L1/L2 and the stage-major loops
/// win; at and above it, the tiled row/column passes do (see
/// ARCHITECTURE.md §14 for the measured crossover).
pub const FOURSTEP_MIN_N: usize = 1 << 14;

/// Forward negacyclic NTT with lazy reduction, in place.
///
/// Input: coefficients in natural order, canonical (`< q`). Output:
/// evaluations in bit-reversed order, **unreduced** — every element is
/// in `[0, 4q)` and congruent mod `q` to the golden-model output. Run
/// [`correct_lazy`] to land in `[0, q)`, or feed the lazy values
/// straight into a `u128` pointwise product (see [`ntt_pointwise_intt`]).
///
/// # Panics
///
/// Panics if `a.len() != table.n()`.
pub fn forward_lazy(table: &NttTable, a: &mut [u64]) {
    if table.n() >= FOURSTEP_MIN_N {
        let fs = crate::cache::fourstep_tables(table, fourstep::default_n1(table.n()));
        fourstep::forward_lazy(table, &fs, a);
    } else {
        forward_lazy_direct(table, a);
    }
}

/// Stage-major [`forward_lazy`] without the four-step dispatch: one full
/// sweep of the polynomial per butterfly stage, at any size. This is
/// the kernel of record for small rings and the differential baseline
/// the four-step path is benchmarked and tested against.
///
/// # Panics
///
/// Panics if `a.len() != table.n()`.
pub fn forward_lazy_direct(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    assert_eq!(a.len(), n, "input length must equal ring degree");
    let q = table.modulus();
    debug_assert!(
        a.iter().all(|&x| x < q.value()),
        "lazy forward NTT requires canonical input"
    );
    let two_q = 2 * q.value();
    let mut t = n;
    let mut m = 1;
    while m < n {
        t /= 2;
        for i in 0..m {
            let j1 = 2 * i * t;
            let s = table.root_powers[m + i];
            for j in j1..j1 + t {
                // Stage input is in [0, 4q); fold u into [0, 2q) so the
                // outputs u + v and u + 2q − v stay below 4q.
                let mut u = a[j];
                if u >= two_q {
                    u -= two_q;
                }
                // mul_lazy is valid for any u64 input and lands in [0, 2q).
                let v = s.mul_lazy(a[j + t], &q);
                a[j] = u + v;
                a[j + t] = u + two_q - v;
            }
        }
        m *= 2;
    }
}

/// Correction pass for [`forward_lazy`]: maps each element from
/// `[0, 4q)` to its canonical representative in `[0, q)`.
pub fn correct_lazy(q: &Modulus, a: &mut [u64]) {
    let qv = q.value();
    let two_q = 2 * qv;
    for x in a.iter_mut() {
        let mut y = *x;
        if y >= two_q {
            y -= two_q;
        }
        if y >= qv {
            y -= qv;
        }
        *x = y;
    }
}

/// Forward negacyclic NTT: lazy butterflies plus the final correction
/// pass, producing canonical (`[0, q)`) bit-reversed evaluations —
/// byte-identical to
/// [`NttTable::forward_inplace_reference`](crate::ntt::NttTable::forward_inplace_reference).
///
/// In debug builds the reference path is re-run on a copy of the input
/// and the results are compared (the audit mode).
///
/// # Panics
///
/// Panics if `a.len() != table.n()`.
pub fn forward_inplace(table: &NttTable, a: &mut [u64]) {
    #[cfg(debug_assertions)]
    let expect = {
        let mut e = a.to_vec();
        table.forward_inplace_reference(&mut e);
        e
    };
    forward_lazy(table, a);
    correct_lazy(&table.modulus(), a);
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        a,
        &expect[..],
        "lazy forward NTT diverged from the fully-reduced reference"
    );
}

/// [`forward_inplace`] on the stage-major path, bypassing the four-step
/// dispatch (see [`forward_lazy_direct`]).
///
/// # Panics
///
/// Panics if `a.len() != table.n()`.
pub fn forward_inplace_direct(table: &NttTable, a: &mut [u64]) {
    forward_lazy_direct(table, a);
    correct_lazy(&table.modulus(), a);
}

/// Inverse negacyclic NTT with lazy reduction, in place.
///
/// Input: evaluations in bit-reversed order, canonical (`< q`). The
/// Gentleman–Sande butterflies carry values in `[0, 2q)`; the final
/// `N⁻¹` Shoup multiply performs the last correction, so the output is
/// canonical coefficients in natural order — byte-identical to
/// [`NttTable::inverse_inplace_reference`](crate::ntt::NttTable::inverse_inplace_reference).
///
/// In debug builds the reference path audits the result.
///
/// # Panics
///
/// Panics if `a.len() != table.n()`.
pub fn inverse_inplace(table: &NttTable, a: &mut [u64]) {
    if table.n() >= FOURSTEP_MIN_N {
        let fs = crate::cache::fourstep_tables(table, fourstep::default_n1(table.n()));
        fourstep::inverse_inplace(table, &fs, a);
    } else {
        inverse_inplace_direct(table, a);
    }
}

/// Stage-major [`inverse_inplace`] without the four-step dispatch, at
/// any size (see [`forward_lazy_direct`] for why it is kept public).
///
/// # Panics
///
/// Panics if `a.len() != table.n()`.
pub fn inverse_inplace_direct(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    assert_eq!(a.len(), n, "input length must equal ring degree");
    let q = table.modulus();
    debug_assert!(
        a.iter().all(|&x| x < q.value()),
        "lazy inverse NTT requires canonical input"
    );
    #[cfg(debug_assertions)]
    let expect = {
        let mut e = a.to_vec();
        table.inverse_inplace_reference(&mut e);
        e
    };
    let two_q = 2 * q.value();
    let mut t = 1;
    let mut m = n;
    while m > 1 {
        let h = m / 2;
        let mut j1 = 0;
        for i in 0..h {
            let s = table.inv_root_powers[h + i];
            for j in j1..j1 + t {
                // u, v in [0, 2q); the sum folds back into [0, 2q) and
                // the difference u + 2q − v < 4q feeds mul_lazy.
                let u = a[j];
                let v = a[j + t];
                let mut s0 = u + v;
                if s0 >= two_q {
                    s0 -= two_q;
                }
                a[j] = s0;
                a[j + t] = s.mul_lazy(u + two_q - v, &q);
            }
            j1 += 2 * t;
        }
        t *= 2;
        m = h;
    }
    // ShoupMul::mul fully reduces, so scaling doubles as the correction
    // pass from [0, 2q) to [0, q).
    for x in a.iter_mut() {
        *x = table.n_inv.mul(*x, &q);
    }
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        a,
        &expect[..],
        "lazy inverse NTT diverged from the fully-reduced reference"
    );
}

/// Fused negacyclic ring multiply: `out = INTT(NTT(a) ⊙ NTT(b))`.
///
/// `a` and `b` are canonical coefficient-domain polynomials; `out`
/// receives the canonical coefficient-domain product. Scratch for the
/// two forward transforms is borrowed from the slab pool, so the
/// steady-state call performs zero heap allocations. Only one operand
/// is corrected after its lazy forward: the pointwise product of a
/// `[0, 4q)` value with a `[0, q)` value is below `4q² < q·2⁶⁴`, which
/// is exactly the precondition of `Modulus::reduce_u128`.
///
/// # Panics
///
/// Panics if any slice length differs from `table.n()`.
pub fn ntt_pointwise_intt(table: &NttTable, a: &[u64], b: &[u64], out: &mut [u64]) {
    let n = table.n();
    assert_eq!(a.len(), n, "input length must equal ring degree");
    assert_eq!(b.len(), n, "input length must equal ring degree");
    assert_eq!(out.len(), n, "output length must equal ring degree");
    let q = table.modulus();
    let mut fa = pool::take_copy(a);
    let mut fb = pool::take_copy(b);
    forward_lazy(table, &mut fa);
    forward_lazy(table, &mut fb);
    // One corrected operand is enough to keep the product in range.
    correct_lazy(&q, &mut fb);
    for (o, (&x, &y)) in out.iter_mut().zip(fa.iter().zip(fb.iter())) {
        *o = q.reduce_u128(u128::from(x) * u128::from(y));
    }
    pool::recycle(fa);
    pool::recycle(fb);
    inverse_inplace(table, out);
}

/// Fused evaluation-domain multiply-accumulate:
/// `acc[k] += NTT(digit)[k] · key_eval[k] (mod q)`.
///
/// `digit` is a canonical coefficient-domain polynomial; `key_eval` and
/// `acc` are canonical evaluation-domain (bit-reversed) polynomials.
/// The forward transform of `digit` stays lazy — `[0, 4q)` times a
/// canonical operand fits `reduce_u128` — so the only correction is the
/// reduction inside the accumulate itself. Scratch is pooled.
///
/// # Panics
///
/// Panics if any slice length differs from `table.n()`.
pub fn ntt_accumulate(table: &NttTable, digit: &[u64], key_eval: &[u64], acc: &mut [u64]) {
    let n = table.n();
    assert_eq!(digit.len(), n, "input length must equal ring degree");
    assert_eq!(key_eval.len(), n, "key length must equal ring degree");
    assert_eq!(acc.len(), n, "accumulator length must equal ring degree");
    let q = table.modulus();
    #[cfg(debug_assertions)]
    let expect = audit_accumulate(table, digit, key_eval, acc);
    let mut s = pool::take_copy(digit);
    forward_lazy(table, &mut s);
    for (a, (&x, &k)) in acc.iter_mut().zip(s.iter().zip(key_eval.iter())) {
        *a = q.add(*a, q.reduce_u128(u128::from(x) * u128::from(k)));
    }
    pool::recycle(s);
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        acc,
        &expect[..],
        "fused accumulate diverged from the fully-reduced reference"
    );
}

/// [`ntt_accumulate`] against two keys sharing one forward transform:
/// `acc0 += NTT(digit) ⊙ key0`, `acc1 += NTT(digit) ⊙ key1`.
///
/// This is the keyswitch inner loop — each decomposition digit is
/// multiplied against both halves of the switching key, so transforming
/// it once halves the NTT count.
///
/// # Panics
///
/// Panics if any slice length differs from `table.n()`.
pub fn ntt_accumulate_pair(
    table: &NttTable,
    digit: &[u64],
    key0: &[u64],
    key1: &[u64],
    acc0: &mut [u64],
    acc1: &mut [u64],
) {
    let n = table.n();
    assert_eq!(digit.len(), n, "input length must equal ring degree");
    assert_eq!(key0.len(), n, "key length must equal ring degree");
    assert_eq!(key1.len(), n, "key length must equal ring degree");
    assert_eq!(acc0.len(), n, "accumulator length must equal ring degree");
    assert_eq!(acc1.len(), n, "accumulator length must equal ring degree");
    let q = table.modulus();
    #[cfg(debug_assertions)]
    let expect0 = audit_accumulate(table, digit, key0, acc0);
    #[cfg(debug_assertions)]
    let expect1 = audit_accumulate(table, digit, key1, acc1);
    let mut s = pool::take_copy(digit);
    forward_lazy(table, &mut s);
    for ((a0, a1), (&x, (&k0, &k1))) in acc0
        .iter_mut()
        .zip(acc1.iter_mut())
        .zip(s.iter().zip(key0.iter().zip(key1.iter())))
    {
        *a0 = q.add(*a0, q.reduce_u128(u128::from(x) * u128::from(k0)));
        *a1 = q.add(*a1, q.reduce_u128(u128::from(x) * u128::from(k1)));
    }
    pool::recycle(s);
    #[cfg(debug_assertions)]
    {
        debug_assert_eq!(
            acc0,
            &expect0[..],
            "fused pair accumulate diverged from the fully-reduced reference"
        );
        debug_assert_eq!(
            acc1,
            &expect1[..],
            "fused pair accumulate diverged from the fully-reduced reference"
        );
    }
}

/// Reference result of an accumulate, computed on the golden-model path.
#[cfg(debug_assertions)]
fn audit_accumulate(table: &NttTable, digit: &[u64], key_eval: &[u64], acc: &[u64]) -> Vec<u64> {
    let q = table.modulus();
    let mut d = digit.to_vec();
    table.forward_inplace_reference(&mut d);
    acc.iter()
        .zip(d.iter().zip(key_eval.iter()))
        .map(|(&a, (&x, &k))| q.add(a, q.mul(x, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::naive_negacyclic_mul;
    use crate::primes::ntt_prime;

    fn setup(n: usize, bits: u32) -> (Modulus, NttTable) {
        let q = Modulus::new(ntt_prime(bits, n).unwrap()).unwrap();
        let table = NttTable::new(q, n).unwrap();
        (q, table)
    }

    #[test]
    fn lazy_forward_matches_reference_after_correction() {
        for (n, bits) in [(8usize, 20u32), (64, 30), (256, 50), (1024, 60)] {
            let (q, table) = setup(n, bits);
            let a: Vec<u64> = (0..n as u64)
                .map(|i| q.reduce_u64(i * i * 31 + 7))
                .collect();
            let mut lazy = a.clone();
            forward_lazy(&table, &mut lazy);
            assert!(lazy.iter().all(|&x| x < 4 * q.value()));
            correct_lazy(&q, &mut lazy);
            let mut reference = a;
            table.forward_inplace_reference(&mut reference);
            assert_eq!(lazy, reference, "n={n} bits={bits}");
        }
    }

    #[test]
    fn lazy_inverse_round_trips() {
        let n = 128;
        let (q, table) = setup(n, 50);
        let a: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 977 + 13)).collect();
        let mut v = a.clone();
        forward_inplace(&table, &mut v);
        inverse_inplace(&table, &mut v);
        assert_eq!(v, a);
    }

    #[test]
    fn fused_mul_matches_naive() {
        let n = 64;
        let (q, table) = setup(n, 30);
        let a: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * i + 3)).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 5 + 11)).collect();
        let expect = naive_negacyclic_mul(&a, &b, &q);
        let mut out = vec![0u64; n];
        ntt_pointwise_intt(&table, &a, &b, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn accumulate_matches_separate_ops() {
        let n = 32;
        let (q, table) = setup(n, 30);
        let digit: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 3 + 1)).collect();
        let key: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 17 + 2)).collect();
        let acc0: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i + 9)).collect();

        let mut d = digit.clone();
        table.forward_inplace_reference(&mut d);
        let expect: Vec<u64> = acc0
            .iter()
            .zip(d.iter().zip(key.iter()))
            .map(|(&a, (&x, &k))| q.add(a, q.mul(x, k)))
            .collect();

        let mut acc = acc0;
        ntt_accumulate(&table, &digit, &key, &mut acc);
        assert_eq!(acc, expect);
    }

    #[test]
    fn accumulate_pair_matches_two_singles() {
        let n = 32;
        let (q, table) = setup(n, 40);
        let digit: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 7 + 5)).collect();
        let k0: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 11 + 1)).collect();
        let k1: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 13 + 4)).collect();
        let mut s0 = vec![1u64; n];
        let mut s1 = vec![2u64; n];
        let mut p0 = s0.clone();
        let mut p1 = s1.clone();
        ntt_accumulate(&table, &digit, &k0, &mut s0);
        ntt_accumulate(&table, &digit, &k1, &mut s1);
        ntt_accumulate_pair(&table, &digit, &k0, &k1, &mut p0, &mut p1);
        assert_eq!(p0, s0);
        assert_eq!(p1, s1);
    }

    #[test]
    fn extreme_modulus_stays_in_bounds() {
        // The largest cached-prime regime: q just under 2^61 exercises
        // the 4q < 2^64 headroom.
        let n = 64;
        let (q, table) = setup(n, 61);
        let a: Vec<u64> = (0..n as u64).map(|i| q.value() - 1 - i).collect();
        let mut v = a.clone();
        forward_inplace(&table, &mut v);
        inverse_inplace(&table, &mut v);
        assert_eq!(v, a);
    }
}
