use std::fmt;

/// Errors produced by the mathematical substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MathError {
    /// The modulus is outside the supported range `[2, 2^62)`.
    ModulusOutOfRange {
        /// The offending modulus value.
        value: u64,
    },
    /// A transform length that is not a power of two was requested.
    LengthNotPowerOfTwo {
        /// The offending length.
        length: usize,
    },
    /// The modulus does not support a root of unity of the required order.
    NoRootOfUnity {
        /// The modulus searched.
        modulus: u64,
        /// The required multiplicative order.
        order: u64,
    },
    /// No prime with the requested properties was found in the search range.
    PrimeNotFound {
        /// Requested bit width.
        bits: u32,
        /// Required NTT length (the prime must be ≡ 1 mod `2 * ntt_len`).
        ntt_len: u64,
    },
    /// An element has no modular inverse (it shares a factor with the modulus).
    NotInvertible {
        /// The non-invertible element.
        value: u64,
        /// The modulus.
        modulus: u64,
    },
    /// Two operands live under different moduli or bases.
    ModulusMismatch,
    /// Operand lengths disagree.
    LengthMismatch {
        /// Left operand length.
        left: usize,
        /// Right operand length.
        right: usize,
    },
    /// An automorphism multiplier must be odd (co-prime with a power-of-two length).
    EvenMultiplier {
        /// The offending multiplier.
        multiplier: u64,
    },
    /// An RNS basis needs at least one modulus and all moduli pairwise co-prime.
    InvalidBasis(&'static str),
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ModulusOutOfRange { value } => {
                write!(f, "modulus {value} outside supported range [2, 2^62)")
            }
            Self::LengthNotPowerOfTwo { length } => {
                write!(f, "length {length} is not a power of two")
            }
            Self::NoRootOfUnity { modulus, order } => {
                write!(f, "modulus {modulus} has no root of unity of order {order}")
            }
            Self::PrimeNotFound { bits, ntt_len } => {
                write!(f, "no {bits}-bit prime congruent to 1 mod {}", 2 * ntt_len)
            }
            Self::NotInvertible { value, modulus } => {
                write!(f, "{value} is not invertible modulo {modulus}")
            }
            Self::ModulusMismatch => write!(f, "operands have mismatched moduli"),
            Self::LengthMismatch { left, right } => {
                write!(f, "operand lengths differ: {left} vs {right}")
            }
            Self::EvenMultiplier { multiplier } => {
                write!(f, "automorphism multiplier {multiplier} must be odd")
            }
            Self::InvalidBasis(why) => write!(f, "invalid RNS basis: {why}"),
        }
    }
}

impl std::error::Error for MathError {}
