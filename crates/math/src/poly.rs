//! The polynomial ring `R_q = Z_q[X]/(X^N + 1)`.
//!
//! FHE ciphertexts are pairs of `R_q` elements; this module provides the
//! ring with both representations the paper's dataflow moves between:
//! **coefficient** form (what automorphism permutes, with signs) and
//! **NTT/evaluation** form (what element-wise operations work in).

use crate::automorphism::apply_galois_coeff;
use crate::modular::{Modulus, ShoupMul};
use crate::ntt::NttTable;
use crate::{kernel, pool, MathError};

/// Which domain a polynomial's data currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Natural-order coefficients of the polynomial.
    Coefficient,
    /// Bit-reversed-order evaluations (output of the negacyclic NTT).
    Evaluation,
}

/// An element of `Z_q[X]/(X^N + 1)` tagged with its representation.
///
/// Operations validate that operands share a modulus, degree, and
/// representation, catching the classic FHE implementation bug of mixing
/// domains.
///
/// # Example
///
/// ```
/// use uvpu_math::{modular::Modulus, ntt::NttTable, poly::Poly};
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let n = 64;
/// let q = Modulus::new(uvpu_math::primes::ntt_prime(30, n)?)?;
/// let table = NttTable::new(q, n)?;
/// let a = Poly::from_coeffs(vec![1; n], q)?;
/// let b = a.clone();
/// let prod = a.to_evaluation(&table).mul(&b.to_evaluation(&table))?;
/// let coeffs = prod.to_coefficient(&table);
/// // (1 + X + … + X^{63})² has alternating-sign wraparound terms.
/// assert_eq!(coeffs.coeffs()[0], q.sub(1, 63));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<u64>,
    modulus: Modulus,
    repr: Representation,
}

impl Poly {
    /// Creates a coefficient-form polynomial, reducing each entry.
    ///
    /// # Errors
    ///
    /// [`MathError::LengthNotPowerOfTwo`] if the length is not a power of two.
    pub fn from_coeffs(mut coeffs: Vec<u64>, modulus: Modulus) -> Result<Self, MathError> {
        if !coeffs.len().is_power_of_two() {
            return Err(MathError::LengthNotPowerOfTwo {
                length: coeffs.len(),
            });
        }
        for c in &mut coeffs {
            *c = modulus.reduce_u64(*c);
        }
        Ok(Self {
            coeffs,
            modulus,
            repr: Representation::Coefficient,
        })
    }

    /// Creates an evaluation-form polynomial from already-reduced values.
    ///
    /// # Errors
    ///
    /// [`MathError::LengthNotPowerOfTwo`] if the length is not a power of two.
    pub fn from_evaluations(values: Vec<u64>, modulus: Modulus) -> Result<Self, MathError> {
        let mut p = Self::from_coeffs(values, modulus)?;
        p.repr = Representation::Evaluation;
        Ok(p)
    }

    /// Creates a coefficient-form polynomial from values already reduced
    /// into `[0, q)`, without a reduction pass — the fast path for data
    /// produced by modular arithmetic into pooled scratch.
    ///
    /// # Errors
    ///
    /// [`MathError::LengthNotPowerOfTwo`] if the length is not a power of two.
    pub fn from_reduced_coeffs(values: Vec<u64>, modulus: Modulus) -> Result<Self, MathError> {
        if !values.len().is_power_of_two() {
            return Err(MathError::LengthNotPowerOfTwo {
                length: values.len(),
            });
        }
        debug_assert!(
            values.iter().all(|&v| v < modulus.value()),
            "from_reduced_coeffs requires canonical values"
        );
        Ok(Self {
            coeffs: values,
            modulus,
            repr: Representation::Coefficient,
        })
    }

    /// Creates an evaluation-form polynomial from values already reduced
    /// into `[0, q)`, without a reduction pass — the fast path for data
    /// coming out of an NTT or a pooled kernel.
    ///
    /// # Errors
    ///
    /// [`MathError::LengthNotPowerOfTwo`] if the length is not a power of two.
    pub fn from_reduced_evaluations(values: Vec<u64>, modulus: Modulus) -> Result<Self, MathError> {
        let mut p = Self::from_reduced_coeffs(values, modulus)?;
        p.repr = Representation::Evaluation;
        Ok(p)
    }

    /// The zero polynomial in coefficient form. Its buffer is borrowed
    /// from the slab pool; return it with [`Self::recycle`] when done.
    ///
    /// # Errors
    ///
    /// [`MathError::LengthNotPowerOfTwo`] if `n` is not a power of two.
    pub fn zero(n: usize, modulus: Modulus) -> Result<Self, MathError> {
        if !n.is_power_of_two() {
            return Err(MathError::LengthNotPowerOfTwo { length: n });
        }
        Ok(Self {
            coeffs: pool::take_zeroed(n),
            modulus,
            repr: Representation::Coefficient,
        })
    }

    /// Consumes the polynomial and returns its buffer to the slab pool.
    ///
    /// Purely an optimization — dropping a `Poly` is always correct, the
    /// next borrower just pays a fresh allocation.
    pub fn recycle(self) {
        pool::recycle(self.coeffs);
    }

    /// Ring degree `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.coeffs.len()
    }

    /// The modulus.
    #[must_use]
    pub const fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// Current representation.
    #[must_use]
    pub const fn representation(&self) -> Representation {
        self.repr
    }

    /// Raw data (interpretation depends on [`Self::representation`]).
    #[must_use]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable raw data.
    #[must_use]
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// Consumes the polynomial, returning its raw data.
    #[must_use]
    pub fn into_coeffs(self) -> Vec<u64> {
        self.coeffs
    }

    fn check_compatible(&self, other: &Self) -> Result<(), MathError> {
        if self.modulus != other.modulus {
            return Err(MathError::ModulusMismatch);
        }
        if self.n() != other.n() {
            return Err(MathError::LengthMismatch {
                left: self.n(),
                right: other.n(),
            });
        }
        if self.repr != other.repr {
            return Err(MathError::ModulusMismatch);
        }
        Ok(())
    }

    /// Element-wise addition (valid in either representation). The
    /// output buffer comes from the slab pool.
    ///
    /// # Errors
    ///
    /// Mismatched modulus, degree, or representation.
    pub fn add(&self, other: &Self) -> Result<Self, MathError> {
        self.check_compatible(other)?;
        let q = self.modulus;
        let mut coeffs = pool::take_scratch(self.n());
        for (o, (&a, &b)) in coeffs.iter_mut().zip(self.coeffs.iter().zip(&other.coeffs)) {
            *o = q.add(a, b);
        }
        Ok(Self {
            coeffs,
            modulus: q,
            repr: self.repr,
        })
    }

    /// In-place element-wise addition: `self += other`.
    ///
    /// # Errors
    ///
    /// Mismatched modulus, degree, or representation (self unchanged).
    pub fn add_assign(&mut self, other: &Self) -> Result<(), MathError> {
        self.check_compatible(other)?;
        let q = self.modulus;
        for (a, &b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a = q.add(*a, b);
        }
        Ok(())
    }

    /// Element-wise subtraction. The output buffer comes from the slab
    /// pool.
    ///
    /// # Errors
    ///
    /// Mismatched modulus, degree, or representation.
    pub fn sub(&self, other: &Self) -> Result<Self, MathError> {
        self.check_compatible(other)?;
        let q = self.modulus;
        let mut coeffs = pool::take_scratch(self.n());
        for (o, (&a, &b)) in coeffs.iter_mut().zip(self.coeffs.iter().zip(&other.coeffs)) {
            *o = q.sub(a, b);
        }
        Ok(Self {
            coeffs,
            modulus: q,
            repr: self.repr,
        })
    }

    /// In-place element-wise subtraction: `self -= other`.
    ///
    /// # Errors
    ///
    /// Mismatched modulus, degree, or representation (self unchanged).
    pub fn sub_assign(&mut self, other: &Self) -> Result<(), MathError> {
        self.check_compatible(other)?;
        let q = self.modulus;
        for (a, &b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a = q.sub(*a, b);
        }
        Ok(())
    }

    /// Negation.
    #[must_use]
    pub fn neg(&self) -> Self {
        let mut out = self.clone();
        out.negate_assign();
        out
    }

    /// In-place negation.
    pub fn negate_assign(&mut self) {
        let q = self.modulus;
        for a in self.coeffs.iter_mut() {
            *a = q.neg(*a);
        }
    }

    /// Multiplication by a scalar.
    #[must_use]
    pub fn scalar_mul(&self, k: u64) -> Self {
        let mut out = self.clone();
        out.scalar_mul_assign(k);
        out
    }

    /// In-place multiplication by a scalar. The Shoup pair for `k` is
    /// computed once per call, amortizing over all `N` coefficients.
    pub fn scalar_mul_assign(&mut self, k: u64) {
        let q = self.modulus;
        let s = ShoupMul::new(q.reduce_u64(k), &q);
        for a in self.coeffs.iter_mut() {
            *a = s.mul(*a, &q);
        }
    }

    /// Ring multiplication. Both operands must be in evaluation form
    /// (where the product is element-wise); use [`Self::to_evaluation`]
    /// first for coefficient-form operands, or
    /// [`Self::negacyclic_mul`] for the fused coefficient-domain
    /// pipeline. The output buffer comes from the slab pool.
    ///
    /// # Errors
    ///
    /// Mismatched operands, or operands in coefficient form.
    pub fn mul(&self, other: &Self) -> Result<Self, MathError> {
        self.check_compatible(other)?;
        if self.repr != Representation::Evaluation {
            return Err(MathError::ModulusMismatch);
        }
        let q = self.modulus;
        let mut coeffs = pool::take_scratch(self.n());
        for (o, (&a, &b)) in coeffs.iter_mut().zip(self.coeffs.iter().zip(&other.coeffs)) {
            *o = q.mul(a, b);
        }
        Ok(Self {
            coeffs,
            modulus: q,
            repr: Representation::Evaluation,
        })
    }

    /// In-place ring multiplication: `self ⊙= other` (evaluation form).
    ///
    /// # Errors
    ///
    /// Mismatched operands, or operands in coefficient form (self
    /// unchanged).
    pub fn mul_assign(&mut self, other: &Self) -> Result<(), MathError> {
        self.check_compatible(other)?;
        if self.repr != Representation::Evaluation {
            return Err(MathError::ModulusMismatch);
        }
        let q = self.modulus;
        for (a, &b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a = q.mul(*a, b);
        }
        Ok(())
    }

    /// Fused negacyclic product of two **coefficient-form** polynomials
    /// via [`kernel::ntt_pointwise_intt`]: two lazy forward transforms,
    /// a pointwise product, one inverse — no intermediate `Poly`
    /// materializations and pooled scratch throughout.
    ///
    /// # Errors
    ///
    /// Mismatched operands, or operands in evaluation form.
    ///
    /// # Panics
    ///
    /// Panics if `table` was built for a different degree or modulus.
    pub fn negacyclic_mul(&self, other: &Self, table: &NttTable) -> Result<Self, MathError> {
        self.check_compatible(other)?;
        if self.repr != Representation::Coefficient {
            return Err(MathError::ModulusMismatch);
        }
        assert_eq!(table.modulus(), self.modulus, "NTT table modulus mismatch");
        let mut out = pool::take_scratch(self.n());
        kernel::ntt_pointwise_intt(table, &self.coeffs, &other.coeffs, &mut out);
        Ok(Self {
            coeffs: out,
            modulus: self.modulus,
            repr: Representation::Coefficient,
        })
    }

    /// Converts to evaluation form (no-op if already there).
    ///
    /// # Panics
    ///
    /// Panics if `table` was built for a different degree or modulus.
    #[must_use]
    pub fn to_evaluation(mut self, table: &NttTable) -> Self {
        assert_eq!(table.modulus(), self.modulus, "NTT table modulus mismatch");
        if self.repr == Representation::Coefficient {
            table.forward_inplace(&mut self.coeffs);
            self.repr = Representation::Evaluation;
        }
        self
    }

    /// Converts to coefficient form (no-op if already there).
    ///
    /// # Panics
    ///
    /// Panics if `table` was built for a different degree or modulus.
    #[must_use]
    pub fn to_coefficient(mut self, table: &NttTable) -> Self {
        assert_eq!(table.modulus(), self.modulus, "NTT table modulus mismatch");
        if self.repr == Representation::Evaluation {
            table.inverse_inplace(&mut self.coeffs);
            self.repr = Representation::Coefficient;
        }
        self
    }

    /// Applies the Galois automorphism `X ↦ X^g` (coefficient form only).
    ///
    /// # Errors
    ///
    /// [`MathError::EvenMultiplier`] for even `g`; representation errors
    /// if called in evaluation form (use the VPU's evaluation-domain
    /// permutation for that path).
    pub fn galois(&self, g: u64) -> Result<Self, MathError> {
        if g.is_multiple_of(2) {
            return Err(MathError::EvenMultiplier { multiplier: g });
        }
        if self.repr != Representation::Coefficient {
            return Err(MathError::ModulusMismatch);
        }
        Ok(Self {
            coeffs: apply_galois_coeff(&self.coeffs, g, &self.modulus),
            modulus: self.modulus,
            repr: Representation::Coefficient,
        })
    }

    /// `ℓ∞` norm of the centered representatives — the standard noise
    /// measure in FHE analysis.
    #[must_use]
    pub fn infinity_norm(&self) -> u64 {
        self.coeffs
            .iter()
            .map(|&c| self.modulus.to_centered(c).unsigned_abs())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::naive_negacyclic_mul;
    use crate::primes::ntt_prime;

    fn setup(n: usize) -> (Modulus, NttTable) {
        let q = Modulus::new(ntt_prime(30, n).unwrap()).unwrap();
        (q, NttTable::new(q, n).unwrap())
    }

    #[test]
    fn construction_reduces() {
        let q = Modulus::new(17).unwrap();
        let p = Poly::from_coeffs(vec![20, 34, 16, 0], q).unwrap();
        assert_eq!(p.coeffs(), &[3, 0, 16, 0]);
        assert!(Poly::from_coeffs(vec![0; 3], q).is_err());
    }

    #[test]
    fn add_sub_neg_algebra() {
        let (q, _) = setup(16);
        let a = Poly::from_coeffs((0..16).collect(), q).unwrap();
        let b = Poly::from_coeffs((100..116).collect(), q).unwrap();
        let s = a.add(&b).unwrap();
        assert_eq!(s.sub(&b).unwrap(), a);
        assert_eq!(a.add(&a.neg()).unwrap(), Poly::zero(16, q).unwrap());
    }

    #[test]
    fn mul_matches_naive() {
        let (q, table) = setup(32);
        let a: Vec<u64> = (0..32u64).map(|i| i * i + 1).collect();
        let b: Vec<u64> = (0..32u64).map(|i| 3 * i + 2).collect();
        let expect = naive_negacyclic_mul(
            &a.iter().map(|&x| q.reduce_u64(x)).collect::<Vec<_>>(),
            &b.iter().map(|&x| q.reduce_u64(x)).collect::<Vec<_>>(),
            &q,
        );
        let pa = Poly::from_coeffs(a, q).unwrap().to_evaluation(&table);
        let pb = Poly::from_coeffs(b, q).unwrap().to_evaluation(&table);
        let prod = pa.mul(&pb).unwrap().to_coefficient(&table);
        assert_eq!(prod.coeffs(), expect.as_slice());
    }

    #[test]
    fn assign_variants_match_value_variants() {
        let (q, table) = setup(16);
        let a = Poly::from_coeffs((0..16).collect(), q).unwrap();
        let b = Poly::from_coeffs((100..116).collect(), q).unwrap();

        let mut x = a.clone();
        x.add_assign(&b).unwrap();
        assert_eq!(x, a.add(&b).unwrap());

        let mut x = a.clone();
        x.sub_assign(&b).unwrap();
        assert_eq!(x, a.sub(&b).unwrap());

        let mut x = a.clone();
        x.negate_assign();
        assert_eq!(x, a.neg());

        let mut x = a.clone();
        x.scalar_mul_assign(12345);
        assert_eq!(x, a.scalar_mul(12345));

        let ea = a.clone().to_evaluation(&table);
        let eb = b.clone().to_evaluation(&table);
        let mut x = ea.clone();
        x.mul_assign(&eb).unwrap();
        assert_eq!(x, ea.mul(&eb).unwrap());

        let mut wrong = a.clone();
        assert!(wrong.add_assign(&ea).is_err());
        assert_eq!(wrong, a, "failed assign must leave self unchanged");
    }

    #[test]
    fn negacyclic_mul_matches_transform_pipeline() {
        let (q, table) = setup(32);
        let a = Poly::from_coeffs((0..32).map(|i| i * i + 1).collect(), q).unwrap();
        let b = Poly::from_coeffs((0..32).map(|i| 3 * i + 2).collect(), q).unwrap();
        let fused = a.negacyclic_mul(&b, &table).unwrap();
        let staged = a
            .clone()
            .to_evaluation(&table)
            .mul(&b.clone().to_evaluation(&table))
            .unwrap()
            .to_coefficient(&table);
        assert_eq!(fused, staged);
        assert!(
            b.clone()
                .to_evaluation(&table)
                .negacyclic_mul(&b, &table)
                .is_err(),
            "evaluation-form negacyclic_mul must fail"
        );
    }

    #[test]
    fn representation_is_enforced() {
        let (q, table) = setup(16);
        let a = Poly::from_coeffs(vec![1; 16], q).unwrap();
        let b = a.clone().to_evaluation(&table);
        assert!(a.mul(&a).is_err(), "coefficient-form mul must fail");
        assert!(a.add(&b).is_err(), "mixed-representation add must fail");
        assert!(b.galois(5).is_err(), "evaluation-form galois must fail");
    }

    #[test]
    fn galois_round_trip() {
        let (q, _) = setup(32);
        let a = Poly::from_coeffs((1..33).collect(), q).unwrap();
        let g = 5u64;
        let g_inv = crate::util::mod_inverse(g, 64).unwrap();
        assert_eq!(a.galois(g).unwrap().galois(g_inv).unwrap(), a);
    }

    #[test]
    fn scalar_mul_distributes() {
        let (q, _) = setup(16);
        let a = Poly::from_coeffs((0..16).collect(), q).unwrap();
        let b = Poly::from_coeffs((5..21).collect(), q).unwrap();
        let lhs = a.add(&b).unwrap().scalar_mul(7);
        let rhs = a.scalar_mul(7).add(&b.scalar_mul(7)).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn infinity_norm_is_centered() {
        let q = Modulus::new(17).unwrap();
        let p = Poly::from_coeffs(vec![16, 1, 8, 9], q).unwrap();
        // centered: -1, 1, 8, -8.
        assert_eq!(p.infinity_norm(), 8);
        assert_eq!(Poly::zero(4, q).unwrap().infinity_norm(), 0);
    }
}
