//! The polynomial ring `R_q = Z_q[X]/(X^N + 1)`.
//!
//! FHE ciphertexts are pairs of `R_q` elements; this module provides the
//! ring with both representations the paper's dataflow moves between:
//! **coefficient** form (what automorphism permutes, with signs) and
//! **NTT/evaluation** form (what element-wise operations work in).

use crate::automorphism::apply_galois_coeff;
use crate::modular::Modulus;
use crate::ntt::NttTable;
use crate::MathError;

/// Which domain a polynomial's data currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Natural-order coefficients of the polynomial.
    Coefficient,
    /// Bit-reversed-order evaluations (output of the negacyclic NTT).
    Evaluation,
}

/// An element of `Z_q[X]/(X^N + 1)` tagged with its representation.
///
/// Operations validate that operands share a modulus, degree, and
/// representation, catching the classic FHE implementation bug of mixing
/// domains.
///
/// # Example
///
/// ```
/// use uvpu_math::{modular::Modulus, ntt::NttTable, poly::Poly};
///
/// # fn main() -> Result<(), uvpu_math::MathError> {
/// let n = 64;
/// let q = Modulus::new(uvpu_math::primes::ntt_prime(30, n)?)?;
/// let table = NttTable::new(q, n)?;
/// let a = Poly::from_coeffs(vec![1; n], q)?;
/// let b = a.clone();
/// let prod = a.to_evaluation(&table).mul(&b.to_evaluation(&table))?;
/// let coeffs = prod.to_coefficient(&table);
/// // (1 + X + … + X^{63})² has alternating-sign wraparound terms.
/// assert_eq!(coeffs.coeffs()[0], q.sub(1, 63));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<u64>,
    modulus: Modulus,
    repr: Representation,
}

impl Poly {
    /// Creates a coefficient-form polynomial, reducing each entry.
    ///
    /// # Errors
    ///
    /// [`MathError::LengthNotPowerOfTwo`] if the length is not a power of two.
    pub fn from_coeffs(mut coeffs: Vec<u64>, modulus: Modulus) -> Result<Self, MathError> {
        if !coeffs.len().is_power_of_two() {
            return Err(MathError::LengthNotPowerOfTwo {
                length: coeffs.len(),
            });
        }
        for c in &mut coeffs {
            *c = modulus.reduce_u64(*c);
        }
        Ok(Self {
            coeffs,
            modulus,
            repr: Representation::Coefficient,
        })
    }

    /// Creates an evaluation-form polynomial from already-reduced values.
    ///
    /// # Errors
    ///
    /// [`MathError::LengthNotPowerOfTwo`] if the length is not a power of two.
    pub fn from_evaluations(values: Vec<u64>, modulus: Modulus) -> Result<Self, MathError> {
        let mut p = Self::from_coeffs(values, modulus)?;
        p.repr = Representation::Evaluation;
        Ok(p)
    }

    /// The zero polynomial in coefficient form.
    ///
    /// # Errors
    ///
    /// [`MathError::LengthNotPowerOfTwo`] if `n` is not a power of two.
    pub fn zero(n: usize, modulus: Modulus) -> Result<Self, MathError> {
        Self::from_coeffs(vec![0; n], modulus)
    }

    /// Ring degree `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.coeffs.len()
    }

    /// The modulus.
    #[must_use]
    pub const fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// Current representation.
    #[must_use]
    pub const fn representation(&self) -> Representation {
        self.repr
    }

    /// Raw data (interpretation depends on [`Self::representation`]).
    #[must_use]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable raw data.
    #[must_use]
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// Consumes the polynomial, returning its raw data.
    #[must_use]
    pub fn into_coeffs(self) -> Vec<u64> {
        self.coeffs
    }

    fn check_compatible(&self, other: &Self) -> Result<(), MathError> {
        if self.modulus != other.modulus {
            return Err(MathError::ModulusMismatch);
        }
        if self.n() != other.n() {
            return Err(MathError::LengthMismatch {
                left: self.n(),
                right: other.n(),
            });
        }
        if self.repr != other.repr {
            return Err(MathError::ModulusMismatch);
        }
        Ok(())
    }

    /// Element-wise addition (valid in either representation).
    ///
    /// # Errors
    ///
    /// Mismatched modulus, degree, or representation.
    pub fn add(&self, other: &Self) -> Result<Self, MathError> {
        self.check_compatible(other)?;
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| self.modulus.add(a, b))
            .collect();
        Ok(Self {
            coeffs,
            modulus: self.modulus,
            repr: self.repr,
        })
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Mismatched modulus, degree, or representation.
    pub fn sub(&self, other: &Self) -> Result<Self, MathError> {
        self.check_compatible(other)?;
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| self.modulus.sub(a, b))
            .collect();
        Ok(Self {
            coeffs,
            modulus: self.modulus,
            repr: self.repr,
        })
    }

    /// Negation.
    #[must_use]
    pub fn neg(&self) -> Self {
        Self {
            coeffs: self.coeffs.iter().map(|&a| self.modulus.neg(a)).collect(),
            modulus: self.modulus,
            repr: self.repr,
        }
    }

    /// Multiplication by a scalar.
    #[must_use]
    pub fn scalar_mul(&self, k: u64) -> Self {
        let k = self.modulus.reduce_u64(k);
        Self {
            coeffs: self
                .coeffs
                .iter()
                .map(|&a| self.modulus.mul(a, k))
                .collect(),
            modulus: self.modulus,
            repr: self.repr,
        }
    }

    /// Ring multiplication. Both operands must be in evaluation form
    /// (where the product is element-wise); use [`Self::to_evaluation`]
    /// first for coefficient-form operands.
    ///
    /// # Errors
    ///
    /// Mismatched operands, or operands in coefficient form.
    pub fn mul(&self, other: &Self) -> Result<Self, MathError> {
        self.check_compatible(other)?;
        if self.repr != Representation::Evaluation {
            return Err(MathError::ModulusMismatch);
        }
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| self.modulus.mul(a, b))
            .collect();
        Ok(Self {
            coeffs,
            modulus: self.modulus,
            repr: Representation::Evaluation,
        })
    }

    /// Converts to evaluation form (no-op if already there).
    ///
    /// # Panics
    ///
    /// Panics if `table` was built for a different degree or modulus.
    #[must_use]
    pub fn to_evaluation(mut self, table: &NttTable) -> Self {
        assert_eq!(table.modulus(), self.modulus, "NTT table modulus mismatch");
        if self.repr == Representation::Coefficient {
            table.forward_inplace(&mut self.coeffs);
            self.repr = Representation::Evaluation;
        }
        self
    }

    /// Converts to coefficient form (no-op if already there).
    ///
    /// # Panics
    ///
    /// Panics if `table` was built for a different degree or modulus.
    #[must_use]
    pub fn to_coefficient(mut self, table: &NttTable) -> Self {
        assert_eq!(table.modulus(), self.modulus, "NTT table modulus mismatch");
        if self.repr == Representation::Evaluation {
            table.inverse_inplace(&mut self.coeffs);
            self.repr = Representation::Coefficient;
        }
        self
    }

    /// Applies the Galois automorphism `X ↦ X^g` (coefficient form only).
    ///
    /// # Errors
    ///
    /// [`MathError::EvenMultiplier`] for even `g`; representation errors
    /// if called in evaluation form (use the VPU's evaluation-domain
    /// permutation for that path).
    pub fn galois(&self, g: u64) -> Result<Self, MathError> {
        if g.is_multiple_of(2) {
            return Err(MathError::EvenMultiplier { multiplier: g });
        }
        if self.repr != Representation::Coefficient {
            return Err(MathError::ModulusMismatch);
        }
        Ok(Self {
            coeffs: apply_galois_coeff(&self.coeffs, g, &self.modulus),
            modulus: self.modulus,
            repr: Representation::Coefficient,
        })
    }

    /// `ℓ∞` norm of the centered representatives — the standard noise
    /// measure in FHE analysis.
    #[must_use]
    pub fn infinity_norm(&self) -> u64 {
        self.coeffs
            .iter()
            .map(|&c| self.modulus.to_centered(c).unsigned_abs())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::naive_negacyclic_mul;
    use crate::primes::ntt_prime;

    fn setup(n: usize) -> (Modulus, NttTable) {
        let q = Modulus::new(ntt_prime(30, n).unwrap()).unwrap();
        (q, NttTable::new(q, n).unwrap())
    }

    #[test]
    fn construction_reduces() {
        let q = Modulus::new(17).unwrap();
        let p = Poly::from_coeffs(vec![20, 34, 16, 0], q).unwrap();
        assert_eq!(p.coeffs(), &[3, 0, 16, 0]);
        assert!(Poly::from_coeffs(vec![0; 3], q).is_err());
    }

    #[test]
    fn add_sub_neg_algebra() {
        let (q, _) = setup(16);
        let a = Poly::from_coeffs((0..16).collect(), q).unwrap();
        let b = Poly::from_coeffs((100..116).collect(), q).unwrap();
        let s = a.add(&b).unwrap();
        assert_eq!(s.sub(&b).unwrap(), a);
        assert_eq!(a.add(&a.neg()).unwrap(), Poly::zero(16, q).unwrap());
    }

    #[test]
    fn mul_matches_naive() {
        let (q, table) = setup(32);
        let a: Vec<u64> = (0..32u64).map(|i| i * i + 1).collect();
        let b: Vec<u64> = (0..32u64).map(|i| 3 * i + 2).collect();
        let expect = naive_negacyclic_mul(
            &a.iter().map(|&x| q.reduce_u64(x)).collect::<Vec<_>>(),
            &b.iter().map(|&x| q.reduce_u64(x)).collect::<Vec<_>>(),
            &q,
        );
        let pa = Poly::from_coeffs(a, q).unwrap().to_evaluation(&table);
        let pb = Poly::from_coeffs(b, q).unwrap().to_evaluation(&table);
        let prod = pa.mul(&pb).unwrap().to_coefficient(&table);
        assert_eq!(prod.coeffs(), expect.as_slice());
    }

    #[test]
    fn representation_is_enforced() {
        let (q, table) = setup(16);
        let a = Poly::from_coeffs(vec![1; 16], q).unwrap();
        let b = a.clone().to_evaluation(&table);
        assert!(a.mul(&a).is_err(), "coefficient-form mul must fail");
        assert!(a.add(&b).is_err(), "mixed-representation add must fail");
        assert!(b.galois(5).is_err(), "evaluation-form galois must fail");
    }

    #[test]
    fn galois_round_trip() {
        let (q, _) = setup(32);
        let a = Poly::from_coeffs((1..33).collect(), q).unwrap();
        let g = 5u64;
        let g_inv = crate::util::mod_inverse(g, 64).unwrap();
        assert_eq!(a.galois(g).unwrap().galois(g_inv).unwrap(), a);
    }

    #[test]
    fn scalar_mul_distributes() {
        let (q, _) = setup(16);
        let a = Poly::from_coeffs((0..16).collect(), q).unwrap();
        let b = Poly::from_coeffs((5..21).collect(), q).unwrap();
        let lhs = a.add(&b).unwrap().scalar_mul(7);
        let rhs = a.scalar_mul(7).add(&b.scalar_mul(7)).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn infinity_norm_is_centered() {
        let q = Modulus::new(17).unwrap();
        let p = Poly::from_coeffs(vec![16, 1, 8, 9], q).unwrap();
        // centered: -1, 1, 8, -8.
        assert_eq!(p.infinity_norm(), 8);
        assert_eq!(Poly::zero(4, q).unwrap().infinity_norm(), 0);
    }
}
