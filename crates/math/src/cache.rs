//! Process-wide plan caches for expensive precomputed tables.
//!
//! Every [`CkksContext`]-style consumer used to rebuild its
//! [`NttTable`]s from scratch; benches sweeping `(q, n)` grids paid the
//! root search and twiddle generation over and over. These memos
//! (backed by [`uvpu_par::Memo`], a sharded `Mutex<HashMap>` behind a
//! `OnceLock`) build each table once per process and hand out shared
//! [`Arc`]s, safe to use from any pool worker.
//!
//! Keys are `(q.value(), n)` — a [`Modulus`] is fully determined by its
//! value, so the Barrett ratio never needs to participate in the key.
//!
//! [`CkksContext`]: ../../uvpu_ckks/params/struct.CkksContext.html

use std::sync::Arc;

use uvpu_par::Memo;

use crate::kernel::fourstep::{self, FourStepTables};
use crate::modular::Modulus;
use crate::ntt::{CyclicNtt, NttTable};
use crate::MathError;

static NTT_TABLES: Memo<(u64, usize), NttTable> = Memo::new();
static CYCLIC_NTTS: Memo<(u64, usize), CyclicNtt> = Memo::new();
static FOURSTEP_TABLES: Memo<(u64, usize, usize), FourStepTables> = Memo::new();

/// Returns the process-wide negacyclic [`NttTable`] for `(q, n)`,
/// building it on first use.
///
/// # Errors
///
/// Propagates [`NttTable::new`]'s errors (length not a power of two, no
/// `2n`-th root of unity mod `q`); failures are not cached.
pub fn ntt_table(q: Modulus, n: usize) -> Result<Arc<NttTable>, MathError> {
    NTT_TABLES.get_or_try_insert_with(&(q.value(), n), || NttTable::new(q, n))
}

/// Returns the process-wide cyclic [`CyclicNtt`] for `(q, n)`, building
/// it on first use.
///
/// # Errors
///
/// Propagates [`CyclicNtt::new`]'s errors; failures are not cached.
pub fn cyclic_ntt(q: Modulus, n: usize) -> Result<Arc<CyclicNtt>, MathError> {
    CYCLIC_NTTS.get_or_try_insert_with(&(q.value(), n), || CyclicNtt::new(q, n))
}

/// Returns the process-wide four-step relayout tables for splitting
/// `table`'s ring into `n1` rows of `n/n1` columns, building them on
/// first use. Keyed by `(q, n, n1)`: the relayout is fully determined
/// by the (deterministically constructed) base table and the split.
///
/// # Panics
///
/// Panics if `n1` is not a power of two in `[2, n/2]` (see
/// [`FourStepTables::new`]).
#[must_use]
pub fn fourstep_tables(table: &NttTable, n1: usize) -> Arc<FourStepTables> {
    let key = (table.modulus().value(), table.n(), n1);
    match FOURSTEP_TABLES.get_or_try_insert_with(&key, || fourstep::build_tables(table, n1)) {
        Ok(tables) => tables,
        Err(infallible) => match infallible {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::ntt_prime;

    #[test]
    fn cached_tables_are_shared_and_correct() {
        let q = Modulus::new(ntt_prime(30, 1 << 8).unwrap()).unwrap();
        let a = ntt_table(q, 1 << 8).unwrap();
        let b = ntt_table(q, 1 << 8).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same (q, n) ⇒ same table");

        let fresh = NttTable::new(q, 1 << 8).unwrap();
        let mut x: Vec<u64> = (0..1 << 8).collect();
        let mut y = x.clone();
        a.forward_inplace(&mut x);
        fresh.forward_inplace(&mut y);
        assert_eq!(x, y, "cached table computes the same transform");
    }

    #[test]
    fn cyclic_cache_round_trips() {
        let q = Modulus::new(97).unwrap();
        let ntt = cyclic_ntt(q, 16).unwrap();
        assert!(Arc::ptr_eq(&ntt, &cyclic_ntt(q, 16).unwrap()));
        let mut a: Vec<u64> = (0..16).collect();
        let orig = a.clone();
        ntt.forward_inplace(&mut a);
        ntt.inverse_inplace(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn errors_are_not_cached() {
        let q = Modulus::new(97).unwrap();
        assert!(ntt_table(q, 12).is_err(), "non-power-of-two length");
        assert!(cyclic_ntt(q, 64).is_err(), "97 has no 64th root of unity");
    }
}
