//! The versioned `uvpu-compare/v1` comparison-report schema.
//!
//! A report is the machine-readable result of replaying one workload's
//! trace through every backend's cost model. Like the metrics snapshots
//! it is **deterministic by construction**: fixed field order, sorted
//! backend and phase keys, and the *same* fixed-precision formatters as
//! `uvpu-metrics` ([`fmt_pj`](uvpu_metrics::snapshot::fmt_pj),
//! [`fmt_ratio`](uvpu_metrics::snapshot::fmt_ratio)) — so the `Ours`
//! column of a comparison report reproduces the metrics snapshot of the
//! same workload digit for digit, and repeated runs at any
//! `UVPU_THREADS` produce byte-identical text.
//!
//! ## Versioning rules
//!
//! The `"schema"` field is `uvpu-compare/v<N>`. Any change that alters
//! the rendered bytes of the deterministic core for an unchanged
//! workload — a new or renamed field, a float precision change, a
//! cost-model recalibration, adding or removing a backend — must bump
//! `N` **and** regenerate the committed `BENCH_compare_baseline*.json`
//! files in the same commit. Advisory-only changes don't bump the
//! version. The `scripts/bench_compare.sh` gate compares byte-for-byte,
//! so unversioned drift fails loudly.
//!
//! ## Adding a backend
//!
//! 1. Add a [`BackendKind`](uvpu_hw_model::cost::BackendKind) variant
//!    with its structural parameters and citation, and extend
//!    `BackendKind::ALL` + the `BackendModel::new` match;
//! 2. the suite sink and this report pick it up automatically (keys are
//!    sorted by backend name);
//! 3. bump the schema version and regenerate the baselines — a new
//!    backend changes the rendered bytes.
//!
//! ## Layout (2-space indent)
//!
//! ```json
//! {
//!   "schema": "uvpu-compare/v1",
//!   "workload": "ckks_mul_rescale",
//!   "variant": "full",
//!   "lanes": 64,
//!   "backends": {
//!     "<name>": {
//!       "provenance": "…",
//!       "model": { "network_area_um2": …, "network_power_mw": …, "vpu_area_um2": …, "vpu_power_mw": … },
//!       "cycles": { "butterfly": …, …, "utilization": … },
//!       "energy": { "components_pj": { … }, "total_pj": … },
//!       "phases": { "<span name>": {"cycles": { … }, "components_pj": { … }}, … }
//!     }, …
//!   },
//!   "ratios_vs_ours": {
//!     "<name>": { "cycles": …, "energy_pj": …, "network_area": …, "network_power": …, "vpu_area": …, "vpu_power": … }, …
//!   }
//! }
//! ```
//!
//! Backend keys sort alphabetically (ARK, BASALISC, BTS, F1, Ours, RPU,
//! SHARP). Ratios are `backend / Ours`, so the Ours row reads
//! `1.000000` everywhere and a value above one is a cost — more cycles,
//! more energy, more area — relative to the paper's design.

use crate::sink::{BackendLane, CompareSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use uvpu_hw_model::cost::{CostComponent, CostModel};
use uvpu_metrics::snapshot::{cycle_stats_json, escape, fmt_pj, fmt_ratio};

/// Current schema identifier.
pub const SCHEMA: &str = "uvpu-compare/v1";

/// Fixed-precision rendering for the model's area/power statics — two
/// decimals, matching the paper's tables.
#[must_use]
pub fn fmt_model(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders one backend's per-component energy as a single-line JSON
/// object (keys in [`CostComponent::ALL`] order — the metrics snapshot
/// order, not alphabetical, so the bins read in datapath order).
fn components_pj_json(lane: &BackendLane) -> String {
    let mut out = String::from("{");
    for (i, c) in CostComponent::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "\"{}\": {}",
            c.name(),
            fmt_pj(lane.model().component_pj(*c, lane.components()[c.index()]))
        );
    }
    out.push('}');
    out
}

fn phase_components_pj_json(lane: &BackendLane, components: &[u64]) -> String {
    let mut out = String::from("{");
    for (i, c) in CostComponent::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "\"{}\": {}",
            c.name(),
            fmt_pj(lane.model().component_pj(*c, components[c.index()]))
        );
    }
    out.push('}');
    out
}

fn ratio_or_null(numer: f64, denom: f64) -> String {
    if denom == 0.0 {
        "null".to_string()
    } else {
        fmt_ratio(numer / denom)
    }
}

/// Renders the deterministic report core (no advisory section; ends
/// with `}` and a newline). Compose with the shared
/// [`with_advisory`](uvpu_metrics::snapshot::with_advisory) /
/// [`strip_advisory`](uvpu_metrics::snapshot::strip_advisory) /
/// [`diff_context`](uvpu_metrics::snapshot::diff_context) helpers for
/// run-dependent fields and baseline gating.
///
/// # Panics
///
/// Panics if the sink models no "Ours" backend (ratios need the
/// reference column).
#[must_use]
pub fn render(sink: &CompareSink, workload: &str, variant: &str) -> String {
    let ours = sink.ours();
    let by_name: BTreeMap<&str, &BackendLane> = sink
        .backends()
        .iter()
        .map(|b| (b.model().name(), b))
        .collect();

    let mut out = String::with_capacity(8192);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{}\",", escape(SCHEMA));
    let _ = writeln!(out, "  \"workload\": \"{}\",", escape(workload));
    let _ = writeln!(out, "  \"variant\": \"{}\",", escape(variant));
    let _ = writeln!(out, "  \"lanes\": {},", sink.lanes());

    out.push_str("  \"backends\": {\n");
    for (i, (name, lane)) in by_name.iter().enumerate() {
        let model = lane.model();
        let _ = writeln!(out, "    \"{}\": {{", escape(name));
        let _ = writeln!(
            out,
            "      \"provenance\": \"{}\",",
            escape(model.provenance())
        );
        let _ = writeln!(
            out,
            "      \"model\": {{\"network_area_um2\": {}, \"network_power_mw\": {}, \"vpu_area_um2\": {}, \"vpu_power_mw\": {}}},",
            fmt_model(model.network_area_um2()),
            fmt_model(model.network_power_mw()),
            fmt_model(model.vpu_area_um2()),
            fmt_model(model.vpu_power_mw())
        );
        let _ = writeln!(
            out,
            "      \"cycles\": {},",
            cycle_stats_json(lane.cycles())
        );
        let _ = writeln!(
            out,
            "      \"energy\": {{\"components_pj\": {}, \"total_pj\": {}}},",
            components_pj_json(lane),
            fmt_pj(lane.energy_total_pj())
        );
        if lane.phases().is_empty() {
            out.push_str("      \"phases\": {}\n");
        } else {
            out.push_str("      \"phases\": {\n");
            let n = lane.phases().len();
            for (j, (phase, bins)) in lane.phases().iter().enumerate() {
                let _ = write!(
                    out,
                    "        \"{}\": {{\"cycles\": {}, \"components_pj\": {}}}",
                    escape(phase),
                    cycle_stats_json(&bins.cycles),
                    phase_components_pj_json(lane, &bins.components)
                );
                out.push_str(if j + 1 < n { ",\n" } else { "\n" });
            }
            out.push_str("      }\n");
        }
        out.push_str(if i + 1 < by_name.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  },\n");

    // Derived ratios: backend / Ours. Above 1.0 = costlier than the
    // paper's design.
    let ours_model = ours.model();
    out.push_str("  \"ratios_vs_ours\": {\n");
    for (i, (name, lane)) in by_name.iter().enumerate() {
        let model = lane.model();
        let _ = write!(
            out,
            "    \"{}\": {{\"cycles\": {}, \"energy_pj\": {}, \"network_area\": {}, \"network_power\": {}, \"vpu_area\": {}, \"vpu_power\": {}}}",
            escape(name),
            ratio_or_null(lane.cycles().total() as f64, ours.cycles().total() as f64),
            ratio_or_null(lane.energy_total_pj(), ours.energy_total_pj()),
            ratio_or_null(model.network_area_um2(), ours_model.network_area_um2()),
            ratio_or_null(model.network_power_mw(), ours_model.network_power_mw()),
            ratio_or_null(model.vpu_area_um2(), ours_model.vpu_area_um2()),
            ratio_or_null(model.vpu_power_mw(), ours_model.vpu_power_mw())
        );
        out.push_str(if i + 1 < by_name.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n");

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_core::trace::{BeatKind, MemDir, NetKind, TraceSink};
    use uvpu_metrics::profiler::ProfilerSink;
    use uvpu_metrics::snapshot::{diff_context, strip_advisory, with_advisory};

    fn sample_sink() -> CompareSink {
        let mut sink = CompareSink::suite(64);
        sink.span_begin(0, 0, "ntt.forward");
        sink.beats(0, 0, BeatKind::Butterfly, 96);
        sink.beats(0, 96, BeatKind::NetworkMove(NetKind::Shift), 32);
        sink.span_end(0, 128, "ntt.forward");
        sink.mem(0, 128, MemDir::Load, 0, 64);
        sink
    }

    /// Cheap structural validity probe: balanced braces outside strings.
    fn assert_balanced_json(json: &str) {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced at: …{json}");
        }
        assert_eq!(depth, 0, "unbalanced: {json}");
        assert!(!in_str);
    }

    #[test]
    fn render_is_valid_sorted_and_repeatable() {
        let sink = sample_sink();
        let a = render(&sink, "unit", "test");
        assert_eq!(a, render(&sink, "unit", "test"));
        assert_balanced_json(&a);
        assert!(a.starts_with("{\n  \"schema\": \"uvpu-compare/v1\""));
        // Backend keys in sorted order.
        let order = ["ARK", "BASALISC", "BTS", "F1", "Ours", "RPU", "SHARP"];
        let mut last = 0;
        for name in order {
            let pos = a.find(&format!("\"{name}\": {{")).unwrap_or_else(|| {
                panic!("backend {name} missing from report");
            });
            assert!(pos > last, "{name} out of order");
            last = pos;
        }
        // Ours ratios are exactly 1.
        assert!(a.contains("\"Ours\": {\"cycles\": 1.000000, \"energy_pj\": 1.000000"));
    }

    #[test]
    fn ours_column_matches_the_metrics_snapshot() {
        // The energy numbers in the Ours column must be the exact
        // strings the metrics snapshot prints for the same stream.
        let sink = sample_sink();
        let mut p = ProfilerSink::new(64);
        p.span_begin(0, 0, "ntt.forward");
        p.beats(0, 0, BeatKind::Butterfly, 96);
        p.beats(0, 96, BeatKind::NetworkMove(NetKind::Shift), 32);
        p.span_end(0, 128, "ntt.forward");
        p.mem(0, 128, MemDir::Load, 0, 64);
        let report = render(&sink, "unit", "test");
        let snapshot = p.snapshot("unit", "test");
        // Both documents contain the identical cycles line…
        let cycles = cycle_stats_json(p.running());
        assert!(report.contains(&format!("\"cycles\": {cycles}")));
        assert!(snapshot.contains(&cycles));
        // …and identical per-component energy strings.
        for c in uvpu_metrics::energy::Component::ALL {
            let rendered = fmt_pj(p.component_pj(c));
            let key = format!("\"{}\": {}", c.name(), rendered);
            assert!(snapshot.contains(&key), "metrics: {key}");
            assert!(report.contains(&key), "compare: {key}");
        }
        let total = fmt_pj(p.energy_total_pj());
        assert!(report.contains(&format!("\"total_pj\": {total}")));
    }

    #[test]
    fn ratios_flag_costlier_backends() {
        let sink = sample_sink();
        let report = render(&sink, "unit", "test");
        // F1's network is bigger and its cycles higher: every ratio in
        // its row must exceed 1.
        let row = report
            .lines()
            .find(|l| l.trim_start().starts_with("\"F1\": {\"cycles\""))
            .expect("F1 ratio row");
        for field in ["cycles", "energy_pj", "network_area", "network_power"] {
            let tag = format!("\"{field}\": ");
            let start = row.find(&tag).expect(field) + tag.len();
            let value: f64 = row[start..]
                .split([',', '}'])
                .next()
                .unwrap()
                .parse()
                .expect(field);
            assert!(value > 1.0, "F1 {field} ratio {value}");
        }
    }

    #[test]
    fn advisory_helpers_compose() {
        let sink = sample_sink();
        let core = render(&sink, "unit", "test");
        let full = with_advisory(&core, &[("wall_ms", "3.25".to_string())]);
        assert_balanced_json(&full);
        assert_eq!(strip_advisory(&full), core);
        assert!(diff_context(&core, &full, 3, 10).is_empty());
        let drifted = core.replacen("\"lanes\": 64", "\"lanes\": 32", 1);
        assert!(!diff_context(&core, &drifted, 3, 10).is_empty());
    }

    #[test]
    fn empty_sink_renders_cleanly() {
        let sink = CompareSink::suite(4);
        let report = render(&sink, "empty", "test");
        assert_balanced_json(&report);
        assert!(report.contains("\"phases\": {}"));
        assert!(report.contains("\"utilization\": null"));
        // Zero totals: cycle/energy ratios are null, statics still real.
        assert!(report.contains("\"cycles\": null, \"energy_pj\": null"));
    }
}
