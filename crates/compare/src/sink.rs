//! The comparison sink: one trace stream, every backend's ledger.
//!
//! [`CompareSink`] holds one [`BackendLane`] per modeled backend. Each
//! trace event is charged into every lane through that lane's
//! [`CostModel`]: beats add backend-specific cycles (per-beat integer
//! factors) and component activations; register-file transfers add
//! word counts; spans snapshot each lane at `span_begin` and attribute
//! the delta at `span_end`, exactly like the `uvpu-metrics` profiler.
//!
//! Everything accumulated here is an integer, so attribution is
//! independent of event arrival order across worker threads (the same
//! argument as the PR-3 profiler: addition of `u64` counters commutes).

use std::collections::BTreeMap;
use uvpu_core::stats::CycleStats;
use uvpu_core::trace::{BeatKind, MemDir, TraceSink};
use uvpu_hw_model::cost::{BackendModel, CostModel, COST_COMPONENTS};
use uvpu_hw_model::tech::TechParams;

/// Integer cycle/component bins of one phase (span name) on one backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBins {
    /// Cycles the backend spends inside spans of this name.
    pub cycles: CycleStats,
    /// Component activations charged inside spans of this name.
    pub components: [u64; COST_COMPONENTS],
}

/// One backend's running ledger.
#[derive(Debug, Clone)]
pub struct BackendLane {
    model: BackendModel,
    cycles: CycleStats,
    components: [u64; COST_COMPONENTS],
    phases: BTreeMap<String, PhaseBins>,
}

impl BackendLane {
    /// The cost model this lane charges through.
    #[must_use]
    pub const fn model(&self) -> &BackendModel {
        &self.model
    }

    /// Total cycles this backend needs for the replayed stream.
    #[must_use]
    pub const fn cycles(&self) -> &CycleStats {
        &self.cycles
    }

    /// Total component activation counts (beats; words for the
    /// register-file bin).
    #[must_use]
    pub const fn components(&self) -> &[u64; COST_COMPONENTS] {
        &self.components
    }

    /// Per-phase attribution keyed by span name.
    #[must_use]
    pub const fn phases(&self) -> &BTreeMap<String, PhaseBins> {
        &self.phases
    }

    /// Total energy this backend dissipates (pJ), priced at call time.
    #[must_use]
    pub fn energy_total_pj(&self) -> f64 {
        uvpu_hw_model::cost::CostComponent::ALL
            .iter()
            .map(|&c| self.model.component_pj(c, self.components[c.index()]))
            .sum()
    }
}

#[derive(Debug, Clone)]
struct OpenSpan {
    track: u32,
    name: String,
    /// Per-lane `(cycles, components)` snapshot at `span_begin`, in
    /// lane order.
    at_begin: Vec<(CycleStats, [u64; COST_COMPONENTS])>,
}

/// A [`TraceSink`] attributing one event stream to every modeled
/// backend in a single pass.
///
/// See the [crate docs](crate) for the determinism argument and the
/// [module docs](self) for the charging model.
#[derive(Debug, Clone)]
pub struct CompareSink {
    lanes: usize,
    backends: Vec<BackendLane>,
    open: Vec<OpenSpan>,
    unmatched_ends: u64,
}

impl CompareSink {
    /// The standard seven-backend suite (the paper's five designs plus
    /// RPU and BASALISC) at `m` lanes, priced with the calibrated ASAP7
    /// constants.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two ≥ 4.
    #[must_use]
    pub fn suite(m: usize) -> Self {
        Self::with_models(m, BackendModel::suite(m, &TechParams::asap7()))
    }

    /// A sink over an explicit backend list (all must model `m` lanes).
    ///
    /// # Panics
    ///
    /// Panics if any model's lane count differs from `m`.
    #[must_use]
    pub fn with_models(m: usize, models: Vec<BackendModel>) -> Self {
        let backends = models
            .into_iter()
            .map(|model| {
                assert_eq!(model.lanes(), m, "{} models a different VPU", model.name());
                BackendLane {
                    model,
                    cycles: CycleStats::new(),
                    components: [0; COST_COMPONENTS],
                    phases: BTreeMap::new(),
                }
            })
            .collect();
        Self {
            lanes: m,
            backends,
            open: Vec::new(),
            unmatched_ends: 0,
        }
    }

    /// Lane count of the modeled VPUs.
    #[must_use]
    pub const fn lanes(&self) -> usize {
        self.lanes
    }

    /// All backend ledgers, in construction order.
    #[must_use]
    pub fn backends(&self) -> &[BackendLane] {
        &self.backends
    }

    /// The ledger of the backend named `name`, if modeled.
    #[must_use]
    pub fn backend(&self, name: &str) -> Option<&BackendLane> {
        self.backends.iter().find(|b| b.model.name() == name)
    }

    /// The paper's design — present in every [`suite`](Self::suite).
    ///
    /// # Panics
    ///
    /// Panics if the sink was built without an "Ours" backend.
    #[must_use]
    pub fn ours(&self) -> &BackendLane {
        self.backend("Ours").expect("suite includes Ours")
    }

    /// `span_end` events that matched no open span (counted, not
    /// silently dropped — mirrors the profiler's
    /// `span.unmatched_end`).
    #[must_use]
    pub const fn unmatched_ends(&self) -> u64 {
        self.unmatched_ends
    }
}

impl TraceSink for CompareSink {
    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        self.beats(track, cycle, kind, 1);
    }

    fn beats(&mut self, _track: u32, _cycle: u64, kind: BeatKind, count: u64) {
        for lane in &mut self.backends {
            let cycles = lane.model.beat_cycles(kind, count);
            match kind {
                BeatKind::Butterfly => lane.cycles.butterfly += cycles,
                BeatKind::Elementwise(_) => lane.cycles.elementwise += cycles,
                BeatKind::NetworkMove(_) => lane.cycles.network_move += cycles,
            }
            lane.model.charge_beats(kind, count, &mut lane.components);
        }
    }

    fn mem(&mut self, _track: u32, _cycle: u64, dir: MemDir, _addr: usize, lanes: usize) {
        for lane in &mut self.backends {
            lane.model
                .charge_mem(dir, lanes as u64, &mut lane.components);
        }
    }

    fn span_begin(&mut self, track: u32, _ts: u64, name: &str) {
        let at_begin = self
            .backends
            .iter()
            .map(|b| (b.cycles, b.components))
            .collect();
        self.open.push(OpenSpan {
            track,
            name: name.to_string(),
            at_begin,
        });
    }

    fn span_end(&mut self, track: u32, _ts: u64, name: &str) {
        // Same matching discipline as the profiler: innermost open span
        // with (track, name), falling back to name-only for
        // hand-emitted pairs with inconsistent tracks.
        let pos = self
            .open
            .iter()
            .rposition(|s| s.track == track && s.name == name)
            .or_else(|| self.open.iter().rposition(|s| s.name == name));
        let Some(pos) = pos else {
            self.unmatched_ends += 1;
            return;
        };
        let span = self.open.remove(pos);
        for (lane, (cycles0, components0)) in self.backends.iter_mut().zip(&span.at_begin) {
            let bins = lane.phases.entry(span.name.clone()).or_default();
            bins.cycles += lane.cycles.delta(cycles0);
            for (i, total) in lane.components.iter().enumerate() {
                bins.components[i] += total - components0[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_core::trace::{EwiseOp, NetKind};
    use uvpu_hw_model::cost::CostComponent;
    use uvpu_metrics::energy::{Component, EnergyModel};
    use uvpu_metrics::profiler::ProfilerSink;

    fn drive(sink: &mut impl TraceSink) {
        sink.span_begin(0, 0, "ntt");
        sink.beats(0, 0, BeatKind::Butterfly, 96);
        sink.beats(0, 96, BeatKind::NetworkMove(NetKind::CgShuffleShift), 8);
        sink.span_end(0, 104, "ntt");
        sink.span_begin(0, 104, "rescale");
        sink.beats(0, 104, BeatKind::Elementwise(EwiseOp::Mul), 20);
        sink.beats(0, 124, BeatKind::NetworkMove(NetKind::Shift), 4);
        sink.span_end(0, 128, "rescale");
        sink.mem(0, 128, MemDir::Load, 0, 64);
    }

    #[test]
    fn suite_charges_all_seven_backends() {
        let mut sink = CompareSink::suite(64);
        assert_eq!(sink.backends().len(), 7);
        drive(&mut sink);
        for lane in sink.backends() {
            assert!(lane.cycles().total() > 0, "{}", lane.model().name());
            assert!(lane.energy_total_pj() > 0.0, "{}", lane.model().name());
            assert_eq!(lane.phases().len(), 2, "{}", lane.model().name());
            assert_eq!(
                lane.components()[CostComponent::RegFile.index()],
                64,
                "{}",
                lane.model().name()
            );
        }
        assert_eq!(sink.unmatched_ends(), 0);
    }

    #[test]
    fn ours_lane_is_bit_identical_to_the_profiler() {
        // The acceptance criterion of the comparison report: the Ours
        // column must reproduce the PR-3 metrics numbers exactly, which
        // starts with identical integer counts.
        let mut sink = CompareSink::suite(64);
        let mut profiler = ProfilerSink::new(64);
        drive(&mut sink);
        drive(&mut profiler);
        let ours = sink.ours();
        assert_eq!(ours.cycles(), profiler.running());
        for c in Component::ALL {
            assert_eq!(
                ours.components()[c.index()],
                profiler.component_count(c),
                "{}",
                c.name()
            );
        }
        // …and with identical pricing arithmetic.
        let em = EnergyModel::asap7(64);
        for (c, k) in Component::ALL.iter().zip(CostComponent::ALL) {
            assert_eq!(
                ours.model().component_pj(k, 1000).to_bits(),
                em.component_pj(*c, 1000).to_bits(),
                "{}",
                c.name()
            );
        }
        for (name, bins) in ours.phases() {
            assert_eq!(bins.cycles, profiler.phases()[name], "{name}");
        }
    }

    #[test]
    fn backends_differentiate_on_the_same_stream() {
        let mut sink = CompareSink::suite(64);
        drive(&mut sink);
        let ours = sink.ours().cycles().total();
        let f1 = sink.backend("F1").unwrap().cycles().total();
        let rpu = sink.backend("RPU").unwrap().cycles().total();
        let bas = sink.backend("BASALISC").unwrap().cycles().total();
        assert!(f1 > ours, "F1 double-pumps butterfly CG traversals");
        assert!(rpu > ours, "RPU decomposes butterflies into 3 ops");
        assert!(bas > ours, "BASALISC remaps shifts through memory");
    }

    #[test]
    fn phase_bins_sum_to_totals() {
        let mut sink = CompareSink::suite(64);
        drive(&mut sink);
        for lane in sink.backends() {
            let mut cycles = CycleStats::new();
            let mut comps = [0u64; COST_COMPONENTS];
            for bins in lane.phases().values() {
                cycles += bins.cycles;
                for (acc, c) in comps.iter_mut().zip(bins.components) {
                    *acc += c;
                }
            }
            // The mem event fell outside all spans: only its regfile
            // words are missing from the per-phase sums.
            assert_eq!(&cycles, lane.cycles(), "{}", lane.model().name());
            for (i, c) in CostComponent::ALL.iter().enumerate() {
                let expected = if *c == CostComponent::RegFile {
                    lane.components()[i] - 64
                } else {
                    lane.components()[i]
                };
                assert_eq!(comps[i], expected, "{} {}", lane.model().name(), c.name());
            }
        }
    }

    #[test]
    fn unmatched_ends_are_counted() {
        let mut sink = CompareSink::suite(4);
        sink.span_end(0, 1, "never-opened");
        assert_eq!(sink.unmatched_ends(), 1);
        // Track-mismatched pairs still close via the name fallback.
        sink.span_begin(3, 0, "x");
        sink.span_end(9, 5, "x");
        assert_eq!(sink.unmatched_ends(), 1);
    }

    #[test]
    #[should_panic(expected = "models a different VPU")]
    fn rejects_mixed_lane_counts() {
        let models = BackendModel::suite(16, &TechParams::asap7());
        let _ = CompareSink::with_models(64, models);
    }
}
