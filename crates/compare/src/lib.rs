//! `uvpu-compare` — cross-accelerator attribution and deterministic
//! comparison reports.
//!
//! The paper's comparison methodology (§V-A) ports every competing
//! permutation approach onto the *same* `m`-lane VPU and measures the
//! same workloads on each. This crate operationalizes that: a
//! [`sink::CompareSink`] is a [`TraceSink`](uvpu_core::trace::TraceSink)
//! that replays one PR-1 trace stream through the
//! [`CostModel`](uvpu_hw_model::cost::CostModel) of **every** modeled
//! backend simultaneously — the paper's five designs plus the RPU and
//! BASALISC ports — attributing cycles and per-component energy to each
//! in a single pass over the events.
//!
//! Determinism is inherited from the PR-3 profiler discipline: the sink
//! stores only integer activation counts and integer cycle totals;
//! energy pricing and ratio derivation happen at render time
//! ([`report`]), with the same fixed-precision formatters as the metrics
//! snapshots. Two runs of the same workload at any `UVPU_THREADS`
//! setting render byte-identical reports, which is what lets
//! `scripts/bench_compare.sh` gate on a committed baseline with a plain
//! byte diff.
//!
//! The **Ours** column is special by construction: its cost model uses
//! the exact arithmetic of the `uvpu-metrics`
//! [`EnergyModel`](uvpu_metrics::energy::EnergyModel), so the numbers it
//! reports are identical — not just close — to the PR-3 metrics snapshot
//! of the same workload.
//!
//! # Example
//!
//! ```
//! use uvpu_compare::sink::CompareSink;
//! use uvpu_core::trace::{BeatKind, TraceSink};
//!
//! let mut sink = CompareSink::suite(64);
//! sink.span_begin(0, 0, "ntt");
//! sink.beats(0, 0, BeatKind::Butterfly, 96);
//! sink.span_end(0, 96, "ntt");
//! let report = uvpu_compare::report::render(&sink, "example", "doc");
//! assert!(report.contains("\"schema\": \"uvpu-compare/v1\""));
//! assert!(report.contains("\"RPU\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod sink;
