//! The VPU's vector instruction set.
//!
//! Each instruction is one pipeline beat of Fig 1(b): an element-wise
//! lane operation, a paired-lane butterfly stage (with its
//! constant-geometry route), a network traversal, or a fused
//! rotate-and-add reduction. [`Program`]s execute on a [`Vpu`] and can be
//! assembled from and disassembled to a simple textual form, so kernels
//! are inspectable artifacts rather than opaque closures:
//!
//! ```text
//! .const tw = 5 7 11 13
//! vload  r0
//! pease.fwd r0, tw, group=8
//! route  r1, r0, rot=3
//! vadd   r2, r0, r1
//! reduce r3, r2, r4
//! ```

use crate::control::ShiftControls;
use crate::network::{CgDirection, NetworkPass};
use crate::stats::CycleStats;
use crate::trace::TraceSink;
use crate::vpu::{PeaseStage, Vpu};
use crate::CoreError;
use std::collections::HashMap;
use std::fmt;

/// Element-wise ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EwiseOp {
    /// `dst ← a + b`.
    Add,
    /// `dst ← a − b`.
    Sub,
    /// `dst ← a · b`.
    Mul,
    /// `dst ← dst + a · b`.
    Mac,
}

impl EwiseOp {
    const fn mnemonic(&self) -> &'static str {
        match self {
            Self::Add => "vadd",
            Self::Sub => "vsub",
            Self::Mul => "vmul",
            Self::Mac => "vmac",
        }
    }
}

/// One VPU instruction (one pipeline beat, except `Nop`).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Element-wise ALU op between registers.
    Ewise {
        /// Operation.
        op: EwiseOp,
        /// Destination register.
        dst: usize,
        /// First source register.
        a: usize,
        /// Second source register.
        b: usize,
    },
    /// Element-wise multiply by a constant pool entry (twiddle ROM read).
    MulConst {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
        /// Constant-pool name.
        pool: String,
    },
    /// Forward Pease stage: CG shuffle + DIF butterflies.
    PeaseForward {
        /// Register operated on in place.
        addr: usize,
        /// Constant pool holding the `m/2` twiddles.
        pool: String,
        /// Independent sub-network width.
        group: usize,
    },
    /// Inverse Pease stage: DIT butterflies + CG unshuffle.
    PeaseInverse {
        /// Register operated on in place.
        addr: usize,
        /// Constant pool holding the `m/2` twiddles.
        pool: String,
        /// Independent sub-network width.
        group: usize,
    },
    /// Network traversal with a uniform rotation.
    Rotate {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
        /// Rotation distance.
        amount: u64,
    },
    /// Network traversal with a merged automorphism control word
    /// (`i ↦ i·g + t mod m`), via the control SRAM.
    Automorphism {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
        /// Odd multiplier.
        g: u64,
        /// Cyclic offset.
        t: u64,
    },
    /// Bare constant-geometry route.
    CgRoute {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
        /// Orientation.
        direction: CgDirection,
    },
    /// Cross-lane sum reduction (log₂ m fused rotate-add beats).
    Reduce {
        /// Destination register (receives the broadcast sum).
        dst: usize,
        /// Source register.
        src: usize,
        /// Scratch register.
        scratch: usize,
    },
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Ewise { op, dst, a, b } => {
                write!(f, "{} r{dst}, r{a}, r{b}", op.mnemonic())
            }
            Self::MulConst { dst, src, pool } => write!(f, "vmulc r{dst}, r{src}, {pool}"),
            Self::PeaseForward { addr, pool, group } => {
                write!(f, "pease.fwd r{addr}, {pool}, group={group}")
            }
            Self::PeaseInverse { addr, pool, group } => {
                write!(f, "pease.inv r{addr}, {pool}, group={group}")
            }
            Self::Rotate { dst, src, amount } => write!(f, "route r{dst}, r{src}, rot={amount}"),
            Self::Automorphism { dst, src, g, t } => {
                write!(f, "route r{dst}, r{src}, auto g={g} t={t}")
            }
            Self::CgRoute {
                dst,
                src,
                direction,
            } => {
                let d = match direction {
                    CgDirection::Dit => "dit",
                    CgDirection::Dif => "dif",
                };
                write!(f, "route r{dst}, r{src}, cg={d}")
            }
            Self::Reduce { dst, src, scratch } => write!(f, "reduce r{dst}, r{src}, r{scratch}"),
        }
    }
}

/// A VPU program: instructions plus named constant pools (the twiddle
/// ROM contents).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Instruction sequence.
    pub instrs: Vec<Instr>,
    /// Named constant pools referenced by instructions.
    pub pools: HashMap<String, Vec<u64>>,
}

impl Program {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles a program from textual form. Lines: `.const NAME = v v …`
    /// directives, instruction mnemonics as printed by
    /// [`Program::disassemble`], blank lines and `#` comments.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedSize`] with no useful payload is never
    /// used; parse failures return [`CoreError::LengthMismatch`] carrying
    /// the offending 1-based line number in `actual`.
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        let mut prog = Self::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fail = || CoreError::LengthMismatch {
                expected: 0,
                actual: idx + 1,
            };
            if let Some(rest) = line.strip_prefix(".const") {
                let (name, vals) = rest.split_once('=').ok_or_else(fail)?;
                let values = vals
                    .split_whitespace()
                    .map(|v| v.parse::<u64>().map_err(|_| fail()))
                    .collect::<Result<Vec<_>, _>>()?;
                prog.pools.insert(name.trim().to_string(), values);
                continue;
            }
            let (mnemonic, rest) = line.split_once(char::is_whitespace).ok_or_else(fail)?;
            let args: Vec<&str> = rest.split(',').map(str::trim).collect();
            let reg = |s: &str| -> Result<usize, CoreError> {
                s.strip_prefix('r')
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(fail)
            };
            let kv = |s: &str, key: &str| -> Result<u64, CoreError> {
                s.strip_prefix(key)
                    .and_then(|v| v.strip_prefix('='))
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(fail)
            };
            let instr = match mnemonic {
                "vadd" | "vsub" | "vmul" | "vmac" => {
                    if args.len() != 3 {
                        return Err(fail());
                    }
                    let op = match mnemonic {
                        "vadd" => EwiseOp::Add,
                        "vsub" => EwiseOp::Sub,
                        "vmul" => EwiseOp::Mul,
                        _ => EwiseOp::Mac,
                    };
                    Instr::Ewise {
                        op,
                        dst: reg(args[0])?,
                        a: reg(args[1])?,
                        b: reg(args[2])?,
                    }
                }
                "vmulc" => {
                    if args.len() != 3 {
                        return Err(fail());
                    }
                    Instr::MulConst {
                        dst: reg(args[0])?,
                        src: reg(args[1])?,
                        pool: args[2].to_string(),
                    }
                }
                "pease.fwd" | "pease.inv" => {
                    if args.len() != 3 {
                        return Err(fail());
                    }
                    let addr = reg(args[0])?;
                    let pool = args[1].to_string();
                    let group = kv(args[2], "group")? as usize;
                    if mnemonic == "pease.fwd" {
                        Instr::PeaseForward { addr, pool, group }
                    } else {
                        Instr::PeaseInverse { addr, pool, group }
                    }
                }
                "route" => {
                    if args.len() != 3 && args.len() != 4 {
                        return Err(fail());
                    }
                    let dst = reg(args[0])?;
                    let src = reg(args[1])?;
                    if let Ok(amount) = kv(args[2], "rot") {
                        Instr::Rotate { dst, src, amount }
                    } else if args[2].starts_with("auto") {
                        // "auto g=G t=T" possibly split across two args.
                        let tail = line.split_once("auto").ok_or_else(fail)?.1;
                        let mut g = None;
                        let mut t = None;
                        for tok in tail.split_whitespace() {
                            if let Some(v) = tok.strip_prefix("g=") {
                                g = v.parse().ok();
                            } else if let Some(v) = tok.strip_prefix("t=") {
                                t = v.parse().ok();
                            }
                        }
                        Instr::Automorphism {
                            dst,
                            src,
                            g: g.ok_or_else(fail)?,
                            t: t.unwrap_or(0),
                        }
                    } else if let Some(d) = args[2].strip_prefix("cg=") {
                        let direction = match d {
                            "dit" => CgDirection::Dit,
                            "dif" => CgDirection::Dif,
                            _ => return Err(fail()),
                        };
                        Instr::CgRoute {
                            dst,
                            src,
                            direction,
                        }
                    } else {
                        return Err(fail());
                    }
                }
                "reduce" => {
                    if args.len() != 3 {
                        return Err(fail());
                    }
                    Instr::Reduce {
                        dst: reg(args[0])?,
                        src: reg(args[1])?,
                        scratch: reg(args[2])?,
                    }
                }
                _ => return Err(fail()),
            };
            prog.instrs.push(instr);
        }
        Ok(prog)
    }

    /// Renders the program back to assembly text (pools first).
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let mut names: Vec<&String> = self.pools.keys().collect();
        names.sort();
        for name in names {
            let vals: Vec<String> = self.pools[name].iter().map(ToString::to_string).collect();
            out.push_str(&format!(".const {name} = {}\n", vals.join(" ")));
        }
        for i in &self.instrs {
            out.push_str(&format!("{i}\n"));
        }
        out
    }

    fn pool<'a>(&'a self, name: &str) -> Result<&'a [u64], CoreError> {
        self.pools
            .get(name)
            .map(Vec::as_slice)
            .ok_or(CoreError::LengthMismatch {
                expected: 1,
                actual: 0,
            })
    }

    /// Executes the program on a VPU, returning the cycles it consumed.
    ///
    /// # Errors
    ///
    /// Register/pool errors from the VPU or missing constant pools.
    pub fn execute<S: TraceSink>(&self, vpu: &mut Vpu<S>) -> Result<CycleStats, CoreError> {
        let start = *vpu.stats();
        for instr in &self.instrs {
            match instr {
                Instr::Ewise { op, dst, a, b } => match op {
                    EwiseOp::Add => vpu.ewise_add(*dst, *a, *b)?,
                    EwiseOp::Sub => vpu.ewise_sub(*dst, *a, *b)?,
                    EwiseOp::Mul => vpu.ewise_mul(*dst, *a, *b)?,
                    EwiseOp::Mac => vpu.ewise_mac(*dst, *a, *b)?,
                },
                Instr::MulConst { dst, src, pool } => {
                    let consts = self.pool(pool)?.to_vec();
                    vpu.ewise_mul_const(*dst, *src, &consts)?;
                }
                Instr::PeaseForward { addr, pool, group } => {
                    let tw = self.pool(pool)?.to_vec();
                    vpu.pease_stage(*addr, &PeaseStage::Forward { twiddles: &tw }, *group)?;
                }
                Instr::PeaseInverse { addr, pool, group } => {
                    let tw = self.pool(pool)?.to_vec();
                    vpu.pease_stage(*addr, &PeaseStage::Inverse { twiddles: &tw }, *group)?;
                }
                Instr::Rotate { dst, src, amount } => vpu.rotate(*dst, *src, *amount)?,
                Instr::Automorphism { dst, src, g, t } => {
                    vpu.automorphism_pass(*dst, *src, *g, *t)?;
                }
                Instr::CgRoute {
                    dst,
                    src,
                    direction,
                } => {
                    vpu.route(*dst, *src, &NetworkPass::cg(*direction))?;
                }
                Instr::Reduce { dst, src, scratch } => vpu.reduce_sum(*dst, *src, *scratch)?,
            }
        }
        Ok(vpu.stats().delta(&start))
    }

    /// The highest register index referenced (for sizing the file).
    #[must_use]
    pub fn max_register(&self) -> usize {
        self.instrs
            .iter()
            .map(|i| match *i {
                Instr::Ewise { dst, a, b, .. } => dst.max(a).max(b),
                Instr::MulConst { dst, src, .. }
                | Instr::Rotate { dst, src, .. }
                | Instr::Automorphism { dst, src, .. }
                | Instr::CgRoute { dst, src, .. } => dst.max(src),
                Instr::PeaseForward { addr, .. } | Instr::PeaseInverse { addr, .. } => addr,
                Instr::Reduce { dst, src, scratch } => dst.max(src).max(scratch),
            })
            .max()
            .unwrap_or(0)
    }
}

/// A convenience ShiftControls re-export check (keeps the ISA's
/// documentation self-contained).
#[doc(hidden)]
pub type _ControlWord = ShiftControls;

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_math::modular::Modulus;

    fn vpu() -> Vpu {
        Vpu::new(8, Modulus::new(97).unwrap(), 16).unwrap()
    }

    #[test]
    fn assemble_disassemble_round_trip() {
        let text = "\
.const tw = 5 7 11 13
vadd r2, r0, r1
vmulc r3, r2, tw
pease.fwd r0, tw, group=8
pease.inv r0, tw, group=4
route r1, r0, rot=3
route r4, r1, auto g=5 t=2
route r5, r4, cg=dif
reduce r6, r5, r7
";
        let prog = Program::parse(text).unwrap();
        assert_eq!(prog.instrs.len(), 8);
        let round = Program::parse(&prog.disassemble()).unwrap();
        assert_eq!(prog, round, "parse∘disassemble is the identity");
    }

    #[test]
    fn parse_reports_offending_line() {
        let err = Program::parse("vadd r0, r1\n").unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { actual: 1, .. }));
        let err = Program::parse("vadd r0, r1, r2\nbogus r1, r2\n").unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { actual: 2, .. }));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let prog = Program::parse("# header\n\n  vadd r0, r1, r2 # trailing\n").unwrap();
        assert_eq!(prog.instrs.len(), 1);
    }

    #[test]
    fn program_matches_direct_api_calls() {
        let text = "\
.const ones = 1 1 1 1 1 1 1 1
vadd r2, r0, r1
vmulc r3, r2, ones
route r4, r3, rot=2
route r5, r4, auto g=3 t=1
reduce r6, r5, r7
";
        let prog = Program::parse(text).unwrap();
        let mut a = vpu();
        let mut b = vpu();
        for v in [&mut a, &mut b] {
            v.load(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
            v.load(1, &[10, 20, 30, 40, 50, 60, 70, 80]).unwrap();
        }
        let stats = prog.execute(&mut a).unwrap();

        b.ewise_add(2, 0, 1).unwrap();
        b.ewise_mul_const(3, 2, &[1; 8]).unwrap();
        b.rotate(4, 3, 2).unwrap();
        b.automorphism_pass(5, 4, 3, 1).unwrap();
        b.reduce_sum(6, 5, 7).unwrap();

        assert_eq!(a.store(6).unwrap(), b.store(6).unwrap());
        assert_eq!(&stats, b.stats());
    }

    #[test]
    fn pease_program_is_a_real_ntt_stage() {
        let q = Modulus::new(97).unwrap();
        let mut v = Vpu::new(8, q, 4).unwrap();
        v.load(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let tw: Vec<String> = [5u64, 7, 11, 13].iter().map(ToString::to_string).collect();
        let inv: Vec<String> = [5u64, 7, 11, 13]
            .iter()
            .map(|&w| q.inv(w).unwrap().to_string())
            .collect();
        let text = format!(
            ".const tw = {}\n.const twi = {}\npease.fwd r0, tw, group=8\npease.inv r0, twi, group=8\n",
            tw.join(" "),
            inv.join(" ")
        );
        let prog = Program::parse(&text).unwrap();
        let stats = prog.execute(&mut v).unwrap();
        assert_eq!(stats.butterfly, 2);
        // Forward then inverse doubles (the ½ lives in the final 1/L fold).
        let half = q.inv(2).unwrap();
        let out = v.store(0).unwrap();
        for (x, orig) in out.iter().zip([1u64, 2, 3, 4, 5, 6, 7, 8]) {
            assert_eq!(q.mul(*x, half), orig);
        }
    }

    #[test]
    fn missing_pool_is_an_error() {
        let prog = Program::parse("vmulc r0, r1, nope\n").unwrap();
        let mut v = vpu();
        assert!(prog.execute(&mut v).is_err());
    }

    #[test]
    fn max_register_sizes_the_file() {
        let prog = Program::parse("vadd r9, r1, r2\nreduce r3, r4, r11\n").unwrap();
        assert_eq!(prog.max_register(), 11);
    }
}
