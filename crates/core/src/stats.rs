//! Cycle accounting for the VPU simulator.
//!
//! Every vector operation — a traversal of the inter-lane network, a lane
//! compute step, or both back-to-back in the same pipeline beat — costs
//! one cycle. Utilization (paper Table III) is the fraction of cycles in
//! which the modular arithmetic logic performs useful work.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Cycle counters broken down by what the lanes were doing.
///
/// # Example
///
/// ```
/// use uvpu_core::stats::CycleStats;
///
/// let mut stats = CycleStats::default();
/// stats.butterfly += 6;
/// stats.network_move += 2;
/// assert_eq!(stats.total(), 8);
/// assert!((stats.utilization() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Cycles spent on butterfly operations (paired-lane NTT compute).
    pub butterfly: u64,
    /// Cycles spent on element-wise modular arithmetic (twiddle scaling,
    /// Hadamard products, additions).
    pub elementwise: u64,
    /// Cycles in which data only traversed the inter-lane network
    /// (transposes, automorphism passes, reductions' shift half) with the
    /// arithmetic units idle.
    pub network_move: u64,
}

impl CycleStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Cycles in which the modular arithmetic logic did useful work.
    #[must_use]
    pub fn compute(&self) -> u64 {
        self.butterfly + self.elementwise
    }

    /// Total cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.butterfly + self.elementwise + self.network_move
    }

    /// Throughput utilization: compute cycles over total cycles (the
    /// metric of paper Table III).
    ///
    /// An empty run counts as fully utilized — `utilization()` of
    /// all-zero counters returns `1.0`. This is a deliberate convention:
    /// a phase that consumed no cycles wasted none, and callers folding
    /// utilizations (e.g. taking a minimum across shards) must not see an
    /// idle shard as 0% busy. Reports that want to distinguish "empty"
    /// from "perfect" should check [`total`](Self::total)` == 0` first
    /// and render `n/a` (the bench breakdown tables do).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            self.compute() as f64 / total as f64
        }
    }

    /// Utilization that distinguishes "empty" from "perfect": `None`
    /// when no cycles elapsed, `Some(compute / total)` otherwise.
    ///
    /// Use this in reports and snapshots where an all-zero interval must
    /// render as `n/a`/`null` rather than as 100% — the convention of
    /// [`utilization`](Self::utilization) is right for folding but wrong
    /// for display.
    #[must_use]
    pub fn utilization_checked(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            None
        } else {
            Some(self.compute() as f64 / total as f64)
        }
    }

    /// Utilization of the interval between an `earlier` snapshot and
    /// now: [`utilization_checked`](Self::utilization_checked) of
    /// [`delta`](Self::delta). `None` when the interval is empty.
    ///
    /// # Example
    ///
    /// ```
    /// use uvpu_core::stats::CycleStats;
    ///
    /// let before = CycleStats { butterfly: 10, elementwise: 0, network_move: 10 };
    /// let after = CycleStats { butterfly: 16, elementwise: 0, network_move: 12 };
    /// assert_eq!(after.utilization_since(&before), Some(0.75));
    /// assert_eq!(after.utilization_since(&after), None);
    /// ```
    #[must_use]
    pub fn utilization_since(&self, earlier: &Self) -> Option<f64> {
        self.delta(earlier).utilization_checked()
    }

    /// Per-field saturating difference `self − earlier`: the cycles
    /// spent between an `earlier` snapshot and now. Saturating rather
    /// than panicking, so a snapshot taken after a counter reset
    /// attributes zero (not garbage) to the interval.
    ///
    /// # Example
    ///
    /// ```
    /// use uvpu_core::stats::CycleStats;
    ///
    /// let before = CycleStats { butterfly: 4, elementwise: 1, network_move: 0 };
    /// let after = CycleStats { butterfly: 9, elementwise: 1, network_move: 2 };
    /// let span = after.delta(&before);
    /// assert_eq!(span.butterfly, 5);
    /// assert_eq!(span.total(), 7);
    /// ```
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        Self {
            butterfly: self.butterfly.saturating_sub(earlier.butterfly),
            elementwise: self.elementwise.saturating_sub(earlier.elementwise),
            network_move: self.network_move.saturating_sub(earlier.network_move),
        }
    }
}

impl Add for CycleStats {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            butterfly: self.butterfly + rhs.butterfly,
            elementwise: self.elementwise + rhs.elementwise,
            network_move: self.network_move + rhs.network_move,
        }
    }
}

impl AddAssign for CycleStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CycleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles (butterfly {}, elementwise {}, move {}; {:.2}% utilized)",
            self.total(),
            self.butterfly,
            self.elementwise,
            self.network_move,
            100.0 * self.utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_fully_utilized() {
        assert_eq!(CycleStats::new().utilization(), 1.0);
        assert_eq!(CycleStats::new().total(), 0);
    }

    #[test]
    fn utilization_fraction() {
        let s = CycleStats {
            butterfly: 60,
            elementwise: 20,
            network_move: 20,
        };
        assert_eq!(s.compute(), 80);
        assert_eq!(s.total(), 100);
        assert!((s.utilization() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn add_accumulates() {
        let a = CycleStats {
            butterfly: 1,
            elementwise: 2,
            network_move: 3,
        };
        let mut b = a;
        b += a;
        assert_eq!(b, a + a);
        assert_eq!(b.total(), 12);
    }

    #[test]
    fn delta_saturates_per_field() {
        let a = CycleStats {
            butterfly: 10,
            elementwise: 0,
            network_move: 5,
        };
        let b = CycleStats {
            butterfly: 4,
            elementwise: 3,
            network_move: 5,
        };
        let d = a.delta(&b);
        assert_eq!(d.butterfly, 6);
        assert_eq!(d.elementwise, 0, "saturates instead of wrapping");
        assert_eq!(d.network_move, 0);
        assert_eq!(CycleStats::new().delta(&a), CycleStats::new());
    }

    #[test]
    fn checked_utilization_distinguishes_empty_from_perfect() {
        assert_eq!(CycleStats::new().utilization_checked(), None);
        let perfect = CycleStats {
            butterfly: 5,
            elementwise: 0,
            network_move: 0,
        };
        assert_eq!(perfect.utilization_checked(), Some(1.0));
        let s = CycleStats {
            butterfly: 60,
            elementwise: 20,
            network_move: 20,
        };
        assert_eq!(s.utilization_checked(), Some(s.utilization()));
    }

    #[test]
    fn utilization_since_measures_the_interval() {
        let before = CycleStats {
            butterfly: 100,
            elementwise: 0,
            network_move: 100,
        };
        let after = CycleStats {
            butterfly: 103,
            elementwise: 0,
            network_move: 101,
        };
        assert_eq!(after.utilization_since(&before), Some(0.75));
        // Empty interval: None, not the global ratio.
        assert_eq!(after.utilization_since(&after), None);
        // Reset between snapshots (earlier > self): delta saturates to
        // zero, so the interval reads as empty.
        assert_eq!(before.utilization_since(&after), None);
    }

    #[test]
    fn display_mentions_utilization() {
        let s = CycleStats {
            butterfly: 3,
            elementwise: 0,
            network_move: 1,
        };
        let text = s.to_string();
        assert!(text.contains("75.00%"), "got: {text}");
    }
}
