//! Mapping automorphisms of arbitrary length onto the VPU (paper §IV-B).
//!
//! A length-`N` automorphism (optionally merged with a cyclic offset —
//! the general form `i ↦ i·g + t mod N`) is decomposed over the row-major
//! `R × C` matrix with `R = m` rows across the lanes:
//!
//! - **Eq (3)**: whole columns move to new column positions (a register
//!   re-address, free);
//! - **Eq (2)**: within each column, a length-`m` automorphism merged
//!   with a column-constant shift — realized in **one** traversal of the
//!   shift network via the precomputed control SRAM.
//!
//! Every element therefore crosses the inter-lane network exactly once,
//! which is why Table III reports 100% throughput utilization for
//! automorphism at every size.

use crate::stats::CycleStats;
use crate::trace::{MemDir, TraceSink};
use crate::vpu::Vpu;
use crate::CoreError;
use uvpu_math::automorphism::{AffineMap, RowColumnDecomposition};
use uvpu_math::MathError;

/// Result of an automorphism execution.
#[derive(Debug, Clone)]
pub struct AutomorphismExecution {
    /// Permuted output: `output[(i·g + t) mod N] = input[i]`.
    pub output: Vec<u64>,
    /// Cycles consumed (all network-move beats).
    pub stats: CycleStats,
    /// The ideal beat count (one vector pass per `m` elements); the
    /// execution always meets it, so `utilization()` is 1.0.
    pub ideal_beats: u64,
}

impl AutomorphismExecution {
    /// Throughput utilization versus the ideal all-lanes-busy schedule
    /// (paper Table III's automorphism column).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.stats.total() == 0 {
            1.0
        } else {
            self.ideal_beats as f64 / self.stats.total() as f64
        }
    }
}

/// A planned length-`N` automorphism `i ↦ i·g + t mod N` on an `m`-lane VPU.
///
/// # Example
///
/// ```
/// use uvpu_core::auto_map::AutomorphismMapping;
/// use uvpu_core::vpu::Vpu;
/// use uvpu_math::modular::Modulus;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Modulus::new(97)?;
/// let mut vpu = Vpu::new(8, q, 16)?;
/// let plan = AutomorphismMapping::new(64, 8, 5, 0)?; // σ_{5,1} on N = 64
/// let data: Vec<u64> = (0..64).collect();
/// let run = plan.execute(&mut vpu, &data)?;
/// assert_eq!(run.output[5], 1); // element 1 moved to 1·5 mod 64
/// assert_eq!(run.utilization(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AutomorphismMapping {
    n: usize,
    m: usize,
    map: AffineMap,
    decomposition: RowColumnDecomposition,
}

impl AutomorphismMapping {
    /// Plans the map `i ↦ i·g + t mod n` for an `m`-lane VPU.
    ///
    /// # Errors
    ///
    /// - [`CoreError::UnsupportedSize`] if `n < m` or `n` is not a
    ///   power-of-two multiple of `m`.
    /// - [`CoreError::Math`] for an even multiplier `g`.
    pub fn new(n: usize, m: usize, g: u64, t: u64) -> Result<Self, CoreError> {
        if !m.is_power_of_two() || m < 2 {
            return Err(CoreError::InvalidLaneCount { lanes: m });
        }
        if !n.is_power_of_two() || n < m {
            return Err(CoreError::UnsupportedSize { size: n });
        }
        let map = AffineMap::new(n, g, t)?;
        let decomposition = RowColumnDecomposition::new(map, m, n / m).map_err(CoreError::Math)?;
        Ok(Self {
            n,
            m,
            map,
            decomposition,
        })
    }

    /// Returns the process-wide cached plan for `(n, m, g, t)`, building
    /// it on first use — the control-bit decomposition
    /// ([`RowColumnDecomposition`]) solves one affine map per column, so
    /// schedulers that re-measure the same automorphism shape (the
    /// accelerator's `measure_task`) should share the plan instead of
    /// re-deriving it.
    ///
    /// # Errors
    ///
    /// As [`AutomorphismMapping::new`]; failures are not cached.
    pub fn cached(n: usize, m: usize, g: u64, t: u64) -> Result<std::sync::Arc<Self>, CoreError> {
        static PLANS: uvpu_par::Memo<(usize, usize, u64, u64), AutomorphismMapping> =
            uvpu_par::Memo::new();
        PLANS.get_or_try_insert_with(&(n, m, g, t), || Self::new(n, m, g, t))
    }

    /// Convenience constructor for the paper's Eq (1): `σ_{Φ,r}` with
    /// `g = Φ^r mod N`.
    ///
    /// # Errors
    ///
    /// As [`AutomorphismMapping::new`].
    pub fn sigma(n: usize, m: usize, phi: u64, r: u32) -> Result<Self, CoreError> {
        if phi.is_multiple_of(2) {
            return Err(CoreError::Math(MathError::EvenMultiplier {
                multiplier: phi,
            }));
        }
        let mut g = 1u64;
        for _ in 0..r {
            g = g * phi % (n as u64);
        }
        Self::new(n, m, g, 0)
    }

    /// Element count `N`.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// The underlying index map.
    #[must_use]
    pub const fn map(&self) -> AffineMap {
        self.map
    }

    /// The `R × C` decomposition (R = lanes).
    #[must_use]
    pub const fn decomposition(&self) -> &RowColumnDecomposition {
        &self.decomposition
    }

    /// Executes the automorphism: each of the `N/m` columns makes exactly
    /// one pass through the shift network with the merged control word of
    /// Eq (2), and lands at the Eq (3) target column.
    ///
    /// # Errors
    ///
    /// Lane-count/modulus mismatches or register errors.
    pub fn execute<S: TraceSink>(
        &self,
        vpu: &mut Vpu<S>,
        input: &[u64],
    ) -> Result<AutomorphismExecution, CoreError> {
        if input.len() != self.n {
            return Err(CoreError::LengthMismatch {
                expected: self.n,
                actual: input.len(),
            });
        }
        if vpu.lanes() != self.m {
            return Err(CoreError::InvalidLaneCount { lanes: vpu.lanes() });
        }
        vpu.ensure_depth(2);
        let start = *vpu.stats();
        vpu.span_begin("automorphism");
        let cols = self.n / self.m;
        let mut output = vec![0u64; self.n];
        // Parallel path: columns are independent single network passes,
        // so workers route them on private scratch VPUs while the real
        // VPU is charged analytically — per column a load, one
        // network-move beat, and a store, in column order, so the traced
        // event stream is bit-identical to the sequential loop's.
        if uvpu_par::max_threads() > 1 && cols > 1 {
            let modulus = vpu.modulus();
            let routed_cols: Vec<Result<Vec<u64>, CoreError>> = uvpu_par::par_map_indexed_with(
                cols,
                || Vpu::new(self.m, modulus, 2),
                |scratch, c| {
                    let worker = scratch.as_mut().map_err(|e| e.clone())?;
                    let column: Vec<u64> = (0..self.m).map(|r| input[r * cols + c]).collect();
                    worker.load(0, &column)?;
                    let row_map = self.decomposition.column_row_map(c);
                    worker.automorphism_pass(1, 0, row_map.multiplier(), row_map.offset())?;
                    worker.store(1)
                },
            );
            for (c, routed) in routed_cols.into_iter().enumerate() {
                let routed = routed?;
                vpu.charge_mem(MemDir::Load, 0, self.m);
                vpu.charge_network_moves(1);
                vpu.charge_mem(MemDir::Store, 1, routed.len());
                let target = self.decomposition.column_target(c);
                for (r, &v) in routed.iter().enumerate() {
                    output[r * cols + target] = v;
                }
            }
        } else {
            for c in 0..cols {
                // Column c across the lanes: lane r holds element r·C + c.
                let column: Vec<u64> = (0..self.m).map(|r| input[r * cols + c]).collect();
                vpu.load(0, &column)?;
                let row_map = self.decomposition.column_row_map(c);
                vpu.automorphism_pass(1, 0, row_map.multiplier(), row_map.offset())?;
                let routed = vpu.store(1)?;
                // Eq (3): the whole column is stored to its target column.
                let target = self.decomposition.column_target(c);
                for (r, &v) in routed.iter().enumerate() {
                    output[r * cols + target] = v;
                }
            }
        }
        vpu.span_end("automorphism");
        let stats = vpu.stats().delta(&start);
        Ok(AutomorphismExecution {
            output,
            stats,
            ideal_beats: cols as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_math::modular::Modulus;

    fn vpu(m: usize) -> Vpu {
        Vpu::new(m, Modulus::new(0x0fff_ffff_fffc_0001).unwrap(), 8).unwrap()
    }

    #[test]
    fn validates_parameters() {
        assert!(AutomorphismMapping::new(64, 8, 4, 0).is_err(), "even g");
        assert!(AutomorphismMapping::new(4, 8, 5, 0).is_err(), "n < m");
        assert!(
            AutomorphismMapping::new(96, 8, 5, 0).is_err(),
            "non power of two"
        );
        assert!(AutomorphismMapping::new(64, 8, 5, 63).is_ok());
    }

    #[test]
    fn matches_index_map_exhaustively_small() {
        let mut v = vpu(8);
        let data: Vec<u64> = (0..64).collect();
        for g in (1..64u64).step_by(2) {
            for t in [0u64, 1, 17, 63] {
                let plan = AutomorphismMapping::new(64, 8, g, t).unwrap();
                let run = plan.execute(&mut v, &data).unwrap();
                let expect = AffineMap::new(64, g, t).unwrap().permute(&data);
                assert_eq!(run.output, expect, "g={g} t={t}");
            }
        }
    }

    #[test]
    fn sigma_matches_phi_powers() {
        let mut v = vpu(8);
        let data: Vec<u64> = (0..64).collect();
        for r in 0..6u32 {
            let plan = AutomorphismMapping::sigma(64, 8, 5, r).unwrap();
            let run = plan.execute(&mut v, &data).unwrap();
            let g = (0..r).fold(1u64, |acc, _| acc * 5 % 64);
            let expect = AffineMap::automorphism(64, g).unwrap().permute(&data);
            assert_eq!(run.output, expect, "r={r}");
        }
        assert!(AutomorphismMapping::sigma(64, 8, 6, 1).is_err());
    }

    #[test]
    fn single_network_pass_per_column_gives_full_utilization() {
        let mut v = vpu(16);
        let n = 1 << 12;
        let data: Vec<u64> = (0..n as u64).collect();
        let plan = AutomorphismMapping::new(n, 16, 5, 0).unwrap();
        let run = plan.execute(&mut v, &data).unwrap();
        assert_eq!(run.stats.network_move, (n / 16) as u64);
        assert_eq!(run.stats.butterfly + run.stats.elementwise, 0);
        assert_eq!(
            run.utilization(),
            1.0,
            "Table III: automorphism is always 100%"
        );
    }

    #[test]
    fn large_sizes_match_index_map() {
        let mut v = vpu(64);
        for log_n in [10usize, 12] {
            let n = 1 << log_n;
            let data: Vec<u64> = (0..n as u64).map(|x| x * 3 + 1).collect();
            let plan = AutomorphismMapping::new(n, 64, 25, 7).unwrap();
            let run = plan.execute(&mut v, &data).unwrap();
            let expect = AffineMap::new(n, 25, 7).unwrap().permute(&data);
            assert_eq!(run.output, expect);
            assert_eq!(run.utilization(), 1.0);
        }
    }
}
