//! The unified vector processing unit for FHE — the primary contribution
//! of *"A Unified Vector Processing Unit for Fully Homomorphic
//! Encryption"* (DATE 2025), reproduced as a bit-exact, cycle-counting
//! simulator.
//!
//! The VPU ([`vpu::Vpu`]) has `m` computing lanes ([`lane`]) — each a
//! Barrett modular multiplier, adder/subtractor, and register-file slice —
//! joined by a single **inter-lane network** ([`network`]): two
//! constant-geometry NTT stages plus a `log₂ m`-stage shift network with
//! `m − 1` control bits. That one network realizes *every* irregular data
//! permutation FHE needs:
//!
//! - length-`m` NTT butterflies via the constant-geometry routes
//!   ([`ntt_map::SmallNtt`]);
//! - dimension transposes of the multi-dimensional NTT decomposition
//!   ([`ntt_map::NttPlan`], [`transpose`]);
//! - arbitrary automorphisms, each column in a **single** traversal via
//!   the recursive shift decomposition and the control SRAM
//!   ([`control`], [`auto_map`]);
//! - cross-lane reductions for matrix/tensor products
//!   ([`vpu::Vpu::reduce_sum`]);
//! - a textual vector instruction set with assembler/disassembler
//!   ([`isa`]) and synthesizable Verilog emission ([`rtl`]).
//!
//! # Quick start
//!
//! ```
//! use uvpu_core::auto_map::AutomorphismMapping;
//! use uvpu_core::ntt_map::NttPlan;
//! use uvpu_core::vpu::Vpu;
//! use uvpu_math::{modular::Modulus, primes::ntt_prime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 1 << 10;
//! let m = 64;
//! let q = Modulus::new(ntt_prime(50, n)?)?;
//! let mut vpu = Vpu::new(m, q, 64)?;
//!
//! // A full negacyclic NTT, decomposed over the 64 lanes.
//! let plan = NttPlan::new(q, n, m)?;
//! let poly: Vec<u64> = (0..n as u64).collect();
//! let spectrum = plan.execute_forward_negacyclic(&mut vpu, &poly)?;
//! println!("NTT utilization: {:.1}%", 100.0 * spectrum.stats.utilization());
//!
//! // An automorphism — one network pass per column, 100% utilization.
//! let rot = AutomorphismMapping::new(n, m, 5, 0)?;
//! let rotated = rot.execute(&mut vpu, &spectrum.output)?;
//! assert_eq!(rotated.utilization(), 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auto_map;
pub mod control;
pub mod isa;
pub mod lane;
pub mod network;
pub mod ntt_map;
pub mod rtl;
pub mod stats;
pub mod trace;
pub mod transpose;
pub mod vpu;

mod error;

pub use error::CoreError;
