//! Dimension transposes on the inter-lane network (paper Fig 3).
//!
//! Two fully-routed demonstrations of the paper's transpose mechanics,
//! executed beat by beat through the VPU's network and per-lane register
//! addressing:
//!
//! - [`transpose_square`]: the regular case of Fig 3(a). Each source
//!   column is rotated to a *diagonal* (one shift traversal + per-lane
//!   scatter), then each diagonal is rotated back to a row (one gathered
//!   shift traversal) — two network passes per column.
//! - [`fig3b_mixed_transpose`]: the paper's worked irregular example
//!   (`m = 4`, dimensions x=4, y=4, z=2): restoring the canonical layout
//!   from the mixed `y|x₁ × x₀|z` layout needs irregular per-element
//!   shifts that the shift stages alone cannot express; a single
//!   constant-geometry pass first un-interleaves each column, after which
//!   two plain shift steps finish — `2 + (log₂ m − log₂ z) = 3` passes
//!   per column, the count the paper's cost analysis uses.

use crate::control::ShiftControls;
use crate::network::{CgDirection, NetworkPass};
use crate::trace::TraceSink;
use crate::vpu::Vpu;
use crate::CoreError;

/// Transposes an `m × m` tile held across registers, through the shift
/// network (Fig 3(a)).
///
/// Input: register `src_base + c` holds matrix column `c` (lane `r` =
/// element `A[r][c]`). Output: register `dst_base + r` holds matrix row
/// `r` (lane `c` = element `A[r][c]`). Source and destination ranges must
/// not overlap.
///
/// Costs exactly `2m` network-move beats.
///
/// # Errors
///
/// Register range errors from the VPU.
///
/// # Example
///
/// ```
/// use uvpu_core::transpose::transpose_square;
/// use uvpu_core::vpu::Vpu;
/// use uvpu_math::modular::Modulus;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Modulus::new(97)?;
/// let mut vpu = Vpu::new(4, q, 8)?;
/// // Column c of the matrix A[r][c] = 10·r + c.
/// for c in 0..4 {
///     let col: Vec<u64> = (0..4).map(|r| (10 * r + c) as u64).collect();
///     vpu.load(c, &col)?;
/// }
/// transpose_square(&mut vpu, 0, 4)?;
/// assert_eq!(vpu.store(4)?, vec![0, 1, 2, 3]); // row 0
/// assert_eq!(vpu.store(5)?, vec![10, 11, 12, 13]); // row 1
/// # Ok(())
/// # }
/// ```
pub fn transpose_square<S: TraceSink>(
    vpu: &mut Vpu<S>,
    src_base: usize,
    dst_base: usize,
) -> Result<(), CoreError> {
    let m = vpu.lanes();
    vpu.ensure_depth(dst_base + m);
    // Step 1 — column → diagonal: shift column c down by c; the element
    // with row index r lands on lane (r + c) mod m and is scattered to
    // register dst_base + r (per-lane write addressing).
    for c in 0..m {
        let pass = NetworkPass::shift(ShiftControls::from_rotation(m, c as u64));
        let addrs: Vec<usize> = (0..m).map(|lane| dst_base + (lane + m - c) % m).collect();
        vpu.route_scatter(src_base + c, &pass, &addrs)?;
    }
    // Step 2 — diagonal → row: register dst_base + r holds A[r][c] at
    // lane (r + c) mod m; shifting up by r leaves lane c = A[r][c].
    for r in 0..m {
        let pass = NetworkPass::shift(ShiftControls::from_rotation(m, (m - r) as u64 % m as u64));
        vpu.route(dst_base + r, dst_base + r, &pass)?;
    }
    Ok(())
}

/// The paper's Fig 3(b) worked example on `m = 4` lanes, fully routed.
///
/// The 32 elements are indexed by digits `(x, y, z)` with
/// `i = (z·4 + y)·4 + x` (x = 2 bits, y = 2 bits, z = 1 bit). Input
/// layout (**mixed**, as left behind by the short final NTT dimension):
/// register `y·2 + x₁`, lane `x₀·2 + z`. Output layout (**canonical**):
/// register `z·4 + y`, lane `x`.
///
/// Per input column the routing is: one DIT constant-geometry pass (the
/// `[0,16,1,17] → [0,1,16,17]` reorganization the paper describes), one
/// shift traversal with per-lane scatter, and one final shift traversal —
/// `3 = 2 + (log₂ 4 − log₂ 2)` network beats per column.
///
/// # Errors
///
/// Register errors, or a VPU with a lane count other than 4.
pub fn fig3b_mixed_transpose<S: TraceSink>(
    vpu: &mut Vpu<S>,
    src_base: usize,
    dst_base: usize,
) -> Result<(), CoreError> {
    if vpu.lanes() != 4 {
        return Err(CoreError::InvalidLaneCount { lanes: vpu.lanes() });
    }
    vpu.ensure_depth(dst_base + 8);
    let scratch = dst_base + 8;
    vpu.ensure_depth(scratch + 8);

    for reg in 0..8 {
        let (y, x1) = (reg >> 1, reg & 1);
        // Pass 1 — CG reorganization: lanes x₀|z → z|x₀ (un-interleave).
        vpu.route(
            scratch + reg,
            src_base + reg,
            &NetworkPass::cg(CgDirection::Dit),
        )?;
        // Pass 2 — shift by 2·x₁ and scatter diagonally: the element with
        // hidden digit z sits at lane (z ⊕ x₁)·2 + x₀ afterwards, and is
        // written to its target register z·4 + y.
        let rot = 2 * x1 as u64;
        let addrs: Vec<usize> = (0..4)
            .map(|lane| {
                let lane_hi = lane >> 1;
                let z = lane_hi ^ x1; // undo the rotation to recover z
                dst_base + z * 4 + y
            })
            .collect();
        let pass = NetworkPass::shift(ShiftControls::from_rotation(4, rot));
        vpu.route_scatter(scratch + reg, &pass, &addrs)?;
    }
    // Pass 3 — per target register: elements (x₁, z) sit at lane
    // (z ⊕ x₁)·2 + x₀; shifting by 2·z makes the lane x₁·2 + x₀ = x.
    for reg in 0..8 {
        let z = reg >> 2;
        let pass = NetworkPass::shift(ShiftControls::from_rotation(4, 2 * z as u64));
        vpu.route(dst_base + reg, dst_base + reg, &pass)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_math::modular::Modulus;

    fn vpu(m: usize, depth: usize) -> Vpu {
        Vpu::new(m, Modulus::new(0x0fff_ffff_fffc_0001).unwrap(), depth).unwrap()
    }

    #[test]
    fn square_transpose_various_sizes() {
        for m in [2usize, 4, 8, 16, 64] {
            let mut v = vpu(m, 2 * m);
            for c in 0..m {
                let col: Vec<u64> = (0..m).map(|r| (r * m + c) as u64).collect();
                v.load(c, &col).unwrap();
            }
            transpose_square(&mut v, 0, m).unwrap();
            for r in 0..m {
                let row: Vec<u64> = (0..m).map(|c| (r * m + c) as u64).collect();
                assert_eq!(v.store(m + r).unwrap(), row, "m={m} row={r}");
            }
            assert_eq!(
                v.stats().network_move,
                2 * m as u64,
                "Fig 3(a): two passes per column"
            );
            assert_eq!(v.stats().compute(), 0, "transpose is pure movement");
        }
    }

    #[test]
    fn square_transpose_is_involution() {
        let m = 8;
        let mut v = vpu(m, 3 * m);
        let data: Vec<Vec<u64>> = (0..m)
            .map(|c| (0..m).map(|r| (r * 31 + c * 7) as u64 % 97).collect())
            .collect();
        for (c, col) in data.iter().enumerate() {
            v.load(c, col).unwrap();
        }
        transpose_square(&mut v, 0, m).unwrap();
        transpose_square(&mut v, m, 2 * m).unwrap();
        for (c, col) in data.iter().enumerate() {
            assert_eq!(v.store(2 * m + c).unwrap(), *col);
        }
    }

    #[test]
    fn fig3b_restores_canonical_layout() {
        // Build the mixed layout y|x₁ × x₀|z from Fig 3(b) and check the
        // routed transpose produces the canonical z|y × x layout.
        let mut v = vpu(4, 32);
        let idx = |x: usize, y: usize, z: usize| ((z * 4 + y) * 4 + x) as u64;
        for reg in 0..8usize {
            let (y, x1) = (reg >> 1, reg & 1);
            let col: Vec<u64> = (0..4)
                .map(|lane| {
                    let (x0, z) = (lane >> 1, lane & 1);
                    idx(x1 * 2 + x0, y, z)
                })
                .collect();
            v.load(reg, &col).unwrap();
        }
        // The paper's first-column example: register (y=0, x₁=0) holds
        // [0, 16, 1, 17].
        assert_eq!(v.store(0).unwrap(), vec![0, 16, 1, 17]);

        fig3b_mixed_transpose(&mut v, 0, 8).unwrap();
        for reg in 0..8usize {
            let (z, y) = (reg >> 2, reg & 3);
            let expect: Vec<u64> = (0..4).map(|x| idx(x, y, z)).collect();
            assert_eq!(v.store(8 + reg).unwrap(), expect, "reg={reg}");
        }
        // 3 network beats per column: 1 CG + 2 shifts.
        assert_eq!(v.stats().network_move, 3 * 8);
    }

    #[test]
    fn fig3b_requires_four_lanes() {
        let mut v = vpu(8, 32);
        assert!(fig3b_mixed_transpose(&mut v, 0, 8).is_err());
    }
}
