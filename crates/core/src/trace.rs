//! Event-level tracing across the VPU stack.
//!
//! Every pipeline beat the simulator charges — a constant-geometry
//! shuffle, a shift-network traversal, a butterfly batch, an element-wise
//! op — can be observed through a [`TraceSink`] attached to the
//! [`Vpu`](crate::vpu::Vpu). The default sink, [`NopSink`], is a zero-sized
//! type whose hooks are empty inherent no-ops: a `Vpu<NopSink>` (the
//! default parameter, what `Vpu::new` builds) monomorphizes to exactly the
//! untraced hot path — no branch, no indirect call.
//!
//! Three concrete sinks ship with the crate:
//!
//! - [`CounterSink`] — per-opcode beat counts, network passes by kind,
//!   register-file load/store counts, plus per-span cycle attribution via
//!   [`CycleStats::delta`];
//! - [`RingBufferSink`] — a bounded recorder keeping the most recent
//!   events (with a dropped-event count once the buffer wraps);
//! - [`PerfettoSink`] — a Chrome trace-event / Perfetto JSON exporter
//!   with a hand-rolled writer (the build environment is offline, so no
//!   serde); open the output at `ui.perfetto.dev` or `chrome://tracing`.
//!
//! Higher-level phases (NTT stages, automorphisms, key-switch, rescale)
//! appear as *spans*: `span_begin`/`span_end` pairs timestamped with the
//! VPU cycle counter. Scheme crates (`uvpu-ckks`, `uvpu-bfv`) are software
//! models without a cycle clock, so they emit spans through a
//! thread-local global sink ([`install_global`]) using a logical sequence
//! counter instead, on the reserved [`SCHEME_TRACK`].
//!
//! # Sequence-clock semantics under concurrency
//!
//! The global sink slot is *thread-local*, so spans emitted from
//! `uvpu-par` pool workers would silently vanish with the plain
//! [`install_global`]. [`install_global_sync`] fixes this: it takes a
//! [`SyncSink`] (an `Arc<Mutex<_>>` handle, `Send` unlike
//! [`SharedSink`]'s `Rc`), installs it on the calling thread, *and*
//! registers `uvpu-par` worker hooks so every pool worker installs a
//! clone of the same handle on entry and removes it on exit.
//!
//! Under `install_global_sync` the logical sequence clock is a single
//! process-wide atomic shared by the installer and all workers: it stays
//! strictly monotonic (every event gets a unique timestamp, and the
//! begin of a span always precedes its end), but timestamps from
//! *different* workers interleave in arrival order — only the per-thread
//! subsequences carry program-order meaning. Cycle *counts* (the
//! [`CounterSink`] totals) are unaffected: parallel execution charges
//! the same beats, merely observed from several threads. The plain
//! thread-local [`install_global`] path keeps its original per-thread
//! clock starting at 0.

use crate::network::{CgDirection, NetworkPass};
use crate::stats::CycleStats;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Track (Perfetto `tid`) used by scheme-level spans emitted through the
/// thread-local global sink.
pub const SCHEME_TRACK: u32 = 1000;

/// Element-wise opcode, as charged by the lane ALUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EwiseOp {
    /// `dst ← a + b`.
    Add,
    /// `dst ← a − b`.
    Sub,
    /// `dst ← a · b`.
    Mul,
    /// `dst ← dst + a · b`.
    Mac,
    /// `dst ← src · consts` (immediate twiddle vector).
    MulConst,
    /// Fused rotate-and-add beat of a cross-lane reduction.
    RotateAdd,
}

impl EwiseOp {
    /// All opcodes, in [`Self::index`] order.
    pub const ALL: [Self; 6] = [
        Self::Add,
        Self::Sub,
        Self::Mul,
        Self::Mac,
        Self::MulConst,
        Self::RotateAdd,
    ];

    /// Dense index for counter arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Self::Add => 0,
            Self::Sub => 1,
            Self::Mul => 2,
            Self::Mac => 3,
            Self::MulConst => 4,
            Self::RotateAdd => 5,
        }
    }

    /// Stable display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Add => "ewise.add",
            Self::Sub => "ewise.sub",
            Self::Mul => "ewise.mul",
            Self::Mac => "ewise.mac",
            Self::MulConst => "ewise.mul_const",
            Self::RotateAdd => "ewise.rotate_add",
        }
    }
}

/// What a network-only beat did, derived from the traversal's
/// [`NetworkPass`] configuration (which CG orientation, if any, and
/// whether the shift stages were active).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// Straight-through route (no stage active).
    Route,
    /// Perfect shuffle (DIF constant-geometry stage) only.
    CgShuffle,
    /// Inverse perfect shuffle (DIT constant-geometry stage) only.
    CgUnshuffle,
    /// Shift stages only (rotations, automorphisms, transposes).
    Shift,
    /// Perfect shuffle followed by the shift stages.
    CgShuffleShift,
    /// Inverse shuffle followed by the shift stages.
    CgUnshuffleShift,
}

impl NetKind {
    /// All kinds, in [`Self::index`] order.
    pub const ALL: [Self; 6] = [
        Self::Route,
        Self::CgShuffle,
        Self::CgUnshuffle,
        Self::Shift,
        Self::CgShuffleShift,
        Self::CgUnshuffleShift,
    ];

    /// Classifies a traversal configuration.
    #[must_use]
    pub const fn from_pass(pass: &NetworkPass) -> Self {
        match (pass.cg, pass.shifts.is_some()) {
            (None, false) => Self::Route,
            (Some(CgDirection::Dif), false) => Self::CgShuffle,
            (Some(CgDirection::Dit), false) => Self::CgUnshuffle,
            (None, true) => Self::Shift,
            (Some(CgDirection::Dif), true) => Self::CgShuffleShift,
            (Some(CgDirection::Dit), true) => Self::CgUnshuffleShift,
        }
    }

    /// Dense index for counter arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Self::Route => 0,
            Self::CgShuffle => 1,
            Self::CgUnshuffle => 2,
            Self::Shift => 3,
            Self::CgShuffleShift => 4,
            Self::CgUnshuffleShift => 5,
        }
    }

    /// Stable display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Route => "net.route",
            Self::CgShuffle => "net.cg_shuffle",
            Self::CgUnshuffle => "net.cg_unshuffle",
            Self::Shift => "net.shift",
            Self::CgShuffleShift => "net.cg_shuffle+shift",
            Self::CgUnshuffleShift => "net.cg_unshuffle+shift",
        }
    }
}

/// What one pipeline beat (or a bulk batch of identical beats) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeatKind {
    /// A constant-geometry route plus its paired-lane butterflies.
    Butterfly,
    /// An element-wise lane-ALU beat.
    Elementwise(EwiseOp),
    /// A network-only beat (arithmetic units idle).
    NetworkMove(NetKind),
}

impl BeatKind {
    /// Stable display name (`butterfly`, `ewise.*`, `net.*`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Butterfly => "butterfly",
            Self::Elementwise(op) => op.name(),
            Self::NetworkMove(kind) => kind.name(),
        }
    }

    /// Coarse category (`butterfly` / `ewise` / `net`), used as the
    /// Perfetto event category.
    #[must_use]
    pub const fn category(self) -> &'static str {
        match self {
            Self::Butterfly => "butterfly",
            Self::Elementwise(_) => "ewise",
            Self::NetworkMove(_) => "net",
        }
    }

    /// Charges `count` beats of this kind to a [`CycleStats`].
    pub fn charge(self, stats: &mut CycleStats, count: u64) {
        match self {
            Self::Butterfly => stats.butterfly += count,
            Self::Elementwise(_) => stats.elementwise += count,
            Self::NetworkMove(_) => stats.network_move += count,
        }
    }
}

/// Direction of a register-file ⇄ SRAM transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemDir {
    /// SRAM → register file (`Vpu::load`).
    Load,
    /// Register file → SRAM (`Vpu::store`).
    Store,
}

/// A datapath location where the mutating fault hooks
/// ([`TraceSink::fault_data`]) can observe — and corrupt — in-flight
/// words. The sites mirror the physical structures of paper Fig 1(b):
/// lane butterfly outputs, the two network stage groups, and the
/// register-file read port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// Paired-lane butterfly outputs inside a Pease CG stage.
    LaneButterfly,
    /// Constant-geometry (perfect shuffle) network link outputs.
    NetworkCg,
    /// Shift-stage network link outputs (rotations, automorphisms,
    /// transposes, straight routes).
    NetworkShift,
    /// The register-file read port feeding the VPU→SRAM interface
    /// (`Vpu::store`, i.e. the `charge_mem` points).
    RegFileRead,
}

impl FaultSite {
    /// All sites, in [`Self::index`] order.
    pub const ALL: [Self; 4] = [
        Self::LaneButterfly,
        Self::NetworkCg,
        Self::NetworkShift,
        Self::RegFileRead,
    ];

    /// Dense index for counter arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Self::LaneButterfly => 0,
            Self::NetworkCg => 1,
            Self::NetworkShift => 2,
            Self::RegFileRead => 3,
        }
    }

    /// Stable display name (report keys, campaign JSON).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::LaneButterfly => "lane_butterfly",
            Self::NetworkCg => "network_cg",
            Self::NetworkShift => "network_shift",
            Self::RegFileRead => "regfile_read",
        }
    }

    /// The site a network-only traversal of `kind` exercises: the CG
    /// stages when a shuffle is active, the shift stages otherwise.
    #[must_use]
    pub const fn from_net(kind: NetKind) -> Self {
        match kind {
            NetKind::CgShuffle | NetKind::CgUnshuffle => Self::NetworkCg,
            NetKind::Route
            | NetKind::Shift
            | NetKind::CgShuffleShift
            | NetKind::CgUnshuffleShift => Self::NetworkShift,
        }
    }
}

/// Receiver for trace events.
///
/// Every hook has an empty default body, so a sink only overrides what it
/// cares about — and [`NopSink`], which overrides nothing, monomorphizes
/// to nothing at all. The trait is object-safe (`Box<dyn TraceSink>` is
/// how scheme crates reach the thread-local global sink).
///
/// Timestamps: `cycle` is the VPU cycle counter *before* the beat is
/// charged (so the beat occupies `[cycle, cycle + count)`); span `ts` is
/// either a cycle (VPU-side spans) or a logical sequence number
/// (scheme-side spans on [`SCHEME_TRACK`]). `track` distinguishes event
/// streams — VPU index, scheduler slot, or [`SCHEME_TRACK`].
pub trait TraceSink {
    /// Whether the sink wants events at all. Callers may use this to skip
    /// constructing expensive event arguments (e.g. `format!`ed span
    /// names); the hooks themselves must stay correct regardless.
    fn enabled(&self) -> bool {
        true
    }

    /// One pipeline beat of `kind` at `cycle`.
    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        let _ = (track, cycle, kind);
    }

    /// `count` identical beats of `kind` charged in bulk starting at
    /// `cycle` (planner-level accounting, e.g. `charge_network_moves`).
    fn beats(&mut self, track: u32, cycle: u64, kind: BeatKind, count: u64) {
        let _ = (track, cycle, kind, count);
    }

    /// A register-file transfer of `lanes` words at register `addr`
    /// (not a pipeline beat — loads/stores are not cycle-charged).
    fn mem(&mut self, track: u32, cycle: u64, dir: MemDir, addr: usize, lanes: usize) {
        let _ = (track, cycle, dir, addr, lanes);
    }

    /// A higher-level phase opens.
    fn span_begin(&mut self, track: u32, ts: u64, name: &str) {
        let _ = (track, ts, name);
    }

    /// The most recent open phase on `track` closes.
    fn span_end(&mut self, track: u32, ts: u64, name: &str) {
        let _ = (track, ts, name);
    }

    /// Whether the mutating fault hooks are live. The VPU checks this
    /// before reading data back out of the register file for
    /// [`fault_data`](Self::fault_data), so the default `false` keeps the
    /// fault machinery entirely off the hot path — [`NopSink`] (and every
    /// ordinary observer sink) monomorphizes the injection call sites to
    /// nothing.
    fn fault_hooks_enabled(&self) -> bool {
        false
    }

    /// Mutating hook over the in-flight words at a fault `site` — a
    /// fault injector overwrites entries of `data` to model bit flips or
    /// stuck-at defects. Only called when
    /// [`fault_hooks_enabled`](Self::fault_hooks_enabled) returns true.
    /// Observer sinks leave the default empty body.
    fn fault_data(&mut self, track: u32, cycle: u64, site: FaultSite, data: &mut [u64]) {
        let _ = (track, cycle, site, data);
    }
}

/// The default sink: discards everything.
///
/// `enabled()` is `false`, and every hook is the trait's empty default, so
/// `Vpu<NopSink>` compiles to the exact untraced hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopSink;

impl TraceSink for NopSink {
    fn enabled(&self) -> bool {
        false
    }
}

impl<T: TraceSink + ?Sized> TraceSink for Box<T> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        (**self).beat(track, cycle, kind);
    }

    fn beats(&mut self, track: u32, cycle: u64, kind: BeatKind, count: u64) {
        (**self).beats(track, cycle, kind, count);
    }

    fn mem(&mut self, track: u32, cycle: u64, dir: MemDir, addr: usize, lanes: usize) {
        (**self).mem(track, cycle, dir, addr, lanes);
    }

    fn span_begin(&mut self, track: u32, ts: u64, name: &str) {
        (**self).span_begin(track, ts, name);
    }

    fn span_end(&mut self, track: u32, ts: u64, name: &str) {
        (**self).span_end(track, ts, name);
    }

    fn fault_hooks_enabled(&self) -> bool {
        (**self).fault_hooks_enabled()
    }

    fn fault_data(&mut self, track: u32, cycle: u64, site: FaultSite, data: &mut [u64]) {
        (**self).fault_data(track, cycle, site, data);
    }
}

/// A tee: every event goes to both halves (`enabled` if either is).
/// Lets one run feed e.g. a [`CounterSink`] and a [`PerfettoSink`]
/// simultaneously: `Vpu::with_sink(m, q, d, (CounterSink::new(), p))`.
impl<A: TraceSink, B: TraceSink> TraceSink for (A, B) {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        self.0.beat(track, cycle, kind);
        self.1.beat(track, cycle, kind);
    }

    fn beats(&mut self, track: u32, cycle: u64, kind: BeatKind, count: u64) {
        self.0.beats(track, cycle, kind, count);
        self.1.beats(track, cycle, kind, count);
    }

    fn mem(&mut self, track: u32, cycle: u64, dir: MemDir, addr: usize, lanes: usize) {
        self.0.mem(track, cycle, dir, addr, lanes);
        self.1.mem(track, cycle, dir, addr, lanes);
    }

    fn span_begin(&mut self, track: u32, ts: u64, name: &str) {
        self.0.span_begin(track, ts, name);
        self.1.span_begin(track, ts, name);
    }

    fn span_end(&mut self, track: u32, ts: u64, name: &str) {
        self.0.span_end(track, ts, name);
        self.1.span_end(track, ts, name);
    }

    fn fault_hooks_enabled(&self) -> bool {
        self.0.fault_hooks_enabled() || self.1.fault_hooks_enabled()
    }

    fn fault_data(&mut self, track: u32, cycle: u64, site: FaultSite, data: &mut [u64]) {
        self.0.fault_data(track, cycle, site, data);
        self.1.fault_data(track, cycle, site, data);
    }
}

/// An owned trace event, as recorded by [`RingBufferSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `count` beats of `kind` occupying `[cycle, cycle + count)`.
    Beat {
        /// Event stream.
        track: u32,
        /// Start cycle.
        cycle: u64,
        /// What the beats did.
        kind: BeatKind,
        /// How many identical beats.
        count: u64,
    },
    /// A register-file transfer.
    Mem {
        /// Event stream.
        track: u32,
        /// Cycle at which the transfer happened.
        cycle: u64,
        /// Load or store.
        dir: MemDir,
        /// Register address.
        addr: usize,
        /// Words moved.
        lanes: usize,
    },
    /// A phase opened.
    SpanBegin {
        /// Event stream.
        track: u32,
        /// Timestamp (cycle or sequence number).
        ts: u64,
        /// Phase name.
        name: String,
    },
    /// A phase closed.
    SpanEnd {
        /// Event stream.
        track: u32,
        /// Timestamp (cycle or sequence number).
        ts: u64,
        /// Phase name.
        name: String,
    },
}

/// Counter registry: beat counts by opcode, network passes by kind,
/// register-file traffic, and per-span cycle attribution.
///
/// The sink maintains its own running [`CycleStats`] from the beats it
/// observes; a span's cost is the [`CycleStats::delta`] between its end
/// and begin snapshots, accumulated per span name.
#[derive(Debug, Clone, Default)]
pub struct CounterSink {
    butterfly_beats: u64,
    ewise_beats: [u64; 6],
    net_beats: [u64; 6],
    reg_loads: u64,
    reg_stores: u64,
    reg_words_loaded: u64,
    reg_words_stored: u64,
    running: CycleStats,
    open: Vec<(String, CycleStats)>,
    phases: BTreeMap<String, CycleStats>,
    unmatched_span_ends: u64,
}

impl CounterSink {
    /// A fresh, zeroed registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total butterfly beats observed.
    #[must_use]
    pub const fn butterfly_beats(&self) -> u64 {
        self.butterfly_beats
    }

    /// Element-wise beats observed for `op`.
    #[must_use]
    pub const fn ewise_beats(&self, op: EwiseOp) -> u64 {
        self.ewise_beats[op.index()]
    }

    /// Network-only beats observed for `kind`.
    #[must_use]
    pub const fn net_beats(&self, kind: NetKind) -> u64 {
        self.net_beats[kind.index()]
    }

    /// Register-file loads (writes into the register file) observed.
    #[must_use]
    pub const fn reg_loads(&self) -> u64 {
        self.reg_loads
    }

    /// Register-file stores (reads out of the register file) observed.
    #[must_use]
    pub const fn reg_stores(&self) -> u64 {
        self.reg_stores
    }

    /// Words moved into / out of the register file.
    #[must_use]
    pub const fn reg_words(&self) -> (u64, u64) {
        (self.reg_words_loaded, self.reg_words_stored)
    }

    /// The cycle totals reconstructed purely from trace events. For a
    /// single-VPU run this must equal the VPU's own
    /// [`stats`](crate::vpu::Vpu::stats) bit-for-bit.
    #[must_use]
    pub const fn running(&self) -> &CycleStats {
        &self.running
    }

    /// Per-span cycle attribution, keyed by span name, accumulated over
    /// all completed spans of that name. Nested spans both observe the
    /// beats inside the inner span.
    #[must_use]
    pub const fn phases(&self) -> &BTreeMap<String, CycleStats> {
        &self.phases
    }

    /// Span-end events that matched no open span and were therefore not
    /// attributed anywhere. Nonzero means the instrumentation emitted
    /// unbalanced span pairs — a bug worth surfacing, not swallowing.
    #[must_use]
    pub const fn unmatched_span_ends(&self) -> u64 {
        self.unmatched_span_ends
    }
}

impl TraceSink for CounterSink {
    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        self.beats(track, cycle, kind, 1);
    }

    fn beats(&mut self, _track: u32, _cycle: u64, kind: BeatKind, count: u64) {
        match kind {
            BeatKind::Butterfly => self.butterfly_beats += count,
            BeatKind::Elementwise(op) => self.ewise_beats[op.index()] += count,
            BeatKind::NetworkMove(net) => self.net_beats[net.index()] += count,
        }
        kind.charge(&mut self.running, count);
    }

    fn mem(&mut self, _track: u32, _cycle: u64, dir: MemDir, _addr: usize, lanes: usize) {
        match dir {
            MemDir::Load => {
                self.reg_loads += 1;
                self.reg_words_loaded += lanes as u64;
            }
            MemDir::Store => {
                self.reg_stores += 1;
                self.reg_words_stored += lanes as u64;
            }
        }
    }

    fn span_begin(&mut self, _track: u32, _ts: u64, name: &str) {
        self.open.push((name.to_string(), self.running));
    }

    fn span_end(&mut self, _track: u32, _ts: u64, name: &str) {
        // Tolerate mismatched names (spans from different tracks may
        // interleave): close the innermost open span with this name.
        if let Some(pos) = self.open.iter().rposition(|(n, _)| n == name) {
            let (name, at_begin) = self.open.remove(pos);
            let cost = self.running.delta(&at_begin);
            *self.phases.entry(name).or_default() += cost;
        } else {
            self.unmatched_span_ends += 1;
        }
    }
}

impl fmt::Display for CounterSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "beat counters:")?;
        writeln!(f, "  {:<24} {:>12}", "butterfly", self.butterfly_beats)?;
        for op in EwiseOp::ALL {
            if self.ewise_beats(op) > 0 {
                writeln!(f, "  {:<24} {:>12}", op.name(), self.ewise_beats(op))?;
            }
        }
        for kind in NetKind::ALL {
            if self.net_beats(kind) > 0 {
                writeln!(f, "  {:<24} {:>12}", kind.name(), self.net_beats(kind))?;
            }
        }
        writeln!(
            f,
            "register file: {} loads ({} words), {} stores ({} words)",
            self.reg_loads, self.reg_words_loaded, self.reg_stores, self.reg_words_stored
        )?;
        if !self.phases.is_empty() {
            writeln!(f, "phases:")?;
            for (name, stats) in &self.phases {
                writeln!(f, "  {name:<24} {stats}")?;
            }
        }
        Ok(())
    }
}

/// Bounded event recorder: keeps the most recent `capacity` events and
/// counts how many older ones were dropped.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    dropped_beats: u64,
    dropped_mems: u64,
    dropped_spans: u64,
    dropped_since_read: u64,
    dropped_since_read_by_kind: [u64; 3],
}

impl RingBufferSink {
    /// A recorder holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            dropped_beats: 0,
            dropped_mems: 0,
            dropped_spans: 0,
            dropped_since_read: 0,
            dropped_since_read_by_kind: [0; 3],
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            match self.buf.pop_front() {
                Some(TraceEvent::Beat { .. }) => {
                    self.dropped_beats += 1;
                    self.dropped_since_read_by_kind[0] += 1;
                }
                Some(TraceEvent::Mem { .. }) => {
                    self.dropped_mems += 1;
                    self.dropped_since_read_by_kind[1] += 1;
                }
                Some(TraceEvent::SpanBegin { .. } | TraceEvent::SpanEnd { .. }) => {
                    self.dropped_spans += 1;
                    self.dropped_since_read_by_kind[2] += 1;
                }
                None => {}
            }
            self.dropped += 1;
            self.dropped_since_read += 1;
        }
        self.buf.push_back(event);
    }

    /// The retained events, oldest first.
    #[must_use]
    pub const fn events(&self) -> &VecDeque<TraceEvent> {
        &self.buf
    }

    /// Events evicted because the buffer was full.
    #[must_use]
    pub const fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Evicted events by category: `(beats, mems, spans)`. Sums to
    /// [`dropped`](Self::dropped); span drops are the ones that silently
    /// corrupt downstream phase attribution, so they get their own bin.
    #[must_use]
    pub const fn dropped_by_kind(&self) -> (u64, u64, u64) {
        (self.dropped_beats, self.dropped_mems, self.dropped_spans)
    }

    /// Events evicted since the last [`mark_read`](Self::mark_read)
    /// (or construction). Querying does *not* clear the mark, so a
    /// fault campaign can poll the high-water count between cells
    /// without losing it; call `mark_read` to start a new window.
    #[must_use]
    pub const fn dropped_since_last_read(&self) -> u64 {
        self.dropped_since_read
    }

    /// The current `dropped_since_last_read` window split by event kind:
    /// `(beats, mems, spans)`. Sums to
    /// [`dropped_since_last_read`](Self::dropped_since_last_read); span
    /// drops are the ones that corrupt downstream phase attribution, so
    /// a poller can alarm on them specifically while tolerating beat
    /// evictions.
    #[must_use]
    pub const fn dropped_since_last_read_by_kind(&self) -> (u64, u64, u64) {
        (
            self.dropped_since_read_by_kind[0],
            self.dropped_since_read_by_kind[1],
            self.dropped_since_read_by_kind[2],
        )
    }

    /// Starts a new `dropped_since_last_read` window. Lifetime drop
    /// totals ([`dropped`](Self::dropped), per-kind bins) are untouched.
    pub fn mark_read(&mut self) {
        self.dropped_since_read = 0;
        self.dropped_since_read_by_kind = [0; 3];
    }

    /// Discards all retained events and resets every drop counter,
    /// keeping the capacity. Lets one recorder be reused across runs
    /// without carrying stale drop totals into the next report.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
        self.dropped_beats = 0;
        self.dropped_mems = 0;
        self.dropped_spans = 0;
        self.dropped_since_read = 0;
        self.dropped_since_read_by_kind = [0; 3];
    }

    /// Maximum number of retained events.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingBufferSink {
    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        self.push(TraceEvent::Beat {
            track,
            cycle,
            kind,
            count: 1,
        });
    }

    fn beats(&mut self, track: u32, cycle: u64, kind: BeatKind, count: u64) {
        self.push(TraceEvent::Beat {
            track,
            cycle,
            kind,
            count,
        });
    }

    fn mem(&mut self, track: u32, cycle: u64, dir: MemDir, addr: usize, lanes: usize) {
        self.push(TraceEvent::Mem {
            track,
            cycle,
            dir,
            addr,
            lanes,
        });
    }

    fn span_begin(&mut self, track: u32, ts: u64, name: &str) {
        self.push(TraceEvent::SpanBegin {
            track,
            ts,
            name: name.to_string(),
        });
    }

    fn span_end(&mut self, track: u32, ts: u64, name: &str) {
        self.push(TraceEvent::SpanEnd {
            track,
            ts,
            name: name.to_string(),
        });
    }
}

/// One emitted Chrome trace event.
#[derive(Debug, Clone)]
struct ChromeEvent {
    name: String,
    cat: &'static str,
    ph: char,
    ts: u64,
    dur: Option<u64>,
    tid: u32,
    /// Pre-rendered `"args"` object body (`"k":v,…`, already escaped).
    args: Option<String>,
}

/// A run of consecutive identical beats being coalesced.
#[derive(Debug, Clone, Copy)]
struct PendingSlice {
    track: u32,
    kind: BeatKind,
    start: u64,
    count: u64,
}

/// Chrome trace-event / Perfetto JSON exporter.
///
/// Consecutive beats of the same kind on the same track coalesce into a
/// single duration slice, so an `n`-beat butterfly batch is one event,
/// not `n`. Spans become `B`/`E` (begin/end) events. One simulated cycle
/// maps to one microsecond of trace time. The JSON is hand-rolled (the
/// build environment is offline; no serde) and loads in
/// `ui.perfetto.dev` or `chrome://tracing`.
#[derive(Debug, Clone, Default)]
pub struct PerfettoSink {
    events: Vec<ChromeEvent>,
    pending: Option<PendingSlice>,
    include_mem: bool,
}

impl PerfettoSink {
    /// A fresh exporter (register-file transfers not recorded).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Also records register-file loads/stores as instant events (can be
    /// voluminous for large workloads).
    #[must_use]
    pub fn with_mem_instants(mut self) -> Self {
        self.include_mem = true;
        self
    }

    fn flush_pending(&mut self) {
        if let Some(p) = self.pending.take() {
            self.events.push(ChromeEvent {
                name: p.kind.name().to_string(),
                cat: p.kind.category(),
                ph: 'X',
                ts: p.start,
                dur: Some(p.count),
                tid: p.track,
                args: None,
            });
        }
    }

    /// Emits a counter sample (`ph: 'C'`): one data point per series of
    /// the counter named `name` at `ts`. Perfetto renders each `series`
    /// key as a stacked band of the counter track. Values are
    /// pre-rendered by the caller (fixed-precision strings keep exports
    /// deterministic; they must be valid JSON number literals).
    pub fn counter(&mut self, track: u32, ts: u64, name: &str, series: &[(&str, String)]) {
        self.flush_pending();
        let mut args = String::with_capacity(series.len() * 24);
        for (i, (key, value)) in series.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            args.push('"');
            escape_json_into(&mut args, key);
            args.push_str("\":");
            args.push_str(value);
        }
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat: "counter",
            ph: 'C',
            ts,
            dur: None,
            tid: track,
            args: Some(args),
        });
    }

    /// Number of events emitted so far (after coalescing, excluding one
    /// possibly still-pending slice).
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.events.len() + usize::from(self.pending.is_some())
    }

    /// Serializes everything seen so far as Chrome trace-event JSON.
    #[must_use]
    pub fn to_json(&mut self) -> String {
        self.flush_pending();
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json_into(&mut out, &e.name);
            out.push_str("\",\"cat\":\"");
            escape_json_into(&mut out, e.cat);
            out.push_str("\",\"ph\":\"");
            out.push(e.ph);
            out.push_str("\",\"ts\":");
            out.push_str(&e.ts.to_string());
            if let Some(dur) = e.dur {
                out.push_str(",\"dur\":");
                out.push_str(&dur.to_string());
            }
            if e.ph == 'i' {
                out.push_str(",\"s\":\"t\"");
            }
            if let Some(args) = &e.args {
                out.push_str(",\"args\":{");
                out.push_str(args);
                out.push('}');
            }
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&e.tid.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Appends `s` to `out` with JSON string escaping.
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl TraceSink for PerfettoSink {
    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        self.beats(track, cycle, kind, 1);
    }

    fn beats(&mut self, track: u32, cycle: u64, kind: BeatKind, count: u64) {
        if let Some(p) = &mut self.pending {
            if p.track == track && p.kind == kind && cycle == p.start + p.count {
                p.count += count;
                return;
            }
        }
        self.flush_pending();
        self.pending = Some(PendingSlice {
            track,
            kind,
            start: cycle,
            count,
        });
    }

    fn mem(&mut self, track: u32, cycle: u64, dir: MemDir, addr: usize, lanes: usize) {
        if !self.include_mem {
            return;
        }
        self.flush_pending();
        let dir_name = match dir {
            MemDir::Load => "load",
            MemDir::Store => "store",
        };
        self.events.push(ChromeEvent {
            name: format!("{dir_name} r{addr} ({lanes}w)"),
            cat: "mem",
            ph: 'i',
            ts: cycle,
            dur: None,
            tid: track,
            args: None,
        });
    }

    fn span_begin(&mut self, track: u32, ts: u64, name: &str) {
        self.flush_pending();
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat: "span",
            ph: 'B',
            ts,
            dur: None,
            tid: track,
            args: None,
        });
    }

    fn span_end(&mut self, track: u32, ts: u64, name: &str) {
        self.flush_pending();
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat: "span",
            ph: 'E',
            ts,
            dur: None,
            tid: track,
            args: None,
        });
    }
}

/// A cloneable handle sharing one sink between an owner and a `Vpu` (or
/// the thread-local global slot): `Rc<RefCell<S>>` with [`TraceSink`]
/// delegation, so the owner can inspect the sink after the traced run.
#[derive(Debug, Default)]
pub struct SharedSink<S> {
    inner: Rc<RefCell<S>>,
}

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<S: TraceSink> SharedSink<S> {
    /// Wraps a sink in a shared handle.
    #[must_use]
    pub fn new(sink: S) -> Self {
        Self {
            inner: Rc::new(RefCell::new(sink)),
        }
    }

    /// Runs `f` with shared access to the inner sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }
}

impl<S: TraceSink> TraceSink for SharedSink<S> {
    fn enabled(&self) -> bool {
        self.inner.borrow().enabled()
    }

    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        self.inner.borrow_mut().beat(track, cycle, kind);
    }

    fn beats(&mut self, track: u32, cycle: u64, kind: BeatKind, count: u64) {
        self.inner.borrow_mut().beats(track, cycle, kind, count);
    }

    fn mem(&mut self, track: u32, cycle: u64, dir: MemDir, addr: usize, lanes: usize) {
        self.inner.borrow_mut().mem(track, cycle, dir, addr, lanes);
    }

    fn span_begin(&mut self, track: u32, ts: u64, name: &str) {
        self.inner.borrow_mut().span_begin(track, ts, name);
    }

    fn span_end(&mut self, track: u32, ts: u64, name: &str) {
        self.inner.borrow_mut().span_end(track, ts, name);
    }

    fn fault_hooks_enabled(&self) -> bool {
        self.inner.borrow().fault_hooks_enabled()
    }

    fn fault_data(&mut self, track: u32, cycle: u64, site: FaultSite, data: &mut [u64]) {
        self.inner.borrow_mut().fault_data(track, cycle, site, data);
    }
}

/// A `Send` cloneable handle sharing one sink across threads:
/// `Arc<Mutex<S>>` with [`TraceSink`] delegation. The cross-thread
/// counterpart of [`SharedSink`] — install it with
/// [`install_global_sync`] so `uvpu-par` pool workers inherit it.
#[derive(Debug, Default)]
pub struct SyncSink<S> {
    inner: Arc<Mutex<S>>,
}

impl<S> Clone for SyncSink<S> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: TraceSink> SyncSink<S> {
    /// Wraps a sink in a thread-safe shared handle.
    #[must_use]
    pub fn new(sink: S) -> Self {
        Self {
            inner: Arc::new(Mutex::new(sink)),
        }
    }

    /// Runs `f` with exclusive access to the inner sink. Poisoning is
    /// ignored: sinks stay structurally valid after a panicking writer.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<S: TraceSink> TraceSink for SyncSink<S> {
    fn enabled(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .enabled()
    }

    fn beat(&mut self, track: u32, cycle: u64, kind: BeatKind) {
        self.with(|s| s.beat(track, cycle, kind));
    }

    fn beats(&mut self, track: u32, cycle: u64, kind: BeatKind, count: u64) {
        self.with(|s| s.beats(track, cycle, kind, count));
    }

    fn mem(&mut self, track: u32, cycle: u64, dir: MemDir, addr: usize, lanes: usize) {
        self.with(|s| s.mem(track, cycle, dir, addr, lanes));
    }

    fn span_begin(&mut self, track: u32, ts: u64, name: &str) {
        self.with(|s| s.span_begin(track, ts, name));
    }

    fn span_end(&mut self, track: u32, ts: u64, name: &str) {
        self.with(|s| s.span_end(track, ts, name));
    }

    fn fault_hooks_enabled(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .fault_hooks_enabled()
    }

    fn fault_data(&mut self, track: u32, cycle: u64, site: FaultSite, data: &mut [u64]) {
        self.with(|s| s.fault_data(track, cycle, site, data));
    }
}

thread_local! {
    static GLOBAL_SINK: RefCell<Option<Box<dyn TraceSink>>> = const { RefCell::new(None) };
    static GLOBAL_SEQ: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// When set, the logical clock for this thread's global sink is the
    /// process-wide shared counter instead of [`GLOBAL_SEQ`].
    static SHARED_SEQ: RefCell<Option<Arc<AtomicU64>>> = const { RefCell::new(None) };
}

/// What pool workers install on entry when a sync global sink is active:
/// a factory for sink handles plus the shared sequence clock.
struct Propagate {
    make: Box<dyn Fn() -> Box<dyn TraceSink> + Send + Sync>,
    seq: Arc<AtomicU64>,
}

static PROPAGATE: Mutex<Option<Arc<Propagate>>> = Mutex::new(None);

fn propagate_state() -> Option<Arc<Propagate>> {
    PROPAGATE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// `uvpu-par` worker start hook: adopt the propagated sync sink handle
/// and the shared sequence clock for this worker's lifetime.
fn worker_adopt_global() {
    if let Some(state) = propagate_state() {
        SHARED_SEQ.with(|slot| *slot.borrow_mut() = Some(Arc::clone(&state.seq)));
        GLOBAL_SINK.with(|slot| *slot.borrow_mut() = Some((state.make)()));
    }
}

/// `uvpu-par` worker exit hook: drop this worker's sink handle.
fn worker_release_global() {
    GLOBAL_SINK.with(|slot| slot.borrow_mut().take());
    SHARED_SEQ.with(|slot| slot.borrow_mut().take());
}

/// Installs a thread-local global sink for scheme-level spans (CKKS/BFV
/// phases, scheduler tasks). Resets the logical sequence clock. Install a
/// [`SharedSink`] handle (boxed) to keep a second handle for reading the
/// data back afterwards.
///
/// The installed sink is visible to *this thread only*; spans emitted
/// from `uvpu-par` pool workers are not captured. Use
/// [`install_global_sync`] when traced work runs on the pool.
pub fn install_global(sink: Box<dyn TraceSink>) {
    SHARED_SEQ.with(|slot| slot.borrow_mut().take());
    GLOBAL_SEQ.with(|seq| seq.set(0));
    GLOBAL_SINK.with(|slot| *slot.borrow_mut() = Some(sink));
}

/// Removes and returns the thread-local global sink, if any.
pub fn take_global() -> Option<Box<dyn TraceSink>> {
    GLOBAL_SINK.with(|slot| slot.borrow_mut().take())
}

/// Installs `sink` as the global span sink for this thread *and* for
/// every `uvpu-par` pool worker spawned while it is installed
/// (install-on-spawn via [`uvpu_par::install_worker_hooks`]).
///
/// The logical sequence clock becomes one process-wide monotonic atomic
/// shared by all participating threads (see the module docs for what
/// that means for cross-thread timestamp ordering). Keep a clone of the
/// handle to read the data back; uninstall with [`take_global_sync`].
pub fn install_global_sync<S: TraceSink + Send + 'static>(sink: SyncSink<S>) {
    let seq = Arc::new(AtomicU64::new(0));
    let factory = sink.clone();
    *PROPAGATE.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(Propagate {
        make: Box::new(move || Box::new(factory.clone()) as Box<dyn TraceSink>),
        seq: Arc::clone(&seq),
    }));
    uvpu_par::install_worker_hooks(worker_adopt_global, worker_release_global);
    SHARED_SEQ.with(|slot| *slot.borrow_mut() = Some(seq));
    GLOBAL_SINK.with(|slot| *slot.borrow_mut() = Some(Box::new(sink)));
}

/// Uninstalls a [`install_global_sync`] sink: stops propagation into new
/// pool workers, unregisters the worker hooks, and returns this thread's
/// handle (if any). Workers currently running keep their clones until
/// they exit.
pub fn take_global_sync() -> Option<Box<dyn TraceSink>> {
    *PROPAGATE.lock().unwrap_or_else(PoisonError::into_inner) = None;
    uvpu_par::clear_worker_hooks();
    SHARED_SEQ.with(|slot| slot.borrow_mut().take());
    take_global()
}

/// Whether a global sink is installed *and* enabled. Scheme crates check
/// this before `format!`ing span names.
#[must_use]
pub fn global_enabled() -> bool {
    GLOBAL_SINK.with(|slot| slot.borrow().as_ref().is_some_and(|s| s.enabled()))
}

fn next_seq() -> u64 {
    let shared = SHARED_SEQ.with(|slot| {
        slot.borrow()
            .as_ref()
            .map(|seq| seq.fetch_add(1, Ordering::Relaxed))
    });
    if let Some(ts) = shared {
        return ts;
    }
    GLOBAL_SEQ.with(|seq| {
        let t = seq.get();
        seq.set(t + 1);
        t
    })
}

/// Runs `f` against the global sink if one is installed.
fn with_global(f: impl FnOnce(&mut dyn TraceSink, u64)) {
    GLOBAL_SINK.with(|slot| {
        if let Some(sink) = slot.borrow_mut().as_mut() {
            f(&mut **sink, next_seq());
        }
    });
}

/// RAII guard closing a scheme-level span on drop. Inert (allocation-free)
/// when no global sink is installed.
#[derive(Debug)]
pub struct SpanGuard {
    name: Option<String>,
    track: u32,
}

impl SpanGuard {
    fn open(track: u32, name: &str) -> Self {
        let mut opened = None;
        with_global(|sink, ts| {
            sink.span_begin(track, ts, name);
            opened = Some(name.to_string());
        });
        Self {
            name: opened,
            track,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            with_global(|sink, ts| sink.span_end(self.track, ts, &name));
        }
    }
}

/// Opens a scheme-level span on [`SCHEME_TRACK`] against the global sink.
/// Returns an inert guard when no sink is installed.
#[must_use]
pub fn scheme_span(name: &str) -> SpanGuard {
    SpanGuard::open(SCHEME_TRACK, name)
}

/// Like [`scheme_span`], but the name is built lazily so disabled runs
/// never pay for the `format!`.
#[must_use]
pub fn scheme_span_lazy(f: impl FnOnce() -> String) -> SpanGuard {
    if global_enabled() {
        SpanGuard::open(SCHEME_TRACK, &f())
    } else {
        SpanGuard {
            name: None,
            track: SCHEME_TRACK,
        }
    }
}

/// Opens a span on an explicit track against the global sink (the
/// accelerator scheduler uses one track per VPU slot).
#[must_use]
pub fn global_span(track: u32, name: &str) -> SpanGuard {
    SpanGuard::open(track, name)
}

/// Emits a matched begin/end span pair with explicit timestamps against
/// the global sink (for replaying a precomputed schedule, where start and
/// end times are known rather than discovered). No-op without a sink.
pub fn global_span_at(track: u32, name: &str, start: u64, end: u64) {
    GLOBAL_SINK.with(|slot| {
        if let Some(sink) = slot.borrow_mut().as_mut() {
            sink.span_begin(track, start, name);
            sink.span_end(track, end.max(start), name);
        }
    });
}

/// Emits the begin half of a span with an explicit timestamp against the
/// global sink. Pair with [`global_span_end_at`]; unlike
/// [`global_span_at`] the span stays open across other emissions, so
/// tree-building sinks see events in between as *children* of this span
/// (the scheduler wraps each slot's task timeline in an `accel.batch`
/// parent this way). No-op without a sink.
pub fn global_span_begin_at(track: u32, name: &str, ts: u64) {
    GLOBAL_SINK.with(|slot| {
        if let Some(sink) = slot.borrow_mut().as_mut() {
            sink.span_begin(track, ts, name);
        }
    });
}

/// Emits the end half of a span opened with [`global_span_begin_at`].
/// No-op without a sink.
pub fn global_span_end_at(track: u32, name: &str, ts: u64) {
    GLOBAL_SINK.with(|slot| {
        if let Some(sink) = slot.borrow_mut().as_mut() {
            sink.span_end(track, ts, name);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::ShiftControls;

    #[test]
    fn netkind_classifies_all_pass_shapes() {
        assert_eq!(NetKind::from_pass(&NetworkPass::default()), NetKind::Route);
        assert_eq!(
            NetKind::from_pass(&NetworkPass::cg(CgDirection::Dif)),
            NetKind::CgShuffle
        );
        assert_eq!(
            NetKind::from_pass(&NetworkPass::cg(CgDirection::Dit)),
            NetKind::CgUnshuffle
        );
        let shifts = ShiftControls::from_rotation(8, 1);
        assert_eq!(
            NetKind::from_pass(&NetworkPass::shift(shifts.clone())),
            NetKind::Shift
        );
        let both = NetworkPass {
            cg: Some(CgDirection::Dit),
            shifts: Some(shifts),
        };
        assert_eq!(NetKind::from_pass(&both), NetKind::CgUnshuffleShift);
    }

    #[test]
    fn counter_sink_reconstructs_cycle_stats() {
        let mut sink = CounterSink::new();
        sink.beat(0, 0, BeatKind::Butterfly);
        sink.beat(0, 1, BeatKind::Elementwise(EwiseOp::Mul));
        sink.beats(0, 2, BeatKind::NetworkMove(NetKind::Shift), 5);
        assert_eq!(sink.running().butterfly, 1);
        assert_eq!(sink.running().elementwise, 1);
        assert_eq!(sink.running().network_move, 5);
        assert_eq!(sink.running().total(), 7);
        assert_eq!(sink.net_beats(NetKind::Shift), 5);
        assert_eq!(sink.ewise_beats(EwiseOp::Mul), 1);
    }

    #[test]
    fn counter_sink_attributes_spans() {
        let mut sink = CounterSink::new();
        sink.span_begin(0, 0, "outer");
        sink.beat(0, 0, BeatKind::Butterfly);
        sink.span_begin(0, 1, "inner");
        sink.beat(0, 1, BeatKind::NetworkMove(NetKind::Shift));
        sink.span_end(0, 2, "inner");
        sink.span_end(0, 2, "outer");
        let outer = sink.phases()["outer"];
        let inner = sink.phases()["inner"];
        assert_eq!(outer.total(), 2, "outer observes the nested beat too");
        assert_eq!(inner.total(), 1);
        assert_eq!(inner.network_move, 1);
    }

    #[test]
    fn counter_sink_tolerates_interleaved_span_ends() {
        let mut sink = CounterSink::new();
        sink.span_begin(0, 0, "a");
        sink.span_begin(1, 0, "b");
        sink.beat(0, 0, BeatKind::Butterfly);
        sink.span_end(0, 1, "a");
        sink.span_end(1, 1, "b");
        sink.span_end(1, 1, "never-opened");
        assert_eq!(sink.phases().len(), 2);
        assert_eq!(sink.phases()["a"].butterfly, 1);
        assert_eq!(sink.unmatched_span_ends(), 1, "the bad end is counted");
    }

    #[test]
    fn ring_buffer_bounds_and_counts_drops() {
        let mut sink = RingBufferSink::new(3);
        for i in 0..5u64 {
            sink.beat(0, i, BeatKind::Butterfly);
        }
        assert_eq!(sink.events().len(), 3);
        assert_eq!(sink.dropped(), 2);
        match &sink.events()[0] {
            TraceEvent::Beat { cycle, .. } => assert_eq!(*cycle, 2),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn ring_buffer_attributes_drops_by_category_and_clears() {
        let mut sink = RingBufferSink::new(2);
        sink.beat(0, 0, BeatKind::Butterfly);
        sink.mem(0, 1, MemDir::Load, 0, 64);
        sink.span_begin(0, 2, "s");
        sink.span_end(0, 3, "s");
        // Capacity 2: the beat and the mem were evicted; the two span
        // events remain.
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.dropped_by_kind(), (1, 1, 0));
        sink.span_begin(0, 4, "t");
        assert_eq!(sink.dropped_by_kind(), (1, 1, 1));
        let (b, m, s) = sink.dropped_by_kind();
        assert_eq!(b + m + s, sink.dropped(), "categories partition total");
        sink.clear();
        assert_eq!(sink.events().len(), 0);
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.dropped_by_kind(), (0, 0, 0));
        assert_eq!(sink.capacity(), 2, "capacity survives clear");
        sink.beat(0, 5, BeatKind::Butterfly);
        assert_eq!(sink.events().len(), 1, "reusable after clear");
    }

    #[test]
    fn ring_buffer_high_water_mark_survives_queries() {
        let mut sink = RingBufferSink::new(2);
        for i in 0..5u64 {
            sink.beat(0, i, BeatKind::Butterfly);
        }
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.dropped_since_last_read(), 3);
        // Querying does not clear the mark.
        assert_eq!(sink.dropped_since_last_read(), 3);
        sink.mark_read();
        assert_eq!(sink.dropped_since_last_read(), 0);
        assert_eq!(sink.dropped(), 3, "lifetime total survives mark_read");
        sink.beat(0, 5, BeatKind::Butterfly);
        assert_eq!(sink.dropped_since_last_read(), 1, "new window counts");
        assert_eq!(sink.dropped(), 4);
        sink.clear();
        assert_eq!(sink.dropped_since_last_read(), 0, "clear resets the mark");
    }

    #[test]
    fn perfetto_coalesces_consecutive_beats() {
        let mut sink = PerfettoSink::new();
        for i in 0..10u64 {
            sink.beat(0, i, BeatKind::Butterfly);
        }
        sink.beat(0, 10, BeatKind::NetworkMove(NetKind::Shift));
        let json = sink.to_json();
        assert_eq!(
            json.matches("\"name\":\"butterfly\"").count(),
            1,
            "ten identical beats coalesce into one slice: {json}"
        );
        assert!(json.contains("\"dur\":10"));
        assert!(json.contains("\"name\":\"net.shift\""));
    }

    #[test]
    fn perfetto_emits_valid_json_shape() {
        let mut sink = PerfettoSink::new().with_mem_instants();
        sink.span_begin(3, 0, "phase \"x\"\n");
        sink.beat(3, 0, BeatKind::Elementwise(EwiseOp::Mac));
        sink.mem(3, 1, MemDir::Load, 7, 64);
        sink.span_end(3, 1, "phase \"x\"\n");
        let json = sink.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\"x\\\"\\n"), "escaped: {json}");
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"tid\":3"));
        // Balanced braces/brackets outside strings — cheap validity probe.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn shared_sink_exposes_data_after_run() {
        let shared = SharedSink::new(CounterSink::new());
        let mut handle = shared.clone();
        handle.beat(0, 0, BeatKind::Butterfly);
        assert_eq!(shared.with(|s| s.running().butterfly), 1);
    }

    #[test]
    fn global_span_api_round_trips() {
        let shared = SharedSink::new(RingBufferSink::new(16));
        install_global(Box::new(shared.clone()));
        assert!(global_enabled());
        {
            let _g = scheme_span("ckks.mul");
            let _h = scheme_span_lazy(|| format!("rotate k={}", 3));
        }
        global_span_at(2, "task", 10, 20);
        let sink = take_global();
        assert!(sink.is_some());
        assert!(!global_enabled());
        shared.with(|s| {
            assert_eq!(s.events().len(), 6);
            match &s.events()[0] {
                TraceEvent::SpanBegin { name, ts, track } => {
                    assert_eq!(name, "ckks.mul");
                    assert_eq!(*ts, 0);
                    assert_eq!(*track, SCHEME_TRACK);
                }
                other => panic!("unexpected {other:?}"),
            }
            match &s.events()[5] {
                TraceEvent::SpanEnd { name, ts, track } => {
                    assert_eq!(name, "task");
                    assert_eq!(*ts, 20);
                    assert_eq!(*track, 2);
                }
                other => panic!("unexpected {other:?}"),
            }
        });
    }

    #[test]
    fn lazy_span_skips_formatting_when_disabled() {
        assert!(take_global().is_none());
        let _g = scheme_span_lazy(|| panic!("must not format when no sink installed"));
    }

    #[test]
    fn nop_sink_is_disabled_and_zero_sized() {
        assert!(!NopSink.enabled());
        assert_eq!(std::mem::size_of::<NopSink>(), 0);
    }
}
