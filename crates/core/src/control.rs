//! Shift-network control words and the precomputed automorphism table.
//!
//! The shift half of the inter-lane network has `log₂ m` stages of
//! distance `m/2, m/4, …, 1`; the stage of distance `d` has `d`
//! independently controlled MUX groups (one per residue class mod `d`),
//! for `m − 1` control bits per traversal (paper Fig 2).
//!
//! A control word *is* a [`ShiftDecomposition`] of the permutation being
//! routed: [`ShiftControls::from_affine`] produces the word for any merged
//! automorphism-plus-shift `ρ_t ∘ σ_g` in `O(m)` time, proving the paper's
//! §IV-B claim that such permutations need exactly one network traversal.
//!
//! Because the control patterns are irregular, the paper pre-generates
//! them for all `m/2` distinct automorphisms and stores them in a small
//! SRAM (≈2 kbit at `m = 64`); [`AutomorphismControlTable`] models that
//! SRAM, including the runtime merge with the per-column shift of Eq (2).
//!
//! [`ShiftDecomposition`]: uvpu_math::automorphism::ShiftDecomposition

use crate::CoreError;
use uvpu_math::automorphism::{AffineMap, ShiftDecomposition};
use uvpu_math::util::log2_exact;

/// A full set of control bits for one traversal of the shift network.
///
/// `bits[level][class]` drives the MUX group of residue class `class`
/// at the stage of distance `2^level`; when set, every element of that
/// class moves from lane `i` to lane `i + 2^level mod m`.
///
/// # Example
///
/// ```
/// use uvpu_core::control::ShiftControls;
/// use uvpu_math::automorphism::AffineMap;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Route the merged automorphism+shift i ↦ 5i + 3 (mod 64) in one pass.
/// let map = AffineMap::new(64, 5, 3)?;
/// let controls = ShiftControls::from_affine(&map);
/// assert_eq!(controls.bit_count(), 63); // m − 1 control bits
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftControls {
    m: usize,
    bits: Vec<Vec<bool>>,
}

impl ShiftControls {
    /// The all-zero control word: every stage passes data straight through.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two ≥ 2.
    #[must_use]
    pub fn identity(m: usize) -> Self {
        let levels = log2_exact(m) as usize;
        Self {
            m,
            bits: (0..levels).map(|l| vec![false; 1 << l]).collect(),
        }
    }

    /// Control word realizing an arbitrary merged automorphism-plus-shift
    /// `i ↦ i·g + t mod m` — the paper's single-traversal guarantee.
    #[must_use]
    pub fn from_affine(map: &AffineMap) -> Self {
        let dec = ShiftDecomposition::decompose(map);
        let m = map.n();
        let levels = log2_exact(m) as usize;
        Self {
            m,
            bits: (0..levels).map(|l| dec.level_bits(l).to_vec()).collect(),
        }
    }

    /// Control word for a uniform cyclic rotation by `t` (every lane's
    /// element moves to lane `i + t mod m`): the binary expansion of `t`
    /// selects whole stages. Used for cross-lane reductions and the
    /// regular transpose steps of Fig 3(a).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two ≥ 2.
    #[must_use]
    pub fn from_rotation(m: usize, t: u64) -> Self {
        let levels = log2_exact(m) as usize;
        let t = t % m as u64;
        Self {
            m,
            bits: (0..levels)
                .map(|l| vec![(t >> l) & 1 == 1; 1 << l])
                .collect(),
        }
    }

    /// Builds a control word from raw per-level bits.
    ///
    /// # Errors
    ///
    /// [`CoreError::LengthMismatch`] unless `bits[l].len() == 2^l` for every
    /// level and the level count is `log₂ m`.
    pub fn from_bits(m: usize, bits: Vec<Vec<bool>>) -> Result<Self, CoreError> {
        if !m.is_power_of_two() || m < 2 {
            return Err(CoreError::InvalidLaneCount { lanes: m });
        }
        let levels = log2_exact(m) as usize;
        if bits.len() != levels {
            return Err(CoreError::LengthMismatch {
                expected: levels,
                actual: bits.len(),
            });
        }
        for (l, level) in bits.iter().enumerate() {
            if level.len() != 1 << l {
                return Err(CoreError::LengthMismatch {
                    expected: 1 << l,
                    actual: level.len(),
                });
            }
        }
        Ok(Self { m, bits })
    }

    /// Number of lanes this word drives.
    #[must_use]
    pub const fn m(&self) -> usize {
        self.m
    }

    /// The control bit for residue class `class` at stage distance `2^level`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `level`/`class`.
    #[must_use]
    pub fn bit(&self, level: usize, class: usize) -> bool {
        self.bits[level][class]
    }

    /// All bits of one stage (distance `2^level`), indexed by class.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `level`.
    #[must_use]
    pub fn level_bits(&self, level: usize) -> &[bool] {
        &self.bits[level]
    }

    /// Number of stages (`log₂ m`).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.bits.len()
    }

    /// Total control bits (`m − 1`).
    #[must_use]
    pub fn bit_count(&self) -> usize {
        self.bits.iter().map(Vec::len).sum()
    }

    /// Flattens the word into `m − 1` bits, stage `m/2` first — the layout
    /// of one control-SRAM row.
    #[must_use]
    pub fn to_word(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.bit_count());
        for level in (0..self.bits.len()).rev() {
            out.extend_from_slice(&self.bits[level]);
        }
        out
    }

    /// Whether the word routes everything straight through.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.bits.iter().all(|l| l.iter().all(|&b| !b))
    }
}

/// The on-chip control SRAM of §IV-B: pre-generated control words for all
/// `m/2` distinct automorphisms `σ_g` (`g` odd), plus the runtime merge
/// with a per-column cyclic shift.
///
/// With `m` lanes the table holds `m/2` words of `m − 1` bits — e.g.
/// ≈2 kbit at `m = 64`, matching the paper's estimate.
///
/// # Example
///
/// ```
/// use uvpu_core::control::AutomorphismControlTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let table = AutomorphismControlTable::new(64)?;
/// assert_eq!(table.sram_bits(), 32 * 63); // (m/2)·(m−1) = 2016 bits
/// let word = table.merged(5, 7)?; // σ_5 composed with a shift by 7
/// assert_eq!(word.bit_count(), 63);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AutomorphismControlTable {
    m: usize,
    /// `words[(g − 1)/2]` is the control word for `σ_g`, `g` odd.
    words: Vec<ShiftControls>,
}

impl AutomorphismControlTable {
    /// Pre-generates control words for every odd multiplier mod `m`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidLaneCount`] if `m` is not a power of two ≥ 2.
    pub fn new(m: usize) -> Result<Self, CoreError> {
        if !m.is_power_of_two() || m < 2 {
            return Err(CoreError::InvalidLaneCount { lanes: m });
        }
        let words = (0..m / 2)
            .map(|k| {
                let g = 2 * k as u64 + 1;
                let map = AffineMap::automorphism(m, g).expect("odd multiplier");
                ShiftControls::from_affine(&map)
            })
            .collect();
        Ok(Self { m, words })
    }

    /// Lane count.
    #[must_use]
    pub const fn m(&self) -> usize {
        self.m
    }

    /// The stored word for the pure automorphism `σ_g`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedSize`] if `g` is even.
    pub fn lookup(&self, g: u64) -> Result<&ShiftControls, CoreError> {
        if g.is_multiple_of(2) {
            return Err(CoreError::UnsupportedSize { size: g as usize });
        }
        let g = g % self.m as u64;
        Ok(&self.words[((g - 1) / 2) as usize])
    }

    /// The runtime merge of Eq (2): the control word for `ρ_t ∘ σ_g`
    /// (automorphism then cyclic shift by `t`), computed with the same
    /// `O(m)` combinational logic the paper implements with "extra simple
    /// logic gates" — so any column of a decomposed automorphism still
    /// traverses the network exactly once.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedSize`] if `g` is even.
    pub fn merged(&self, g: u64, t: u64) -> Result<ShiftControls, CoreError> {
        if g.is_multiple_of(2) {
            return Err(CoreError::UnsupportedSize { size: g as usize });
        }
        let map = AffineMap::new(self.m, g % self.m as u64, t % self.m as u64)?;
        Ok(ShiftControls::from_affine(&map))
    }

    /// Total SRAM bits: `(m/2)·(m − 1)`.
    #[must_use]
    pub fn sram_bits(&self) -> usize {
        self.words.len() * (self.m - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_word_is_identity() {
        let c = ShiftControls::identity(16);
        assert!(c.is_identity());
        assert_eq!(c.bit_count(), 15);
        assert_eq!(c.levels(), 4);
    }

    #[test]
    fn rotation_word_sets_whole_stages() {
        let c = ShiftControls::from_rotation(8, 5); // 5 = 0b101
        assert_eq!(c.level_bits(0), &[true]);
        assert_eq!(c.level_bits(1), &[false, false]);
        assert_eq!(c.level_bits(2), &[true, true, true, true]);
        // Rotation by m is identity.
        assert!(ShiftControls::from_rotation(8, 8).is_identity());
    }

    #[test]
    fn rotation_matches_affine_decomposition() {
        for t in 0..32u64 {
            let map = AffineMap::rotation(32, t).unwrap();
            assert_eq!(
                ShiftControls::from_rotation(32, t),
                ShiftControls::from_affine(&map),
                "t = {t}"
            );
        }
    }

    #[test]
    fn from_bits_validates_shape() {
        assert!(ShiftControls::from_bits(8, vec![vec![false]; 3]).is_err());
        assert!(
            ShiftControls::from_bits(8, vec![vec![false], vec![false; 2], vec![false; 4]]).is_ok()
        );
        assert!(ShiftControls::from_bits(6, vec![]).is_err());
    }

    #[test]
    fn to_word_orders_big_stage_first() {
        let mut bits = vec![vec![true], vec![false, true], vec![false; 4]];
        bits[2][3] = true;
        let c = ShiftControls::from_bits(8, bits).unwrap();
        // Stage distance 4 (level 2) first, then 2, then 1.
        assert_eq!(
            c.to_word(),
            vec![false, false, false, true, false, true, true]
        );
        assert_eq!(c.to_word().len(), 7);
    }

    #[test]
    fn table_size_matches_paper() {
        let table = AutomorphismControlTable::new(64).unwrap();
        assert_eq!(table.sram_bits(), 2016); // "about 2 kbits" at m = 64
        assert!(AutomorphismControlTable::new(63).is_err());
    }

    #[test]
    fn lookup_and_merge_agree_with_direct_decomposition() {
        let table = AutomorphismControlTable::new(32).unwrap();
        for g in (1..32u64).step_by(2) {
            let direct = ShiftControls::from_affine(&AffineMap::automorphism(32, g).unwrap());
            assert_eq!(table.lookup(g).unwrap(), &direct);
            for t in [0u64, 1, 7, 31] {
                let merged = table.merged(g, t).unwrap();
                let composed = ShiftControls::from_affine(&AffineMap::new(32, g, t).unwrap());
                assert_eq!(merged, composed);
            }
        }
        assert!(table.lookup(4).is_err());
        assert!(table.merged(2, 0).is_err());
    }
}
