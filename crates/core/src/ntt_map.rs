//! Mapping NTTs of arbitrary length onto the VPU (paper §IV-A).
//!
//! A length-`N` transform is decomposed into dimensions of at most `m`
//! (the lane count). Each dimension's small NTTs run fully lane-resident
//! as Pease constant-geometry stages ([`SmallNtt`]); element-wise twiddle
//! scalings separate the dimensions; and the shift network transposes the
//! data between dimensions ([`NttPlan`]), following the pass counts of
//! Fig 3: two shift traversals per column for a regular transpose, plus
//! `log₂ m − log₂ d` extra constant-geometry traversals per column when
//! the incoming dimension `d` is shorter than the VPU width.
//!
//! The full pipeline is bit-exact against the golden-model DFT for every
//! size, and its cycle counts reproduce the utilization behaviour of
//! paper Table III.

use crate::stats::CycleStats;
use crate::trace::{EwiseOp, MemDir, TraceSink};
use crate::vpu::{PeaseStage, Vpu};
use crate::CoreError;
use uvpu_math::modular::Modulus;
use uvpu_math::ntt::psi_twist_inplace;
use uvpu_math::primes::min_root_of_unity;
use uvpu_math::util::{bit_reverse, log2_exact};
use uvpu_math::MathError;

/// A length-`L` Pease constant-geometry NTT plan (`L ≤ m`), with
/// precomputed per-stage twiddles.
///
/// Forward stages use the DIF CG route (perfect shuffle) + DIF
/// butterflies; output within each lane group is in **bit-reversed**
/// order. Inverse stages run the exact algebraic inverse (DIT butterflies +
/// unshuffle route, reversed stage order, `L^{-1}` fold), consuming
/// bit-reversed order and producing natural order — so chaining forward
/// and inverse needs no bit-reversal pass, the property the paper's dual
/// DIT/DIF hardware provides.
///
/// # Example
///
/// ```
/// use uvpu_core::ntt_map::SmallNtt;
/// use uvpu_core::vpu::Vpu;
/// use uvpu_math::modular::Modulus;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Modulus::new(97)?; // 97 ≡ 1 (mod 32)
/// let ntt = SmallNtt::new(q, 8)?;
/// let mut vpu = Vpu::new(8, q, 4)?;
/// vpu.load(0, &[1, 2, 3, 4, 5, 6, 7, 8])?;
/// ntt.run_forward(&mut vpu, 0)?;
/// ntt.run_inverse(&mut vpu, 0)?;
/// assert_eq!(vpu.store(0)?, vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SmallNtt {
    len: usize,
    log_len: u32,
    modulus: Modulus,
    omega: u64,
    /// `fwd[s][j]` = ω^{(j >> s) << s} for butterfly `j` of stage `s`.
    fwd: Vec<Vec<u64>>,
    /// Inverse twiddles (element-wise inverses of `fwd`).
    inv: Vec<Vec<u64>>,
    len_inv: u64,
}

impl SmallNtt {
    /// Builds the plan for a cyclic NTT of power-of-two length `len ≥ 2`.
    ///
    /// # Errors
    ///
    /// [`MathError::LengthNotPowerOfTwo`] / [`MathError::NoRootOfUnity`]
    /// wrapped in [`CoreError::Math`].
    pub fn new(modulus: Modulus, len: usize) -> Result<Self, CoreError> {
        if !len.is_power_of_two() || len < 2 {
            return Err(CoreError::Math(MathError::LengthNotPowerOfTwo {
                length: len,
            }));
        }
        let omega = min_root_of_unity(&modulus, len as u64)?;
        Self::with_root(modulus, len, omega)
    }

    /// Builds the plan with an explicitly chosen primitive `len`-th root —
    /// required when the small transform is one dimension of a larger
    /// decomposition, whose twiddles fix `ω_len = ω^{N/len}`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Math`] if `omega` is not a primitive `len`-th root.
    pub fn with_root(modulus: Modulus, len: usize, omega: u64) -> Result<Self, CoreError> {
        if !len.is_power_of_two() || len < 2 {
            return Err(CoreError::Math(MathError::LengthNotPowerOfTwo {
                length: len,
            }));
        }
        if modulus.pow(omega, len as u64) != 1
            || (len > 1 && modulus.pow(omega, len as u64 / 2) == 1)
        {
            return Err(CoreError::Math(MathError::NoRootOfUnity {
                modulus: modulus.value(),
                order: len as u64,
            }));
        }
        let omega_inv = modulus.inv(omega)?;
        let log_len = log2_exact(len);
        let mut fwd = Vec::with_capacity(log_len as usize);
        let mut inv = Vec::with_capacity(log_len as usize);
        for s in 0..log_len {
            let mut f = Vec::with_capacity(len / 2);
            let mut g = Vec::with_capacity(len / 2);
            for j in 0..len / 2 {
                let e = ((j >> s) << s) as u64;
                f.push(modulus.pow(omega, e));
                g.push(modulus.pow(omega_inv, e));
            }
            fwd.push(f);
            inv.push(g);
        }
        Ok(Self {
            len,
            log_len,
            modulus,
            omega,
            fwd,
            inv,
            len_inv: modulus.inv(len as u64)?,
        })
    }

    /// Transform length `L`.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Always false: the length is at least 2 (kept for API symmetry).
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// The primitive `L`-th root of unity in use.
    #[must_use]
    pub const fn omega(&self) -> u64 {
        self.omega
    }

    /// The modulus the twiddles were computed under.
    #[must_use]
    pub const fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// Number of butterfly stages (`log₂ L`).
    #[must_use]
    pub const fn stages(&self) -> u32 {
        self.log_len
    }

    /// Compiles the forward transform into a VPU assembly [`Program`]
    /// operating in place on register `addr` — the lane-resident NTT as
    /// an inspectable artifact (one `pease.fwd` instruction per stage,
    /// twiddles in named constant pools).
    ///
    /// [`Program`]: crate::isa::Program
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a multiple of the transform length.
    #[must_use]
    pub fn forward_program(&self, addr: usize, m: usize) -> crate::isa::Program {
        assert_eq!(
            m % self.len,
            0,
            "lane count must be a multiple of the length"
        );
        let mut prog = crate::isa::Program::new();
        for s in 0..self.log_len as usize {
            let pool = format!("tw{s}");
            prog.pools.insert(pool.clone(), self.group_twiddles(s, m));
            prog.instrs.push(crate::isa::Instr::PeaseForward {
                addr,
                pool,
                group: self.len,
            });
        }
        prog
    }

    /// Compiles the inverse transform into a VPU assembly [`Program`]
    /// (reversed stages, inverse twiddles, and the `L^{-1}` fold).
    ///
    /// [`Program`]: crate::isa::Program
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a multiple of the transform length.
    #[must_use]
    pub fn inverse_program(&self, addr: usize, m: usize) -> crate::isa::Program {
        assert_eq!(
            m % self.len,
            0,
            "lane count must be a multiple of the length"
        );
        let mut prog = crate::isa::Program::new();
        for s in (0..self.log_len as usize).rev() {
            let pool = format!("itw{s}");
            prog.pools
                .insert(pool.clone(), self.group_twiddles_inv(s, m));
            prog.instrs.push(crate::isa::Instr::PeaseInverse {
                addr,
                pool,
                group: self.len,
            });
        }
        prog.pools.insert("linv".into(), vec![self.len_inv; m]);
        prog.instrs.push(crate::isa::Instr::MulConst {
            dst: addr,
            src: addr,
            pool: "linv".into(),
        });
        prog
    }

    fn group_twiddles(&self, stage: usize, m: usize) -> Vec<u64> {
        // Replicate the per-group twiddles across the m/L independent
        // groups the CG network splits into.
        let per_group = &self.fwd[stage];
        let mut out = Vec::with_capacity(m / 2);
        for _ in 0..m / self.len {
            out.extend_from_slice(per_group);
        }
        out
    }

    fn group_twiddles_inv(&self, stage: usize, m: usize) -> Vec<u64> {
        let per_group = &self.inv[stage];
        let mut out = Vec::with_capacity(m / 2);
        for _ in 0..m / self.len {
            out.extend_from_slice(per_group);
        }
        out
    }

    /// Runs the forward transform on the register at `addr`, transforming
    /// all `m/L` lane groups in parallel. Costs `log₂ L` butterfly beats.
    ///
    /// Output within each group: position `p` holds `X[bit_reverse(p)]`.
    ///
    /// # Errors
    ///
    /// Register errors from the VPU, or a lane count not divisible into
    /// groups of `L`.
    pub fn run_forward<S: TraceSink>(
        &self,
        vpu: &mut Vpu<S>,
        addr: usize,
    ) -> Result<(), CoreError> {
        let m = vpu.lanes();
        if !m.is_multiple_of(self.len) {
            return Err(CoreError::UnsupportedSize { size: self.len });
        }
        for s in 0..self.log_len as usize {
            let tw = self.group_twiddles(s, m);
            vpu.pease_stage(addr, &PeaseStage::Forward { twiddles: &tw }, self.len)?;
        }
        Ok(())
    }

    /// Runs the inverse transform (bit-reversed input → natural output,
    /// scaled by `L^{-1}`). Costs `log₂ L` butterfly beats plus one
    /// element-wise beat for the `L^{-1}` fold.
    ///
    /// # Errors
    ///
    /// Register errors from the VPU, or an incompatible lane count.
    pub fn run_inverse<S: TraceSink>(
        &self,
        vpu: &mut Vpu<S>,
        addr: usize,
    ) -> Result<(), CoreError> {
        let m = vpu.lanes();
        if !m.is_multiple_of(self.len) {
            return Err(CoreError::UnsupportedSize { size: self.len });
        }
        for s in (0..self.log_len as usize).rev() {
            let tw = self.group_twiddles_inv(s, m);
            vpu.pease_stage(addr, &PeaseStage::Inverse { twiddles: &tw }, self.len)?;
        }
        let scale = vec![self.len_inv; m];
        vpu.ewise_mul_const(addr, addr, &scale)?;
        Ok(())
    }
}

/// Direction of a planned transform execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

/// Result of executing a planned transform: the output values plus the
/// cycle statistics of just this execution.
#[derive(Debug, Clone)]
pub struct NttExecution {
    /// Transform output in natural index order.
    pub output: Vec<u64>,
    /// Cycles consumed by this execution only.
    pub stats: CycleStats,
}

/// A multi-dimensional NTT plan for length `N` on an `m`-lane VPU.
///
/// The decomposition uses `⌈log N / log m⌉` dimensions: every dimension
/// is `m` except the last, which is `N / m^{k−1} ∈ [2, m]` (for `N ≤ m` a
/// single dimension of length `N`). This matches the paper's §II-B
/// scheme. The executed pipeline is:
///
/// 1. *(negacyclic only)* ψ-twist, one element-wise beat per column;
/// 2. for each dimension: inter-dimension twiddle scaling (element-wise),
///    a shift-network transpose (network-move beats, Fig 3 pass counts),
///    and the lane-resident Pease NTT stages (butterfly beats);
/// 3. metadata readout — output ordering is address arithmetic, free.
///
/// # Example
///
/// ```
/// use uvpu_core::ntt_map::NttPlan;
/// use uvpu_core::vpu::Vpu;
/// use uvpu_math::{modular::Modulus, primes::ntt_prime};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = 256;
/// let q = Modulus::new(ntt_prime(30, n)?)?;
/// let plan = NttPlan::new(q, n, 16)?; // two dimensions of 16
/// assert_eq!(plan.dims(), &[16, 16]);
/// let mut vpu = Vpu::new(16, q, 64)?;
/// let data: Vec<u64> = (0..n as u64).collect();
/// let fwd = plan.execute_forward(&mut vpu, &data)?;
/// let back = plan.execute_inverse(&mut vpu, &fwd.output)?;
/// assert_eq!(back.output, data);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NttPlan {
    n: usize,
    m: usize,
    dims: Vec<usize>,
    modulus: Modulus,
    /// Primitive `n`-th root of unity for the inter-dimension twiddles.
    omega: u64,
    omega_inv: u64,
    small: Vec<SmallNtt>,
    /// ψ (primitive `2n`-th root) for the negacyclic twist, if available.
    psi: Option<u64>,
}

impl NttPlan {
    /// Plans a length-`n` transform for an `m`-lane VPU.
    ///
    /// # Errors
    ///
    /// - [`CoreError::UnsupportedSize`] for `n < 2`, non-power-of-two `n`,
    ///   or `n` not decomposable over `m` (the trailing dimension must be
    ///   at least 2).
    /// - [`CoreError::Math`] when the modulus lacks the required roots of
    ///   unity.
    pub fn new(modulus: Modulus, n: usize, m: usize) -> Result<Self, CoreError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(CoreError::UnsupportedSize { size: n });
        }
        if !m.is_power_of_two() || m < 2 {
            return Err(CoreError::InvalidLaneCount { lanes: m });
        }
        let log_n = log2_exact(n) as usize;
        let log_m = log2_exact(m) as usize;
        let mut dims = Vec::new();
        let mut remaining = log_n;
        while remaining > 0 {
            let d = remaining.min(log_m);
            dims.push(1usize << d);
            remaining -= d;
        }
        // A trailing dimension of length 1 cannot occur (min(remaining,
        // log m) ≥ 1), but a trailing 2 on a wide VPU is fine: the CG
        // network splits into m/2 groups.
        //
        // Root consistency: when the modulus supports the negacyclic twist
        // (a 2n-th root ψ exists), derive ω = ψ² so that twisted-cyclic
        // and negacyclic pipelines agree; each dimension's small-NTT root
        // is then ω^{n/d}, pinned by the inter-dimension twiddles.
        let psi = min_root_of_unity(&modulus, 2 * n as u64).ok();
        let omega = match psi {
            Some(p) => modulus.mul(p, p),
            None => min_root_of_unity(&modulus, n as u64)?,
        };
        let omega_inv = modulus.inv(omega)?;
        let small = dims
            .iter()
            .map(|&d| SmallNtt::with_root(modulus, d, modulus.pow(omega, (n / d) as u64)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            n,
            m,
            dims,
            modulus,
            omega,
            omega_inv,
            small,
            psi,
        })
    }

    /// Returns the process-wide cached plan for `(q, n, m)`, building it
    /// on first use. Plan construction pays a root search plus per-stage
    /// twiddle generation for every dimension; schedulers and benches
    /// that repeatedly execute the same shape should share the plan.
    ///
    /// # Errors
    ///
    /// As [`NttPlan::new`]; failures are not cached.
    pub fn cached(modulus: Modulus, n: usize, m: usize) -> Result<std::sync::Arc<Self>, CoreError> {
        static PLANS: uvpu_par::Memo<(u64, usize, usize), NttPlan> = uvpu_par::Memo::new();
        PLANS.get_or_try_insert_with(&(modulus.value(), n, m), || Self::new(modulus, n, m))
    }

    /// Transform length `N`.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Lane count the plan targets.
    #[must_use]
    pub const fn m(&self) -> usize {
        self.m
    }

    /// The dimension decomposition, in processing order.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The `n`-th root of unity used for inter-dimension twiddles.
    #[must_use]
    pub const fn omega(&self) -> u64 {
        self.omega
    }

    // ---- digit/layout bookkeeping -------------------------------------

    /// Splits an element code into its per-dimension digits
    /// (`code = Σ_s x_s · Π_{u<s} d_u`, dimension 0 least significant).
    fn digits(&self, code: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.dims.len());
        let mut c = code;
        for &d in &self.dims {
            out.push(c % d);
            c /= d;
        }
        out
    }

    /// Packs digits back into a code.
    fn pack(&self, digits: &[usize]) -> usize {
        let mut code = 0usize;
        let mut stride = 1usize;
        for (x, &d) in digits.iter().zip(&self.dims) {
            code += x * stride;
            stride *= d;
        }
        code
    }

    /// Input flat index for a digit tuple: `i = Σ_s i_s · Π_{u>s} d_u`
    /// (dimension 0 has the largest stride — it is processed first).
    fn input_index(&self, digits: &[usize]) -> usize {
        // Suffix-product strides: dimension 0 is processed first and has
        // the largest input stride.
        let k = self.dims.len();
        let mut stride = vec![1usize; k];
        for s in (0..k.saturating_sub(1)).rev() {
            stride[s] = stride[s + 1] * self.dims[s + 1];
        }
        digits.iter().zip(&stride).map(|(&x, &s)| x * s).sum()
    }

    /// Physical placement of a digit tuple while dimension `t` occupies
    /// the lanes: returns `(column, lane)`.
    ///
    /// Lanes: `grp · d_t + x_t` where `grp` is the low part of the
    /// transformed-digit index `K` when `d_t < m` (partial dimensions
    /// share the lanes, as in Fig 3). Columns: the rest of `K` plus the
    /// untransformed digits.
    fn place(&self, t: usize, digits: &[usize]) -> (usize, usize) {
        let d_t = self.dims[t];
        let groups = self.m / d_t;
        // K: mixed radix over transformed digits (dims < t).
        let mut k_idx = 0usize;
        let mut k_radix = 1usize;
        for (&dig, &dim) in digits.iter().zip(&self.dims).take(t) {
            k_idx += dig * k_radix;
            k_radix *= dim;
        }
        // r: mixed radix over untransformed digits (dims > t), dim t+1 major.
        let mut r_idx = 0usize;
        for (&dig, &dim) in digits.iter().zip(&self.dims).skip(t + 1) {
            r_idx = r_idx * dim + dig;
        }
        let grp = k_idx % groups;
        let lane = grp * d_t + digits[t];
        let col = (k_idx / groups) + (k_radix / groups) * r_idx;
        (col, lane)
    }

    /// The twiddle exponent applied to a slot just before dimension `t`
    /// is transformed: `ω_{P_t}^{i_t · κ_t}` expressed as an exponent of
    /// the global ω, where `P_t = Π_{u≤t} d_u` and `κ_t` is the packed
    /// transformed index so far.
    fn twiddle_exponent(&self, t: usize, digits: &[usize]) -> u64 {
        let mut kappa = 0usize;
        let mut radix = 1usize;
        for (&dig, &dim) in digits.iter().zip(&self.dims).take(t) {
            kappa += dig * radix;
            radix *= dim;
        }
        let p_t = radix * self.dims[t];
        // ω_{P_t} = ω^{n / P_t}.
        let e = (digits[t] * kappa) % p_t;
        (self.n / p_t) as u64 * e as u64 % self.n as u64
    }

    fn transpose_moves_per_column(&self, t: usize) -> u64 {
        // Fig 3: two shift traversals per column; entering a dimension
        // shorter than the VPU width costs log m − log d extra CG
        // traversals per column (up to log m − 1 for d = 2).
        let base = 2u64;
        let extra = (log2_exact(self.m) - log2_exact(self.dims[t])) as u64;
        base + extra
    }

    // ---- execution -----------------------------------------------------

    fn execute<S: TraceSink>(
        &self,
        vpu: &mut Vpu<S>,
        input: &[u64],
        direction: Direction,
        negacyclic: bool,
    ) -> Result<NttExecution, CoreError> {
        self.execute_on(std::slice::from_mut(vpu), input, direction, negacyclic)
    }

    fn execute_on<S: TraceSink>(
        &self,
        vpus: &mut [Vpu<S>],
        input: &[u64],
        direction: Direction,
        negacyclic: bool,
    ) -> Result<NttExecution, CoreError> {
        if vpus.is_empty() {
            return Err(CoreError::InvalidLaneCount { lanes: 0 });
        }
        if input.len() != self.n {
            return Err(CoreError::LengthMismatch {
                expected: self.n,
                actual: input.len(),
            });
        }
        for vpu in vpus.iter() {
            if vpu.lanes() != self.m {
                return Err(CoreError::InvalidLaneCount { lanes: vpu.lanes() });
            }
            if vpu.modulus() != self.modulus {
                return Err(CoreError::Math(MathError::ModulusMismatch));
            }
        }
        let psi = if negacyclic {
            Some(self.psi.ok_or(CoreError::Math(MathError::NoRootOfUnity {
                modulus: self.modulus.value(),
                order: 2 * self.n as u64,
            }))?)
        } else {
            None
        };
        for vpu in vpus.iter_mut() {
            vpu.ensure_depth(2);
        }
        let starts: Vec<CycleStats> = vpus.iter().map(|v| *v.stats()).collect();
        // A transform shorter than the VPU occupies one partial column.
        let cols = (self.n / self.m).max(1);
        let kdims = self.dims.len();
        // Phase spans are emitted on shard 0 (the only shard for
        // single-VPU runs); sharded beats still trace on their own VPU.
        let phase = match (direction, negacyclic) {
            (Direction::Forward, false) => "ntt.forward",
            (Direction::Forward, true) => "ntt.forward_negacyclic",
            (Direction::Inverse, false) => "ntt.inverse",
            (Direction::Inverse, true) => "ntt.inverse_negacyclic",
        };
        vpus[0].span_begin(phase);
        let trace_names = vpus[0].sink().enabled();

        // state[code] = current value of the element with that digit code.
        // Every code is written before any read (the digit map is a
        // bijection), so uninitialized pool scratch is safe here.
        let mut state = uvpu_math::pool::take_scratch(self.n);
        match direction {
            Direction::Forward => {
                let mut data = uvpu_math::pool::take_scratch(self.n);
                for (o, &x) in data.iter_mut().zip(input) {
                    *o = self.modulus.reduce_u64(x);
                }
                if let Some(psi) = psi {
                    // ψ-twist turns the negacyclic problem cyclic; the
                    // element-wise beats are charged below.
                    psi_twist_inplace(&mut data, psi, &self.modulus);
                }
                for (code, slot) in state.iter_mut().enumerate() {
                    let digits = self.digits(code);
                    *slot = data[self.input_index(&digits)];
                }
                uvpu_math::pool::recycle(data);
            }
            Direction::Inverse => {
                for (slot, &x) in state.iter_mut().zip(input) {
                    *slot = self.modulus.reduce_u64(x);
                }
            }
        }

        match direction {
            Direction::Forward => {
                if psi.is_some() {
                    // One element-wise beat per column for the twist.
                    vpus[0].span_begin("ntt.twist");
                    self.charge_elementwise(vpus, cols as u64)?;
                    vpus[0].span_end("ntt.twist");
                }
                for t in 0..kdims {
                    if t > 0 {
                        // Inter-dimension twiddle (element-wise) …
                        vpus[0].span_begin("ntt.twiddle");
                        self.apply_twiddles(&mut state, t, false);
                        self.charge_elementwise(vpus, cols as u64)?;
                        vpus[0].span_end("ntt.twiddle");
                        // … then the transpose bringing dim t into lanes.
                        vpus[0].span_begin("ntt.transpose");
                        self.charge_network_moves_sharded(
                            vpus,
                            self.transpose_moves_per_column(t),
                            cols,
                        );
                        vpus[0].span_end("ntt.transpose");
                    }
                    if trace_names {
                        vpus[0].span_begin(&format!("ntt.dim{t}"));
                    }
                    self.run_dimension(vpus, &mut state, t, Direction::Forward)?;
                    if trace_names {
                        vpus[0].span_end(&format!("ntt.dim{t}"));
                    }
                }
                // Readout: code == natural output index by construction.
                let output = state;
                vpus[0].span_end(phase);
                let stats = self.delta_all(vpus, &starts);
                Ok(NttExecution { output, stats })
            }
            Direction::Inverse => {
                for t in (0..kdims).rev() {
                    if t < kdims - 1 {
                        // Mirror of the forward transpose (leaving dim t+1).
                        vpus[0].span_begin("ntt.transpose");
                        self.charge_network_moves_sharded(
                            vpus,
                            self.transpose_moves_per_column(t + 1),
                            cols,
                        );
                        vpus[0].span_end("ntt.transpose");
                    }
                    if trace_names {
                        vpus[0].span_begin(&format!("ntt.dim{t}"));
                    }
                    self.run_dimension(vpus, &mut state, t, Direction::Inverse)?;
                    if trace_names {
                        vpus[0].span_end(&format!("ntt.dim{t}"));
                    }
                    if t > 0 {
                        vpus[0].span_begin("ntt.twiddle");
                        self.apply_twiddles(&mut state, t, true);
                        self.charge_elementwise(vpus, cols as u64)?;
                        vpus[0].span_end("ntt.twiddle");
                    }
                }
                if let Some(psi) = psi {
                    let psi_inv = self.modulus.inv(psi)?;
                    let mut out = uvpu_math::pool::take_scratch(self.n);
                    for (code, &val) in state.iter().enumerate() {
                        let digits = self.digits(code);
                        out[self.input_index(&digits)] = val;
                    }
                    uvpu_math::pool::recycle(state);
                    vpus[0].span_begin("ntt.twist");
                    psi_twist_inplace(&mut out, psi_inv, &self.modulus);
                    self.charge_elementwise(vpus, cols as u64)?;
                    vpus[0].span_end("ntt.twist");
                    vpus[0].span_end(phase);
                    let stats = self.delta_all(vpus, &starts);
                    return Ok(NttExecution { output: out, stats });
                }
                let mut out = uvpu_math::pool::take_scratch(self.n);
                for (code, &val) in state.iter().enumerate() {
                    let digits = self.digits(code);
                    out[self.input_index(&digits)] = val;
                }
                uvpu_math::pool::recycle(state);
                vpus[0].span_end(phase);
                let stats = self.delta_all(vpus, &starts);
                Ok(NttExecution { output: out, stats })
            }
        }
    }

    /// Aggregate cycle delta across all shards since `starts`.
    fn delta_all<S: TraceSink>(&self, vpus: &[Vpu<S>], starts: &[CycleStats]) -> CycleStats {
        let mut total = CycleStats::new();
        for (vpu, start) in vpus.iter().zip(starts) {
            total += vpu.stats().delta(start);
        }
        total
    }

    fn charge_elementwise<S: TraceSink>(
        &self,
        vpus: &mut [Vpu<S>],
        beats: u64,
    ) -> Result<(), CoreError> {
        // Run genuine element-wise beats on a scratch register so the
        // accounting flows through the normal pipeline path, one beat per
        // column distributed round-robin across the shard set.
        let shard_count = vpus.len();
        for b in 0..beats {
            let vpu = &mut vpus[(b as usize) % shard_count];
            vpu.ensure_depth(2);
            vpu.ewise_mul_const(1, 1, &vec![1u64; self.m])?;
        }
        Ok(())
    }

    fn charge_network_moves_sharded<S: TraceSink>(
        &self,
        vpus: &mut [Vpu<S>],
        per_column: u64,
        cols: usize,
    ) {
        for c in 0..cols {
            vpus[c % vpus.len()].charge_network_moves(per_column);
        }
    }

    /// Applies the inter-dimension twiddles for dimension `t` directly on
    /// the logical state (values are position-independent scalings; the
    /// pipeline beat is charged by the caller).
    ///
    /// The scaling of element `code` depends only on `code`, so the state
    /// is split into contiguous chunks mapped in parallel and written
    /// back in chunk order — bit-exact for any thread count.
    fn apply_twiddles(&self, state: &mut [u64], t: usize, inverse: bool) {
        let root = if inverse { self.omega_inv } else { self.omega };
        let scale = |code: usize, v: u64| {
            let digits = self.digits(code);
            let e = self.twiddle_exponent(t, &digits);
            if e != 0 {
                self.modulus.mul(v, self.modulus.pow(root, e))
            } else {
                v
            }
        };
        let threads = uvpu_par::max_threads();
        if threads > 1 && self.n >= 1024 {
            let chunk = self.n.div_ceil(threads * 4);
            let src: &[u64] = state;
            let parts: Vec<Vec<u64>> = uvpu_par::par_map_indexed(self.n.div_ceil(chunk), |ci| {
                let lo = ci * chunk;
                let hi = (lo + chunk).min(self.n);
                (lo..hi).map(|code| scale(code, src[code])).collect()
            });
            let mut lo = 0;
            for part in parts {
                state[lo..lo + part.len()].copy_from_slice(&part);
                lo += part.len();
            }
            return;
        }
        for (code, v) in state.iter_mut().enumerate() {
            *v = scale(code, *v);
        }
    }

    /// Runs dimension `t`'s small NTTs through the VPUs, column by
    /// column, round-robin across the shard set.
    fn run_dimension<S: TraceSink>(
        &self,
        vpus: &mut [Vpu<S>],
        state: &mut [u64],
        t: usize,
        direction: Direction,
    ) -> Result<(), CoreError> {
        let cols = (self.n / self.m).max(1);
        let d_t = self.dims[t];
        let small = &self.small[t];
        /// Marks a lane with no element mapped to it (`n < m` layouts).
        const UNUSED: usize = usize::MAX;
        // Column gather: physical (col, lane) for each code under the
        // phase-t layout, with the in-group position corresponding to the
        // *untransformed* digit i_t (forward input / inverse output), and
        // bit-reversed k_t on the transformed side.
        let mut col_codes: Vec<Vec<usize>> = vec![vec![UNUSED; self.m]; cols];
        for code in 0..self.n {
            let mut digits = self.digits(code);
            // The physical in-group position: forward reads i_t at
            // position p = i_t and leaves X[brv(p)] at p; represent the
            // transformed digit's position as brv(k_t).
            let x_t = digits[t];
            let pos = match direction {
                Direction::Forward => x_t,
                Direction::Inverse => bit_reverse(x_t, log2_exact(d_t)),
            };
            digits[t] = pos;
            let (col, lane) = self.place(t, &digits);
            digits[t] = x_t;
            col_codes[col][lane] = code;
        }
        let shard_count = vpus.len();
        // Parallel path: every column's lane transform is independent, so
        // workers run the identical `SmallNtt` code on private scratch
        // VPUs while the *real* shards are charged analytically below —
        // in the same deterministic round-robin order as the sequential
        // loop, so the outputs, the per-shard `CycleStats`, and the
        // traced beat/mem event streams are all bit-identical for any
        // thread count (the scratch VPUs' own events land on `NopSink`s;
        // each column's load/store is re-emitted on its real shard).
        if uvpu_par::max_threads() > 1 && cols > 1 {
            let src: &[u64] = state;
            let outputs: Vec<Result<Vec<u64>, CoreError>> = uvpu_par::par_map_indexed_with(
                col_codes.len(),
                || Vpu::new(self.m, self.modulus, 2),
                |scratch, col| {
                    let vpu = scratch.as_mut().map_err(|e| e.clone())?;
                    let column: Vec<u64> = col_codes[col]
                        .iter()
                        .map(|&c| if c == UNUSED { 0 } else { src[c] })
                        .collect();
                    vpu.load(0, &column)?;
                    match direction {
                        Direction::Forward => small.run_forward(vpu, 0)?,
                        Direction::Inverse => small.run_inverse(vpu, 0)?,
                    }
                    vpu.store(0)
                },
            );
            let stage_beats = u64::from(log2_exact(d_t));
            for (col, (codes, out)) in col_codes.iter().zip(outputs).enumerate() {
                let out = out?;
                let vpu = &mut vpus[col % shard_count];
                vpu.charge_mem(MemDir::Load, 0, self.m);
                vpu.charge_butterflies(stage_beats);
                if direction == Direction::Inverse {
                    // The `L^{-1}` fold of `SmallNtt::run_inverse`.
                    vpu.charge_elementwise_ops(EwiseOp::MulConst, 1);
                }
                vpu.charge_mem(MemDir::Store, 0, out.len());
                self.scatter_column(state, codes, &out, t, direction);
            }
            return Ok(());
        }
        for (col, codes) in col_codes.iter().enumerate() {
            let vpu = &mut vpus[col % shard_count];
            let column: Vec<u64> = codes
                .iter()
                .map(|&c| if c == UNUSED { 0 } else { state[c] })
                .collect();
            vpu.load(0, &column)?;
            match direction {
                Direction::Forward => small.run_forward(vpu, 0)?,
                Direction::Inverse => small.run_inverse(vpu, 0)?,
            }
            let out = vpu.store(0)?;
            self.scatter_column(state, codes, &out, t, direction);
        }
        Ok(())
    }

    /// Writes one transformed column back into the logical state.
    ///
    /// Forward: position p holds X\[brv(p)\]; the code at lane
    /// (grp·d + p) had digit i_t = p, so the transformed value with
    /// k_t = brv(p) belongs to the code with digit brv(p).
    fn scatter_column(
        &self,
        state: &mut [u64],
        codes: &[usize],
        out: &[u64],
        t: usize,
        direction: Direction,
    ) {
        let d_t = self.dims[t];
        for (lane, &code) in codes.iter().enumerate() {
            if code == usize::MAX {
                continue;
            }
            let grp_pos = lane % d_t;
            let mut digits = self.digits(code);
            match direction {
                Direction::Forward => {
                    digits[t] = bit_reverse(grp_pos, log2_exact(d_t));
                }
                Direction::Inverse => {
                    digits[t] = grp_pos;
                }
            }
            let target = self.pack(&digits);
            state[target] = out[lane];
        }
    }

    /// Executes the forward **cyclic** transform: output `X[k] = Σ_i
    /// a[i]·ω^{ik}` in natural order.
    ///
    /// # Errors
    ///
    /// Length/lane/modulus mismatches, or register errors.
    pub fn execute_forward<S: TraceSink>(
        &self,
        vpu: &mut Vpu<S>,
        input: &[u64],
    ) -> Result<NttExecution, CoreError> {
        self.execute(vpu, input, Direction::Forward, false)
    }

    /// Executes the inverse cyclic transform (natural-order spectrum in,
    /// natural-order sequence out).
    ///
    /// # Errors
    ///
    /// Length/lane/modulus mismatches, or register errors.
    pub fn execute_inverse<S: TraceSink>(
        &self,
        vpu: &mut Vpu<S>,
        input: &[u64],
    ) -> Result<NttExecution, CoreError> {
        self.execute(vpu, input, Direction::Inverse, false)
    }

    /// Executes the forward **negacyclic** transform (the FHE NTT over
    /// `Z_q[X]/(X^N+1)`): a ψ-twist followed by the cyclic pipeline.
    /// Output: `X[k] = a(ψ^{2k+1})` in natural order.
    ///
    /// # Errors
    ///
    /// As [`Self::execute_forward`], plus a missing `2N`-th root.
    pub fn execute_forward_negacyclic<S: TraceSink>(
        &self,
        vpu: &mut Vpu<S>,
        input: &[u64],
    ) -> Result<NttExecution, CoreError> {
        self.execute(vpu, input, Direction::Forward, true)
    }

    /// Executes the inverse negacyclic transform.
    ///
    /// # Errors
    ///
    /// As [`Self::execute_inverse`], plus a missing `2N`-th root.
    pub fn execute_inverse_negacyclic<S: TraceSink>(
        &self,
        vpu: &mut Vpu<S>,
        input: &[u64],
    ) -> Result<NttExecution, CoreError> {
        self.execute(vpu, input, Direction::Inverse, true)
    }

    /// Executes the forward negacyclic transform **sharded across
    /// multiple VPUs** (paper §IV: "it is easy to extend the mapping to
    /// multiple VPUs for parallel execution"). Columns are assigned
    /// round-robin — within a dimension every column's small NTT is
    /// independent, so the shards only meet at the transposes.
    ///
    /// The returned aggregate stats equal the single-VPU run's; the
    /// per-shard distribution (and hence the parallel makespan) is read
    /// from each VPU's own counters.
    ///
    /// # Errors
    ///
    /// Empty shard set, or any shard with mismatched lanes/modulus.
    pub fn execute_forward_negacyclic_sharded<S: TraceSink>(
        &self,
        vpus: &mut [Vpu<S>],
        input: &[u64],
    ) -> Result<NttExecution, CoreError> {
        self.execute_on(vpus, input, Direction::Forward, true)
    }

    /// Sharded inverse negacyclic transform (see
    /// [`Self::execute_forward_negacyclic_sharded`]).
    ///
    /// # Errors
    ///
    /// Empty shard set, or any shard with mismatched lanes/modulus.
    pub fn execute_inverse_negacyclic_sharded<S: TraceSink>(
        &self,
        vpus: &mut [Vpu<S>],
        input: &[u64],
    ) -> Result<NttExecution, CoreError> {
        self.execute_on(vpus, input, Direction::Inverse, true)
    }

    /// The ideal compute beats for this transform (all lanes busy every
    /// cycle): the denominator's baseline for paper Table III.
    #[must_use]
    pub fn ideal_compute_beats(&self, negacyclic: bool) -> u64 {
        let cols = (self.n / self.m) as u64;
        let butterfly: u64 = self.dims.iter().map(|&d| log2_exact(d) as u64).sum::<u64>() * cols;
        let twiddle = (self.dims.len() as u64 - 1) * cols;
        let twist = if negacyclic { cols } else { 0 };
        butterfly + twiddle + twist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvpu_math::ntt::{naive_cyclic_dft, NttTable};
    use uvpu_math::primes::ntt_prime;

    fn modulus_for(n: usize) -> Modulus {
        Modulus::new(ntt_prime(30, n.max(8)).unwrap()).unwrap()
    }

    #[test]
    fn small_ntt_forward_is_bit_reversed_dft() {
        for len in [2usize, 4, 8, 16, 32, 64] {
            let q = modulus_for(len);
            let ntt = SmallNtt::new(q, len).unwrap();
            let mut vpu = Vpu::new(len, q, 4).unwrap();
            let data: Vec<u64> = (0..len as u64).map(|i| q.reduce_u64(i * 7 + 3)).collect();
            vpu.load(0, &data).unwrap();
            ntt.run_forward(&mut vpu, 0).unwrap();
            let got = vpu.store(0).unwrap();
            let expect = naive_cyclic_dft(&data, ntt.omega(), &q);
            let bits = log2_exact(len);
            for p in 0..len {
                assert_eq!(got[p], expect[bit_reverse(p, bits)], "len={len} p={p}");
            }
            assert_eq!(vpu.stats().butterfly, bits as u64);
        }
    }

    #[test]
    fn small_ntt_groups_run_in_parallel() {
        // Two independent length-4 NTTs on an 8-lane VPU.
        let q = modulus_for(8);
        let ntt = SmallNtt::new(q, 4).unwrap();
        let mut vpu = Vpu::new(8, q, 4).unwrap();
        let a: Vec<u64> = vec![1, 2, 3, 4];
        let b: Vec<u64> = vec![9, 8, 7, 6];
        let mut data = a.clone();
        data.extend_from_slice(&b);
        vpu.load(0, &data).unwrap();
        ntt.run_forward(&mut vpu, 0).unwrap();
        let got = vpu.store(0).unwrap();
        let ea = naive_cyclic_dft(&a, ntt.omega(), &q);
        let eb = naive_cyclic_dft(&b, ntt.omega(), &q);
        for p in 0..4 {
            assert_eq!(got[p], ea[bit_reverse(p, 2)]);
            assert_eq!(got[4 + p], eb[bit_reverse(p, 2)]);
        }
    }

    #[test]
    fn small_ntt_round_trip() {
        let q = modulus_for(16);
        let ntt = SmallNtt::new(q, 16).unwrap();
        let mut vpu = Vpu::new(16, q, 4).unwrap();
        let data: Vec<u64> = (0..16u64).map(|i| q.reduce_u64(i * i + 1)).collect();
        vpu.load(0, &data).unwrap();
        ntt.run_forward(&mut vpu, 0).unwrap();
        ntt.run_inverse(&mut vpu, 0).unwrap();
        assert_eq!(vpu.store(0).unwrap(), data);
    }

    #[test]
    fn plan_dimension_selection() {
        let q = modulus_for(1 << 12);
        assert_eq!(NttPlan::new(q, 1 << 12, 64).unwrap().dims(), &[64, 64]);
        assert_eq!(NttPlan::new(q, 1 << 10, 64).unwrap().dims(), &[64, 16]);
        assert_eq!(NttPlan::new(q, 1 << 7, 64).unwrap().dims(), &[64, 2]);
        assert_eq!(NttPlan::new(q, 32, 64).unwrap().dims(), &[32]);
        assert!(NttPlan::new(q, 100, 64).is_err());
    }

    #[test]
    fn multidim_forward_matches_naive_dft() {
        for (n, m) in [(64usize, 8usize), (256, 16), (128, 16), (512, 8), (64, 64)] {
            let q = modulus_for(n);
            let plan = NttPlan::new(q, n, m).unwrap();
            let mut vpu = Vpu::new(m, q, 8).unwrap();
            let data: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 13 + 5)).collect();
            let got = plan.execute_forward(&mut vpu, &data).unwrap();
            let expect = naive_cyclic_dft(&data, plan.omega(), &q);
            assert_eq!(got.output, expect, "n={n} m={m} dims={:?}", plan.dims());
        }
    }

    #[test]
    fn multidim_round_trip() {
        let q = modulus_for(256);
        let plan = NttPlan::new(q, 256, 16).unwrap();
        let mut vpu = Vpu::new(16, q, 8).unwrap();
        let data: Vec<u64> = (0..256u64).map(|i| q.reduce_u64(i * 3 + 11)).collect();
        let fwd = plan.execute_forward(&mut vpu, &data).unwrap();
        let back = plan.execute_inverse(&mut vpu, &fwd.output).unwrap();
        assert_eq!(back.output, data);
    }

    #[test]
    fn negacyclic_matches_table_convolution() {
        // Pointwise products in the VPU's negacyclic domain must give the
        // same polynomial product as the golden-model NttTable.
        let n = 128;
        let m = 16;
        let q = modulus_for(n);
        let plan = NttPlan::new(q, n, m).unwrap();
        let table = NttTable::new(q, n).unwrap();
        let mut vpu = Vpu::new(m, q, 8).unwrap();
        let a: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i + 2)).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(3 * i + 1)).collect();

        let fa = plan
            .execute_forward_negacyclic(&mut vpu, &a)
            .unwrap()
            .output;
        let fb = plan
            .execute_forward_negacyclic(&mut vpu, &b)
            .unwrap()
            .output;
        let prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul(x, y)).collect();
        let got = plan
            .execute_inverse_negacyclic(&mut vpu, &prod)
            .unwrap()
            .output;

        let expect = uvpu_math::ntt::naive_negacyclic_mul(&a, &b, &q);
        assert_eq!(got, expect);
        // And the forward values agree with the golden table as a set.
        let mut ref_vals = a.clone();
        table.forward_inplace(&mut ref_vals);
        let mut x = fa.clone();
        let mut y = ref_vals.clone();
        x.sort_unstable();
        y.sort_unstable();
        assert_eq!(x, y);
    }

    #[test]
    fn negacyclic_plan_matches_fourstep_kernel_bit_exactly() {
        // N = 2¹⁴ is past FOURSTEP_MIN_N, so the host table transform
        // below runs the cache-blocked four-step kernel. The functional
        // model must agree with it element-for-element — the plan emits
        // natural order, the table bit-reversed, so plan[k] pairs with
        // table[brv(k)] — and the plan's own inverse must close the
        // round trip.
        let n = 1 << 14;
        let m = 64;
        let q = Modulus::new(ntt_prime(30, n).unwrap()).unwrap();
        let plan = NttPlan::new(q, n, m).unwrap();
        let table = NttTable::new(q, n).unwrap();
        let data: Vec<u64> = (0..n as u64)
            .map(|i| q.reduce_u64(i.wrapping_mul(0x9E37_79B9) + 5))
            .collect();

        let mut vpu = Vpu::new(m, q, 8).unwrap();
        let fwd = plan
            .execute_forward_negacyclic(&mut vpu, &data)
            .unwrap()
            .output;

        let mut kern = data.clone();
        table.forward_inplace(&mut kern);
        let bits = log2_exact(n);
        for (k, &x) in fwd.iter().enumerate() {
            assert_eq!(x, kern[bit_reverse(k, bits)], "k={k}");
        }

        let back = plan
            .execute_inverse_negacyclic(&mut vpu, &fwd)
            .unwrap()
            .output;
        assert_eq!(back, data);
    }

    #[test]
    fn compiled_ntt_programs_match_direct_execution() {
        let q = modulus_for(16);
        let ntt = SmallNtt::new(q, 16).unwrap();
        let data: Vec<u64> = (0..16u64).map(|i| q.reduce_u64(i * 3 + 2)).collect();

        // Direct API path.
        let mut direct = Vpu::new(16, q, 4).unwrap();
        direct.load(0, &data).unwrap();
        ntt.run_forward(&mut direct, 0).unwrap();

        // Compiled-program path.
        let mut compiled = Vpu::new(16, q, 4).unwrap();
        compiled.load(0, &data).unwrap();
        let prog = ntt.forward_program(0, 16);
        assert_eq!(prog.instrs.len(), 4, "one instruction per stage");
        let stats = prog.execute(&mut compiled).unwrap();
        assert_eq!(compiled.store(0).unwrap(), direct.store(0).unwrap());
        assert_eq!(stats.butterfly, 4);

        // The compiled inverse round-trips, and survives a disassembly
        // round trip too.
        let inv = ntt.inverse_program(0, 16);
        let reparsed = crate::isa::Program::parse(&inv.disassemble()).unwrap();
        reparsed.execute(&mut compiled).unwrap();
        assert_eq!(compiled.store(0).unwrap(), data);
    }

    #[test]
    fn transform_shorter_than_vpu_uses_one_partial_column() {
        // n < m: one column, lanes n..m idle, still bit-exact.
        let q = modulus_for(64);
        let plan = NttPlan::new(q, 32, 64).unwrap();
        assert_eq!(plan.dims(), &[32]);
        let mut vpu = Vpu::new(64, q, 8).unwrap();
        let data: Vec<u64> = (0..32u64).map(|i| q.reduce_u64(i * 5 + 1)).collect();
        let fwd = plan.execute_forward(&mut vpu, &data).unwrap();
        assert_eq!(fwd.output, naive_cyclic_dft(&data, plan.omega(), &q));
        let back = plan.execute_inverse(&mut vpu, &fwd.output).unwrap();
        assert_eq!(back.output, data);
        // One column, log2(32) butterfly beats forward.
        assert_eq!(fwd.stats.butterfly, 5);
    }

    #[test]
    fn sharded_execution_matches_single_vpu() {
        let n = 1 << 10;
        let m = 64;
        let q = Modulus::new(ntt_prime(30, n).unwrap()).unwrap();
        let plan = NttPlan::new(q, n, m).unwrap();
        let data: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 9 + 2)).collect();

        let mut single = Vpu::new(m, q, 8).unwrap();
        let solo = plan.execute_forward_negacyclic(&mut single, &data).unwrap();

        let mut shard_vec: Vec<Vpu> = (0..4).map(|_| Vpu::new(m, q, 8).unwrap()).collect();
        let sharded = plan
            .execute_forward_negacyclic_sharded(&mut shard_vec, &data)
            .unwrap();
        assert_eq!(
            sharded.output, solo.output,
            "sharding is functionally invisible"
        );
        assert_eq!(sharded.stats, solo.stats, "total work is conserved");

        // The parallel makespan is the max shard load: near total/4.
        let loads: Vec<u64> = shard_vec.iter().map(|v| v.stats().total()).collect();
        let makespan = *loads.iter().max().unwrap();
        assert!(
            makespan * 4 <= solo.stats.total() + 4 * 16,
            "balanced: {loads:?}"
        );
        assert!(makespan >= solo.stats.total() / 4);

        // Round trip through the sharded inverse.
        let back = plan
            .execute_inverse_negacyclic_sharded(&mut shard_vec, &sharded.output)
            .unwrap();
        assert_eq!(back.output, data);
    }

    #[test]
    fn sharded_rejects_bad_shard_sets() {
        let n = 256;
        let q = Modulus::new(ntt_prime(30, n).unwrap()).unwrap();
        let plan = NttPlan::new(q, n, 16).unwrap();
        let data = vec![0u64; n];
        let mut none: Vec<Vpu> = Vec::new();
        assert!(plan
            .execute_forward_negacyclic_sharded(&mut none, &data)
            .is_err());
        let mut mixed = vec![Vpu::new(16, q, 8).unwrap(), Vpu::new(8, q, 8).unwrap()];
        assert!(plan
            .execute_forward_negacyclic_sharded(&mut mixed, &data)
            .is_err());
    }

    #[test]
    fn utilization_shape_matches_table3() {
        // m = 64: utilization dips when a new dimension appears (after
        // 2^12 and 2^18) and when the trailing dimension is short.
        let m = 64;
        let mut utils = Vec::new();
        for log_n in [10u32, 12, 14, 16, 18] {
            let n = 1usize << log_n;
            let q = Modulus::new(ntt_prime(30, n).unwrap()).unwrap();
            let plan = NttPlan::new(q, n, m).unwrap();
            let mut vpu = Vpu::new(m, q, 8).unwrap();
            let data: Vec<u64> = (0..n as u64).collect();
            let run = plan.execute_forward_negacyclic(&mut vpu, &data).unwrap();
            utils.push(run.stats.utilization());
        }
        let (u10, u12, u14, u16, u18) = (utils[0], utils[1], utils[2], utils[3], utils[4]);
        assert!(u12 > u10, "2^12 (square) beats 2^10 (short dim): {utils:?}");
        assert!(u14 < u12, "extra dimension at 2^14 hurts: {utils:?}");
        assert!(
            u16 > u14 && u18 > u16,
            "recovering as the tail grows: {utils:?}"
        );
        for u in &utils {
            assert!(
                *u > 0.6 && *u < 0.95,
                "within the paper's ballpark: {utils:?}"
            );
        }
    }

    #[test]
    fn stats_are_deterministic_and_scale() {
        let q = modulus_for(1 << 12);
        let plan = NttPlan::new(q, 1 << 12, 64).unwrap();
        let mut vpu = Vpu::new(64, q, 8).unwrap();
        let data: Vec<u64> = (0..1u64 << 12).collect();
        let r1 = plan.execute_forward(&mut vpu, &data).unwrap();
        let r2 = plan.execute_forward(&mut vpu, &data).unwrap();
        assert_eq!(r1.stats, r2.stats);
        // 2 dims of 64: butterflies = 12 stages × 64 columns.
        assert_eq!(r1.stats.butterfly, 12 * 64);
        // One twiddle pass between the dims.
        assert_eq!(r1.stats.elementwise, 64);
        // One regular transpose: 2 moves per column.
        assert_eq!(r1.stats.network_move, 2 * 64);
    }
}
