//! The inter-lane network (paper Fig 2): two constant-geometry NTT stages
//! plus a `log₂ m`-stage shift network.
//!
//! One traversal applies, in order:
//!
//! 1. at most one **constant-geometry (CG) stage** — the perfect shuffle
//!    (DIT orientation) or its inverse (DIF orientation), the fixed
//!    connection pattern of the Pease NTT that brings each butterfly's two
//!    operands into adjacent lanes regardless of the stage's stride;
//! 2. the **shift stages** of distance `m/2, m/4, …, 1`, each a row of
//!    `m` 2:1 MUXes with one control bit per residue class (see
//!    [`ShiftControls`]).
//!
//! When `m = 4` the two CG orientations coincide (the shuffle is an
//! involution) and the stages merge, exactly as the paper notes.

use crate::control::ShiftControls;
use crate::CoreError;
use uvpu_math::util::log2_exact;

/// Orientation of a constant-geometry stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CgDirection {
    /// Decimation-in-time routing: the inverse perfect shuffle
    /// (`out[i] = in[2i]`, `out[i + m/2] = in[2i + 1]`), used by the
    /// inverse NTT and the CG-assisted transposes of Fig 3(b).
    Dit,
    /// Decimation-in-frequency routing: the perfect shuffle
    /// (`out[2i] = in[i]`, `out[2i + 1] = in[i + m/2]`), used by the
    /// forward NTT.
    Dif,
}

/// Configuration of a single network traversal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetworkPass {
    /// Optional CG stage to activate (the other stages route straight
    /// through, as in §III-B).
    pub cg: Option<CgDirection>,
    /// Optional shift-stage control word (`None` routes straight through).
    pub shifts: Option<ShiftControls>,
}

impl NetworkPass {
    /// A pass that only activates a CG stage.
    #[must_use]
    pub fn cg(direction: CgDirection) -> Self {
        Self {
            cg: Some(direction),
            shifts: None,
        }
    }

    /// A pass that only activates the shift stages.
    #[must_use]
    pub fn shift(controls: ShiftControls) -> Self {
        Self {
            cg: None,
            shifts: Some(controls),
        }
    }
}

/// The inter-lane network of an `m`-lane VPU.
///
/// # Example
///
/// ```
/// use uvpu_core::network::{CgDirection, InterLaneNetwork};
/// use uvpu_core::control::ShiftControls;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = InterLaneNetwork::new(8)?;
/// let data: Vec<u64> = (0..8).collect();
///
/// // The DIF CG stage is the perfect shuffle …
/// assert_eq!(net.cg_pass(&data, CgDirection::Dif), vec![0, 4, 1, 5, 2, 6, 3, 7]);
/// // … and a rotation control word cycles all lanes.
/// let rot = ShiftControls::from_rotation(8, 3);
/// assert_eq!(net.shift_pass(&data, &rot), vec![5, 6, 7, 0, 1, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterLaneNetwork {
    m: usize,
    log_m: u32,
}

impl InterLaneNetwork {
    /// Creates a network for `m` lanes.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidLaneCount`] unless `m` is a power of two ≥ 2.
    pub fn new(m: usize) -> Result<Self, CoreError> {
        if !m.is_power_of_two() || m < 2 {
            return Err(CoreError::InvalidLaneCount { lanes: m });
        }
        Ok(Self {
            m,
            log_m: log2_exact(m),
        })
    }

    /// Lane count.
    #[must_use]
    pub const fn lanes(&self) -> usize {
        self.m
    }

    /// Number of shift stages (`log₂ m`).
    #[must_use]
    pub const fn shift_stages(&self) -> u32 {
        self.log_m
    }

    /// Number of CG stages: 2, except 1 at `m = 4` where DIT and DIF
    /// orientations coincide (and 1 at `m = 2`, where the shuffle is the
    /// identity... a single trivial stage).
    #[must_use]
    pub const fn cg_stages(&self) -> u32 {
        if self.m <= 4 {
            1
        } else {
            2
        }
    }

    /// Total MUX stages in one traversal (CG + shift), the quantity that
    /// drives the area model and the critical-path argument of §III-B.
    #[must_use]
    pub const fn total_stages(&self) -> u32 {
        self.cg_stages() + self.shift_stages()
    }

    /// Per-traversal shift control budget: `m − 1` bits (paper Fig 2).
    #[must_use]
    pub const fn control_bits(&self) -> usize {
        self.m - 1
    }

    fn check_len(&self, len: usize) -> Result<(), CoreError> {
        if len != self.m {
            return Err(CoreError::LengthMismatch {
                expected: self.m,
                actual: len,
            });
        }
        Ok(())
    }

    /// Applies one CG stage.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != m`.
    #[must_use]
    pub fn cg_pass<T: Copy>(&self, data: &[T], direction: CgDirection) -> Vec<T> {
        self.check_len(data.len()).expect("lane-width vector");
        let m = self.m;
        let mut out = data.to_vec();
        match direction {
            CgDirection::Dif => {
                // Perfect shuffle: lane i and lane i + m/2 become adjacent.
                for i in 0..m / 2 {
                    out[2 * i] = data[i];
                    out[2 * i + 1] = data[i + m / 2];
                }
            }
            CgDirection::Dit => {
                // Inverse shuffle: adjacent pairs spread back out.
                for i in 0..m / 2 {
                    out[i] = data[2 * i];
                    out[i + m / 2] = data[2 * i + 1];
                }
            }
        }
        out
    }

    /// Applies a grouped CG stage: the network splits into `m / group`
    /// independent sub-networks of `group` lanes each, letting several
    /// shorter NTTs run in parallel (§IV-A).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != m`, or `group` does not divide `m` evenly
    /// into power-of-two blocks of at least 2 lanes.
    #[must_use]
    pub fn cg_pass_grouped<T: Copy>(
        &self,
        data: &[T],
        direction: CgDirection,
        group: usize,
    ) -> Vec<T> {
        self.check_len(data.len()).expect("lane-width vector");
        assert!(
            group.is_power_of_two() && group >= 2 && group <= self.m,
            "group size {group} must be a power of two in [2, m]"
        );
        let sub = InterLaneNetwork {
            m: group,
            log_m: log2_exact(group),
        };
        let mut out = Vec::with_capacity(self.m);
        for block in data.chunks(group) {
            out.extend(sub.cg_pass(block, direction));
        }
        out
    }

    /// Applies the shift stages under a control word: stage distance `m/2`
    /// first down to distance `1`, each moving the selected residue
    /// classes from lane `i` to lane `i + d mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != m` or the control word was built for a
    /// different lane count.
    #[must_use]
    pub fn shift_pass<T: Copy>(&self, data: &[T], controls: &ShiftControls) -> Vec<T> {
        self.check_len(data.len()).expect("lane-width vector");
        assert_eq!(controls.m(), self.m, "control word lane count mismatch");
        let m = self.m;
        let mut cur = data.to_vec();
        for level in (0..controls.levels()).rev() {
            let d = 1usize << level;
            let mut next = cur.clone();
            for (i, &v) in cur.iter().enumerate() {
                if controls.bit(level, i % d) {
                    next[(i + d) % m] = v;
                }
            }
            cur = next;
        }
        cur
    }

    /// Applies a full traversal (optional CG stage, then shift stages).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != m`.
    #[must_use]
    pub fn traverse<T: Copy>(&self, data: &[T], pass: &NetworkPass) -> Vec<T> {
        let mut cur = match pass.cg {
            Some(dir) => self.cg_pass(data, dir),
            None => data.to_vec(),
        };
        if let Some(controls) = &pass.shifts {
            cur = self.shift_pass(&cur, controls);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use uvpu_math::automorphism::AffineMap;

    #[test]
    fn rejects_bad_lane_counts() {
        assert!(InterLaneNetwork::new(0).is_err());
        assert!(InterLaneNetwork::new(1).is_err());
        assert!(InterLaneNetwork::new(12).is_err());
        assert!(InterLaneNetwork::new(64).is_ok());
    }

    #[test]
    fn cg_stages_merge_at_m4() {
        assert_eq!(InterLaneNetwork::new(4).unwrap().cg_stages(), 1);
        assert_eq!(InterLaneNetwork::new(8).unwrap().cg_stages(), 2);
        assert_eq!(InterLaneNetwork::new(64).unwrap().total_stages(), 8);
        // §III-B: 32–64 lanes ⇒ 7–8 stages.
        assert_eq!(InterLaneNetwork::new(32).unwrap().total_stages(), 7);
    }

    #[test]
    fn shuffle_and_unshuffle_are_inverse() {
        let net = InterLaneNetwork::new(16).unwrap();
        let data: Vec<u64> = (100..116).collect();
        let shuffled = net.cg_pass(&data, CgDirection::Dif);
        assert_eq!(net.cg_pass(&shuffled, CgDirection::Dit), data);
    }

    #[test]
    fn dit_and_dif_coincide_at_m4() {
        let net = InterLaneNetwork::new(4).unwrap();
        let data = [10u64, 11, 12, 13];
        assert_eq!(
            net.cg_pass(&data, CgDirection::Dif),
            net.cg_pass(&data, CgDirection::Dit),
            "at m = 4 the shuffle is an involution, so one CG stage suffices"
        );
    }

    #[test]
    fn shuffle_pairs_butterfly_operands() {
        // The DIF CG stage must bring (i, i + m/2) into lanes (2i, 2i+1).
        let net = InterLaneNetwork::new(64).unwrap();
        let data: Vec<u64> = (0..64).collect();
        let out = net.cg_pass(&data, CgDirection::Dif);
        for i in 0..32 {
            assert_eq!(out[2 * i], i as u64);
            assert_eq!(out[2 * i + 1], i as u64 + 32);
        }
    }

    #[test]
    fn grouped_cg_runs_independent_blocks() {
        let net = InterLaneNetwork::new(8).unwrap();
        let data: Vec<u64> = (0..8).collect();
        let out = net.cg_pass_grouped(&data, CgDirection::Dif, 4);
        assert_eq!(out, vec![0, 2, 1, 3, 4, 6, 5, 7]);
    }

    #[test]
    fn shift_pass_realizes_any_affine_map() {
        let net = InterLaneNetwork::new(64).unwrap();
        let data: Vec<u64> = (0..64).collect();
        for g in (1..64u64).step_by(2) {
            for t in [0u64, 1, 13, 63] {
                let map = AffineMap::new(64, g, t).unwrap();
                let controls = crate::control::ShiftControls::from_affine(&map);
                assert_eq!(
                    net.shift_pass(&data, &controls),
                    map.permute(&data),
                    "g={g} t={t}"
                );
            }
        }
    }

    #[test]
    fn paper_fig2_subcolumn_shift_example() {
        // §IV-B, m = 8: shift the even sub-column [0,2,4,6] by 2 positions
        // and the odd sub-column [1,3,5,7] by 3 positions (global
        // distances 4 and 6), yielding [4,6,0,2] and [7,1,3,5].
        let net = InterLaneNetwork::new(8).unwrap();
        let data: Vec<u64> = (0..8).collect();
        // Even sub-column: move every element 4 lanes (2 sub-positions) —
        // one distance-4 step on the even residue classes {0, 2} mod 4.
        // Odd sub-column: the paper's "distance 3" (global 6) equals a
        // single distance-2 step the other way around the length-4 cycle —
        // exactly the control-merging the paper describes.
        let controls = crate::control::ShiftControls::from_bits(
            8,
            vec![
                vec![false],
                vec![false, true],              // distance-2 stage: odd class
                vec![true, false, true, false], // distance-4 stage: even classes
            ],
        )
        .unwrap();
        let out = net.shift_pass(&data, &controls);
        let evens: Vec<u64> = (0..4).map(|i| out[2 * i]).collect();
        let odds: Vec<u64> = (0..4).map(|i| out[2 * i + 1]).collect();
        assert_eq!(evens, vec![4, 6, 0, 2]);
        assert_eq!(odds, vec![7, 1, 3, 5]);
    }

    #[test]
    fn traverse_composes_cg_then_shift() {
        let net = InterLaneNetwork::new(8).unwrap();
        let data: Vec<u64> = (0..8).collect();
        let pass = NetworkPass {
            cg: Some(CgDirection::Dif),
            shifts: Some(crate::control::ShiftControls::from_rotation(8, 1)),
        };
        let expect = net.shift_pass(
            &net.cg_pass(&data, CgDirection::Dif),
            &crate::control::ShiftControls::from_rotation(8, 1),
        );
        assert_eq!(net.traverse(&data, &pass), expect);
        // Default pass is a no-op.
        assert_eq!(net.traverse(&data, &NetworkPass::default()), data);
    }

    proptest! {
        #[test]
        fn shift_pass_is_always_a_permutation(
            log_m in 1u32..=8,
            seed in any::<u64>(),
        ) {
            let m = 1usize << log_m;
            let net = InterLaneNetwork::new(m).unwrap();
            // Random control bits — even arbitrary words permute (each
            // stage is conflict-free by construction).
            let mut s = seed;
            let mut bits = Vec::new();
            for l in 0..log_m as usize {
                let mut level = Vec::new();
                for _ in 0..(1usize << l) {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    level.push(s >> 63 == 1);
                }
                bits.push(level);
            }
            let controls = crate::control::ShiftControls::from_bits(m, bits).unwrap();
            let data: Vec<u64> = (0..m as u64).collect();
            let mut out = net.shift_pass(&data, &controls);
            out.sort_unstable();
            prop_assert_eq!(out, data);
        }
    }
}
