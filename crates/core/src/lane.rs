//! The computing lanes (paper Fig 1(c)).
//!
//! Each lane holds a Barrett modular multiplier, a modular
//! adder/subtractor, and a slice of the register file (2 read ports, 1
//! write port). [`LaneArray`] models the `m` lanes' register state and the
//! arithmetic they can perform in one beat:
//!
//! - element-wise add / sub / multiply / multiply-accumulate across all
//!   lanes;
//! - **paired-lane butterflies**: adjacent lanes exchange operands over
//!   their direct connections to compute a DIT or DIF butterfly per pair;
//! - per-lane-addressed register writes, the vector-machine addressing the
//!   diagonal transpose steps of Fig 3 rely on.

use crate::CoreError;
use uvpu_math::modular::Modulus;

/// Which butterfly the paired lanes execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ButterflyKind {
    /// Decimation-in-time: `(u, v) ↦ (u + w·v, u − w·v)`.
    Dit,
    /// Decimation-in-frequency: `(u, v) ↦ (u + v, (u − v)·w)`.
    Dif,
}

/// The register state and arithmetic units of `m` lanes.
///
/// Registers are indexed by address; `read(addr)` returns the `m`-element
/// vector stored across the lanes at that address.
///
/// # Example
///
/// ```
/// use uvpu_core::lane::LaneArray;
/// use uvpu_math::modular::Modulus;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Modulus::new(97)?;
/// let mut lanes = LaneArray::new(4, q, 8)?;
/// lanes.write(0, &[1, 2, 3, 4])?;
/// lanes.write(1, &[10, 20, 30, 40])?;
/// lanes.ewise_add(2, 0, 1)?;
/// assert_eq!(lanes.read(2)?, &[11, 22, 33, 44]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LaneArray {
    m: usize,
    modulus: Modulus,
    /// `regs[addr][lane]`.
    regs: Vec<Vec<u64>>,
}

impl LaneArray {
    /// Creates `m` lanes with a register file of `depth` entries each.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidLaneCount`] unless `m` is a power of two ≥ 2.
    pub fn new(m: usize, modulus: Modulus, depth: usize) -> Result<Self, CoreError> {
        if !m.is_power_of_two() || m < 2 {
            return Err(CoreError::InvalidLaneCount { lanes: m });
        }
        Ok(Self {
            m,
            modulus,
            regs: vec![vec![0; m]; depth],
        })
    }

    /// Lane count `m`.
    #[must_use]
    pub const fn lanes(&self) -> usize {
        self.m
    }

    /// Register file depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.regs.len()
    }

    /// The lanes' modulus.
    #[must_use]
    pub const fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// Grows the register file to at least `depth` entries.
    pub fn ensure_depth(&mut self, depth: usize) {
        if self.regs.len() < depth {
            self.regs.resize(depth, vec![0; self.m]);
        }
    }

    fn check_addr(&self, addr: usize) -> Result<(), CoreError> {
        if addr >= self.regs.len() {
            return Err(CoreError::RegisterOutOfRange {
                address: addr,
                depth: self.regs.len(),
            });
        }
        Ok(())
    }

    fn check_vec(&self, data: &[u64]) -> Result<(), CoreError> {
        if data.len() != self.m {
            return Err(CoreError::LengthMismatch {
                expected: self.m,
                actual: data.len(),
            });
        }
        Ok(())
    }

    /// Reads the vector at a register address.
    ///
    /// # Errors
    ///
    /// [`CoreError::RegisterOutOfRange`] for a bad address.
    pub fn read(&self, addr: usize) -> Result<&[u64], CoreError> {
        self.check_addr(addr)?;
        Ok(&self.regs[addr])
    }

    /// Writes a vector to a register address (values must be reduced).
    ///
    /// # Errors
    ///
    /// Bad address or wrong vector length.
    pub fn write(&mut self, addr: usize, data: &[u64]) -> Result<(), CoreError> {
        self.check_addr(addr)?;
        self.check_vec(data)?;
        debug_assert!(data.iter().all(|&x| x < self.modulus.value()));
        self.regs[addr].copy_from_slice(data);
        Ok(())
    }

    /// Per-lane-addressed write: lane `l` writes `data[l]` to register
    /// address `addrs[l]` — the vector-machine addressing mode the
    /// diagonal transpose of Fig 3(a) needs ("write them to the register
    /// addresses of x|z").
    ///
    /// # Errors
    ///
    /// Bad address in `addrs` or wrong vector length.
    pub fn write_per_lane(&mut self, addrs: &[usize], data: &[u64]) -> Result<(), CoreError> {
        self.check_vec(data)?;
        if addrs.len() != self.m {
            return Err(CoreError::LengthMismatch {
                expected: self.m,
                actual: addrs.len(),
            });
        }
        for &a in addrs {
            self.check_addr(a)?;
        }
        for (l, (&a, &v)) in addrs.iter().zip(data).enumerate() {
            self.regs[a][l] = v;
        }
        Ok(())
    }

    /// Per-lane-addressed read: lane `l` reads from register `addrs[l]`.
    ///
    /// # Errors
    ///
    /// Bad address in `addrs`.
    pub fn read_per_lane(&self, addrs: &[usize]) -> Result<Vec<u64>, CoreError> {
        if addrs.len() != self.m {
            return Err(CoreError::LengthMismatch {
                expected: self.m,
                actual: addrs.len(),
            });
        }
        for &a in addrs {
            self.check_addr(a)?;
        }
        Ok(addrs
            .iter()
            .enumerate()
            .map(|(l, &a)| self.regs[a][l])
            .collect())
    }

    /// `dst ← a + b` element-wise.
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn ewise_add(&mut self, dst: usize, a: usize, b: usize) -> Result<(), CoreError> {
        self.check_addr(dst)?;
        self.check_addr(a)?;
        self.check_addr(b)?;
        let q = self.modulus;
        let out: Vec<u64> = (0..self.m)
            .map(|l| q.add(self.regs[a][l], self.regs[b][l]))
            .collect();
        self.regs[dst] = out;
        Ok(())
    }

    /// `dst ← a − b` element-wise.
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn ewise_sub(&mut self, dst: usize, a: usize, b: usize) -> Result<(), CoreError> {
        self.check_addr(dst)?;
        self.check_addr(a)?;
        self.check_addr(b)?;
        let q = self.modulus;
        let out: Vec<u64> = (0..self.m)
            .map(|l| q.sub(self.regs[a][l], self.regs[b][l]))
            .collect();
        self.regs[dst] = out;
        Ok(())
    }

    /// `dst ← a · b` element-wise (Barrett multipliers, one per lane).
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn ewise_mul(&mut self, dst: usize, a: usize, b: usize) -> Result<(), CoreError> {
        self.check_addr(dst)?;
        self.check_addr(a)?;
        self.check_addr(b)?;
        let q = self.modulus;
        let out: Vec<u64> = (0..self.m)
            .map(|l| q.mul(self.regs[a][l], self.regs[b][l]))
            .collect();
        self.regs[dst] = out;
        Ok(())
    }

    /// `dst ← dst + a · b` element-wise (multiply-accumulate, the
    /// matrix/tensor-product primitive).
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn ewise_mac(&mut self, dst: usize, a: usize, b: usize) -> Result<(), CoreError> {
        self.check_addr(dst)?;
        self.check_addr(a)?;
        self.check_addr(b)?;
        let q = self.modulus;
        let out: Vec<u64> = (0..self.m)
            .map(|l| q.mul_add(self.regs[a][l], self.regs[b][l], self.regs[dst][l]))
            .collect();
        self.regs[dst] = out;
        Ok(())
    }

    /// `dst ← src · consts` element-wise against an immediate constant
    /// vector (twiddle factors resident in the register file).
    ///
    /// # Errors
    ///
    /// Bad register address or wrong constant-vector length.
    pub fn ewise_mul_const(
        &mut self,
        dst: usize,
        src: usize,
        consts: &[u64],
    ) -> Result<(), CoreError> {
        self.check_addr(dst)?;
        self.check_addr(src)?;
        self.check_vec(consts)?;
        let q = self.modulus;
        let out: Vec<u64> = (0..self.m)
            .map(|l| q.mul(self.regs[src][l], q.reduce_u64(consts[l])))
            .collect();
        self.regs[dst] = out;
        Ok(())
    }

    /// Executes one butterfly per adjacent lane pair, in place on the
    /// vector at `addr`. `twiddles[p]` feeds the pair `(2p, 2p + 1)`.
    ///
    /// # Errors
    ///
    /// Bad address, or `twiddles.len() != m/2`.
    pub fn butterfly_adjacent(
        &mut self,
        addr: usize,
        kind: ButterflyKind,
        twiddles: &[u64],
    ) -> Result<(), CoreError> {
        self.check_addr(addr)?;
        if twiddles.len() != self.m / 2 {
            return Err(CoreError::LengthMismatch {
                expected: self.m / 2,
                actual: twiddles.len(),
            });
        }
        let q = self.modulus;
        let v = &mut self.regs[addr];
        for (p, &w) in twiddles.iter().enumerate() {
            let w = q.reduce_u64(w);
            let u = v[2 * p];
            let x = v[2 * p + 1];
            let (hi, lo) = match kind {
                ButterflyKind::Dit => {
                    let wx = q.mul(w, x);
                    (q.add(u, wx), q.sub(u, wx))
                }
                ButterflyKind::Dif => (q.add(u, x), q.mul(q.sub(u, x), w)),
            };
            v[2 * p] = hi;
            v[2 * p + 1] = lo;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes() -> LaneArray {
        LaneArray::new(8, Modulus::new(97).unwrap(), 16).unwrap()
    }

    #[test]
    fn construction_validates() {
        let q = Modulus::new(97).unwrap();
        assert!(LaneArray::new(3, q, 4).is_err());
        assert!(LaneArray::new(0, q, 4).is_err());
        let l = LaneArray::new(8, q, 4).unwrap();
        assert_eq!(l.lanes(), 8);
        assert_eq!(l.depth(), 4);
    }

    #[test]
    fn read_write_round_trip_and_bounds() {
        let mut l = lanes();
        let v: Vec<u64> = (10..18).collect();
        l.write(3, &v).unwrap();
        assert_eq!(l.read(3).unwrap(), v.as_slice());
        assert!(l.read(16).is_err());
        assert!(l.write(16, &v).is_err());
        assert!(l.write(0, &[1, 2, 3]).is_err());
    }

    #[test]
    fn ensure_depth_grows_only() {
        let mut l = lanes();
        l.ensure_depth(4);
        assert_eq!(l.depth(), 16);
        l.ensure_depth(32);
        assert_eq!(l.depth(), 32);
        assert_eq!(l.read(31).unwrap(), &[0; 8]);
    }

    #[test]
    fn elementwise_arithmetic() {
        let mut l = lanes();
        l.write(0, &[90, 2, 3, 4, 5, 6, 7, 96]).unwrap();
        l.write(1, &[10, 20, 30, 40, 50, 60, 70, 2]).unwrap();
        l.ewise_add(2, 0, 1).unwrap();
        assert_eq!(l.read(2).unwrap(), &[3, 22, 33, 44, 55, 66, 77, 1]);
        l.ewise_sub(3, 0, 1).unwrap();
        assert_eq!(l.read(3).unwrap()[0], (90 + 97 - 10) % 97);
        l.ewise_mul(4, 0, 1).unwrap();
        assert_eq!(l.read(4).unwrap()[1], 40);
        l.ewise_mac(4, 0, 1).unwrap();
        assert_eq!(l.read(4).unwrap()[1], 80);
    }

    #[test]
    fn mul_const_reduces_immediates() {
        let mut l = lanes();
        l.write(0, &[1; 8]).unwrap();
        l.ewise_mul_const(1, 0, &[98; 8]).unwrap(); // 98 ≡ 1
        assert_eq!(l.read(1).unwrap(), &[1; 8]);
    }

    #[test]
    fn dit_dif_butterflies_are_inverse_up_to_two() {
        let mut l = lanes();
        let v: Vec<u64> = (1..9).collect();
        l.write(0, &v).unwrap();
        let w = [5u64, 7, 11, 13];
        let w_inv: Vec<u64> = w.iter().map(|&x| l.modulus().inv(x).unwrap()).collect();
        // DIF with w then DIT with w^{-1} doubles each element.
        l.butterfly_adjacent(0, ButterflyKind::Dif, &w).unwrap();
        l.butterfly_adjacent(0, ButterflyKind::Dit, &w_inv).unwrap();
        let q = l.modulus();
        let got = l.read(0).unwrap().to_vec();
        for (x, orig) in got.iter().zip(&v) {
            assert_eq!(*x, q.mul(2, *orig));
        }
    }

    #[test]
    fn butterfly_validates_twiddle_length() {
        let mut l = lanes();
        assert!(l
            .butterfly_adjacent(0, ButterflyKind::Dit, &[1, 2, 3])
            .is_err());
    }

    #[test]
    fn per_lane_addressing_scatters_and_gathers() {
        let mut l = lanes();
        let addrs = [0usize, 1, 2, 3, 4, 5, 6, 7];
        l.write_per_lane(&addrs, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        // Element for lane l went to register addrs[l]; diagonal readback.
        assert_eq!(
            l.read_per_lane(&addrs).unwrap(),
            vec![1, 2, 3, 4, 5, 6, 7, 8]
        );
        // Register 3 holds only lane 3's element.
        assert_eq!(l.read(3).unwrap(), &[0, 0, 0, 4, 0, 0, 0, 0]);
        assert!(l.write_per_lane(&[99; 8], &[0; 8]).is_err());
    }
}
