use std::fmt;
use uvpu_math::MathError;

/// Errors produced by the VPU simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The lane count must be a power of two ≥ 2 (the network needs at
    /// least one shift stage).
    InvalidLaneCount {
        /// The offending lane count.
        lanes: usize,
    },
    /// A vector operation received data whose length does not match the
    /// lane count or register layout.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A register address is outside the register file.
    RegisterOutOfRange {
        /// The offending address.
        address: usize,
        /// Register file depth.
        depth: usize,
    },
    /// An operation size cannot be decomposed onto this VPU (e.g. smaller
    /// than 2 or not a power of two).
    UnsupportedSize {
        /// The offending size.
        size: usize,
    },
    /// An error bubbled up from the mathematical substrate.
    Math(MathError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidLaneCount { lanes } => {
                write!(f, "lane count {lanes} must be a power of two >= 2")
            }
            Self::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "vector length {actual} does not match expected {expected}"
                )
            }
            Self::RegisterOutOfRange { address, depth } => {
                write!(
                    f,
                    "register address {address} outside register file of depth {depth}"
                )
            }
            Self::UnsupportedSize { size } => {
                write!(f, "operation size {size} cannot be mapped onto the VPU")
            }
            Self::Math(e) => write!(f, "math error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for CoreError {
    fn from(e: MathError) -> Self {
        Self::Math(e)
    }
}
