//! The unified vector processing unit (paper Fig 1(b)): `m` computing
//! lanes joined by the inter-lane network, with cycle accounting.
//!
//! Every public operation models one pipeline beat: a traversal of the
//! network, a lane compute step, or both back-to-back (the network output
//! feeds the paired-lane butterflies directly, so a constant-geometry
//! route plus its butterfly is a single beat).

use crate::control::{AutomorphismControlTable, ShiftControls};
use crate::lane::{ButterflyKind, LaneArray};
use crate::network::{CgDirection, InterLaneNetwork, NetworkPass};
use crate::stats::CycleStats;
use crate::trace::{BeatKind, EwiseOp, FaultSite, MemDir, NetKind, NopSink, TraceSink};
use crate::CoreError;
use uvpu_math::modular::Modulus;

/// One stage of a Pease constant-geometry NTT running on the VPU.
#[derive(Debug, Clone)]
pub enum PeaseStage<'a> {
    /// Forward (DIF) stage: CG shuffle route, then DIF butterflies on the
    /// now-adjacent operand pairs.
    Forward {
        /// Twiddle per adjacent pair (`m/2` values).
        twiddles: &'a [u64],
    },
    /// Inverse (DIT) stage: DIT butterflies on adjacent pairs, then the CG
    /// unshuffle route spreads results back out.
    Inverse {
        /// Twiddle per adjacent pair (`m/2` values).
        twiddles: &'a [u64],
    },
}

/// An `m`-lane vector processing unit.
///
/// # Example
///
/// ```
/// use uvpu_core::vpu::Vpu;
/// use uvpu_math::modular::Modulus;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Modulus::new(97)?;
/// let mut vpu = Vpu::new(8, q, 16)?;
/// vpu.load(0, &[1, 2, 3, 4, 5, 6, 7, 8])?;
/// vpu.load(1, &[1; 8])?;
/// vpu.ewise_add(2, 0, 1)?;
/// assert_eq!(vpu.store(2)?, vec![2, 3, 4, 5, 6, 7, 8, 9]);
/// assert_eq!(vpu.stats().elementwise, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Vpu<S: TraceSink = NopSink> {
    regs: LaneArray,
    network: InterLaneNetwork,
    control_table: AutomorphismControlTable,
    stats: CycleStats,
    sink: S,
    track: u32,
}

impl Vpu {
    /// Creates an untraced VPU with `m` lanes and a register file of
    /// `depth` entries. (The sink parameter defaults to [`NopSink`], so
    /// existing call sites need no annotation; use
    /// [`Vpu::with_sink`] to attach a tracer.)
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidLaneCount`] unless `m` is a power of two ≥ 2.
    pub fn new(m: usize, modulus: Modulus, depth: usize) -> Result<Self, CoreError> {
        Self::with_sink(m, modulus, depth, NopSink)
    }
}

impl<S: TraceSink> Vpu<S> {
    /// Creates a VPU with `m` lanes, a register file of `depth` entries,
    /// and `sink` receiving an event for every pipeline beat.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidLaneCount`] unless `m` is a power of two ≥ 2.
    pub fn with_sink(m: usize, modulus: Modulus, depth: usize, sink: S) -> Result<Self, CoreError> {
        Ok(Self {
            regs: LaneArray::new(m, modulus, depth)?,
            network: InterLaneNetwork::new(m)?,
            control_table: AutomorphismControlTable::new(m)?,
            stats: CycleStats::new(),
            sink,
            track: 0,
        })
    }

    /// Sets the trace track (Perfetto `tid`) this VPU stamps on its
    /// events — distinguishes VPUs in a multi-VPU trace.
    pub fn set_track(&mut self, track: u32) {
        self.track = track;
    }

    /// The trace track this VPU stamps on its events.
    #[must_use]
    pub const fn track(&self) -> u32 {
        self.track
    }

    /// The attached trace sink.
    #[must_use]
    pub const fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the attached trace sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the VPU, returning the sink (and its recorded data).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Opens a phase span at the current cycle (NTT stage, automorphism,
    /// transpose, …). Pair with [`Self::span_end`]; the operation
    /// mappings in `ntt_map` / `auto_map` call these around each phase.
    pub fn span_begin(&mut self, name: &str) {
        self.sink.span_begin(self.track, self.stats.total(), name);
    }

    /// Closes the innermost phase span with this name at the current
    /// cycle.
    pub fn span_end(&mut self, name: &str) {
        self.sink.span_end(self.track, self.stats.total(), name);
    }

    /// Lane count `m`.
    #[must_use]
    pub const fn lanes(&self) -> usize {
        self.regs.lanes()
    }

    /// The lanes' modulus.
    #[must_use]
    pub const fn modulus(&self) -> Modulus {
        self.regs.modulus()
    }

    /// The inter-lane network.
    #[must_use]
    pub const fn network(&self) -> &InterLaneNetwork {
        &self.network
    }

    /// The precomputed automorphism control SRAM.
    #[must_use]
    pub const fn control_table(&self) -> &AutomorphismControlTable {
        &self.control_table
    }

    /// Cycle counters accumulated so far.
    #[must_use]
    pub const fn stats(&self) -> &CycleStats {
        &self.stats
    }

    /// Resets the cycle counters.
    pub fn reset_stats(&mut self) {
        self.stats = CycleStats::new();
    }

    /// Charges network-movement beats performed by an operation-mapping
    /// planner that rearranges data with routing proven equivalent to
    /// shift/CG traversals (see `ntt_map::NttPlan`, whose transposes follow
    /// the Fig 3 pass counts while the mechanics are validated separately
    /// in the `transpose` module).
    pub fn charge_network_moves(&mut self, beats: u64) {
        if beats > 0 {
            self.sink.beats(
                self.track,
                self.stats.total(),
                BeatKind::NetworkMove(NetKind::Shift),
                beats,
            );
        }
        self.stats.network_move += beats;
    }

    /// Charges butterfly beats computed analytically by a planner whose
    /// functional work ran elsewhere (the parallel column passes of
    /// `ntt_map::NttPlan` execute lanes on per-worker scratch VPUs and
    /// charge the real shards here, keeping cycle accounting identical
    /// to the sequential per-beat path for any thread count).
    pub fn charge_butterflies(&mut self, beats: u64) {
        if beats > 0 {
            self.sink
                .beats(self.track, self.stats.total(), BeatKind::Butterfly, beats);
        }
        self.stats.butterfly += beats;
    }

    /// Charges element-wise lane-ALU beats of opcode `op` computed
    /// analytically by a planner (see [`charge_butterflies`](Self::charge_butterflies)).
    pub fn charge_elementwise_ops(&mut self, op: EwiseOp, beats: u64) {
        if beats > 0 {
            self.sink.beats(
                self.track,
                self.stats.total(),
                BeatKind::Elementwise(op),
                beats,
            );
        }
        self.stats.elementwise += beats;
    }

    /// Grows the register file to at least `depth` entries.
    pub fn ensure_depth(&mut self, depth: usize) {
        self.regs.ensure_depth(depth);
    }

    /// Emits the register-file interface trace event of a load/store
    /// whose data movement happened elsewhere (a worker's private
    /// scratch VPU). Keeps the traced mem stream identical between the
    /// sequential and data-parallel execution paths, the same way beats
    /// are charged analytically (see
    /// [`charge_butterflies`](Self::charge_butterflies)).
    pub fn charge_mem(&mut self, dir: MemDir, addr: usize, lanes: usize) {
        self.sink
            .mem(self.track, self.stats.total(), dir, addr, lanes);
    }

    /// Loads a vector into a register (models the SRAM→VPU interface; not
    /// charged to the compute pipeline).
    ///
    /// # Errors
    ///
    /// Bad address or wrong vector length.
    pub fn load(&mut self, addr: usize, data: &[u64]) -> Result<(), CoreError> {
        let reduced: Vec<u64> = data
            .iter()
            .map(|&x| self.regs.modulus().reduce_u64(x))
            .collect();
        self.regs.write(addr, &reduced)?;
        self.sink.mem(
            self.track,
            self.stats.total(),
            MemDir::Load,
            addr,
            data.len(),
        );
        Ok(())
    }

    /// Reads a register back out (models the VPU→SRAM interface).
    ///
    /// # Errors
    ///
    /// Bad address.
    pub fn store(&mut self, addr: usize) -> Result<Vec<u64>, CoreError> {
        let mut out = self.regs.read(addr)?.to_vec();
        if self.sink.fault_hooks_enabled() {
            // Register-file read at the store interface: the words leave
            // the modular datapath, so injected corruption stays raw
            // (possibly ≥ q) — exactly what a range guard must catch.
            self.sink.fault_data(
                self.track,
                self.stats.total(),
                FaultSite::RegFileRead,
                &mut out,
            );
        }
        self.sink.mem(
            self.track,
            self.stats.total(),
            MemDir::Store,
            addr,
            out.len(),
        );
        Ok(out)
    }

    /// Reads a register without emitting a trace event (for inspection
    /// through a shared reference; models no interface traffic).
    ///
    /// # Errors
    ///
    /// Bad address.
    pub fn peek(&self, addr: usize) -> Result<Vec<u64>, CoreError> {
        Ok(self.regs.read(addr)?.to_vec())
    }

    /// `dst ← a + b` (one element-wise beat).
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn ewise_add(&mut self, dst: usize, a: usize, b: usize) -> Result<(), CoreError> {
        self.regs.ewise_add(dst, a, b)?;
        self.beat(BeatKind::Elementwise(EwiseOp::Add));
        Ok(())
    }

    /// Emits the trace event for one beat of `kind`, then charges it.
    /// The event timestamp is the cycle count *before* the charge, so the
    /// beat occupies `[cycle, cycle + 1)`.
    fn beat(&mut self, kind: BeatKind) {
        self.sink.beat(self.track, self.stats.total(), kind);
        kind.charge(&mut self.stats, 1);
    }

    /// Offers an in-flight vector to the sink's fault-injection hook
    /// ([`TraceSink::fault_data`]). With the default [`NopSink`] the
    /// enabled check is a constant `false`, so the whole call compiles
    /// away on the untraced path. Corrupted words re-enter a modular
    /// pipeline stage immediately after these sites, so they are
    /// captured back into `[0, q)` here; only the register-file *read*
    /// site (the store interface, which leaves the datapath) carries
    /// raw out-of-range words.
    fn fault_hook(&mut self, site: FaultSite, data: &mut [u64]) {
        if self.sink.fault_hooks_enabled() {
            self.sink
                .fault_data(self.track, self.stats.total(), site, data);
            let q = self.regs.modulus();
            for x in data.iter_mut() {
                *x = q.reduce_u64(*x);
            }
        }
    }

    /// [`fault_hook`](Self::fault_hook) applied in place to a register —
    /// used where a lane stage writes its result back before the next
    /// observable boundary (butterfly outputs). The read/modify/write
    /// only happens when a fault-injecting sink is attached.
    fn fault_hook_reg(&mut self, site: FaultSite, addr: usize) -> Result<(), CoreError> {
        if self.sink.fault_hooks_enabled() {
            let mut data = self.regs.read(addr)?.to_vec();
            self.sink
                .fault_data(self.track, self.stats.total(), site, &mut data);
            let q = self.regs.modulus();
            for x in &mut data {
                *x = q.reduce_u64(*x);
            }
            self.regs.write(addr, &data)?;
        }
        Ok(())
    }

    /// `dst ← a − b` (one element-wise beat).
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn ewise_sub(&mut self, dst: usize, a: usize, b: usize) -> Result<(), CoreError> {
        self.regs.ewise_sub(dst, a, b)?;
        self.beat(BeatKind::Elementwise(EwiseOp::Sub));
        Ok(())
    }

    /// `dst ← a · b` (one element-wise beat).
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn ewise_mul(&mut self, dst: usize, a: usize, b: usize) -> Result<(), CoreError> {
        self.regs.ewise_mul(dst, a, b)?;
        self.beat(BeatKind::Elementwise(EwiseOp::Mul));
        Ok(())
    }

    /// `dst ← dst + a · b` (one element-wise beat).
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn ewise_mac(&mut self, dst: usize, a: usize, b: usize) -> Result<(), CoreError> {
        self.regs.ewise_mac(dst, a, b)?;
        self.beat(BeatKind::Elementwise(EwiseOp::Mac));
        Ok(())
    }

    /// `dst ← src · consts` against an immediate twiddle vector (one
    /// element-wise beat).
    ///
    /// # Errors
    ///
    /// Bad register address or wrong constant-vector length.
    pub fn ewise_mul_const(
        &mut self,
        dst: usize,
        src: usize,
        consts: &[u64],
    ) -> Result<(), CoreError> {
        self.regs.ewise_mul_const(dst, src, consts)?;
        self.beat(BeatKind::Elementwise(EwiseOp::MulConst));
        Ok(())
    }

    /// Routes `src` through the network into `dst` (one network-only beat,
    /// arithmetic units idle).
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn route(&mut self, dst: usize, src: usize, pass: &NetworkPass) -> Result<(), CoreError> {
        let data = self.regs.read(src)?.to_vec();
        let mut out = self.network.traverse(&data, pass);
        self.fault_hook(FaultSite::from_net(NetKind::from_pass(pass)), &mut out);
        self.regs.write(dst, &out)?;
        self.beat(BeatKind::NetworkMove(NetKind::from_pass(pass)));
        Ok(())
    }

    /// Routes `src` through the shift network and scatters the result with
    /// per-lane write addressing — the diagonal store of Fig 3(a)'s first
    /// transpose step (one network-only beat).
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn route_scatter(
        &mut self,
        src: usize,
        pass: &NetworkPass,
        addrs: &[usize],
    ) -> Result<(), CoreError> {
        let data = self.regs.read(src)?.to_vec();
        let mut out = self.network.traverse(&data, pass);
        self.fault_hook(FaultSite::from_net(NetKind::from_pass(pass)), &mut out);
        self.regs.write_per_lane(addrs, &out)?;
        self.beat(BeatKind::NetworkMove(NetKind::from_pass(pass)));
        Ok(())
    }

    /// Gathers per-lane-addressed registers, routes through the network,
    /// and writes to `dst` — Fig 3(a)'s second transpose step (one
    /// network-only beat).
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn gather_route(
        &mut self,
        dst: usize,
        addrs: &[usize],
        pass: &NetworkPass,
    ) -> Result<(), CoreError> {
        let data = self.regs.read_per_lane(addrs)?;
        let mut out = self.network.traverse(&data, pass);
        self.fault_hook(FaultSite::from_net(NetKind::from_pass(pass)), &mut out);
        self.regs.write(dst, &out)?;
        self.beat(BeatKind::NetworkMove(NetKind::from_pass(pass)));
        Ok(())
    }

    /// Uniform cyclic rotation of a register by `t` lanes (one
    /// network-only beat).
    ///
    /// # Errors
    ///
    /// Bad register address.
    pub fn rotate(&mut self, dst: usize, src: usize, t: u64) -> Result<(), CoreError> {
        let controls = ShiftControls::from_rotation(self.lanes(), t);
        self.route(dst, src, &NetworkPass::shift(controls))
    }

    /// Applies a merged automorphism-plus-shift `i ↦ i·g + t mod m` to a
    /// register in a **single** network traversal, via the control SRAM —
    /// the paper's §IV-B guarantee (one network-only beat).
    ///
    /// # Errors
    ///
    /// Bad register address, or even `g`.
    pub fn automorphism_pass(
        &mut self,
        dst: usize,
        src: usize,
        g: u64,
        t: u64,
    ) -> Result<(), CoreError> {
        let controls = self.control_table.merged(g, t)?;
        self.route(dst, src, &NetworkPass::shift(controls))
    }

    /// Executes one Pease constant-geometry NTT stage in a single beat:
    /// the appropriate CG route plus the paired-lane butterflies. With
    /// `group < m`, the network splits into `m/group` independent blocks
    /// (several shorter NTTs in parallel, §IV-A).
    ///
    /// # Errors
    ///
    /// Bad register address or twiddle-vector length.
    ///
    /// # Panics
    ///
    /// Panics if `group` is not a power of two in `[2, m]`.
    pub fn pease_stage(
        &mut self,
        addr: usize,
        stage: &PeaseStage<'_>,
        group: usize,
    ) -> Result<(), CoreError> {
        match stage {
            PeaseStage::Forward { twiddles } => {
                let data = self.regs.read(addr)?.to_vec();
                let mut routed = self.network.cg_pass_grouped(&data, CgDirection::Dif, group);
                self.fault_hook(FaultSite::NetworkCg, &mut routed);
                self.regs.write(addr, &routed)?;
                self.regs
                    .butterfly_adjacent(addr, ButterflyKind::Dif, twiddles)?;
                self.fault_hook_reg(FaultSite::LaneButterfly, addr)?;
            }
            PeaseStage::Inverse { twiddles } => {
                self.regs
                    .butterfly_adjacent(addr, ButterflyKind::Dit, twiddles)?;
                self.fault_hook_reg(FaultSite::LaneButterfly, addr)?;
                let data = self.regs.read(addr)?.to_vec();
                let mut routed = self.network.cg_pass_grouped(&data, CgDirection::Dit, group);
                self.fault_hook(FaultSite::NetworkCg, &mut routed);
                self.regs.write(addr, &routed)?;
            }
        }
        self.beat(BeatKind::Butterfly);
        Ok(())
    }

    /// Cross-lane sum reduction: `log₂ m` rotate-and-add beats leave the
    /// total of register `src` broadcast in every lane of `dst` — the
    /// matrix/tensor-multiplication reduction of §III-A, built from the
    /// shift stages plus the lane adders (compute active every beat).
    ///
    /// # Errors
    ///
    /// Bad register address (needs `scratch ≠ src`).
    pub fn reduce_sum(&mut self, dst: usize, src: usize, scratch: usize) -> Result<(), CoreError> {
        let m = self.lanes();
        if dst != src {
            let data = self.regs.read(src)?.to_vec();
            self.regs.write(dst, &data)?;
        }
        let mut d = m / 2;
        while d >= 1 {
            let controls = ShiftControls::from_rotation(m, d as u64);
            let data = self.regs.read(dst)?.to_vec();
            let mut rotated = self.network.shift_pass(&data, &controls);
            self.fault_hook(FaultSite::NetworkShift, &mut rotated);
            self.regs.write(scratch, &rotated)?;
            self.regs.ewise_add(dst, dst, scratch)?;
            // Rotate-and-add is one fused beat: the adder consumes the
            // network output directly.
            self.beat(BeatKind::Elementwise(EwiseOp::RotateAdd));
            if d == 1 {
                break;
            }
            d /= 2;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vpu() -> Vpu {
        Vpu::new(8, Modulus::new(97).unwrap(), 32).unwrap()
    }

    #[test]
    fn load_reduces_inputs() {
        let mut v = vpu();
        v.load(0, &[100, 97, 98, 0, 1, 2, 3, 4]).unwrap();
        assert_eq!(v.store(0).unwrap(), vec![3, 0, 1, 0, 1, 2, 3, 4]);
        assert_eq!(v.stats().total(), 0, "loads are not pipeline beats");
    }

    #[test]
    fn cycle_accounting_by_category() {
        let mut v = vpu();
        v.load(0, &[1; 8]).unwrap();
        v.load(1, &[2; 8]).unwrap();
        v.ewise_add(2, 0, 1).unwrap();
        v.ewise_mul(3, 0, 1).unwrap();
        v.rotate(4, 3, 1).unwrap();
        assert_eq!(v.stats().elementwise, 2);
        assert_eq!(v.stats().network_move, 1);
        assert_eq!(v.stats().butterfly, 0);
    }

    #[test]
    fn rotate_moves_lanes() {
        let mut v = vpu();
        v.load(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        v.rotate(1, 0, 3).unwrap();
        assert_eq!(v.store(1).unwrap(), vec![6, 7, 8, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn automorphism_pass_matches_index_map() {
        let mut v = vpu();
        let data: Vec<u64> = (0..8).collect();
        v.load(0, &data).unwrap();
        for g in [1u64, 3, 5, 7] {
            for t in [0u64, 2, 5] {
                v.automorphism_pass(1, 0, g, t).unwrap();
                let map = uvpu_math::automorphism::AffineMap::new(8, g, t).unwrap();
                assert_eq!(v.store(1).unwrap(), map.permute(&data), "g={g} t={t}");
            }
        }
        assert!(v.automorphism_pass(1, 0, 2, 0).is_err());
    }

    #[test]
    fn automorphism_is_single_traversal() {
        let mut v = vpu();
        v.load(0, &[0; 8]).unwrap();
        v.automorphism_pass(1, 0, 5, 3).unwrap();
        assert_eq!(v.stats().network_move, 1, "exactly one network pass");
    }

    #[test]
    fn reduce_sum_broadcasts_total() {
        let mut v = vpu();
        v.load(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        v.reduce_sum(1, 0, 2).unwrap();
        assert_eq!(v.store(1).unwrap(), vec![36; 8]);
        assert_eq!(v.stats().elementwise, 3, "log2(8) fused beats");
        assert_eq!(
            v.stats().network_move,
            0,
            "rotate+add beats count as compute"
        );
    }

    #[test]
    fn pease_forward_then_inverse_round_trip() {
        // One forward stage then its inverse (with inverse twiddles and a
        // halving) restores the data: checks the route/butterfly pairing.
        let q = Modulus::new(97).unwrap();
        let mut v = Vpu::new(8, q, 8).unwrap();
        let data: Vec<u64> = (10..18).collect();
        v.load(0, &data).unwrap();
        let tw = [5u64, 7, 11, 13];
        let tw_inv: Vec<u64> = tw.iter().map(|&w| q.inv(w).unwrap()).collect();
        v.pease_stage(0, &PeaseStage::Forward { twiddles: &tw }, 8)
            .unwrap();
        v.pease_stage(0, &PeaseStage::Inverse { twiddles: &tw_inv }, 8)
            .unwrap();
        let half = q.inv(2).unwrap();
        let got = v.store(0).unwrap();
        for (x, orig) in got.iter().zip(&data) {
            assert_eq!(q.mul(*x, half), *orig);
        }
        assert_eq!(v.stats().butterfly, 2);
    }

    #[test]
    fn traced_run_reconstructs_stats_bit_exact() {
        use crate::trace::CounterSink;
        let q = Modulus::new(97).unwrap();
        let mut v = Vpu::with_sink(8, q, 32, CounterSink::new()).unwrap();
        v.load(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        v.load(1, &[3; 8]).unwrap();
        v.ewise_mul(2, 0, 1).unwrap();
        v.rotate(3, 2, 2).unwrap();
        v.automorphism_pass(4, 3, 3, 1).unwrap();
        v.reduce_sum(5, 4, 6).unwrap();
        let tw = [5u64, 7, 11, 13];
        v.pease_stage(0, &PeaseStage::Forward { twiddles: &tw }, 8)
            .unwrap();
        v.charge_network_moves(4);
        let stats = *v.stats();
        let sink = v.into_sink();
        assert_eq!(*sink.running(), stats, "trace-derived totals are bit-exact");
        assert_eq!(sink.reg_loads(), 2);
        assert_eq!(
            sink.net_beats(crate::trace::NetKind::Shift),
            2 + 4,
            "rotate + automorphism + bulk charge"
        );
    }

    #[test]
    fn traced_results_match_untraced_results() {
        use crate::trace::RingBufferSink;
        let q = Modulus::new(97).unwrap();
        let mut plain = Vpu::new(8, q, 16).unwrap();
        let mut traced = Vpu::with_sink(8, q, 16, RingBufferSink::new(64)).unwrap();
        let data: Vec<u64> = (1..=8).collect();
        plain.load(0, &data).unwrap();
        traced.load(0, &data).unwrap();
        plain.rotate(1, 0, 3).unwrap();
        traced.rotate(1, 0, 3).unwrap();
        plain.ewise_add(2, 0, 1).unwrap();
        traced.ewise_add(2, 0, 1).unwrap();
        assert_eq!(plain.store(2).unwrap(), traced.store(2).unwrap());
        assert_eq!(plain.stats(), traced.stats());
        assert!(!traced.sink().events().is_empty());
    }

    #[test]
    fn spans_carry_cycle_timestamps() {
        use crate::trace::{RingBufferSink, TraceEvent};
        let q = Modulus::new(97).unwrap();
        let mut v = Vpu::with_sink(8, q, 16, RingBufferSink::new(64)).unwrap();
        v.set_track(7);
        v.load(0, &[1; 8]).unwrap();
        v.ewise_add(1, 0, 0).unwrap();
        v.span_begin("phase");
        v.ewise_add(1, 0, 0).unwrap();
        v.span_end("phase");
        let sink = v.into_sink();
        let spans: Vec<_> = sink
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::SpanBegin { .. } | TraceEvent::SpanEnd { .. }))
            .collect();
        assert_eq!(spans.len(), 2);
        match spans[0] {
            TraceEvent::SpanBegin { track, ts, name } => {
                assert_eq!(*track, 7);
                assert_eq!(*ts, 1, "span opens after the first beat");
                assert_eq!(name, "phase");
            }
            other => panic!("unexpected {other:?}"),
        }
        match spans[1] {
            TraceEvent::SpanEnd { ts, .. } => assert_eq!(*ts, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scatter_gather_round_trip() {
        let mut v = vpu();
        v.ensure_depth(16);
        let data: Vec<u64> = (20..28).collect();
        v.load(0, &data).unwrap();
        let addrs: Vec<usize> = (8..16).collect();
        v.route_scatter(0, &NetworkPass::default(), &addrs).unwrap();
        v.gather_route(1, &addrs, &NetworkPass::default()).unwrap();
        assert_eq!(v.store(1).unwrap(), data);
        assert_eq!(v.stats().network_move, 2);
    }
}
