//! Dependency-aware scheduling: FHE kernels as a task graph.
//!
//! Real FHE programs are DAGs — a rotation consumes the multiply that
//! produced its input — so the flat list scheduler of
//! [`machine`](crate::machine) over-estimates the available parallelism.
//! This module schedules an explicit dependency graph with an
//! event-driven list scheduler and reports the critical path, exposing
//! when a workload stops scaling with more VPUs.

use crate::config::AcceleratorConfig;
use crate::machine::AccelReport;
use crate::workload::{premeasure, FheOp, Task};
use crate::AccelError;
use uvpu_core::stats::CycleStats;
use uvpu_core::trace;

/// A node handle in the task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// A DAG of vector tasks.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    preds: Vec<Vec<usize>>,
}

impl TaskGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task depending on the given predecessors.
    ///
    /// # Panics
    ///
    /// Panics on a dangling predecessor handle.
    pub fn add(&mut self, task: Task, deps: &[NodeId]) -> NodeId {
        for d in deps {
            assert!(d.0 < self.tasks.len(), "dangling dependency");
        }
        self.tasks.push(task);
        self.preds.push(deps.iter().map(|d| d.0).collect());
        NodeId(self.tasks.len() - 1)
    }

    /// Adds a whole homomorphic op as a sequential stage: all its lowered
    /// tasks depend on `deps`, and the returned handle stands for the
    /// stage's completion (a barrier node pattern: every task of the
    /// stage is a predecessor of whatever depends on the result).
    pub fn add_op(&mut self, op: FheOp, deps: &[NodeId]) -> Vec<NodeId> {
        op.lower().into_iter().map(|t| self.add(t, deps)).collect()
    }

    /// The critical-path length in VPU beats (ignoring NoC), i.e. the
    /// lower bound on makespan with unlimited VPUs.
    ///
    /// # Errors
    ///
    /// Kernel-mapping errors.
    pub fn critical_path_beats(&self, lanes: usize) -> Result<u64, AccelError> {
        let memo = premeasure(&self.tasks, lanes)?;
        let mut cost = vec![0u64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let own = memo[&(t.kind, t.n)].total();
            let pred_max = self.preds[i].iter().map(|&p| cost[p]).max().unwrap_or(0);
            cost[i] = pred_max + own;
        }
        Ok(cost.into_iter().max().unwrap_or(0))
    }

    /// Event-driven list scheduling onto the machine: a task becomes
    /// ready when all predecessors finish; ready tasks go to the
    /// earliest-free VPU (ties by task order). NoC transfer serializes
    /// with its own task, as in the flat scheduler.
    ///
    /// # Errors
    ///
    /// Kernel-mapping errors or SRAM overflow.
    pub fn schedule(&self, config: &AcceleratorConfig) -> Result<AccelReport, AccelError> {
        config.validate()?;
        for t in &self.tasks {
            if t.noc_bytes > config.sram_bytes {
                return Err(AccelError::SramOverflow {
                    needed: t.noc_bytes,
                    capacity: config.sram_bytes,
                });
            }
        }
        let v = config.vpu_count;
        let n_tasks = self.tasks.len();
        // All distinct shapes are measured up front (in parallel when
        // host threads are available); the event loop below replays the
        // sequential hit/miss accounting exactly.
        let memo = premeasure(&self.tasks, config.lanes)?;
        let mut first_seen: std::collections::HashSet<(crate::workload::TaskKind, usize)> =
            std::collections::HashSet::new();
        let mut finish = vec![u64::MAX; n_tasks];
        let mut scheduled = vec![false; n_tasks];
        let mut vpu_free = vec![0u64; v];
        let mut vpu_busy = vec![0u64; v];
        let mut agg = CycleStats::new();
        let mut noc_cycles = 0u64;
        let mut traffic = 0u64;
        let mut memo_hits = 0u64;
        let mut memo_misses = 0u64;
        let tracing = trace::global_enabled();
        if tracing {
            // Same per-slot `accel.batch` parent as the flat scheduler,
            // so DAG schedules produce the same tree-path grammar.
            for slot in 0..v {
                trace::global_span_begin_at(slot as u32, "accel.batch", 0);
            }
        }
        let mut remaining = n_tasks;
        while remaining > 0 {
            let mut progressed = false;
            for i in 0..n_tasks {
                if scheduled[i] {
                    continue;
                }
                if self.preds[i].iter().any(|&p| finish[p] == u64::MAX) {
                    continue;
                }
                let ready_at = self.preds[i].iter().map(|&p| finish[p]).max().unwrap_or(0);
                let task = &self.tasks[i];
                if first_seen.insert((task.kind, task.n)) {
                    memo_misses += 1;
                } else {
                    memo_hits += 1;
                }
                let stats = memo[&(task.kind, task.n)];
                let (slot, _) = vpu_free
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &t)| t)
                    .expect("at least one VPU");
                let hops = slot % (v / 2 + 1) + 1;
                let transfer = task.noc_bytes.div_ceil(config.noc_bytes_per_cycle) as u64
                    + config.noc_hop_latency * hops as u64;
                let start = vpu_free[slot].max(ready_at);
                let end = start + transfer + stats.total();
                if tracing {
                    let track = slot as u32;
                    trace::global_span_at(track, "noc.transfer", start, start + transfer);
                    trace::global_span_at(
                        track,
                        &format!("task.{} n={}", task.kind.name(), task.n),
                        start + transfer,
                        end,
                    );
                }
                vpu_free[slot] = end;
                vpu_busy[slot] += stats.total();
                finish[i] = end;
                scheduled[i] = true;
                agg += stats;
                noc_cycles += transfer;
                traffic += task.noc_bytes as u64;
                remaining -= 1;
                progressed = true;
            }
            assert!(progressed, "cycle in task graph");
        }
        if tracing {
            for (slot, &free_at) in vpu_free.iter().enumerate() {
                trace::global_span_end_at(slot as u32, "accel.batch", free_at);
            }
        }
        Ok(AccelReport {
            makespan: finish.into_iter().max().unwrap_or(0),
            vpu_busy,
            vpu_stats: agg,
            noc_cycles,
            sram_traffic_bytes: traffic,
            task_count: n_tasks,
            memo_hits,
            memo_misses,
        })
    }
}

/// Builds a bootstrapping-shaped dependency graph: `stages` factorized
/// DFT stages, each of `rotations` HRot-per-limb tasks feeding an
/// element-wise combine, every stage depending on the previous one — the
/// rotation-dominated serial/parallel mix of CoeffToSlot.
#[must_use]
pub fn bootstrap_graph(n: usize, limbs: usize, stages: usize, rotations: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let mut stage_barrier: Vec<NodeId> = Vec::new();
    for _ in 0..stages {
        let mut stage_nodes = Vec::new();
        for _ in 0..rotations {
            for _ in 0..limbs {
                // HRot = automorphism + keyswitch digit products.
                let a = g.add(
                    Task {
                        kind: crate::workload::TaskKind::Automorphism,
                        n,
                        noc_bytes: 2 * n * 8,
                    },
                    &stage_barrier,
                );
                let k = g.add(
                    Task {
                        kind: crate::workload::TaskKind::Ntt,
                        n,
                        noc_bytes: 2 * n * 8,
                    },
                    &[a],
                );
                stage_nodes.push(k);
            }
        }
        // The stage's element-wise combine depends on all its rotations.
        let combine = g.add(
            Task {
                kind: crate::workload::TaskKind::Elementwise { passes: 2 },
                n,
                noc_bytes: 3 * n * 8,
            },
            &stage_nodes,
        );
        stage_barrier = vec![combine];
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(vpus: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            vpu_count: vpus,
            ..AcceleratorConfig::default()
        }
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        let r = g.schedule(&config(2)).unwrap();
        assert_eq!(r.makespan, 0);
        assert_eq!(r.task_count, 0);
    }

    #[test]
    fn serial_chain_does_not_scale() {
        // A fully serial graph: extra VPUs cannot help.
        let mut g = TaskGraph::new();
        let mut last: Vec<NodeId> = Vec::new();
        for _ in 0..6 {
            let id = g.add(
                Task {
                    kind: crate::workload::TaskKind::Ntt,
                    n: 1 << 10,
                    noc_bytes: 0,
                },
                &last,
            );
            last = vec![id];
        }
        // Zero NoC latency isolates the dependency structure.
        let cfg = |vpus| AcceleratorConfig {
            vpu_count: vpus,
            noc_hop_latency: 0,
            ..AcceleratorConfig::default()
        };
        let r1 = g.schedule(&cfg(1)).unwrap();
        let r8 = g.schedule(&cfg(8)).unwrap();
        assert_eq!(r1.makespan, r8.makespan, "serial chains are VPU-bound");
        assert_eq!(r1.makespan, g.critical_path_beats(64).unwrap());
    }

    #[test]
    fn parallel_fanout_scales_until_critical_path() {
        let g = bootstrap_graph(1 << 10, 2, 3, 4);
        let r1 = g.schedule(&config(1)).unwrap();
        let r4 = g.schedule(&config(4)).unwrap();
        let r64 = g.schedule(&config(64)).unwrap();
        assert!(r4.makespan < r1.makespan);
        // With unlimited VPUs the makespan approaches the critical path
        // (plus NoC overheads).
        let cp = g.critical_path_beats(64).unwrap();
        assert!(r64.makespan >= cp);
        assert!(r64.makespan < r1.makespan / 2);
    }

    #[test]
    fn graph_and_flat_agree_on_independent_tasks() {
        // With no dependencies, the DAG scheduler reduces to the flat one.
        let tasks: Vec<Task> = FheOp::HAdd {
            n: 1 << 10,
            limbs: 4,
        }
        .lower();
        let mut g = TaskGraph::new();
        for t in &tasks {
            g.add(*t, &[]);
        }
        let flat = crate::machine::Accelerator::new(config(4))
            .unwrap()
            .run_tasks(&tasks)
            .unwrap();
        let dag = g.schedule(&config(4)).unwrap();
        assert_eq!(flat.vpu_stats, dag.vpu_stats);
        assert_eq!(flat.makespan, dag.makespan);
    }

    #[test]
    #[should_panic(expected = "dangling dependency")]
    fn dangling_dependency_panics() {
        let mut g = TaskGraph::new();
        g.add(
            Task {
                kind: crate::workload::TaskKind::Ntt,
                n: 64,
                noc_bytes: 0,
            },
            &[NodeId(5)],
        );
    }
}
