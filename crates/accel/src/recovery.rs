//! Retry/quarantine recovery scheduling on top of the machine model.
//!
//! [`Accelerator::run_tasks`](crate::machine::Accelerator::run_tasks)
//! assumes a fault-free datapath. This module adds the degraded-mode
//! story: tasks are executed through a caller-supplied [`TaskExecutor`]
//! (which may inject faults and run online detectors — see the
//! `uvpu-fault` crate), and
//! [`run_tasks_with_recovery`](crate::machine::Accelerator::run_tasks_with_recovery)
//! wraps the same list scheduler in a retry/quarantine state machine:
//!
//! 1. **Retry**: a detected-faulty attempt is re-executed from its input
//!    operands on the same VPU slot, charging the NoC re-fetch, a
//!    configurable backoff, and the full re-compute to the timeline.
//! 2. **Quarantine**: a slot accumulating [`RetryPolicy::quarantine_threshold`]
//!    detections is marked degraded; the scheduler stops placing work on
//!    it and remaps in-flight retries to the earliest healthy slot
//!    (paper-level analogue of column remapping around a bad lane).
//!    The last healthy slot is never quarantined.
//! 3. **Surrender**: a task still failing detection after
//!    [`RetryPolicy::max_retries`] retries surfaces as
//!    [`AccelError::FaultUnrecoverable`] instead of a panic or silent
//!    corruption.

use crate::machine::{AccelReport, Accelerator};
use crate::workload::Task;
use crate::AccelError;
use std::fmt;
use uvpu_core::stats::CycleStats;
use uvpu_core::trace;

/// Outcome of one execution attempt of one task, as reported by a
/// [`TaskExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskAttempt {
    /// Pipeline cycles spent computing this attempt (charged to the
    /// slot whether or not the attempt was detected faulty).
    pub stats: CycleStats,
    /// Digest of the attempt's output vector (implementation-defined,
    /// but stable for identical outputs) — lets a campaign classify
    /// silent corruption against a fault-free golden digest.
    pub digest: u64,
    /// Extra cycles spent by online detectors on this attempt.
    pub check_cycles: u64,
    /// `true` when an online detector flagged this attempt as faulty.
    pub detected: bool,
}

/// Executes task attempts on behalf of the recovery scheduler.
///
/// Implementations run the task's kernel bit-exactly (possibly under a
/// fault-injecting trace sink) and apply their online detectors; the
/// scheduler only sees the verdict. `slot` is the VPU the scheduler
/// placed the attempt on and `attempt` counts from 0, so a
/// deterministic injector can key its fault decisions on both.
pub trait TaskExecutor {
    /// Runs one attempt of `task`.
    ///
    /// # Errors
    ///
    /// Kernel-mapping errors from the VPU simulator.
    fn execute(
        &mut self,
        task: &Task,
        slot: usize,
        attempt: u32,
    ) -> Result<TaskAttempt, AccelError>;
}

/// When to retry, back off, and give up on a VPU slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per task after the initial attempt (0 = detect only).
    pub max_retries: u32,
    /// Idle cycles charged to the slot before each retry (models
    /// pipeline drain + operand re-fetch issue latency).
    pub backoff_cycles: u64,
    /// Detections on one slot before it is quarantined. The last
    /// healthy slot is exempt so the machine never deadlocks.
    pub quarantine_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_cycles: 32,
            quarantine_threshold: 2,
        }
    }
}

/// Report of a recovery run: the usual machine report plus the fault
/// ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The underlying machine report. Cycle/traffic totals include all
    /// re-execution work, so comparing against a fault-free
    /// [`run_tasks`](crate::machine::Accelerator::run_tasks) of the
    /// same list prices the recovery overhead.
    pub report: AccelReport,
    /// Total attempts across all tasks (≥ `report.task_count`).
    pub attempts: u64,
    /// Attempts beyond the first, per task, summed.
    pub retries: u64,
    /// Attempts flagged faulty by a detector.
    pub detected_faults: u64,
    /// Tasks that were detected faulty at least once but whose final
    /// attempt passed detection.
    pub recovered_tasks: u64,
    /// Slots quarantined, in quarantine order.
    pub quarantined_slots: Vec<usize>,
    /// Idle backoff cycles charged across all retries.
    pub backoff_cycles: u64,
    /// Online-detector cycles charged across all attempts.
    pub check_cycles: u64,
    /// Final output digest per task, in submission order.
    pub task_digests: Vec<u64>,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.report)?;
        write!(
            f,
            "  recovery: {} attempts ({} retries), {} detected, {} recovered, {} slot(s) quarantined, {} backoff + {} check cycles",
            self.attempts,
            self.retries,
            self.detected_faults,
            self.recovered_tasks,
            self.quarantined_slots.len(),
            self.backoff_cycles,
            self.check_cycles
        )
    }
}

impl Accelerator {
    /// Runs an explicit task list through `exec` under `policy`,
    /// retrying detected-faulty attempts and quarantining repeatedly
    /// faulty slots. The fault-free scheduler
    /// ([`run_tasks`](Self::run_tasks)) is untouched by this path.
    ///
    /// # Errors
    ///
    /// As [`run_tasks`](Self::run_tasks), plus
    /// [`AccelError::FaultUnrecoverable`] when a task exhausts its
    /// retry budget without a clean attempt.
    pub fn run_tasks_with_recovery(
        &mut self,
        tasks: &[Task],
        exec: &mut dyn TaskExecutor,
        policy: &RetryPolicy,
    ) -> Result<RecoveryReport, AccelError> {
        for t in tasks {
            if t.noc_bytes > self.config().sram_bytes {
                return Err(AccelError::SramOverflow {
                    needed: t.noc_bytes,
                    capacity: self.config().sram_bytes,
                });
            }
        }
        let v = self.config().vpu_count;
        let mut vpu_free_at = vec![0u64; v];
        let mut vpu_busy = vec![0u64; v];
        let mut quarantined = vec![false; v];
        let mut slot_faults = vec![0u32; v];
        let mut agg = CycleStats::new();
        let mut noc_cycles = 0u64;
        let mut traffic = 0u64;
        let mut attempts_total = 0u64;
        let mut retries_total = 0u64;
        let mut detected_total = 0u64;
        let mut recovered_tasks = 0u64;
        let mut quarantine_order = Vec::new();
        let mut backoff_total = 0u64;
        let mut check_total = 0u64;
        let mut digests = Vec::with_capacity(tasks.len());
        let tracing = trace::global_enabled();
        if tracing {
            // Per-slot `accel.batch` parents, as in the fault-free
            // schedulers, so recovery runs share the tree-path grammar.
            for slot in 0..v {
                trace::global_span_begin_at(slot as u32, "accel.batch", 0);
            }
        }
        let earliest_healthy = |free: &[u64], quarantined: &[bool]| -> usize {
            free.iter()
                .enumerate()
                .filter(|&(i, _)| !quarantined[i])
                .min_by_key(|&(_, &t)| t)
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        for (task_index, task) in tasks.iter().enumerate() {
            let mut slot = earliest_healthy(&vpu_free_at, &quarantined);
            let mut was_detected = false;
            let mut done = false;
            for attempt in 0..=policy.max_retries {
                // A quarantine (from this task's own earlier attempt)
                // remaps the retry to the earliest healthy slot.
                if quarantined[slot] {
                    slot = earliest_healthy(&vpu_free_at, &quarantined);
                }
                if attempt > 0 {
                    vpu_free_at[slot] += policy.backoff_cycles;
                    backoff_total += policy.backoff_cycles;
                    retries_total += 1;
                }
                let hops = slot % (v / 2 + 1) + 1;
                // Every attempt re-fetches the input operands from SRAM.
                let transfer = self.noc_cycles(task.noc_bytes, hops);
                let outcome = exec.execute(task, slot, attempt)?;
                let compute = outcome.stats.total() + outcome.check_cycles;
                if tracing {
                    let track = slot as u32;
                    let start = vpu_free_at[slot];
                    trace::global_span_at(track, "noc.transfer", start, start + transfer);
                    let label = if attempt == 0 { "task" } else { "retry" };
                    trace::global_span_at(
                        track,
                        &format!("{label}.{} n={}", task.kind.name(), task.n),
                        start + transfer,
                        start + transfer + compute,
                    );
                }
                vpu_free_at[slot] += transfer + compute;
                vpu_busy[slot] += compute;
                noc_cycles += transfer;
                traffic += task.noc_bytes as u64;
                agg += outcome.stats;
                attempts_total += 1;
                check_total += outcome.check_cycles;
                if outcome.detected {
                    was_detected = true;
                    detected_total += 1;
                    slot_faults[slot] += 1;
                    let healthy = quarantined.iter().filter(|&&q| !q).count();
                    if slot_faults[slot] >= policy.quarantine_threshold && healthy > 1 {
                        quarantined[slot] = true;
                        quarantine_order.push(slot);
                    }
                } else {
                    if was_detected {
                        recovered_tasks += 1;
                    }
                    digests.push(outcome.digest);
                    done = true;
                    break;
                }
            }
            if !done {
                return Err(AccelError::FaultUnrecoverable {
                    task_index,
                    attempts: policy.max_retries + 1,
                });
            }
        }
        if tracing {
            for (slot, &free_at) in vpu_free_at.iter().enumerate() {
                trace::global_span_end_at(slot as u32, "accel.batch", free_at);
            }
        }
        Ok(RecoveryReport {
            report: AccelReport {
                makespan: vpu_free_at.iter().copied().max().unwrap_or(0),
                vpu_busy,
                vpu_stats: agg,
                noc_cycles,
                sram_traffic_bytes: traffic,
                task_count: tasks.len(),
                memo_hits: 0,
                memo_misses: attempts_total,
            },
            attempts: attempts_total,
            retries: retries_total,
            detected_faults: detected_total,
            recovered_tasks,
            quarantined_slots: quarantine_order,
            backoff_cycles: backoff_total,
            check_cycles: check_total,
            task_digests: digests,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::workload::TaskKind;

    fn config(vpus: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            vpu_count: vpus,
            ..AcceleratorConfig::default()
        }
    }

    fn task(n: usize) -> Task {
        Task {
            kind: TaskKind::Elementwise { passes: 1 },
            n,
            noc_bytes: n * 8,
        }
    }

    fn mk_attempt(cycles: u64, detected: bool, digest: u64) -> TaskAttempt {
        let mut stats = CycleStats::new();
        stats.elementwise = cycles;
        TaskAttempt {
            stats,
            digest,
            check_cycles: 1,
            detected,
        }
    }

    /// Scripted executor: detects a fault whenever `faulty(slot, attempt)`.
    struct Scripted<F: FnMut(usize, u32) -> bool> {
        faulty: F,
        calls: u64,
    }

    impl<F: FnMut(usize, u32) -> bool> TaskExecutor for Scripted<F> {
        fn execute(
            &mut self,
            _task: &Task,
            slot: usize,
            attempt: u32,
        ) -> Result<TaskAttempt, AccelError> {
            self.calls += 1;
            let bad = (self.faulty)(slot, attempt);
            Ok(mk_attempt(10, bad, if bad { 0xbad } else { 0x900d }))
        }
    }

    #[test]
    fn clean_run_has_no_retries() {
        let mut accel = Accelerator::new(config(2)).unwrap();
        let mut exec = Scripted {
            faulty: |_, _| false,
            calls: 0,
        };
        let tasks = [task(64), task(64), task(64)];
        let r = accel
            .run_tasks_with_recovery(&tasks, &mut exec, &RetryPolicy::default())
            .unwrap();
        assert_eq!(r.attempts, 3);
        assert_eq!(r.retries, 0);
        assert_eq!(r.detected_faults, 0);
        assert_eq!(r.recovered_tasks, 0);
        assert!(r.quarantined_slots.is_empty());
        assert_eq!(r.task_digests, vec![0x900d; 3]);
        assert_eq!(r.backoff_cycles, 0);
        assert_eq!(r.check_cycles, 3, "one check cycle per attempt");
    }

    #[test]
    fn transient_fault_recovers_on_retry() {
        let mut accel = Accelerator::new(config(2)).unwrap();
        // Faulty on the first attempt only — a transient upset.
        let mut exec = Scripted {
            faulty: |_, attempt| attempt == 0,
            calls: 0,
        };
        let policy = RetryPolicy::default();
        let r = accel
            .run_tasks_with_recovery(&[task(64)], &mut exec, &policy)
            .unwrap();
        assert_eq!(r.attempts, 2);
        assert_eq!(r.retries, 1);
        assert_eq!(r.detected_faults, 1);
        assert_eq!(r.recovered_tasks, 1);
        assert_eq!(r.task_digests, vec![0x900d]);
        assert_eq!(r.backoff_cycles, policy.backoff_cycles);
    }

    #[test]
    fn persistent_slot_fault_quarantines_and_remaps() {
        let mut accel = Accelerator::new(config(2)).unwrap();
        // Slot 0 is broken; slot 1 is fine. Every attempt on slot 0
        // fails, so the scheduler must quarantine it and remap.
        let mut exec = Scripted {
            faulty: |slot, _| slot == 0,
            calls: 0,
        };
        let policy = RetryPolicy {
            max_retries: 3,
            backoff_cycles: 8,
            quarantine_threshold: 2,
        };
        let tasks = [task(64), task(64), task(64)];
        let r = accel
            .run_tasks_with_recovery(&tasks, &mut exec, &policy)
            .unwrap();
        assert_eq!(r.quarantined_slots, vec![0]);
        assert_eq!(r.task_digests, vec![0x900d; 3], "all tasks completed clean");
        assert!(
            r.detected_faults >= 2,
            "threshold reached before quarantine"
        );
        // After quarantine, everything lands on slot 1.
        assert!(r.report.vpu_busy[1] > r.report.vpu_busy[0]);
    }

    #[test]
    fn unrecoverable_fault_is_a_typed_error() {
        let mut accel = Accelerator::new(config(1)).unwrap();
        // Single slot, always faulty: quarantine is impossible (last
        // healthy slot) and retries never converge.
        let mut exec = Scripted {
            faulty: |_, _| true,
            calls: 0,
        };
        let policy = RetryPolicy {
            max_retries: 2,
            backoff_cycles: 0,
            quarantine_threshold: 2,
        };
        let err = accel.run_tasks_with_recovery(&[task(64)], &mut exec, &policy);
        match err {
            Err(AccelError::FaultUnrecoverable {
                task_index,
                attempts,
            }) => {
                assert_eq!(task_index, 0);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected FaultUnrecoverable, got {other:?}"),
        }
        assert_eq!(exec.calls, 3, "initial attempt + 2 retries");
    }

    #[test]
    fn recovery_overhead_prices_into_the_report() {
        let mut accel = Accelerator::new(config(2)).unwrap();
        let policy = RetryPolicy::default();
        let mut clean = Scripted {
            faulty: |_, _| false,
            calls: 0,
        };
        let base = accel
            .run_tasks_with_recovery(&[task(64)], &mut clean, &policy)
            .unwrap();
        let mut flaky = Scripted {
            faulty: |_, attempt| attempt == 0,
            calls: 0,
        };
        let mut accel2 = Accelerator::new(config(2)).unwrap();
        let faulty = accel2
            .run_tasks_with_recovery(&[task(64)], &mut flaky, &policy)
            .unwrap();
        assert!(faulty.report.makespan > base.report.makespan);
        assert!(faulty.report.sram_traffic_bytes > base.report.sram_traffic_bytes);
        assert_eq!(
            faulty.report.vpu_stats.elementwise,
            2 * base.report.vpu_stats.elementwise,
            "re-execution doubles the pipeline work"
        );
    }
}
