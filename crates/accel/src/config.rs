//! Accelerator configuration (paper Fig 1(a)): multiple VPUs around a
//! network-on-chip and a global on-chip SRAM.

use crate::AccelError;

/// Hardware configuration of the accelerator.
///
/// # Example
///
/// ```
/// let cfg = uvpu_accel::config::AcceleratorConfig::default();
/// assert_eq!(cfg.vpu_count, 8);
/// assert_eq!(cfg.lanes, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcceleratorConfig {
    /// Number of vector processing units.
    pub vpu_count: usize,
    /// Lanes per VPU (the paper's default is 64).
    pub lanes: usize,
    /// Global on-chip SRAM capacity in bytes.
    pub sram_bytes: usize,
    /// NoC payload bandwidth per link, bytes per cycle.
    pub noc_bytes_per_cycle: usize,
    /// NoC per-hop latency in cycles (ring topology).
    pub noc_hop_latency: u64,
}

impl AcceleratorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`AccelError::InvalidConfig`] for zero counts or a non-power-of-two
    /// lane count.
    pub fn validate(&self) -> Result<(), AccelError> {
        if self.vpu_count == 0 {
            return Err(AccelError::InvalidConfig("vpu_count must be positive"));
        }
        if !self.lanes.is_power_of_two() || self.lanes < 2 {
            return Err(AccelError::InvalidConfig(
                "lanes must be a power of two >= 2",
            ));
        }
        if self.noc_bytes_per_cycle == 0 {
            return Err(AccelError::InvalidConfig("NoC bandwidth must be positive"));
        }
        Ok(())
    }
}

impl Default for AcceleratorConfig {
    /// The paper's reference configuration: 8 VPUs × 64 lanes, 64 MiB of
    /// on-chip SRAM (typical of recent FHE accelerators), a 64 B/cycle
    /// ring NoC with 2-cycle hops.
    fn default() -> Self {
        Self {
            vpu_count: 8,
            lanes: 64,
            sram_bytes: 64 << 20,
            noc_bytes_per_cycle: 64,
            noc_hop_latency: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(AcceleratorConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_degenerate_configs() {
        let c = AcceleratorConfig {
            vpu_count: 0,
            ..AcceleratorConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AcceleratorConfig {
            lanes: 48,
            ..AcceleratorConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AcceleratorConfig {
            noc_bytes_per_cycle: 0,
            ..AcceleratorConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
