//! Event-level multi-VPU FHE accelerator simulator — the system context
//! of paper Fig 1(a): several unified vector processing units connected
//! by a network-on-chip around a global on-chip SRAM.
//!
//! - [`config`]: hardware shape (VPU count, lanes, SRAM, NoC);
//! - [`workload`]: homomorphic operations lowered to per-residue vector
//!   tasks, each *measured* by executing it on the bit-exact VPU
//!   simulator from [`uvpu_core`];
//! - [`machine`]: the list scheduler + NoC/SRAM accounting producing a
//!   makespan report;
//! - [`graph`]: dependency-aware DAG scheduling with critical-path
//!   analysis, plus a bootstrapping-shaped trace generator.
//!
//! # Example
//!
//! ```
//! use uvpu_accel::config::AcceleratorConfig;
//! use uvpu_accel::machine::Accelerator;
//! use uvpu_accel::workload::FheOp;
//!
//! # fn main() -> Result<(), uvpu_accel::AccelError> {
//! let mut accel = Accelerator::new(AcceleratorConfig::default())?;
//! let report = accel.run(&[
//!     FheOp::HMult { n: 1 << 12, limbs: 3 },
//!     FheOp::HRot { n: 1 << 12, limbs: 3 },
//! ])?;
//! println!("makespan: {} cycles over {} tasks", report.makespan, report.task_count);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod graph;
pub mod machine;
pub mod recovery;
pub mod workload;

use std::fmt;

/// Errors produced by the accelerator simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AccelError {
    /// The configuration is inconsistent.
    InvalidConfig(&'static str),
    /// A task's working set exceeds the on-chip SRAM.
    SramOverflow {
        /// Bytes the task needs resident.
        needed: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// An error bubbled up from the VPU simulator.
    Core(uvpu_core::CoreError),
    /// A task still failed online detection after exhausting its retry
    /// budget (and any quarantine-driven remap) — see
    /// [`recovery`](crate::recovery).
    FaultUnrecoverable {
        /// Index of the task in the submitted list.
        task_index: usize,
        /// Attempts made (first execution plus retries).
        attempts: u32,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig(why) => write!(f, "invalid accelerator config: {why}"),
            Self::SramOverflow { needed, capacity } => {
                write!(f, "working set of {needed} B exceeds {capacity} B of SRAM")
            }
            Self::Core(e) => write!(f, "vpu error: {e}"),
            Self::FaultUnrecoverable {
                task_index,
                attempts,
            } => write!(
                f,
                "task {task_index} still faulty after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for AccelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<uvpu_core::CoreError> for AccelError {
    fn from(e: uvpu_core::CoreError) -> Self {
        Self::Core(e)
    }
}
